"""Bound-quality ablation: Algorithm 5 vs the LP relaxation.

Not a paper figure -- it quantifies how loose the paper's yardstick is.
Algorithm 5 ignores incoming bandwidth and relaxes topic choices
fractionally; the LP relaxation pays for ingest but relaxes pair
integrality.  The two are incomparable; their max is the honest
yardstick for the heuristic's true optimality gap.
"""

from __future__ import annotations

import pytest

from repro.bounds import best_lower_bound, lower_bound, lp_lower_bound
from repro.core import MCSSProblem
from repro.solver import MCSSSolver

from .conftest import run_once


def test_bound_comparison(benchmark, twitter_trace, twitter_plans):
    plan = twitter_plans["c3.large"]

    def measure():
        rows = []
        for tau in (10, 100, 1000):
            problem = MCSSProblem(twitter_trace.workload, tau, plan)
            heuristic = MCSSSolver.paper().solve(problem).cost.total_usd
            alg5 = lower_bound(problem).total_usd
            lp = lp_lower_bound(problem).total_usd
            best = best_lower_bound(problem).total_usd
            rows.append((tau, heuristic, alg5, lp, best))
        return rows

    rows = run_once(benchmark, measure)
    print()
    print(f"  {'tau':>5} {'heuristic':>12} {'alg5':>12} {'lp':>12} {'gap(best)':>10}")
    for tau, heuristic, alg5, lp, best in rows:
        print(
            f"  {tau:>5} {heuristic:>12.5f} {alg5:>12.5f} {lp:>12.5f} "
            f"{heuristic / best - 1:>9.0%}"
        )
        # Soundness of every bound.
        assert alg5 <= heuristic * (1 + 1e-9)
        assert lp <= heuristic * (1 + 1e-6)
        assert best <= heuristic * (1 + 1e-6)
        assert best >= max(alg5, lp) - 1e-12
