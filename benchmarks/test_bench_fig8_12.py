"""Figures 8-12: the Appendix-D Twitter trace analysis.

Regenerates each figure's data series from the synthetic Twitter-like
trace and asserts its distinguishing shape:

* Fig. 8 -- power-law follower/following CCDFs with the man-made
  glitch at 20 followings;
* Fig. 9 -- heavy-tailed event rates with a bot tail >= 1000;
* Fig. 10 -- mean rate grows with follower count, depressed celebrity
  cloud at the top;
* Fig. 11 -- heavy-tailed subscription cardinality;
* Fig. 12 -- mean SC grows with following count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ccdf
from repro.experiments import run_trace_figure

from .conftest import run_once


def test_fig8_follower_following_ccdf(benchmark, twitter_trace):
    figure = run_once(benchmark, lambda: run_trace_figure("fig8", twitter_trace))
    print()
    print(figure.render(points=8))

    followings = twitter_trace.graph.following_counts()
    at_20 = (followings == 20).mean()
    neighbours = ((followings >= 15) & (followings <= 25) & (followings != 20)).mean() / 10
    assert at_20 > 2 * neighbours, "the 20-followings glitch must be visible"

    followers = twitter_trace.graph.follower_counts
    slope = ccdf(followers[followers >= 1]).tail_exponent(x_min=5)
    assert slope < -0.5, "follower CCDF must be heavy-tailed"


def test_fig9_event_rate_ccdf(benchmark, twitter_trace):
    figure = run_once(benchmark, lambda: run_trace_figure("fig9", twitter_trace))
    print()
    print(figure.render(points=8))

    rates = twitter_trace.workload.event_rates
    assert (rates >= 1000).sum() > 0, "bot tail missing"
    assert (rates < 10).mean() > 0.25, "low-activity body missing"


def test_fig10_rate_vs_followers(benchmark, twitter_trace):
    figure = run_once(benchmark, lambda: run_trace_figure("fig10", twitter_trace))
    print()
    print(figure.render(points=8))

    _name, x, y = figure.series[0]
    # Rising trend through the body of the distribution.  The
    # low-follower bins are compared by their minimum: a single bot
    # (huge rate, ~1 follower) can dominate one low bin's *mean* on
    # unlucky seeds without changing the underlying trend.
    mid = len(y) // 2
    assert y[mid] > min(y[:3])


def test_fig11_subscription_cardinality(benchmark, twitter_trace):
    figure = run_once(benchmark, lambda: run_trace_figure("fig11", twitter_trace))
    print()
    print(figure.render(points=8))

    _name, x, y = figure.series[0]
    assert float(np.max(x)) <= 100.0  # SC is a percentage
    assert (np.diff(y) <= 1e-12).all()  # CCDF is non-increasing


def test_fig12_sc_vs_followings(benchmark, twitter_trace):
    figure = run_once(benchmark, lambda: run_trace_figure("fig12", twitter_trace))
    print()
    print(figure.render(points=8))

    _name, x, y = figure.series[0]
    assert y[-1] > y[0], "SC must grow with followings"
