"""Per-figure paper benchmarks (a proper package so ``.conftest`` resolves).

These are *benchmarks*, not unit tests: they regenerate one paper
figure each at laptop scale and are excluded from the default pytest
invocation (``testpaths = ["tests"]`` in ``pyproject.toml``).  Run them
explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s

Scale with ``MCSS_BENCH_USERS`` (default 8000).
"""
