"""Figure 2: the Spotify cost-optimization ladder (2a: c3.large,
2b: c3.xlarge).

Regenerates, per tau in {10, 100, 1000}, the total cost / VM count /
bandwidth of: RSP+FFBP, GSP+FFBP, and CBP with optimizations (b)-(e),
plus the Algorithm-5 lower bound.

Paper expectations (shape, not absolute dollars): the full solution
saves up to ~38% over the naive baseline, savings shrink as tau grows,
and the ladder's later rungs contribute a few extra percent.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TAUS, run_cost_ladder

from .conftest import run_once


@pytest.mark.parametrize("instance", ["c3.large", "c3.xlarge"])
def test_fig2_spotify_ladder(benchmark, spotify_trace, spotify_plans, instance):
    plan = spotify_plans[instance]

    result = run_once(
        benchmark,
        lambda: run_cost_ladder(
            spotify_trace.workload, plan, PAPER_TAUS, trace_name="spotify"
        ),
    )
    print()
    print(result.render())

    # Shape assertions from the paper.
    for tau in PAPER_TAUS:
        assert result.savings(tau) > 0.10, f"tau={tau}: expected real savings"
        lb = result.cell("lower-bound", tau).cost_usd
        ours = result.cell("(e) +cost-decision", tau).cost_usd
        assert lb <= ours
    # Savings shrink as tau grows (tau=10 vs tau=1000).
    assert result.savings(10) >= result.savings(1000) - 0.02
