"""Dynamic reprovisioning bench (the paper's §VI future work, built).

Runs ten epochs of churn over a Twitter-like workload and measures the
stability/optimality trade-off of the incremental reprovisioner:

* drift: incremental cost over a from-scratch solve per epoch
  (bounded by the rebuild threshold by construction; on epochs where
  the estimate gate skipped the fresh solve, drift is measured against
  the calibrated Algorithm-5 estimate and marked ``*``);
* churn amplification: pairs moved per epoch relative to the pairs the
  churn itself touched (an online allocator should not reshuffle the
  world to absorb a 4% workload change);
* gating: how many epochs actually paid for a reference solve (the
  default cadence runs it as a safety net, not per epoch).
"""

from __future__ import annotations

from repro.core import MCSSProblem, validate_placement
from repro.dynamic import ChurnConfig, ChurnModel, IncrementalReprovisioner

from .conftest import run_once


def test_dynamic_reprovisioning_epochs(benchmark, twitter_trace, twitter_plans):
    # Rate drift can push the largest topic past the calibrated
    # feasibility floor over ten epochs; give the plan 2x headroom.
    plan = twitter_plans["c3.large"].scaled(2.0)
    problem = MCSSProblem(twitter_trace.workload, 100, plan)

    def measure():
        reprov = IncrementalReprovisioner(problem, rebuild_threshold=1.15)
        model = ChurnModel(
            problem.workload,
            ChurnConfig(
                unsubscribe_fraction=0.02,
                subscribe_fraction=0.02,
                rate_drift_sigma=0.03,
            ),
            seed=5,
        )
        epochs = []
        for _ in range(10):
            delta = model.step()
            churn_pairs = len(delta.subscribed) + len(delta.unsubscribed)
            epoch = reprov.step(delta)
            audit = validate_placement(reprov.problem, reprov.placement())
            assert audit.ok, str(audit)
            epochs.append((epoch, churn_pairs))
        return epochs

    epochs = run_once(benchmark, measure)
    print()
    print(
        f"  {'epoch':>5} {'drift':>8} {'moved':>7} {'churned':>8} "
        f"{'fresh':>6} {'rebuilt':>8}"
    )
    drifts = []
    fresh_solves = 0
    for epoch, churn_pairs in epochs:
        moved = epoch.pairs_added + epoch.pairs_removed + epoch.pairs_moved
        drifts.append(epoch.drift)
        fresh_solves += epoch.fresh_solved
        drift_mark = f"{epoch.drift:.3f}" + ("" if epoch.fresh_solved else "*")
        print(
            f"  {epoch.epoch:>5} {drift_mark:>8} {moved:>7} "
            f"{churn_pairs:>8} {'yes' if epoch.fresh_solved else '':>6} "
            f"{'yes' if epoch.rebuilt else '':>8}"
        )
        assert epoch.drift <= 1.15 + 1e-6, "rebuild threshold must cap drift"
    # The incremental solution stays close to fresh solves on average,
    # and the reference solve is gated, not a per-epoch fixture.
    assert sum(drifts) / len(drifts) < 1.15
    assert fresh_solves < len(epochs), "estimate gate never skipped a solve"
