"""Shared setup for the per-figure benchmarks.

Every benchmark regenerates one figure of the paper at a chosen scale.
The scale is **opt-in**: set ``MCSS_BENCH_USERS`` (the paper ran
millions on a 132 GB server; CI's bench-smoke uses 2000) or the whole
directory skips cleanly -- an accidental bare ``pytest benchmarks/``
reports skips instead of burning minutes at a default nobody chose.
``MCSS_BENCH_SEED`` picks the workload seed (default 42).

Run:  MCSS_BENCH_USERS=8000 pytest benchmarks/ --benchmark-only -s
(the -s shows the rendered tables next to the timings)
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale, make_plan, make_trace
from repro.resilience.knobs import env_int

BENCH_USERS = env_int("MCSS_BENCH_USERS", 0, minimum=0)
BENCH_SEED = env_int("MCSS_BENCH_SEED", 42)

SCALE = ExperimentScale(
    num_users=BENCH_USERS or 8000, seed=BENCH_SEED, target_vms=120
)

_NEEDS_SCALE = pytest.mark.skip(
    reason="benchmarks are opt-in: set MCSS_BENCH_USERS to pick a scale"
)


def pytest_collection_modifyitems(items):
    if BENCH_USERS:
        return
    for item in items:
        item.add_marker(_NEEDS_SCALE)


@pytest.fixture(scope="session")
def spotify_trace():
    return make_trace("spotify", SCALE)


@pytest.fixture(scope="session")
def twitter_trace():
    return make_trace("twitter", SCALE)


@pytest.fixture(scope="session")
def spotify_plans(spotify_trace):
    return {
        name: make_plan(name, spotify_trace.workload, SCALE)
        for name in ("c3.large", "c3.xlarge")
    }


@pytest.fixture(scope="session")
def twitter_plans(twitter_trace):
    return {
        name: make_plan(name, twitter_trace.workload, SCALE)
        for name in ("c3.large", "c3.xlarge")
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure experiments take seconds to minutes; re-running them for
    statistical rounds would multiply the wall-clock for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
