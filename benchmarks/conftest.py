"""Shared setup for the per-figure benchmarks.

Every benchmark regenerates one figure of the paper at a laptop-scale
configuration.  Set ``MCSS_BENCH_USERS`` to scale the traces up or
down (default 8000 users; the paper ran millions on a 132 GB server).

Run:  pytest benchmarks/ --benchmark-only -s
(the -s shows the rendered tables next to the timings)
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale, make_plan, make_trace

BENCH_USERS = int(os.environ.get("MCSS_BENCH_USERS", "8000"))
BENCH_SEED = int(os.environ.get("MCSS_BENCH_SEED", "42"))

SCALE = ExperimentScale(num_users=BENCH_USERS, seed=BENCH_SEED, target_vms=120)


@pytest.fixture(scope="session")
def spotify_trace():
    return make_trace("spotify", SCALE)


@pytest.fixture(scope="session")
def twitter_trace():
    return make_trace("twitter", SCALE)


@pytest.fixture(scope="session")
def spotify_plans(spotify_trace):
    return {
        name: make_plan(name, spotify_trace.workload, SCALE)
        for name in ("c3.large", "c3.xlarge")
    }


@pytest.fixture(scope="session")
def twitter_plans(twitter_trace):
    return {
        name: make_plan(name, twitter_trace.workload, SCALE)
        for name in ("c3.large", "c3.xlarge")
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure experiments take seconds to minutes; re-running them for
    statistical rounds would multiply the wall-clock for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
