"""Section II-D/III-C: the hardness reduction and heuristic optimality.

Not a paper figure but the paper's two formal claims, exercised:

* Theorem II.2 -- Partition instances and their reduced DCSS instances
  must decide identically (swept over a batch of multisets);
* Section III-C -- the two-stage heuristic is near-optimal: measured
  against the exact MILP on a batch of small instances.
"""

from __future__ import annotations

import numpy as np

from repro.core import MCSSProblem, Workload
from repro.exact import solve_exact, verify_reduction
from repro.pricing import (
    LinearBandwidthCost,
    LinearVMCost,
    PricingPlan,
    get_instance,
)
from repro.solver import MCSSSolver

from .conftest import run_once

MULTISETS = [
    [1, 1],
    [2, 3],
    [1, 5, 6],
    [3, 1, 1, 2, 2, 1],
    [4, 5, 6, 7, 8],
    [2, 2, 2, 2],
    [9, 3, 3, 3],
    [5, 4, 3, 2, 1, 1],
    [6, 6, 6, 6, 6, 6],
    [7, 1, 1, 1, 1, 1, 2],
]


def test_reduction_sweep(benchmark):
    outcomes = run_once(
        benchmark, lambda: [verify_reduction(values) for values in MULTISETS]
    )
    for outcome in outcomes:
        assert outcome.agree, f"disagreement on {outcome.values}"
    yes = sum(1 for o in outcomes if o.partition_answer)
    print(f"\n{len(outcomes)} multisets decided, {yes} partitionable; all agree")


def test_heuristic_gap_vs_exact(benchmark):
    rng = np.random.default_rng(2024)

    def measure():
        gaps = []
        for _ in range(10):
            num_topics = int(rng.integers(2, 5))
            num_subs = int(rng.integers(2, 5))
            rates = rng.integers(1, 10, size=num_topics).astype(float)
            interests = [
                sorted(
                    rng.choice(
                        num_topics,
                        size=int(rng.integers(1, num_topics + 1)),
                        replace=False,
                    ).tolist()
                )
                for _ in range(num_subs)
            ]
            workload = Workload(rates, interests, message_size_bytes=1.0)
            plan = PricingPlan(
                instance=get_instance("c3.large"),
                period_hours=1.0,
                bandwidth_cost=LinearBandwidthCost(usd_per_gb=1e8),
                vm_cost=LinearVMCost(5.0),
                capacity_bytes_override=5.0 * float(rates.max()),
            )
            problem = MCSSProblem(workload, tau=7, plan=plan)
            exact = solve_exact(problem, max_vms=4)
            heuristic = MCSSSolver.paper().solve(problem)
            gaps.append(heuristic.cost.total_usd / exact.cost.total_usd - 1)
        return gaps

    gaps = run_once(benchmark, measure)
    mean_gap = sum(gaps) / len(gaps)
    print(f"\nheuristic-vs-exact gaps: mean {mean_gap:.1%}, max {max(gaps):.1%}")
    assert all(g >= -1e-9 for g in gaps), "heuristic cannot beat the optimum"
    assert mean_gap < 0.25, "Section III-C: sub-optimality should be small"
