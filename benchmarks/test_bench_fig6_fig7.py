"""Figures 6-7: Stage-2 runtime, CBP vs FFBP (Stage 1 fixed to GSP).

Paper expectations: CustomBinPacking beats FFBinPacking by ~10x on the
Spotify trace and up to ~1000x on Twitter -- grouping drops the unit of
work from a pair to a topic, while first-fit scans the fleet per pair.
The gap must grow with trace size.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TAUS, run_stage2_runtime

from .conftest import run_once


def test_fig6_stage2_runtime_spotify(benchmark, spotify_trace, spotify_plans):
    result = run_once(
        benchmark,
        lambda: run_stage2_runtime(
            spotify_trace.workload,
            spotify_plans["c3.large"],
            PAPER_TAUS,
            trace_name="spotify",
        ),
    )
    print()
    print(result.render())
    for tau in PAPER_TAUS:
        assert result.speedup(tau) > 1.0, f"tau={tau}: CBP must beat FFBP"


def test_fig7_stage2_runtime_twitter(benchmark, twitter_trace, twitter_plans):
    result = run_once(
        benchmark,
        lambda: run_stage2_runtime(
            twitter_trace.workload,
            twitter_plans["c3.large"],
            PAPER_TAUS,
            trace_name="twitter",
        ),
    )
    print()
    print(result.render())
    # The big-trace gap: an order of magnitude or more at tau=1000
    # (the paper reports ~1000x at 683M pairs; scale-dependent).
    assert result.speedup(1000) > 5.0
