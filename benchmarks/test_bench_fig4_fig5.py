"""Figures 4-5: Stage-1 runtime, GSP vs RSP, per tau.

Paper expectations: RSP is faster than GSP (it inspects fewer pairs),
both are near-constant in tau, and the Twitter trace costs much more
than Spotify purely by size.  Absolute seconds differ (C++/Xeon there,
Python here); the ordering is what must hold.

One caveat since the vectorization PR: the paper's "RSP beats GSP"
claim is about algorithmic work, so it is asserted on the loop-form
``LoopGreedySelectPairs`` row (same implementation style as RSP).
The default vectorized GSP routinely beats the per-subscriber RSP
loop despite inspecting every pair -- that reversal is the point of
the vectorization, not a reproduction failure.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TAUS, run_stage1_runtime

from .conftest import run_once


def test_fig4_stage1_runtime_spotify(benchmark, spotify_trace, spotify_plans):
    result = run_once(
        benchmark,
        lambda: run_stage1_runtime(
            spotify_trace.workload,
            spotify_plans["c3.large"],
            PAPER_TAUS,
            trace_name="spotify",
        ),
    )
    print()
    print(result.render())
    for tau in PAPER_TAUS:
        assert result.seconds["GreedySelectPairs"][tau] > 0
        assert result.seconds["RandomSelectPairs"][tau] > 0


def test_fig5_stage1_runtime_twitter(benchmark, twitter_trace, twitter_plans):
    result = run_once(
        benchmark,
        lambda: run_stage1_runtime(
            twitter_trace.workload,
            twitter_plans["c3.large"],
            PAPER_TAUS,
            trace_name="twitter",
        ),
    )
    print()
    print(result.render())
    # GSP looks at every pair; RSP stops early.  At tau=10 the gap is
    # clearest (RSP grabs the first pair or two per subscriber).
    # Asserted on the loop form: see the module docstring.
    assert (
        result.seconds["LoopGreedySelectPairs"][10]
        >= result.seconds["RandomSelectPairs"][10] * 0.8
    )


def test_fig4_fig5_twitter_larger_than_spotify(
    benchmark, spotify_trace, twitter_trace, spotify_plans, twitter_plans
):
    """The cross-figure claim: the bigger trace costs more to select."""

    def run_both():
        sp = run_stage1_runtime(
            spotify_trace.workload, spotify_plans["c3.large"], (100,)
        )
        tw = run_stage1_runtime(
            twitter_trace.workload, twitter_plans["c3.large"], (100,)
        )
        return sp, tw

    sp, tw = run_once(benchmark, run_both)
    if twitter_trace.workload.num_pairs > 2 * spotify_trace.workload.num_pairs:
        assert (
            tw.seconds["GreedySelectPairs"][100]
            > sp.seconds["GreedySelectPairs"][100]
        )
