"""Section IV-F summary: the headline numbers of the paper.

* GSP+CBP saves up to ~74% (Twitter) / ~38% (Spotify) over RSP+FFBP;
* Twitter's best saving exceeds Spotify's (rate skew gives the greedy
  more to exploit);
* the full solution lands within ~15% of the lower bound in the best
  cases (we assert a loose 60% ceiling on the *minimum* gap -- the
  bound ignores all incoming bandwidth, and our synthetic traces have
  smaller audiences than the originals, which inflates the ingest
  share; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments import PAPER_TAUS, run_summary

from .conftest import run_once


def test_summary_headline_numbers(
    benchmark, spotify_trace, twitter_trace, spotify_plans, twitter_plans
):
    workloads = {
        "spotify": spotify_trace.workload,
        "twitter": twitter_trace.workload,
    }
    plans = {
        "spotify": spotify_plans["c3.large"],
        "twitter": twitter_plans["c3.large"],
    }
    result = run_once(
        benchmark, lambda: run_summary(workloads, plans, PAPER_TAUS)
    )
    print()
    print(result.render())

    spotify_best = result.max_savings("spotify")
    twitter_best = result.max_savings("twitter")
    # Who wins, by roughly what factor.
    assert twitter_best > spotify_best, "Twitter savings must exceed Spotify's"
    assert twitter_best > 0.45, f"Twitter best saving {twitter_best:.0%} too low"
    assert 0.2 < spotify_best < 0.6, f"Spotify best saving {spotify_best:.0%}"
    # Gap to the (loose) lower bound stays bounded in the best case.
    assert result.min_gap("twitter") < 0.6
    assert result.min_gap("spotify") < 0.6
