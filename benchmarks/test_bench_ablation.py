"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures -- these quantify the choices the paper makes
implicitly:

* Stage-1 ablation: benefit-cost greedy vs per-subscriber-exact
  knapsack DP vs naive random (quality and runtime);
* Stage-2 ablation: CBP vs the generic bin-packing family (best-fit,
  first-fit-decreasing) -- the Section-V claim that application-
  oblivious packers cannot recover the ingest savings;
* pricing ablation: flat $0.12/GB vs the real tiered EC2 schedule --
  the paper's flattening must not change who wins.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.core import MCSSProblem
from repro.packing import get_packer
from repro.pricing import TieredBandwidthCost
from repro.selection import get_selector
from repro.solver import MCSSSolver

from .conftest import run_once

TAU = 100


def test_stage1_ablation(benchmark, twitter_trace, twitter_plans):
    problem = MCSSProblem(
        twitter_trace.workload, TAU, twitter_plans["c3.large"]
    )

    def measure():
        out = {}
        for name in ("gsp", "knapsack", "rsp"):
            selector = get_selector(name)
            t0 = time.perf_counter()
            selection = selector.select(problem)
            seconds = time.perf_counter() - t0
            out[name] = (
                selection.single_vm_bytes(problem.workload),
                seconds,
                selection.num_pairs,
            )
        return out

    out = run_once(benchmark, measure)
    print()
    for name, (bytes_, seconds, pairs) in out.items():
        print(f"  {name:10s} {bytes_ / 1e9:8.3f} GB  {seconds:7.2f}s  {pairs} pairs")

    # Quality ordering: exact <= greedy <= random.
    assert out["knapsack"][0] <= out["gsp"][0] * (1 + 1e-9)
    assert out["gsp"][0] <= out["rsp"][0] * (1 + 1e-9)
    # The greedy is near the per-subscriber optimum (the paper's
    # justification for skipping the DP).
    assert out["gsp"][0] <= out["knapsack"][0] * 1.10


def test_stage2_ablation(benchmark, twitter_trace, twitter_plans):
    problem = MCSSProblem(
        twitter_trace.workload, TAU, twitter_plans["c3.large"]
    )
    selection = get_selector("gsp").select(problem)

    def measure():
        out = {}
        for name in ("cbp", "ffbp", "bfbp", "ffdbp"):
            t0 = time.perf_counter()
            placement = get_packer(name).pack(problem, selection)
            seconds = time.perf_counter() - t0
            out[name] = (
                problem.cost_of(placement).total_usd,
                placement.total_incoming_bytes,
                placement.num_vms,
                seconds,
            )
        return out

    out = run_once(benchmark, measure)
    print()
    for name, (usd, ingest, vms, seconds) in out.items():
        print(
            f"  {name:6s} ${usd:.4f}  ingest {ingest / 1e9:6.3f} GB  "
            f"{vms:4d} VMs  {seconds:6.2f}s"
        )

    # Topic grouping wins the ingest battle against every generic packer.
    for generic in ("ffbp", "bfbp", "ffdbp"):
        assert out["cbp"][1] <= out[generic][1] * (1 + 1e-9)


def test_pricing_ablation(benchmark, twitter_trace, twitter_plans):
    flat_plan = twitter_plans["c3.large"]
    tiered_plan = replace(flat_plan, bandwidth_cost=TieredBandwidthCost())

    def measure():
        out = {}
        for label, plan in (("flat", flat_plan), ("tiered", tiered_plan)):
            problem = MCSSProblem(twitter_trace.workload, TAU, plan)
            ours = MCSSSolver.paper().solve(problem).cost.total_usd
            naive = MCSSSolver.naive().solve(problem).cost.total_usd
            out[label] = 1 - ours / naive
        return out

    out = run_once(benchmark, measure)
    print(f"\n  savings: flat {out['flat']:.1%}, tiered {out['tiered']:.1%}")
    # The paper's flattening does not flip the outcome.
    assert out["flat"] > 0 and out["tiered"] > 0
    assert abs(out["flat"] - out["tiered"]) < 0.25
