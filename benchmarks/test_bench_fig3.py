"""Figure 3: the Twitter cost-optimization ladder (3a: c3.large,
3b: c3.xlarge).

Paper expectations: savings are much larger than on Spotify (up to
~71-74% at tau=10) because the heavy-tailed tweet rates give greedy
selection more slack to exploit, and they decay towards ~20-30% at
tau=1000.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TAUS, run_cost_ladder

from .conftest import run_once


@pytest.mark.parametrize("instance", ["c3.large", "c3.xlarge"])
def test_fig3_twitter_ladder(benchmark, twitter_trace, twitter_plans, instance):
    plan = twitter_plans[instance]

    result = run_once(
        benchmark,
        lambda: run_cost_ladder(
            twitter_trace.workload, plan, PAPER_TAUS, trace_name="twitter"
        ),
    )
    print()
    print(result.render())

    for tau in PAPER_TAUS:
        assert result.savings(tau) > 0.15, f"tau={tau}: expected large savings"
        lb = result.cell("lower-bound", tau).cost_usd
        assert lb <= result.cell("(e) +cost-decision", tau).cost_usd
    # The headline: big savings at tau=10, decaying by tau=1000.
    assert result.savings(10) > 0.45
    assert result.savings(10) >= result.savings(1000)
