"""Serving-layer bench: micro-epoch latency under steady churn.

Drives :class:`repro.serving.MicroEpochService` for sixteen micro-epochs
of low-rate churn (1% subscribe / 1% unsubscribe, no rate drift -- the
regime the incremental group index amortizes) and reports the exact SLO
view: p50/p95/p99 micro-epoch seconds and ops/s.  The heavyweight
1M-subscriber gate lives in ``scripts/profile_solver.py --serve``; this
bench is the laptop-scale profile of the same loop.
"""

from __future__ import annotations

import pytest

from repro.dynamic import ChurnConfig
from repro.experiments import run_serving_experiment

from .conftest import SCALE, run_once

STEADY_CHURN = ChurnConfig(
    unsubscribe_fraction=0.01, subscribe_fraction=0.01, rate_drift_sigma=0.0
)


@pytest.mark.serve_bench
def test_serving_micro_epochs(benchmark, twitter_trace, twitter_plans):
    plan = twitter_plans["c3.large"].scaled(2.0)

    def measure():
        return run_serving_experiment(
            twitter_trace.workload,
            plan,
            100.0,
            16,
            churn_config=STEADY_CHURN,
            seed=SCALE.seed,
        )

    result = run_once(benchmark, measure)
    print()
    print(result.render())
    metrics = result.metrics
    assert metrics["serve.micro_epochs"] == 16
    assert metrics["serve.epoch_latency.p99_s"] > 0.0
