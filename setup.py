"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists
only so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
