"""``python -m repro`` -> the mcss CLI."""

import sys

from .cli import main

sys.exit(main())
