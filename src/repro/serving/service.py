"""The micro-epoch serving loop around the incremental reprovisioner.

:class:`MicroEpochService` turns the batch
:class:`~repro.dynamic.reprovision.IncrementalReprovisioner` into a
long-running service:

* churn arrives continuously as :class:`~repro.serving.queue.ChurnFragment`
  slices through :meth:`offer` / :meth:`ingest_delta` and buffers in a
  :class:`~repro.serving.queue.ChurnIngestQueue`;
* :meth:`run_micro_epoch` seals the buffered fragments into one exact
  :class:`~repro.dynamic.churn.WorkloadDelta` and steps the
  reprovisioner once -- thanks to the lossless reassembly and the
  merge-maintained group index, the resulting placements are
  bit-identical to the batch pipeline (and, with
  ``fresh_solve_every=1``, to the ``reprovision-loop`` referee)
  however the stream was fragmented;
* every micro-epoch feeds the :class:`~repro.serving.slo.ServingMetrics`
  SLO view (exact p50/p95/p99 epoch latency, ops/s, moves/s, queue
  depth, cost drift);
* on cadence the service checkpoints through
  :mod:`repro.resilience.checkpoint` and :meth:`resume` continues a
  killed run bit-exactly -- the same guarantee the epoch experiments
  pin, extended with the serving counters;
* :meth:`replay_traffic` measures the *live placement* under realistic
  traffic via the broker runtime (M/G/1 latency over the planned
  rates) and the discrete-event simulator.

The service constructs no RNGs: churn randomness lives in the caller's
:class:`~repro.dynamic.churn.ChurnModel` and simulation randomness
behind the engine's config seam, keeping the serving layer replayable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..broker.cluster import BrokerCluster, ClusterLatencyReport
from ..core import MCSSProblem
from ..dynamic.reprovision import EpochReport, IncrementalReprovisioner
from ..resilience.checkpoint import (
    load_checkpoint,
    load_serving_state,
    save_checkpoint,
)
from ..simulation import DeploymentReport, SimulationConfig, simulate_placement
from .queue import ChurnFragment, ChurnIngestQueue, split_delta
from .slo import ServingMetrics

__all__ = [
    "MicroEpochReport",
    "MicroEpochService",
    "ServingConfig",
    "TrafficReport",
]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for a serving run (solve parameters + cadences)."""

    rebuild_threshold: float = 1.15
    fresh_solve_every: int = 8
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    slo_p99_seconds: float = 0.0
    traffic_every: int = 0
    traffic_horizon: float = 0.05
    traffic_seed: int = 0

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every and not self.checkpoint_path:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        if self.traffic_every < 0:
            raise ValueError("traffic_every must be >= 0")
        if not 0 < self.traffic_horizon <= 1:
            raise ValueError("traffic_horizon must be in (0, 1]")


@dataclass(frozen=True)
class TrafficReport:
    """Live-placement traffic replay: queueing model + event replay."""

    latency: ClusterLatencyReport
    deployment: DeploymentReport


@dataclass(frozen=True)
class MicroEpochReport:
    """One micro-epoch's outcome, as seen by the serving layer."""

    micro_epoch: int
    report: EpochReport
    ops: int
    queue_depth: int
    seconds: float
    traffic: Optional[TrafficReport] = None


class MicroEpochService:
    """Serve a placement under continuous churn, one micro-epoch at a time."""

    def __init__(
        self,
        problem: MCSSProblem,
        config: ServingConfig = ServingConfig(),
        solver=None,
        clock=None,
    ) -> None:
        reprovisioner = IncrementalReprovisioner(
            problem,
            rebuild_threshold=config.rebuild_threshold,
            solver=solver,
            fresh_solve_every=config.fresh_solve_every,
        )
        self._init_from(reprovisioner, config, clock)

    @classmethod
    def from_reprovisioner(
        cls,
        reprovisioner: IncrementalReprovisioner,
        config: ServingConfig = ServingConfig(),
        clock=None,
    ) -> "MicroEpochService":
        """Wrap an existing reprovisioner (e.g. a restored one)."""
        inst = cls.__new__(cls)
        inst._init_from(reprovisioner, config, clock)
        return inst

    def _init_from(self, reprovisioner, config, clock) -> None:
        self._reprovisioner = reprovisioner
        self._config = config
        self._clock = clock if clock is not None else time.perf_counter
        self._queue = ChurnIngestQueue()
        self._metrics = ServingMetrics(clock=self._clock)
        self._micro_epochs = 0
        self._churn_model = None

    # ---- read surface ------------------------------------------------
    @property
    def config(self) -> ServingConfig:
        """The serving configuration."""
        return self._config

    @property
    def reprovisioner(self) -> IncrementalReprovisioner:
        """The wrapped placement maintainer."""
        return self._reprovisioner

    @property
    def metrics(self) -> ServingMetrics:
        """The SLO metrics view."""
        return self._metrics

    @property
    def queue_depth(self) -> int:
        """Churn operations buffered and not yet sealed."""
        return self._queue.depth

    @property
    def micro_epochs(self) -> int:
        """Micro-epochs served (including before a resume)."""
        return self._micro_epochs

    def placement(self):
        """The live placement."""
        return self._reprovisioner.placement()

    def metrics_snapshot(self) -> dict:
        """Flat metrics view (see :meth:`ServingMetrics.snapshot`)."""
        return self._metrics.snapshot()

    # ---- ingestion ---------------------------------------------------
    def offer(self, fragment: ChurnFragment) -> None:
        """Buffer one churn fragment for the next micro-epoch."""
        self._queue.offer(fragment)

    def ingest_delta(self, delta, cuts: Sequence[int] = ()) -> None:
        """Buffer a whole epoch delta, optionally pre-split at ``cuts``.

        Splitting then re-sealing is lossless (see
        :func:`~repro.serving.queue.split_delta`), so any ``cuts`` --
        including none -- yield the same micro-epoch.
        """
        for fragment in split_delta(delta, cuts):
            self.offer(fragment)

    # ---- the serving loop --------------------------------------------
    def run_micro_epoch(self, workload, changed_topics) -> MicroEpochReport:
        """Seal the buffered churn into one delta and step the placement.

        ``workload`` is the epoch's resulting workload and
        ``changed_topics`` its re-priced topics (both from the churn
        source; rate drift applies at the seal, not per fragment).
        """
        depth_before = self._queue.depth
        delta = self._queue.seal_epoch(workload, changed_topics)
        t0 = self._clock()
        report = self._reprovisioner.step(delta)
        seconds = self._clock() - t0
        self._micro_epochs += 1
        ops = int(
            delta.subscribed_topics.size
            + delta.unsubscribed_topics.size
            + delta.changed_topics.size
        )
        self._metrics.record_epoch(
            report,
            ops=ops,
            queue_depth=depth_before,
            seconds=seconds,
            num_vms=self._reprovisioner.num_vms,
        )
        traffic = None
        cfg = self._config
        if cfg.traffic_every and self._micro_epochs % cfg.traffic_every == 0:
            traffic = self.replay_traffic()
        if cfg.checkpoint_every and self._micro_epochs % cfg.checkpoint_every == 0:
            self.checkpoint(cfg.checkpoint_path)
        return MicroEpochReport(
            micro_epoch=self._micro_epochs,
            report=report,
            ops=ops,
            queue_depth=depth_before,
            seconds=seconds,
            traffic=traffic,
        )

    def serve(self, churn_model, micro_epochs: int) -> List[MicroEpochReport]:
        """Drive ``micro_epochs`` epochs from a churn model.

        Each churn epoch is ingested as one fragment and sealed
        immediately -- the simplest cadence.  Callers needing
        finer-grained arrival patterns drive :meth:`offer` /
        :meth:`run_micro_epoch` directly; the sealed delta (and hence
        the placement trajectory) is identical either way.
        """
        self._churn_model = churn_model
        reports = []
        for _ in range(int(micro_epochs)):
            delta = churn_model.step()
            self.ingest_delta(delta)
            reports.append(
                self.run_micro_epoch(delta.workload, delta.changed_topics)
            )
        return reports

    # ---- traffic replay ----------------------------------------------
    def replay_traffic(self, horizon_fraction: Optional[float] = None) -> TrafficReport:
        """Measure the live placement under realistic traffic.

        Builds the broker runtime for the current placement, prices its
        per-node M/G/1 latency at the planned rates, and replays a
        discrete-event horizon through the simulator (metering +
        satisfaction audit).
        """
        cfg = self._config
        problem = self._reprovisioner.problem
        placement = self._reprovisioner.placement()
        cluster = BrokerCluster(problem, placement)
        latency = cluster.latency_report(period_seconds=1.0)
        deployment = simulate_placement(
            problem,
            placement,
            SimulationConfig(
                horizon_fraction=(
                    cfg.traffic_horizon
                    if horizon_fraction is None
                    else horizon_fraction
                ),
                seed=cfg.traffic_seed,
            ),
        )
        return TrafficReport(latency=latency, deployment=deployment)

    # ---- checkpoint / resume -----------------------------------------
    def serving_state(self) -> dict:
        """The serving counters that ride along in a checkpoint."""
        reg = self._metrics.registry
        return {
            "micro_epochs": self._micro_epochs,
            "ops": int(reg.counter("serve.ops").value),
            "moves": int(reg.counter("serve.moves").value),
            "pairs_added": int(reg.counter("serve.pairs_added").value),
            "pairs_removed": int(reg.counter("serve.pairs_removed").value),
            "rebuilds": int(reg.counter("serve.rebuilds").value),
        }

    def checkpoint(self, path=None) -> str:
        """Persist the full serving state atomically; returns the path."""
        path = path or self._config.checkpoint_path
        if not path:
            raise ValueError("no checkpoint path configured")
        return save_checkpoint(
            path,
            self._reprovisioner,
            churn_model=self._churn_model,
            serving_state=self.serving_state(),
        )

    @classmethod
    def resume(
        cls,
        path,
        plan,
        config: ServingConfig = ServingConfig(),
        solver=None,
        clock=None,
    ):
        """Restore ``(service, churn_model_or_None)`` from a checkpoint.

        The reprovisioner resumes bit-exactly (same guarantee as the
        epoch experiments); the serving counters continue from their
        checkpointed values.  Latency samples are wall-clock and start
        fresh -- quantiles describe the current process, not the dead
        one.
        """
        reprovisioner, churn_model = load_checkpoint(path, plan, solver=solver)
        inst = cls.from_reprovisioner(reprovisioner, config, clock=clock)
        state = load_serving_state(path)
        if state is not None:
            inst._micro_epochs = int(state["micro_epochs"])
            reg = inst._metrics.registry
            reg.counter("serve.ops").inc(int(state["ops"]))
            reg.counter("serve.moves").inc(int(state["moves"]))
            reg.counter("serve.pairs_added").inc(int(state["pairs_added"]))
            reg.counter("serve.pairs_removed").inc(int(state["pairs_removed"]))
            reg.counter("serve.rebuilds").inc(int(state["rebuilds"]))
        if churn_model is not None:
            inst._churn_model = churn_model
        return inst, churn_model
