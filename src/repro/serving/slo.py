"""Serving-layer SLO metrics: exact latency quantiles + throughput.

The broker package's :class:`~repro.broker.metrics.Histogram` answers
order-of-magnitude questions; an SLO gate needs exact percentiles over
a bounded sample set (one sample per micro-epoch).  This module wires
a :class:`~repro.broker.metrics.LatencyRecorder` and a
:class:`~repro.broker.metrics.MetricsRegistry` into one serving-shaped
view:

* **latency** -- p50/p95/p99/mean/max micro-epoch seconds, exact
  nearest-rank over all recorded epochs;
* **throughput** -- monotonic counters for micro-epochs, churn
  operations, pair moves, adds, removals and rebuilds, plus derived
  ``ops_per_s`` / ``moves_per_s`` over the summed epoch time;
* **state** -- gauges for queue depth at seal time, fleet cost,
  cost drift vs the fresh-solve reference and fleet size.

The clock is injected end-to-end so tier-1 tests assert exact numbers
with a scripted fake clock -- no timing-flaky assertions.
"""

from __future__ import annotations

from typing import Dict

from ..broker.metrics import LatencyRecorder, MetricsRegistry
from ..dynamic.reprovision import EpochReport

__all__ = ["ServingMetrics"]


class ServingMetrics:
    """Aggregated SLO view of a :class:`MicroEpochService` run."""

    def __init__(self, clock=None) -> None:
        self.registry = MetricsRegistry()
        self.epoch_latency = LatencyRecorder(clock=clock)
        # Touch every series up front so snapshots are stable-shaped
        # from micro-epoch zero.
        for name in (
            "serve.micro_epochs",
            "serve.ops",
            "serve.moves",
            "serve.pairs_added",
            "serve.pairs_removed",
            "serve.rebuilds",
        ):
            self.registry.counter(name)
        for name in (
            "serve.queue_depth",
            "serve.cost_usd",
            "serve.drift",
            "serve.num_vms",
        ):
            self.registry.gauge(name)

    def record_epoch(
        self,
        report: EpochReport,
        *,
        ops: int,
        queue_depth: int,
        seconds: float,
        num_vms: int,
    ) -> None:
        """Fold one micro-epoch's outcome into the running series."""
        self.epoch_latency.observe(seconds)
        reg = self.registry
        reg.counter("serve.micro_epochs").inc()
        reg.counter("serve.ops").inc(int(ops))
        reg.counter("serve.moves").inc(report.pairs_moved)
        reg.counter("serve.pairs_added").inc(report.pairs_added)
        reg.counter("serve.pairs_removed").inc(report.pairs_removed)
        if report.rebuilt:
            reg.counter("serve.rebuilds").inc()
        reg.gauge("serve.queue_depth").set(float(queue_depth))
        reg.gauge("serve.cost_usd").set(report.cost.total_usd)
        reg.gauge("serve.drift").set(report.drift)
        reg.gauge("serve.num_vms").set(float(num_vms))

    # ---- derived SLO series ------------------------------------------
    @property
    def p50_seconds(self) -> float:
        """Exact median micro-epoch latency."""
        return self.epoch_latency.quantile(0.50)

    @property
    def p95_seconds(self) -> float:
        """Exact p95 micro-epoch latency."""
        return self.epoch_latency.quantile(0.95)

    @property
    def p99_seconds(self) -> float:
        """Exact p99 micro-epoch latency."""
        return self.epoch_latency.quantile(0.99)

    @property
    def ops_per_second(self) -> float:
        """Churn operations absorbed per second of epoch time."""
        busy = self.epoch_latency.total
        return self.registry.counter("serve.ops").value / busy if busy else 0.0

    @property
    def moves_per_second(self) -> float:
        """Pair moves executed per second of epoch time."""
        busy = self.epoch_latency.total
        return self.registry.counter("serve.moves").value / busy if busy else 0.0

    def check_slo(self, p99_bound_seconds: float) -> bool:
        """True when the exact p99 micro-epoch latency meets the bound."""
        if p99_bound_seconds <= 0:
            raise ValueError("p99 bound must be positive")
        return self.p99_seconds <= p99_bound_seconds

    def snapshot(self) -> Dict[str, float]:
        """Flat name -> value view: counters, gauges, exact quantiles."""
        out = self.registry.snapshot()
        out["serve.epoch_latency.p50_s"] = self.p50_seconds
        out["serve.epoch_latency.p95_s"] = self.p95_seconds
        out["serve.epoch_latency.p99_s"] = self.p99_seconds
        out["serve.epoch_latency.mean_s"] = self.epoch_latency.mean
        out["serve.epoch_latency.max_s"] = self.epoch_latency.max
        out["serve.epoch_latency.count"] = float(self.epoch_latency.count)
        out["serve.ops_per_s"] = self.ops_per_second
        out["serve.moves_per_s"] = self.moves_per_second
        return out
