"""Micro-epoch serving layer: the reprovisioner as a running service.

The batch experiments step whole epochs; production churn arrives as a
stream.  This package closes that gap without giving up the repo's
bit-exactness discipline:

* :mod:`~repro.serving.queue` -- churn fragments in, lossless
  per-micro-epoch :class:`~repro.dynamic.churn.WorkloadDelta` seals
  out: however the stream is chopped, the sealed delta is identical.
* :mod:`~repro.serving.service` -- :class:`MicroEpochService`, the
  serving loop: seal, step, meter, checkpoint on cadence, replay
  traffic against the live placement.
* :mod:`~repro.serving.slo` -- :class:`ServingMetrics`, exact
  p50/p95/p99 micro-epoch latency plus throughput counters and SLO
  gates, on an injectable clock.

``tests/test_serving.py`` pins the whole path against the
``reprovision-loop`` referee across randomized fragment splits.
"""

from .queue import ChurnFragment, ChurnIngestQueue, split_delta
from .service import (
    MicroEpochReport,
    MicroEpochService,
    ServingConfig,
    TrafficReport,
)
from .slo import ServingMetrics

__all__ = [
    "ChurnFragment",
    "ChurnIngestQueue",
    "MicroEpochReport",
    "MicroEpochService",
    "ServingConfig",
    "ServingMetrics",
    "TrafficReport",
    "split_delta",
]
