"""Continuous churn ingestion: fragments in, sealed epoch deltas out.

The serving layer receives churn as it happens -- unsubscribe and
subscribe operations trickling in -- rather than as the tidy
per-epoch :class:`~repro.dynamic.churn.WorkloadDelta` the batch
experiments consume.  :class:`ChurnIngestQueue` buffers those arrivals
as :class:`ChurnFragment` slices and seals them back into one exact
``WorkloadDelta`` per micro-epoch.

The reassembly is lossless by construction: an epoch's operation
stream is its unsubscribed pairs in draw order followed by its
subscribed pairs in draw order, fragments are contiguous slices of
that stream, and field-wise concatenation in arrival order restores
the original arrays bit-for-bit.  That is what lets the equivalence
suite pin the whole serving path against the ``reprovision-loop``
referee across *randomized* fragment splits: however the stream is
chopped, the sealed delta -- and hence the placement surgery -- is
identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..dynamic.churn import WorkloadDelta

__all__ = ["ChurnFragment", "ChurnIngestQueue", "split_delta"]


def _frozen_i64(arr) -> np.ndarray:
    a = np.asarray(arr, dtype=np.int64)
    if a is arr and a.flags.writeable:
        a = a.copy()
    a.setflags(write=False)
    return a


@dataclass(frozen=True)
class ChurnFragment:
    """A contiguous slice of one epoch's churn-operation stream."""

    unsubscribed_topics: np.ndarray
    unsubscribed_subscribers: np.ndarray
    subscribed_topics: np.ndarray
    subscribed_subscribers: np.ndarray

    def __post_init__(self) -> None:
        for name in (
            "unsubscribed_topics",
            "unsubscribed_subscribers",
            "subscribed_topics",
            "subscribed_subscribers",
        ):
            object.__setattr__(self, name, _frozen_i64(getattr(self, name)))
        if self.unsubscribed_topics.size != self.unsubscribed_subscribers.size:
            raise ValueError("unsubscribed pair arrays must be parallel")
        if self.subscribed_topics.size != self.subscribed_subscribers.size:
            raise ValueError("subscribed pair arrays must be parallel")

    @property
    def num_ops(self) -> int:
        """Operations carried (unsubscribes + subscribes)."""
        return int(self.unsubscribed_topics.size + self.subscribed_topics.size)


def split_delta(
    delta: WorkloadDelta, cuts: Sequence[int] = ()
) -> List[ChurnFragment]:
    """Slice a delta's operation stream at ``cuts`` into fragments.

    The stream is the ``U`` unsubscribes (draw order) followed by the
    ``S`` subscribes (draw order); ``cuts`` are positions in
    ``[0, U + S]``, in any order, duplicates allowed (they yield empty
    fragments, which are legal).  Concatenating the returned fragments
    in order reproduces the delta's arrays exactly -- the round-trip
    :meth:`ChurnIngestQueue.seal_epoch` relies on.
    """
    num_unsub = int(delta.unsubscribed_topics.size)
    num_ops = num_unsub + int(delta.subscribed_topics.size)
    bounds = [0] + sorted(int(c) for c in cuts) + [num_ops]
    if bounds[1] < 0 or bounds[-2] > num_ops:
        raise ValueError(f"cuts must lie in [0, {num_ops}]")
    fragments: List[ChurnFragment] = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        u_lo, u_hi = min(lo, num_unsub), min(hi, num_unsub)
        s_lo, s_hi = max(lo, num_unsub) - num_unsub, max(hi, num_unsub) - num_unsub
        fragments.append(
            ChurnFragment(
                delta.unsubscribed_topics[u_lo:u_hi],
                delta.unsubscribed_subscribers[u_lo:u_hi],
                delta.subscribed_topics[s_lo:s_hi],
                delta.subscribed_subscribers[s_lo:s_hi],
            )
        )
    return fragments


class ChurnIngestQueue:
    """FIFO of churn fragments awaiting the next micro-epoch seal."""

    def __init__(self) -> None:
        self._fragments: List[ChurnFragment] = []
        self._depth = 0

    @property
    def depth(self) -> int:
        """Pending operations across all buffered fragments."""
        return self._depth

    @property
    def fragments_pending(self) -> int:
        """Number of buffered fragments."""
        return len(self._fragments)

    def offer(self, fragment: ChurnFragment) -> None:
        """Enqueue one fragment."""
        if not isinstance(fragment, ChurnFragment):
            raise TypeError("offer() takes a ChurnFragment")
        self._fragments.append(fragment)
        self._depth += fragment.num_ops

    def seal_epoch(self, workload, changed_topics) -> WorkloadDelta:
        """Drain the queue into one exact :class:`WorkloadDelta`.

        ``workload`` is the epoch's resulting workload and
        ``changed_topics`` its re-priced topic ids (rate drift applies
        at the epoch boundary, not per fragment).  Field-wise
        concatenation in arrival order restores the original draw-order
        arrays because fragments are contiguous stream slices.
        """
        fragments = self._fragments
        empty = np.empty(0, dtype=np.int64)
        delta = WorkloadDelta(
            workload,
            np.concatenate([f.subscribed_topics for f in fragments])
            if fragments
            else empty,
            np.concatenate([f.subscribed_subscribers for f in fragments])
            if fragments
            else empty,
            np.concatenate([f.unsubscribed_topics for f in fragments])
            if fragments
            else empty,
            np.concatenate([f.unsubscribed_subscribers for f in fragments])
            if fragments
            else empty,
            changed_topics,
        )
        self._fragments = []
        self._depth = 0
        return delta
