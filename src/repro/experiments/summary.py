"""The Section IV-F headline numbers.

One runner that reproduces the paper's summary claims:

* GSP+CBP saves up to ~74% (Twitter) / ~38% (Spotify) of the total
  cost versus RSP+FFBP;
* the full solution lands within ~15% of the lower bound in many
  cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core import Workload
from ..pricing import PricingPlan
from .ladder import LadderResult, run_cost_ladder
from .tables import format_table

__all__ = ["SummaryResult", "run_summary"]


@dataclass
class SummaryResult:
    """Savings and lower-bound gaps per (trace, tau)."""

    ladders: Dict[str, LadderResult]
    taus: Sequence[float]

    def max_savings(self, trace_name: str) -> float:
        """Best saving of the full solution over the naive baseline."""
        ladder = self.ladders[trace_name]
        return max(ladder.savings(tau) for tau in self.taus)

    def min_gap(self, trace_name: str) -> float:
        """Smallest gap of the full solution above the lower bound."""
        ladder = self.ladders[trace_name]
        return min(ladder.gap_to_lower_bound(tau) for tau in self.taus)

    def render(self) -> str:
        """The headline table."""
        header = ["trace"] + [f"save@tau={tau:g}" for tau in self.taus] + [
            f"LB gap@tau={tau:g}" for tau in self.taus
        ]
        rows = []
        for name, ladder in self.ladders.items():
            rows.append(
                [name]
                + [f"{ladder.savings(tau) * 100:.1f}%" for tau in self.taus]
                + [f"{ladder.gap_to_lower_bound(tau) * 100:.1f}%" for tau in self.taus]
            )
        return format_table(
            "Section IV-F summary: GSP+CBP vs RSP+FFBP and vs lower bound",
            header,
            rows,
        )


def run_summary(
    workloads: Dict[str, Workload],
    plans: Dict[str, PricingPlan],
    taus: Sequence[float],
) -> SummaryResult:
    """Run the full ladder per trace and collect the headline numbers."""
    ladders = {
        name: run_cost_ladder(workload, plans[name], taus, trace_name=name)
        for name, workload in workloads.items()
    }
    return SummaryResult(ladders=ladders, taus=list(taus))
