"""The cost-optimization ladder experiment (Figures 2 and 3).

For one trace and one VM type, runs every variant of the paper's bar
charts over ``tau in {10, 100, 1000}``:

* ``rsp+ffbp`` -- the naive baseline (RandomSelectPairs + first-fit);
* ``(a) gsp+ffbp`` -- greedy selection, naive packing;
* ``(b) +grouping`` -- CustomBinPacking with topic grouping only;
* ``(c) +expensive-first`` -- plus expensive-topic-first ordering;
* ``(d) +free-vm-first`` -- plus most-free-VM-first spilling;
* ``(e) +cost-decision`` -- plus the Algorithm-7 cost decision (full CBP);
* ``lower-bound`` -- Algorithm 5.

Each cell records the three metrics of the figures: total cost ($),
number of VMs, and total bandwidth (GB).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bounds import lower_bound
from ..core import MCSSProblem, Workload
from ..packing import CBPOptions
from ..resilience.supervise import supervised_map
from ..pricing import PricingPlan
from ..selection import GreedySelectPairs
from ..solver import MCSSSolver
from .tables import format_table

__all__ = ["LadderCell", "LadderResult", "LADDER_VARIANTS", "run_cost_ladder"]

LADDER_VARIANTS: Tuple[str, ...] = (
    "rsp+ffbp",
    "(a) gsp+ffbp",
    "(b) +grouping",
    "(c) +expensive-first",
    "(d) +free-vm-first",
    "(e) +cost-decision",
    "lower-bound",
)


@dataclass(frozen=True)
class LadderCell:
    """One (variant, tau) measurement."""

    cost_usd: float
    num_vms: int
    bandwidth_gb: float


@dataclass
class LadderResult:
    """All cells of one Figure-2/3 style panel."""

    trace_name: str
    instance_name: str
    taus: Sequence[float]
    cells: Dict[str, Dict[float, LadderCell]] = field(default_factory=dict)

    def cell(self, variant: str, tau: float) -> LadderCell:
        """Look up one measurement."""
        return self.cells[variant][tau]

    def savings(self, tau: float, variant: str = "(e) +cost-decision") -> float:
        """Relative cost saving of a variant vs the naive baseline."""
        naive = self.cell("rsp+ffbp", tau).cost_usd
        ours = self.cell(variant, tau).cost_usd
        if naive == 0:
            return 0.0
        return 1.0 - ours / naive

    def gap_to_lower_bound(self, tau: float) -> float:
        """Full solution's cost over the lower bound, minus one."""
        lb = self.cell("lower-bound", tau).cost_usd
        ours = self.cell("(e) +cost-decision", tau).cost_usd
        if lb == 0:
            return 0.0
        return ours / lb - 1.0

    def render(self) -> str:
        """The three metric tables, like one panel of Figs. 2-3."""
        blocks: List[str] = []
        metrics = (
            ("Total Cost ($)", lambda c: c.cost_usd),
            ("Number of VMs", lambda c: float(c.num_vms)),
            ("Total Bandwidth (GB)", lambda c: c.bandwidth_gb),
        )
        for metric_title, getter in metrics:
            header = ["variant"] + [f"tau={tau:g}" for tau in self.taus]
            rows = []
            for variant in self.cells:
                rows.append(
                    [variant] + [getter(self.cells[variant][tau]) for tau in self.taus]
                )
            blocks.append(
                format_table(
                    f"{self.trace_name} / {self.instance_name}: {metric_title}",
                    header,
                    rows,
                )
            )
        return "\n\n".join(blocks)


def _solvers() -> Dict[str, MCSSSolver]:
    return {
        "rsp+ffbp": MCSSSolver.naive(),
        "(a) gsp+ffbp": MCSSSolver.ladder("a"),
        "(b) +grouping": MCSSSolver.ladder("b"),
        "(c) +expensive-first": MCSSSolver.ladder("c"),
        "(d) +free-vm-first": MCSSSolver.ladder("d"),
        "(e) +cost-decision": MCSSSolver.ladder("e"),
    }


#: Variants whose Stage 2 is CBP and therefore warm-startable; maps
#: the variant name to its :meth:`CBPOptions.ladder` rung.
_CBP_RUNGS: Dict[str, str] = {
    "(b) +grouping": "b",
    "(c) +expensive-first": "c",
    "(d) +free-vm-first": "d",
    "(e) +cost-decision": "e",
}


def _ladder_tau_cells(
    args: "Tuple[Workload, PricingPlan, float, frozenset, bool]",
) -> Dict[str, LadderCell]:
    """All wanted variants' cells for one tau (one fan-out work item).

    Every tau is fully independent -- its own problem, its own shared
    GSP selection, its own warm-start chain (handles never crossed taus
    even in the sequential ladder) -- which is what makes the tau axis
    the natural process fan-out for Stage 2: CBP itself is sequential,
    but the ladder's taus never were.  Module-level so
    :func:`repro.resilience.supervise.supervised_map` can dispatch it
    to forked workers.
    """
    workload, plan, tau, wanted, warm_start = args
    solvers = {
        name: solver for name, solver in _solvers().items() if name in wanted
    }
    gsp = GreedySelectPairs()
    gsp_variants = [
        name
        for name in LADDER_VARIANTS
        if name in wanted and name not in ("rsp+ffbp", "lower-bound")
    ]
    # Per ordering class (expensive_topic_first flag), how many wanted
    # CBP rungs exist: a rung records a trace only when a later rung of
    # its class will consume it.
    wanted_cbp = [
        name for name in LADDER_VARIANTS if name in wanted and name in _CBP_RUNGS
    ]
    class_of = {
        name: CBPOptions.ladder(_CBP_RUNGS[name]).expensive_topic_first
        for name in wanted_cbp
    }

    problem = MCSSProblem(workload, tau, plan)
    shared_selection = None
    selection_seconds = 0.0
    if gsp_variants:
        t0 = time.perf_counter()
        shared_selection = gsp.select(problem)
        selection_seconds = time.perf_counter() - t0
    handles: Dict[bool, object] = {}
    cells: Dict[str, LadderCell] = {}
    for name in LADDER_VARIANTS:
        if name not in wanted:
            continue
        if name == "lower-bound":
            cost = lower_bound(problem)
        elif name == "rsp+ffbp":
            cost = solvers[name].solve(problem).cost
        elif warm_start and name in _CBP_RUNGS:
            key = class_of[name]
            handle = handles.get(key)
            emit = handle is None and any(
                class_of[later] == key
                for later in wanted_cbp[wanted_cbp.index(name) + 1:]
            )
            solution = solvers[name].solve_with_selection(
                problem,
                shared_selection,
                selection_seconds,
                warm_start=handle,
                emit_warm_start=emit,
            )
            if emit and solution.warm_start is not None:
                handles[key] = solution.warm_start
            cost = solution.cost
        else:
            cost = solvers[name].solve_with_selection(
                problem, shared_selection, selection_seconds
            ).cost
        cells[name] = LadderCell(
            cost_usd=cost.total_usd,
            num_vms=cost.num_vms,
            bandwidth_gb=cost.total_gb,
        )
    return cells


def run_cost_ladder(
    workload: Workload,
    plan: PricingPlan,
    taus: Sequence[float],
    trace_name: str = "trace",
    variants: Optional[Sequence[str]] = None,
    warm_start: bool = True,
    workers: Optional[int] = None,
) -> LadderResult:
    """Run the ladder; ``variants`` may restrict to a subset (tests).

    Stage-1 selection depends only on ``(workload, tau)``, never on the
    packer, so the GSP selection is computed **once per tau** and shared
    across variants (a)-(e) via
    :meth:`~repro.solver.MCSSSolver.solve_with_selection` -- the ladder
    re-packs six ways but never re-selects.  Only the naive baseline
    keeps its own (random) Stage 1.

    With ``warm_start=True`` (the default) Stage 2 is warm-started
    too: per tau, the first CBP rung whose topic order later rungs
    share is packed once with a recorded trace, and every later CBP
    rung is seeded from it through
    :meth:`~repro.packing.CustomBinPacking.pack_from` -- re-running
    only the decisions its options change (and falling back to a cold
    pack at the first genuine divergence), so every cell is bit-exact
    with the cold ladder.  Rung (b) orders topics by selection order,
    unlike (c)-(e)'s shared expensive-first order, so (b) neither
    consumes nor profitably provides a seed; the chain is therefore
    (c) traced -> (d), (e) seeded.  ``warm_start=False`` packs every
    rung cold (the toggle keeps that path exercised).

    ``workers > 1`` (default: the ``MCSS_SHARD_WORKERS`` knob) fans the
    *taus* out across forked worker processes -- each tau's cells are
    computed by :func:`_ladder_tau_cells` exactly as the sequential
    ladder computes them, so the result is identical whichever way the
    work is scheduled.
    """
    wanted = frozenset(variants) if variants is not None else frozenset(LADDER_VARIANTS)
    unknown = wanted - set(LADDER_VARIANTS)
    if unknown:
        raise ValueError(f"unknown variants: {sorted(unknown)}")

    result = LadderResult(
        trace_name=trace_name,
        instance_name=plan.instance.name,
        taus=list(taus),
    )
    # Insertion order drives the rendered tables: variant-major, in
    # ladder order, exactly as before the per-tau restructuring.
    for name in LADDER_VARIANTS:
        if name in wanted:
            result.cells[name] = {}

    per_tau = supervised_map(
        _ladder_tau_cells,
        [(workload, plan, tau, wanted, warm_start) for tau in taus],
        workers,
    )
    for tau, cells in zip(taus, per_tau):
        for name, cell in cells.items():
            result.cells[name][tau] = cell
    return result
