"""Plain-text table rendering for experiment results.

The paper presents results as grouped bar charts; in a terminal-first
library the same data renders as aligned tables, one row per variant
and one column group per tau.  Rendering is purely cosmetic -- all
numbers live in the result dataclasses.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned plain-text table with a title rule."""
    cells: List[List[str]] = [[str(h) for h in header]]
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                # Small magnitudes (scaled-plan dollars, sub-second
                # runtimes) need more precision than big ones.
                rendered.append(f"{value:,.4f}" if abs(value) < 10 else f"{value:,.2f}")
            else:
                rendered.append(str(value))
        cells.append(rendered)

    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(header))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    for r, rendered in enumerate(cells):
        line = "  ".join(
            rendered[c].rjust(widths[c]) if r > 0 or True else rendered[c]
            for c in range(len(rendered))
        )
        lines.append(line)
        if r == 0:
            lines.append("-" * len(lines[-1]))
    return "\n".join(lines)
