"""Checkpointed micro-epoch serving runs.

:func:`run_serving_experiment` is the serving-layer sibling of
:func:`~repro.experiments.epochs.run_epoch_experiment`: it drives a
:class:`~repro.serving.MicroEpochService` under a
:class:`~repro.dynamic.ChurnModel` for a fixed number of micro-epochs,
checkpointing on cadence and resuming bit-exactly, and returns the
per-micro-epoch reports plus the SLO metrics snapshot (exact
p50/p95/p99 micro-epoch latency, ops/s, moves/s, queue depth, cost
drift).

Exposed on the CLI as ``mcss serve``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import MCSSProblem, Workload
from ..dynamic import ChurnConfig, ChurnModel
from ..pricing import PricingPlan
from ..serving import MicroEpochReport, MicroEpochService, ServingConfig
from ..solver import MCSSSolver

__all__ = ["ServeRunResult", "run_serving_experiment"]


@dataclass
class ServeRunResult:
    """Outcome of one (possibly resumed) serving run."""

    reports: List[MicroEpochReport] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    resumed_from_micro_epoch: int = 0  # 0 = fresh start
    checkpoints_written: int = 0
    service: Optional[MicroEpochService] = None
    slo_met: Optional[bool] = None  # None = no SLO configured

    def render(self) -> str:
        lines = []
        if self.resumed_from_micro_epoch:
            lines.append(
                f"resumed from micro-epoch {self.resumed_from_micro_epoch}"
            )
        for r in self.reports:
            lines.append(
                f"micro-epoch {r.micro_epoch:4d}  "
                f"cost ${r.report.cost.total_usd:10.2f}  "
                f"vms {r.report.cost.num_vms:4d}  ops {r.ops:5d}  "
                f"{r.seconds * 1e3:8.2f} ms"
                + ("  [rebuilt]" if r.report.rebuilt else "")
            )
        m = self.metrics
        lines.append(
            f"{len(self.reports)} micro-epochs served, "
            f"{self.checkpoints_written} checkpoints written"
        )
        lines.append(
            "epoch latency p50/p95/p99: "
            f"{m.get('serve.epoch_latency.p50_s', 0.0) * 1e3:.2f} / "
            f"{m.get('serve.epoch_latency.p95_s', 0.0) * 1e3:.2f} / "
            f"{m.get('serve.epoch_latency.p99_s', 0.0) * 1e3:.2f} ms  "
            f"throughput {m.get('serve.ops_per_s', 0.0):.0f} ops/s, "
            f"{m.get('serve.moves_per_s', 0.0):.0f} moves/s"
        )
        if self.slo_met is not None:
            lines.append("SLO: " + ("met" if self.slo_met else "MISSED"))
        return "\n".join(lines)


def run_serving_experiment(
    workload: Workload,
    plan: PricingPlan,
    tau: float,
    micro_epochs: int,
    *,
    churn_config: Optional[ChurnConfig] = None,
    seed: int = 0,
    serving_config: Optional[ServingConfig] = None,
    solver: Optional[MCSSSolver] = None,
    resume: bool = False,
) -> ServeRunResult:
    """Serve ``micro_epochs`` micro-epochs of churn, metered end to end.

    With ``resume=True`` and an existing checkpoint at
    ``serving_config.checkpoint_path``, the service restores from it --
    placement trajectory and churn stream position bit-identical to the
    run that was never killed, serving counters carried over -- and
    only the remaining micro-epochs run.  An SLO verdict is recorded
    when ``serving_config.slo_p99_seconds > 0``.
    """
    if micro_epochs < 0:
        raise ValueError("micro_epochs must be >= 0")
    config = serving_config or ServingConfig()

    result = ServeRunResult()
    checkpoint_path = config.checkpoint_path
    if resume and checkpoint_path and os.path.exists(checkpoint_path):
        service, churn_model = MicroEpochService.resume(
            checkpoint_path, plan, config, solver=solver
        )
        if churn_model is None:
            raise ValueError(
                f"checkpoint {checkpoint_path!r} carries no churn state; "
                "cannot resume the serving stream from it"
            )
        result.resumed_from_micro_epoch = service.micro_epochs
    else:
        problem = MCSSProblem(workload, tau, plan)
        service = MicroEpochService(problem, config, solver=solver)
        churn_model = ChurnModel(
            workload, churn_config or ChurnConfig(), seed=seed
        )

    remaining = max(0, micro_epochs - service.micro_epochs)
    result.reports = service.serve(churn_model, remaining)
    result.checkpoints_written = sum(
        1
        for r in result.reports
        if config.checkpoint_every
        and r.micro_epoch % config.checkpoint_every == 0
    )
    result.metrics = service.metrics_snapshot()
    if config.slo_p99_seconds > 0:
        result.slo_met = service.metrics.check_slo(config.slo_p99_seconds)
    result.service = service
    return result
