"""One entry point per paper figure.

``run_figure("fig2a")`` etc. reproduce each experiment of Section IV at
the library's default (laptop-scale) configuration; every benchmark in
``benchmarks/`` and the ``mcss figure`` CLI command route through here,
so the per-figure parameters live in exactly one place.

The experiment index (figure -> workload, parameters, modules) lives
here; the paper-to-module map is in docs/ARCHITECTURE.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .config import PAPER_TAUS, ExperimentScale, make_plan, make_trace
from .ladder import LadderResult, run_cost_ladder
from .runtime import (
    Stage1RuntimeResult,
    Stage2RuntimeResult,
    run_stage1_runtime,
    run_stage2_runtime,
)
from .summary import SummaryResult, run_summary
from .traces import TraceFigure, run_trace_figure

__all__ = ["FIGURES", "run_figure", "describe_figures"]


@dataclass(frozen=True)
class _FigureSpec:
    """How to run one figure."""

    figure_id: str
    description: str
    runner: Callable[[ExperimentScale], object]


def _ladder(trace_name: str, instance: str) -> Callable[[ExperimentScale], LadderResult]:
    def run(scale: ExperimentScale) -> LadderResult:
        trace = make_trace(trace_name, scale)
        plan = make_plan(instance, trace.workload, scale)
        return run_cost_ladder(
            trace.workload, plan, PAPER_TAUS, trace_name=trace_name
        )

    return run


def _stage1(trace_name: str) -> Callable[[ExperimentScale], Stage1RuntimeResult]:
    def run(scale: ExperimentScale) -> Stage1RuntimeResult:
        trace = make_trace(trace_name, scale)
        plan = make_plan("c3.large", trace.workload, scale)
        return run_stage1_runtime(
            trace.workload, plan, PAPER_TAUS, trace_name=trace_name
        )

    return run


def _stage2(trace_name: str) -> Callable[[ExperimentScale], Stage2RuntimeResult]:
    def run(scale: ExperimentScale) -> Stage2RuntimeResult:
        trace = make_trace(trace_name, scale)
        plan = make_plan("c3.large", trace.workload, scale)
        return run_stage2_runtime(
            trace.workload, plan, PAPER_TAUS, trace_name=trace_name
        )

    return run


def _trace_figure(figure_id: str) -> Callable[[ExperimentScale], TraceFigure]:
    def run(scale: ExperimentScale) -> TraceFigure:
        trace = make_trace("twitter", scale)
        return run_trace_figure(figure_id, trace)

    return run


def _summary(scale: ExperimentScale) -> SummaryResult:
    workloads = {}
    plans = {}
    for name in ("spotify", "twitter"):
        trace = make_trace(name, scale)
        workloads[name] = trace.workload
        plans[name] = make_plan("c3.large", trace.workload, scale)
    return run_summary(workloads, plans, PAPER_TAUS)


FIGURES: Dict[str, _FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        _FigureSpec("fig2a", "Spotify cost ladder, c3.large (64 mbps)", _ladder("spotify", "c3.large")),
        _FigureSpec("fig2b", "Spotify cost ladder, c3.xlarge (128 mbps)", _ladder("spotify", "c3.xlarge")),
        _FigureSpec("fig3a", "Twitter cost ladder, c3.large (64 mbps)", _ladder("twitter", "c3.large")),
        _FigureSpec("fig3b", "Twitter cost ladder, c3.xlarge (128 mbps)", _ladder("twitter", "c3.xlarge")),
        _FigureSpec("fig4", "Stage-1 runtime, Spotify", _stage1("spotify")),
        _FigureSpec("fig5", "Stage-1 runtime, Twitter", _stage1("twitter")),
        _FigureSpec("fig6", "Stage-2 runtime, Spotify, c3.large", _stage2("spotify")),
        _FigureSpec("fig7", "Stage-2 runtime, Twitter, c3.large", _stage2("twitter")),
        _FigureSpec("fig8", "CCDF of #followers/#followings", _trace_figure("fig8")),
        _FigureSpec("fig9", "CCDF of event rate", _trace_figure("fig9")),
        _FigureSpec("fig10", "Mean event rate vs #followers", _trace_figure("fig10")),
        _FigureSpec("fig11", "CCDF of subscription cardinality", _trace_figure("fig11")),
        _FigureSpec("fig12", "Mean SC vs #followings", _trace_figure("fig12")),
        _FigureSpec("summary", "Section IV-F headline numbers", _summary),
    )
}


def run_figure(figure_id: str, scale: Optional[ExperimentScale] = None):
    """Run one figure's experiment and return its result object.

    Every result has a ``render()`` producing the plain-text analogue
    of the paper's plot.
    """
    try:
        spec = FIGURES[figure_id]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {figure_id!r}; known: {known}") from None
    return spec.runner(scale or ExperimentScale())


def describe_figures() -> str:
    """List all reproducible figures with one-line descriptions."""
    lines = ["Reproducible experiments:"]
    for figure_id in sorted(FIGURES):
        lines.append(f"  {figure_id:<8} {FIGURES[figure_id].description}")
    return "\n".join(lines)
