"""Trace-analysis experiments (Figures 8-12, Appendix D).

Each runner returns the data series behind one figure, plus a
``render()`` that prints a log-log summary table (selected decades
rather than every point -- terminals are not gnuplot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..analysis import (
    BinnedMeans,
    CCDF,
    event_rate_ccdf,
    follower_ccdf,
    following_ccdf,
    mean_rate_by_followers,
    mean_sc_by_followings,
    subscription_cardinality_ccdf,
)
from ..workloads import GeneratedTrace
from .tables import format_table

__all__ = ["TraceFigure", "run_trace_figure", "TRACE_FIGURES"]

TRACE_FIGURES = ("fig8", "fig9", "fig10", "fig11", "fig12")


@dataclass
class TraceFigure:
    """One Appendix-D figure: named series of (x, y) arrays."""

    figure_id: str
    title: str
    series: List[tuple]  # (name, x array, y array)

    def plot(self, width: int = 64, height: int = 20) -> str:
        """Render the figure as a terminal log-log scatter plot."""
        from ..analysis import loglog_plot

        return loglog_plot(
            self.series, width=width, height=height,
            title=f"{self.figure_id}: {self.title}",
        )

    def render(self, points: int = 12) -> str:
        """Tabulate each series at log-spaced sample points."""
        blocks = []
        for name, x, y in self.series:
            x = np.asarray(x, dtype=np.float64)
            y = np.asarray(y, dtype=np.float64)
            if x.size > points:
                idx = np.unique(
                    np.geomspace(1, x.size, points).astype(int) - 1
                )
            else:
                idx = np.arange(x.size)
            rows = [[f"{x[i]:g}", f"{y[i]:.3e}"] for i in idx]
            blocks.append(
                format_table(f"{self.figure_id} {self.title}: {name}", ["x", "y"], rows)
            )
        return "\n\n".join(blocks)


def run_trace_figure(figure_id: str, trace: GeneratedTrace) -> TraceFigure:
    """Compute the data series behind one of Figures 8-12."""
    graph = trace.graph
    workload = trace.workload

    if figure_id == "fig8":
        fers = follower_ccdf(graph)
        fing = following_ccdf(graph)
        return TraceFigure(
            figure_id,
            "CCDF of #followers and #followings",
            [
                ("#followers", fers.values, fers.probabilities),
                ("#followings", fing.values, fing.probabilities),
            ],
        )
    if figure_id == "fig9":
        rates = event_rate_ccdf(graph)
        return TraceFigure(
            figure_id,
            "CCDF of event rate (10-day period)",
            [("event rate", rates.values, rates.probabilities)],
        )
    if figure_id == "fig10":
        binned = mean_rate_by_followers(graph)
        return TraceFigure(
            figure_id,
            "mean event rate vs #followers",
            [("mean event rate", binned.bin_centers, binned.means)],
        )
    if figure_id == "fig11":
        sc = subscription_cardinality_ccdf(workload)
        return TraceFigure(
            figure_id,
            "CCDF of subscription cardinality (%)",
            [("SC", sc.values, sc.probabilities)],
        )
    if figure_id == "fig12":
        binned = mean_sc_by_followings(graph, workload)
        return TraceFigure(
            figure_id,
            "mean SC vs #followings",
            [("mean SC", binned.bin_centers, binned.means)],
        )
    raise KeyError(
        f"unknown trace figure {figure_id!r}; known: {', '.join(TRACE_FIGURES)}"
    )
