"""Checkpointed churn/reprovision epoch runs.

:func:`run_epoch_experiment` drives the standard dynamic loop --
:class:`~repro.dynamic.ChurnModel` feeding
:class:`~repro.dynamic.IncrementalReprovisioner` -- for a fixed number
of epochs, with the fault-tolerance a 1000-epoch run needs: every
``checkpoint_every`` epochs the complete run state (pair arrays, epoch
counters, calibration, churn RNG stream position) is persisted
*atomically* via :mod:`repro.resilience.checkpoint`, and a re-run with
``resume=True`` picks up from the checkpoint and produces epoch
reports, placements and costs bit-identical to the run that was never
killed (pinned in tests/test_vectorized_equivalence.py).

Exposed on the CLI as ``mcss churn``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..core import MCSSProblem, Workload
from ..dynamic import (
    ChurnConfig,
    ChurnModel,
    EpochReport,
    IncrementalReprovisioner,
)
from ..pricing import PricingPlan
from ..resilience.checkpoint import load_checkpoint, save_checkpoint
from ..solver import MCSSSolver

__all__ = ["EpochRunResult", "run_epoch_experiment"]


@dataclass
class EpochRunResult:
    """Outcome of one (possibly resumed) epoch run."""

    reports: List[EpochReport] = field(default_factory=list)
    resumed_from_epoch: int = 0  # 0 = fresh start
    checkpoints_written: int = 0
    reprovisioner: Optional[IncrementalReprovisioner] = None
    churn_model: Optional[ChurnModel] = None

    def render(self) -> str:
        lines = []
        if self.resumed_from_epoch:
            lines.append(f"resumed from epoch {self.resumed_from_epoch}")
        for r in self.reports:
            lines.append(
                f"epoch {r.epoch:4d}  cost ${r.cost.total_usd:10.2f}  "
                f"vms {r.cost.num_vms:4d}  +{r.pairs_added} -{r.pairs_removed} "
                f"~{r.pairs_moved} pairs"
                + ("  [rebuilt]" if r.rebuilt else "")
            )
        lines.append(
            f"{len(self.reports)} epochs run, "
            f"{self.checkpoints_written} checkpoints written"
        )
        return "\n".join(lines)


def run_epoch_experiment(
    workload: Workload,
    plan: PricingPlan,
    tau: float,
    epochs: int,
    *,
    churn_config: Optional[ChurnConfig] = None,
    seed: int = 0,
    rebuild_threshold: float = 1.15,
    fresh_solve_every: int = 8,
    solver: Optional[MCSSSolver] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> EpochRunResult:
    """Run ``epochs`` churn->reprovision epochs with optional checkpoints.

    With ``resume=True`` and an existing ``checkpoint_path``, the run
    restores from it (skipping the already-completed epochs and the
    epoch-0 solve) and only the remaining epochs' reports are returned;
    the continuation is bit-identical to the uninterrupted run because
    the checkpoint carries the churn RNG stream position.  With
    ``checkpoint_every=K > 0`` the state is persisted atomically after
    every K-th epoch, so a kill at any point loses at most K-1 epochs.
    """
    if epochs < 0:
        raise ValueError("epochs must be >= 0")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be >= 0")
    if checkpoint_every and not checkpoint_path:
        raise ValueError("checkpoint_every requires checkpoint_path")

    result = EpochRunResult()
    if resume and checkpoint_path and os.path.exists(checkpoint_path):
        reprovisioner, churn_model = load_checkpoint(
            checkpoint_path, plan, solver=solver
        )
        if churn_model is None:
            raise ValueError(
                f"checkpoint {checkpoint_path!r} carries no churn state; "
                "cannot resume the epoch stream from it"
            )
        result.resumed_from_epoch = reprovisioner.epoch
    else:
        problem = MCSSProblem(workload, tau, plan)
        reprovisioner = IncrementalReprovisioner(
            problem,
            rebuild_threshold=rebuild_threshold,
            solver=solver,
            fresh_solve_every=fresh_solve_every,
        )
        churn_model = ChurnModel(
            workload, churn_config or ChurnConfig(), seed=seed
        )

    for epoch in range(reprovisioner.epoch, epochs):
        result.reports.append(reprovisioner.step(churn_model.step()))
        if checkpoint_every and (epoch + 1) % checkpoint_every == 0:
            save_checkpoint(checkpoint_path, reprovisioner, churn_model)
            result.checkpoints_written += 1

    result.reprovisioner = reprovisioner
    result.churn_model = churn_model
    return result
