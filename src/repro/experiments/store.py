"""Persisting experiment results and comparing runs.

Reproduction work is iterative: generators get recalibrated, algorithms
get fixed, and the question after every change is *did the shape
survive?*  This module stores ladder results as JSON and diffs two runs
on the qualitative properties the paper's claims rest on:

* the full solution still beats the naive baseline at every tau;
* savings still shrink (weakly) as tau grows;
* the lower bound still sits below everything;
* no metric moved by more than a configurable relative tolerance.

``scripts/record_experiments.py`` writes the human-readable
paper-vs-measured record (EXPERIMENTS.md, regenerated on demand);
this store is the machine-readable companion used by regression
checks.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Union

from .ladder import LadderCell, LadderResult

__all__ = ["save_ladder", "load_ladder", "RegressionReport", "compare_ladders"]

_FORMAT_VERSION = 1


def save_ladder(result: LadderResult, path: Union[str, os.PathLike]) -> None:
    """Write a ladder result as JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "trace_name": result.trace_name,
        "instance_name": result.instance_name,
        "taus": list(result.taus),
        "cells": {
            variant: {
                str(tau): {
                    "cost_usd": cell.cost_usd,
                    "num_vms": cell.num_vms,
                    "bandwidth_gb": cell.bandwidth_gb,
                }
                for tau, cell in per_tau.items()
            }
            for variant, per_tau in result.cells.items()
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_ladder(path: Union[str, os.PathLike]) -> LadderResult:
    """Read a ladder result written by :func:`save_ladder`."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported result version {payload.get('version')}")
    result = LadderResult(
        trace_name=payload["trace_name"],
        instance_name=payload["instance_name"],
        taus=[float(t) for t in payload["taus"]],
    )
    for variant, per_tau in payload["cells"].items():
        result.cells[variant] = {
            float(tau): LadderCell(
                cost_usd=cell["cost_usd"],
                num_vms=int(cell["num_vms"]),
                bandwidth_gb=cell["bandwidth_gb"],
            )
            for tau, cell in per_tau.items()
        }
    return result


@dataclass
class RegressionReport:
    """Outcome of comparing a new ladder run against a stored baseline."""

    shape_ok: bool
    drift_ok: bool
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the new run preserves shape within tolerance."""
        return self.shape_ok and self.drift_ok


def _check_shape(result: LadderResult, problems: List[str]) -> bool:
    ok = True
    taus = sorted(result.taus)
    try:
        for tau in taus:
            if result.savings(tau) <= 0:
                ok = False
                problems.append(f"no saving over naive at tau={tau:g}")
            lb = result.cell("lower-bound", tau).cost_usd
            ours = result.cell("(e) +cost-decision", tau).cost_usd
            if lb > ours * (1 + 1e-9):
                ok = False
                problems.append(f"lower bound above solution at tau={tau:g}")
        for lo, hi in zip(taus, taus[1:]):
            if result.savings(hi) > result.savings(lo) + 0.10:
                ok = False
                problems.append(
                    f"savings grow from tau={lo:g} to tau={hi:g} "
                    "(paper trend is weakly decreasing)"
                )
    except KeyError as exc:
        ok = False
        problems.append(f"missing variant {exc}")
    return ok


def compare_ladders(
    baseline: LadderResult,
    current: LadderResult,
    rel_tolerance: float = 0.25,
) -> RegressionReport:
    """Diff two ladder runs; see the module docstring for the checks."""
    problems: List[str] = []
    shape_ok = _check_shape(current, problems)

    drift_ok = True
    if set(baseline.cells) != set(current.cells) or list(baseline.taus) != list(
        current.taus
    ):
        drift_ok = False
        problems.append("variant/tau axes differ between runs")
    else:
        for variant, per_tau in baseline.cells.items():
            for tau, old in per_tau.items():
                new = current.cells[variant][tau]
                if old.cost_usd > 0:
                    drift = abs(new.cost_usd - old.cost_usd) / old.cost_usd
                    if drift > rel_tolerance:
                        drift_ok = False
                        problems.append(
                            f"{variant} tau={tau:g}: cost moved {drift:.0%} "
                            f"(> {rel_tolerance:.0%})"
                        )
    return RegressionReport(shape_ok=shape_ok, drift_ok=drift_ok, problems=problems)
