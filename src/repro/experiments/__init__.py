"""Experiment harness: one runner per figure of the paper's evaluation."""

from .config import (
    PAPER_INSTANCES,
    PAPER_TAUS,
    ExperimentScale,
    calibrate_fraction,
    make_plan,
    make_trace,
)
from .epochs import EpochRunResult, run_epoch_experiment
from .figures import FIGURES, describe_figures, run_figure
from .serve import ServeRunResult, run_serving_experiment
from .ladder import LADDER_VARIANTS, LadderCell, LadderResult, run_cost_ladder
from .runtime import (
    Stage1RuntimeResult,
    Stage2RuntimeResult,
    run_stage1_runtime,
    run_stage2_runtime,
)
from .store import RegressionReport, compare_ladders, load_ladder, save_ladder
from .summary import SummaryResult, run_summary
from .tables import format_table
from .traces import TRACE_FIGURES, TraceFigure, run_trace_figure

__all__ = [
    "PAPER_INSTANCES",
    "PAPER_TAUS",
    "ExperimentScale",
    "calibrate_fraction",
    "make_plan",
    "make_trace",
    "EpochRunResult",
    "run_epoch_experiment",
    "ServeRunResult",
    "run_serving_experiment",
    "FIGURES",
    "describe_figures",
    "run_figure",
    "LADDER_VARIANTS",
    "LadderCell",
    "LadderResult",
    "run_cost_ladder",
    "Stage1RuntimeResult",
    "Stage2RuntimeResult",
    "run_stage1_runtime",
    "run_stage2_runtime",
    "RegressionReport",
    "compare_ladders",
    "load_ladder",
    "save_ladder",
    "SummaryResult",
    "run_summary",
    "format_table",
    "TRACE_FIGURES",
    "TraceFigure",
    "run_trace_figure",
]
