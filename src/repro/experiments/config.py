"""Experiment configuration: traces, pricing, and scale calibration.

The paper runs every experiment on two datasets (Spotify, Twitter), two
VM types (c3.large at 64 mbps, c3.xlarge at 128 mbps) and three
satisfaction thresholds (tau in {10, 100, 1000}).  This module pins
those axes and handles the one extra step our reproduction needs:
**capacity calibration**.

The synthetic traces are orders of magnitude smaller than the paper's
(millions of subscribers do not fit a laptop-scale rerun), so a
full-size c3.large would swallow the whole workload in one VM and every
packing algorithm would trivially tie.  :func:`calibrate_fraction`
computes the factor by which trace volume falls short of a target
fleet size and scales the plan with
:meth:`~repro.pricing.PricingPlan.scaled`, which shrinks capacity *and*
VM price together -- preserving the paper's price-per-capacity ratio,
so VM counts, the VM/bandwidth trade-off, and all relative savings are
comparable with Figures 2-3 (a documented substitution; see
docs/ARCHITECTURE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core import MCSSProblem, Workload
from ..pricing import PricingPlan, paper_plan
from ..workloads import (
    GeneratedTrace,
    SpotifyConfig,
    SpotifyWorkloadGenerator,
    TwitterConfig,
    TwitterWorkloadGenerator,
)

__all__ = [
    "PAPER_TAUS",
    "PAPER_INSTANCES",
    "ExperimentScale",
    "calibrate_fraction",
    "make_trace",
    "make_plan",
]

PAPER_TAUS: Tuple[int, ...] = (10, 100, 1000)
"""The satisfaction thresholds of Section IV."""

PAPER_INSTANCES: Tuple[str, ...] = ("c3.large", "c3.xlarge")
"""The two VM types of Section IV-A."""


@dataclass(frozen=True)
class ExperimentScale:
    """How large to draw a trace and how big a fleet to aim for.

    ``target_vms`` is the fleet size the *all-pairs* workload should
    need on the baseline instance (c3.large); actual runs select
    subsets and use fewer, matching how the paper's counts vary with
    tau.  Defaults mirror the paper's fleet magnitudes (Spotify peaks
    near 180 VMs, Twitter near 550) at a size that keeps the slow
    FFBP baseline runnable.
    """

    num_users: int = 8_000
    seed: int = 42
    target_vms: int = 120


def all_pairs_bytes(workload: Workload) -> float:
    """Single-copy volume of the full workload (outgoing + ingest)."""
    total = 0.0
    rates = workload.event_rates
    for t in range(workload.num_topics):
        audience = workload.subscribers_of(t).size
        if audience:
            total += float(rates[t]) * (audience + 1)
    return total * workload.message_size_bytes


def selected_volume_bytes(workload: Workload, tau: float) -> float:
    """Single-copy volume of the GSP selection at threshold ``tau``.

    This is the volume the fleet actually carries at the largest
    threshold of an experiment, and therefore the right yardstick for
    sizing VMs: calibrating on the *all-pairs* volume would leave small
    thresholds with near-empty fleets where integer effects drown the
    trends.
    """
    from ..selection import GreedySelectPairs

    plan = PricingPlan(
        instance=paper_plan("c3.large").instance,
        capacity_bytes_override=4.0
        * float(workload.event_rates.max())
        * workload.message_size_bytes,
    )
    problem = MCSSProblem(workload, tau, plan)
    return GreedySelectPairs().select(problem).single_vm_bytes(workload)


def calibrate_fraction(
    workload: Workload,
    target_vms: int,
    reference_plan: Optional[PricingPlan] = None,
    reference_tau: Optional[float] = None,
) -> float:
    """Scale factor making the reference workload fill ``target_vms``.

    The reference volume is the GSP selection at ``reference_tau``
    (default: the largest paper threshold, 1000); pass ``None`` via
    ``reference_tau=0`` semantics is not supported -- use the all-pairs
    volume by passing ``reference_tau=float("inf")``.

    Computed against the c3.large reference so both instance types of
    an experiment share one factor (the xlarge then fits the same
    workload in about half the VMs, as in Figures 2b/3b).
    """
    if target_vms <= 0:
        raise ValueError("target_vms must be positive")
    plan = reference_plan or paper_plan("c3.large")
    if reference_tau is None:
        reference_tau = float(max(PAPER_TAUS))
    if reference_tau == float("inf"):
        volume = all_pairs_bytes(workload)
    else:
        volume = selected_volume_bytes(workload, reference_tau)
    if volume <= 0:
        raise ValueError("workload carries no traffic")
    fraction = volume / (plan.capacity_bytes * target_vms)
    # Feasibility floor: the scaled BC must still fit the most
    # expensive single pair (2 * ev_t * message size, Section II-C);
    # heavy-tailed traces can have one bot topic that dominates.  The
    # floor wins over the target when they conflict -- fewer, larger
    # VMs beat an unsolvable instance.
    max_pair_bytes = (
        2.0 * float(workload.event_rates.max()) * workload.message_size_bytes
    )
    floor = 1.05 * max_pair_bytes / plan.capacity_bytes
    return max(fraction, floor)


_GENERATORS: Dict[str, Callable[[int], GeneratedTrace]] = {
    "spotify": lambda n, seed: SpotifyWorkloadGenerator(
        SpotifyConfig(num_users=n)
    ).generate(seed=seed),
    "twitter": lambda n, seed: TwitterWorkloadGenerator(
        TwitterConfig(num_users=n)
    ).generate(seed=seed),
}


def make_trace(name: str, scale: ExperimentScale = ExperimentScale()) -> GeneratedTrace:
    """Draw the named trace (``"spotify"`` or ``"twitter"``)."""
    try:
        factory = _GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise KeyError(f"unknown trace {name!r}; known: {known}") from None
    return factory(scale.num_users, scale.seed)


def make_plan(
    instance: str,
    workload: Workload,
    scale: ExperimentScale = ExperimentScale(),
) -> PricingPlan:
    """The paper's plan for ``instance``, calibrated to the trace."""
    fraction = calibrate_fraction(workload, scale.target_vms)
    return paper_plan(instance).scaled(fraction)
