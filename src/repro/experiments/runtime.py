"""Runtime experiments (Figures 4-7).

* Figures 4-5: Stage-1 runtime, GreedySelectPairs vs RandomSelectPairs,
  per tau, on the Spotify-like and Twitter-like traces.
* Figures 6-7: Stage-2 runtime, CustomBinPacking (all optimizations)
  vs FFBinPacking, with Stage-1 fixed to GSP, on c3.large.

The absolute seconds differ from the paper's C++ on a Xeon server; the
*shape* is what must reproduce -- GSP costs more than RSP but stays
near-constant in tau, and CBP beats FFBP by one to three orders of
magnitude with the gap widening with trace size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core import MCSSProblem, Workload
from ..packing import CBPOptions, CustomBinPacking, FFBinPacking
from ..pricing import PricingPlan
from ..selection import GreedySelectPairs, LoopGreedySelectPairs, RandomSelectPairs
from .tables import format_table

__all__ = [
    "Stage1RuntimeResult",
    "Stage2RuntimeResult",
    "run_stage1_runtime",
    "run_stage2_runtime",
]


@dataclass
class Stage1RuntimeResult:
    """Figures 4-5: seconds per (algorithm, tau)."""

    trace_name: str
    taus: Sequence[float]
    seconds: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned table, one row per algorithm."""
        header = ["algorithm"] + [f"tau={tau:g}" for tau in self.taus]
        rows = [
            [name] + [self.seconds[name][tau] for tau in self.taus]
            for name in self.seconds
        ]
        return format_table(
            f"{self.trace_name}: Stage 1 runtime (seconds)", header, rows
        )


@dataclass
class Stage2RuntimeResult:
    """Figures 6-7: seconds per (algorithm, tau), Stage 1 fixed to GSP."""

    trace_name: str
    instance_name: str
    taus: Sequence[float]
    seconds: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def speedup(self, tau: float) -> float:
        """FFBP time over CBP time (the paper reports 10x-1000x)."""
        cbp = self.seconds["cbp"][tau]
        if cbp == 0:
            return float("inf")
        return self.seconds["ffbp"][tau] / cbp

    def render(self) -> str:
        """Aligned table, one row per algorithm plus the speedup row."""
        header = ["algorithm"] + [f"tau={tau:g}" for tau in self.taus]
        rows = [
            [name] + [self.seconds[name][tau] for tau in self.taus]
            for name in self.seconds
        ]
        rows.append(["ffbp/cbp speedup"] + [self.speedup(tau) for tau in self.taus])
        return format_table(
            f"{self.trace_name} / {self.instance_name}: Stage 2 runtime (seconds)",
            header,
            rows,
        )


def run_stage1_runtime(
    workload: Workload,
    plan: PricingPlan,
    taus: Sequence[float],
    trace_name: str = "trace",
) -> Stage1RuntimeResult:
    """Time GSP (vectorized and loop forms) and RSP selection per tau.

    The loop row exists to keep the vectorization speedup visible in
    the regenerated figure; both GSP rows select identical pairs.
    """
    result = Stage1RuntimeResult(trace_name=trace_name, taus=list(taus))
    algorithms = {
        "GreedySelectPairs": GreedySelectPairs(),
        "LoopGreedySelectPairs": LoopGreedySelectPairs(),
        "RandomSelectPairs": RandomSelectPairs(),
    }
    for name, algorithm in algorithms.items():
        result.seconds[name] = {}
        for tau in taus:
            problem = MCSSProblem(workload, tau, plan)
            t0 = time.perf_counter()
            algorithm.select(problem)
            result.seconds[name][tau] = time.perf_counter() - t0
    return result


def run_stage2_runtime(
    workload: Workload,
    plan: PricingPlan,
    taus: Sequence[float],
    trace_name: str = "trace",
) -> Stage2RuntimeResult:
    """Time CBP (all optimizations) and FFBP on GSP's selection."""
    result = Stage2RuntimeResult(
        trace_name=trace_name,
        instance_name=plan.instance.name,
        taus=list(taus),
    )
    selector = GreedySelectPairs()
    packers = {
        "cbp": CustomBinPacking(CBPOptions.ladder("e")),
        "ffbp": FFBinPacking(),
    }
    for name in packers:
        result.seconds[name] = {}
    for tau in taus:
        problem = MCSSProblem(workload, tau, plan)
        selection = selector.select(problem)  # shared, as in the paper
        for name, packer in packers.items():
            t0 = time.perf_counter()
            packer.pack(problem, selection)
            result.seconds[name][tau] = time.perf_counter() - t0
    return result
