"""The MCSS problem instance (Section II-C).

:class:`MCSSProblem` bundles everything the formal definition
``MCSS(T, V, ev, Int, tau, BC, C1, C2)`` names:

* the workload ``(T, V, ev, Int)`` -- a :class:`~repro.core.workload.Workload`;
* the satisfaction threshold ``tau``;
* the per-VM capacity ``BC`` and the cost functions ``C1``/``C2`` --
  via a :class:`~repro.pricing.PricingPlan`.

It is the single argument solvers take, and it knows how to evaluate
the objective and validate candidate solutions, so every algorithm is
scored by exactly the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..pricing import PricingPlan, paper_plan
from .pairs import PairSelection
from .placement import Placement
from .satisfaction import subscriber_thresholds
from .workload import Workload

__all__ = ["MCSSProblem", "SolutionCost"]


@dataclass(frozen=True)
class SolutionCost:
    """The cost breakdown of a candidate solution.

    ``total_usd = vm_usd + bandwidth_usd`` is the MCSS objective; the
    individual components are kept because the paper's figures report
    cost, VM count and bandwidth volume side by side.
    """

    num_vms: int
    total_bytes: float
    vm_usd: float
    bandwidth_usd: float

    @property
    def total_usd(self) -> float:
        """``C1(|B|) + C2(sum bw_b)``."""
        return self.vm_usd + self.bandwidth_usd

    @property
    def total_gb(self) -> float:
        """Bandwidth volume in decimal gigabytes (as plotted in Figs. 2-3)."""
        return self.total_bytes / 1e9

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        def usd(x: float) -> str:
            return f"${x:,.2f}" if abs(x) >= 1 else f"${x:,.6f}"

        return (
            f"{usd(self.total_usd)} ({self.num_vms} VMs = {usd(self.vm_usd)}, "
            f"{self.total_gb:,.3f} GB = {usd(self.bandwidth_usd)})"
        )


@dataclass(frozen=True)
class MCSSProblem:
    """One instance of Minimum Cost Subscriber Satisfaction."""

    workload: Workload
    tau: float
    plan: PricingPlan = field(default_factory=paper_plan)

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise ValueError("tau must be non-negative")
        # A single pair must always be placeable: the largest topic's
        # byte rate (outgoing + one incoming copy) has to fit in a VM.
        if self.workload.num_topics:
            largest = float(self.workload.event_rates.max())
            needed = 2.0 * largest * self.workload.message_size_bytes
            if needed > self.capacity_bytes:
                raise ValueError(
                    "infeasible instance: the most expensive single pair needs "
                    f"{needed:.0f} B but BC is {self.capacity_bytes:.0f} B"
                )

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> float:
        """``BC`` in bytes per billing period."""
        return self.plan.capacity_bytes

    def thresholds(self) -> np.ndarray:
        """Vector of ``tau_v`` over all subscribers."""
        return subscriber_thresholds(self.workload, self.tau)

    def topic_bytes_array(self) -> np.ndarray:
        """Per-topic byte rate of one event-stream copy (``ev_t * msg``).

        One whole-array multiply; the vectorized Stage-2 packers index
        this instead of recomputing ``rate * message_size`` per topic.
        """
        return self.workload.event_rates * self.workload.message_size_bytes

    # ------------------------------------------------------------------
    def empty_placement(self) -> Placement:
        """A fresh placement bound to this problem's workload and BC."""
        return Placement(self.workload, self.capacity_bytes)

    def cost_of(self, placement: Placement) -> SolutionCost:
        """Evaluate the objective for a placement."""
        total_bytes = placement.total_bytes
        return SolutionCost(
            num_vms=placement.num_vms,
            total_bytes=total_bytes,
            vm_usd=self.plan.c1(placement.num_vms),
            bandwidth_usd=self.plan.c2(total_bytes),
        )

    def cost_components(self, num_vms: int, total_bytes: float) -> SolutionCost:
        """Evaluate the objective from raw components (for bounds)."""
        return SolutionCost(
            num_vms=num_vms,
            total_bytes=total_bytes,
            vm_usd=self.plan.c1(num_vms),
            bandwidth_usd=self.plan.c2(total_bytes),
        )

    def selection_is_sufficient(self, selection: PairSelection) -> bool:
        """Whether a Stage-1 selection satisfies every subscriber.

        Runs on the selection's flat pair arrays (vectorized), so no
        per-subscriber dictionary is materialized.
        """
        from .satisfaction import selection_all_satisfied

        return selection_all_satisfied(self.workload, selection, self.tau)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MCSSProblem(workload={self.workload!r}, tau={self.tau:g}, "
            f"plan={self.plan.describe()})"
        )
