"""Selected topic-subscriber pair sets (the output of Stage 1).

Stage 1 of the MCSS heuristic chooses a subset ``S`` of topic-subscriber
pairs sufficient to satisfy every subscriber.  Stage 2 then packs ``S``
onto VMs.  :class:`PairSelection` is the interchange format between the
two stages.

The representation is natively **CSR, grouped by topic** (topic-major):
a ``topics`` array listing the distinct selected topics in insertion
order, an ``indptr`` offset array, and one flat ``subscribers`` array
holding every group's subscribers back to back, so that topic
``topics[i]``'s selected subscribers are
``subscribers[indptr[i]:indptr[i+1]]``.  Stage 2's main optimization --
"grouping of pairs by topics" (optimization (b) in Section IV-D) --
consumes exactly these flat slices, and the vectorized packers in
:mod:`repro.packing` never materialize a Python list per topic.

The classic ``topic -> subscriber array`` mapping API
(:meth:`subscribers_of`, :attr:`topics`, iteration) is served as lazy
zero-copy views into the flat arrays.

Fast paths supporting the vectorized Stage-1/Stage-2/validation code:

* :meth:`PairSelection.from_csr` adopts pre-validated CSR arrays
  without checks or copies (the vectorized GSP emits this directly);
* :meth:`PairSelection.from_trusted_arrays` adopts pre-validated
  per-topic subscriber arrays (one concatenate, no ``np.unique``);
* :meth:`PairSelection.csr_arrays` exposes the native
  ``(topics, indptr, subscribers)`` triple;
* :meth:`PairSelection.pair_arrays` exposes the selection as two flat
  parallel arrays ``(topics, subscribers)``, the form the vectorized
  satisfaction reductions consume;
* :meth:`PairSelection.from_pair_arrays` adopts such flat parallel
  arrays back into a grouped selection (one stable argsort) -- the
  export path of the dynamic reprovisioner's array state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from .workload import Pair, Workload

__all__ = ["PairSelection"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


class PairSelection:
    """An immutable set of selected ``(t, v)`` pairs, grouped by topic."""

    __slots__ = ("_topics", "_indptr", "_subs", "_topic_pos", "_pair_arrays")

    def __init__(self, by_topic: Mapping[int, Sequence[int]]) -> None:
        topics: List[int] = []
        groups: List[np.ndarray] = []
        for t, subs in by_topic.items():
            arr = np.asarray(subs, dtype=np.int64)
            if arr.size == 0:
                continue
            if np.unique(arr).size != arr.size:
                raise ValueError(f"duplicate subscribers for topic {t}")
            topics.append(int(t))
            groups.append(arr)
        self._adopt_groups(topics, groups)

    def _adopt_groups(self, topics: List[int], groups: List[np.ndarray]) -> None:
        """Concatenate validated per-topic groups into the CSR core."""
        t_arr = np.asarray(topics, dtype=np.int64)
        indptr = np.zeros(len(groups) + 1, dtype=np.int64)
        if groups:
            np.cumsum(
                np.fromiter((g.size for g in groups), np.int64, count=len(groups)),
                out=indptr[1:],
            )
            flat = np.concatenate(groups)
        else:
            flat = _EMPTY
        self._adopt_csr(t_arr, indptr, flat)

    def _adopt_csr(
        self, topics: np.ndarray, indptr: np.ndarray, subscribers: np.ndarray
    ) -> None:
        for arr in (topics, indptr, subscribers):
            arr.setflags(write=False)
        self._topics = topics
        self._indptr = indptr
        self._subs = subscribers
        self._topic_pos = {int(t): i for i, t in enumerate(topics.tolist())}
        self._pair_arrays = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls, topics: np.ndarray, indptr: np.ndarray, subscribers: np.ndarray
    ) -> "PairSelection":
        """Adopt pre-validated CSR arrays without checks or copies.

        Contract (the caller vouches for all of it): ``topics`` holds
        distinct non-negative topic ids, ``indptr`` is a strictly
        increasing int64 offset array of length ``len(topics) + 1``
        starting at 0 (no empty groups), and
        ``subscribers[indptr[i]:indptr[i+1]]`` holds topic ``i``'s
        selected subscribers with **no duplicates**.  The arrays are
        adopted as-is (marked read-only, not copied), so the caller
        must not mutate them afterwards.  This is the fast path the
        vectorized GSP selector emits: it derives the groups from a
        global sort and knows they satisfy the contract by
        construction.
        """
        self = cls.__new__(cls)
        self._adopt_csr(
            np.asarray(topics, dtype=np.int64),
            np.asarray(indptr, dtype=np.int64),
            np.asarray(subscribers, dtype=np.int64),
        )
        return self

    @classmethod
    def from_trusted_arrays(
        cls, by_topic: Mapping[int, np.ndarray]
    ) -> "PairSelection":
        """Adopt pre-validated per-topic subscriber arrays without checks.

        Contract (the caller vouches for all of it): every value is a
        non-empty ``int64`` array with **no duplicate subscribers**, and
        every key is a non-negative topic id.  Skips the per-topic
        ``np.unique`` re-validation of ``__init__``; one concatenate
        builds the CSR core.
        """
        self = cls.__new__(cls)
        self._adopt_groups(
            [int(t) for t in by_topic], list(by_topic.values())
        )
        return self

    @classmethod
    def from_pair_arrays(
        cls, topics: np.ndarray, subscribers: np.ndarray
    ) -> "PairSelection":
        """Adopt flat parallel pair arrays (trusted: no duplicate pairs).

        The inverse of :meth:`pair_arrays`: one stable small-key argsort
        groups the pairs by ascending topic id, preserving the input
        order of subscribers inside each group.  The caller vouches
        that no ``(t, v)`` pair appears twice.  This is the export path
        of array-state holders (e.g. the dynamic reprovisioner, whose
        per-epoch state is exactly these flat arrays).
        """
        t = np.asarray(topics, dtype=np.int64)
        v = np.asarray(subscribers, dtype=np.int64)
        if t.size != v.size:
            raise ValueError("topics and subscribers must be parallel arrays")
        if t.size == 0:
            return cls({})
        order = np.argsort(t, kind="stable")
        s_t = t[order]
        starts = np.flatnonzero(np.concatenate(([True], s_t[1:] != s_t[:-1])))
        indptr = np.append(starts, s_t.size).astype(np.int64)
        return cls.from_csr(s_t[starts], indptr, v[order])

    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair]) -> "PairSelection":
        """Build from an iterable of ``(t, v)`` tuples."""
        buckets: Dict[int, List[int]] = {}
        for t, v in pairs:
            buckets.setdefault(int(t), []).append(int(v))
        return cls(buckets)

    @classmethod
    def from_subscriber_topics(
        cls, topics_by_subscriber: Mapping[int, Iterable[int]]
    ) -> "PairSelection":
        """Build from a ``subscriber -> topics`` mapping."""
        buckets: Dict[int, List[int]] = {}
        for v, topics in topics_by_subscriber.items():
            for t in topics:
                buckets.setdefault(int(t), []).append(int(v))
        return cls(buckets)

    @classmethod
    def full(cls, workload: Workload) -> "PairSelection":
        """The selection containing *every* pair of the workload."""
        topics = [
            t for t in range(workload.num_topics)
            if workload.subscribers_of(t).size
        ]
        return cls.from_trusted_arrays(
            {t: workload.subscribers_of(t) for t in topics}
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Total number of selected pairs ``|S|``."""
        return int(self._indptr[-1])

    @property
    def num_topics(self) -> int:
        """Number of distinct topics that appear in the selection."""
        return int(self._topics.size)

    @property
    def topics(self) -> Tuple[int, ...]:
        """The distinct topics of the selection, in insertion order."""
        return tuple(self._topics.tolist())

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The native ``(topics, indptr, subscribers)`` CSR triple.

        ``subscribers[indptr[i]:indptr[i+1]]`` are the selected
        subscribers of ``topics[i]``; groups follow topic insertion
        order.  All arrays are read-only; this is the zero-copy form
        the vectorized Stage-2 packers consume.
        """
        return self._topics, self._indptr, self._subs

    def subscribers_of(self, topic: int) -> np.ndarray:
        """Selected subscribers of a topic (empty array if none).

        A zero-copy read-only slice of the flat CSR subscriber array.
        """
        i = self._topic_pos.get(int(topic))
        if i is None:
            return _EMPTY
        return self._subs[self._indptr[i]:self._indptr[i + 1]]

    def pair_count(self, topic: int) -> int:
        """Number of selected pairs for a topic."""
        i = self._topic_pos.get(int(topic))
        if i is None:
            return 0
        return int(self._indptr[i + 1] - self._indptr[i])

    def group_sizes(self) -> np.ndarray:
        """Pairs per topic group, aligned with :attr:`topics` order."""
        return np.diff(self._indptr)

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The selection as flat parallel ``(topics, subscribers)`` arrays.

        Topic-major (one run per topic, in insertion order), built once
        and cached.  This is the input format of the vectorized
        satisfaction reductions in :mod:`repro.core.satisfaction`.
        """
        cached = self._pair_arrays
        if cached is None:
            topics = np.repeat(self._topics, np.diff(self._indptr))
            topics.setflags(write=False)
            cached = (topics, self._subs)
            self._pair_arrays = cached
        return cached

    def __contains__(self, pair: Pair) -> bool:
        t, v = pair
        return bool(np.isin(v, self.subscribers_of(t)).item())

    def __iter__(self) -> Iterator[Pair]:
        for i, t in enumerate(self._topics.tolist()):
            for v in self._subs[self._indptr[i]:self._indptr[i + 1]].tolist():
                yield (t, v)

    def __len__(self) -> int:
        return self.num_pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairSelection):
            return NotImplemented
        if self._topic_pos.keys() != other._topic_pos.keys():
            return False
        return all(
            np.array_equal(
                np.sort(self.subscribers_of(t)), np.sort(other.subscribers_of(t))
            )
            for t in self._topic_pos
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(
            tuple(
                sorted(
                    (t, tuple(sorted(self.subscribers_of(t).tolist())))
                    for t in self._topic_pos
                )
            )
        )

    def topics_by_subscriber(self) -> Dict[int, List[int]]:
        """Invert the selection into ``subscriber -> topics``."""
        out: Dict[int, List[int]] = {}
        for i, t in enumerate(self._topics.tolist()):
            for v in self._subs[self._indptr[i]:self._indptr[i + 1]].tolist():
                out.setdefault(v, []).append(t)
        return out

    # ------------------------------------------------------------------
    # Bandwidth accounting (single hypothetical VM, Stage-1 objective)
    # ------------------------------------------------------------------
    def outgoing_rate(self, workload: Workload) -> float:
        """Sum of ``ev_t`` over all selected pairs (events per unit)."""
        if self._topics.size == 0:
            return 0.0
        rates = workload.event_rates
        return float((rates[self._topics] * np.diff(self._indptr)).sum())

    def incoming_rate(self, workload: Workload) -> float:
        """Sum of ``ev_t`` over the distinct selected topics."""
        if self._topics.size == 0:
            return 0.0
        return float(workload.event_rates[self._topics].sum())

    def single_vm_rate(self, workload: Workload) -> float:
        """Total event rate if the whole selection sat on one huge VM.

        This is the quantity Stage 1 minimizes: each pair costs its
        outgoing rate, and each distinct topic additionally costs one
        incoming copy (Section III-A prices a pair at ``2 * ev_t``
        because in the single-VM view every pair's topic is ingested
        exactly once; with topic sharing the true single-VM total is
        ``outgoing + incoming``).
        """
        return self.outgoing_rate(workload) + self.incoming_rate(workload)

    def single_vm_bytes(self, workload: Workload) -> float:
        """:meth:`single_vm_rate` converted to bytes per time unit."""
        return self.single_vm_rate(workload) * workload.message_size_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PairSelection(pairs={self.num_pairs}, topics={self.num_topics})"
