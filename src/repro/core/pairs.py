"""Selected topic-subscriber pair sets (the output of Stage 1).

Stage 1 of the MCSS heuristic chooses a subset ``S`` of topic-subscriber
pairs sufficient to satisfy every subscriber.  Stage 2 then packs ``S``
onto VMs.  :class:`PairSelection` is the interchange format between the
two stages.

The representation is natively **CSR, grouped by topic** (topic-major):
a ``topics`` array listing the distinct selected topics in insertion
order, an ``indptr`` offset array, and one flat ``subscribers`` array
holding every group's subscribers back to back, so that topic
``topics[i]``'s selected subscribers are
``subscribers[indptr[i]:indptr[i+1]]``.  Stage 2's main optimization --
"grouping of pairs by topics" (optimization (b) in Section IV-D) --
consumes exactly these flat slices, and the vectorized packers in
:mod:`repro.packing` never materialize a Python list per topic.

The classic ``topic -> subscriber array`` mapping API
(:meth:`subscribers_of`, :attr:`topics`, iteration) is served as lazy
zero-copy views into the flat arrays.

Array construction has one coherent surface:

* :meth:`PairSelection.from_csr` builds from the native
  ``(topics, indptr, subscribers)`` triple -- or, with ``indptr=None``,
  from flat parallel per-pair ``(topics, subscribers)`` arrays (one
  stable argsort groups them by ascending topic id; the export path of
  the dynamic reprovisioner's array state).  ``trusted=True`` adopts
  the arrays without checks or copies -- the fast path the vectorized
  GSP emits; the default re-validates the CSR contract with whole-array
  passes.
* ``PairSelection(by_topic, trusted=True)`` likewise adopts
  pre-validated per-topic subscriber arrays (one concatenate, no
  per-topic ``np.unique``).
* :meth:`PairSelection.csr_arrays` / :meth:`PairSelection.pair_arrays`
  expose the grouped and the flat forms back.

The arrays may live on any storage backend (read-only RAM arrays or
``np.memmap`` views -- see :mod:`repro.core.backend`); the class only
ever slices them, so an mmap-backed selection is consumed lazily by
Stage 2 without materializing the pair data in RAM.

The retired constructor names ``from_trusted_arrays`` and
``from_pair_arrays`` remain as thin shims that emit one
``DeprecationWarning`` per process and forward to the surface above.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .workload import Pair, Workload

__all__ = ["PairSelection"]

#: Deprecation shims that have already warned this process (warn once).
_WARNED_SHIMS: set = set()


def _warn_deprecated(old: str, new: str) -> None:
    if old not in _WARNED_SHIMS:
        _WARNED_SHIMS.add(old)
        warnings.warn(
            f"PairSelection.{old} is deprecated; use {new}",
            DeprecationWarning,
            stacklevel=3,
        )

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


class PairSelection:
    """An immutable set of selected ``(t, v)`` pairs, grouped by topic."""

    __slots__ = ("_topics", "_indptr", "_subs", "_topic_pos", "_pair_arrays")

    def __init__(
        self, by_topic: Mapping[int, Sequence[int]], *, trusted: bool = False
    ) -> None:
        """Build from a ``topic -> subscribers`` mapping.

        ``trusted=True`` skips the per-topic duplicate check: the
        caller vouches that every value is a non-empty int64 array with
        no duplicate subscribers and every key a non-negative topic id
        (one concatenate builds the CSR core, no ``np.unique``).
        """
        topics: List[int] = []
        groups: List[np.ndarray] = []
        for t, subs in by_topic.items():
            arr = np.asarray(subs, dtype=np.int64)
            if not trusted:
                if arr.size == 0:
                    continue
                if np.unique(arr).size != arr.size:
                    raise ValueError(f"duplicate subscribers for topic {t}")
            topics.append(int(t))
            groups.append(arr)
        self._adopt_groups(topics, groups)

    def _adopt_groups(self, topics: List[int], groups: List[np.ndarray]) -> None:
        """Concatenate validated per-topic groups into the CSR core."""
        t_arr = np.asarray(topics, dtype=np.int64)
        indptr = np.zeros(len(groups) + 1, dtype=np.int64)
        if groups:
            np.cumsum(
                np.fromiter((g.size for g in groups), np.int64, count=len(groups)),
                out=indptr[1:],
            )
            flat = np.concatenate(groups)
        else:
            flat = _EMPTY
        self._adopt_csr(t_arr, indptr, flat)

    def _adopt_csr(
        self, topics: np.ndarray, indptr: np.ndarray, subscribers: np.ndarray
    ) -> None:
        for arr in (topics, indptr, subscribers):
            arr.setflags(write=False)
        self._topics = topics
        self._indptr = indptr
        self._subs = subscribers
        self._topic_pos = {int(t): i for i, t in enumerate(topics.tolist())}
        self._pair_arrays = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        topics: np.ndarray,
        indptr: Optional[np.ndarray],
        subscribers: np.ndarray,
        *,
        trusted: bool = False,
    ) -> "PairSelection":
        """Build from arrays -- the one array-construction entry point.

        With ``indptr`` given, the arguments are the native CSR triple:
        ``topics`` holds distinct non-negative topic ids, ``indptr`` is
        a strictly increasing int64 offset array of length
        ``len(topics) + 1`` starting at 0 (no empty groups), and
        ``subscribers[indptr[i]:indptr[i+1]]`` holds topic ``i``'s
        selected subscribers with **no duplicates**.

        With ``indptr=None``, ``topics`` and ``subscribers`` are flat
        parallel per-pair arrays (the inverse of :meth:`pair_arrays`):
        one stable small-key argsort groups them by ascending topic id,
        preserving the input order of subscribers inside each group --
        the export path of array-state holders such as the dynamic
        reprovisioner.

        ``trusted=True`` adopts the arrays as-is (marked read-only, not
        copied; no checks) -- the caller vouches for the contract above,
        as the vectorized GSP can by construction.  The default
        re-validates it with whole-array passes and raises
        ``ValueError`` on violations.
        """
        if indptr is None:
            return cls._from_pair_arrays(topics, subscribers, trusted=trusted)
        t = np.asarray(topics, dtype=np.int64)
        ip = np.asarray(indptr, dtype=np.int64)
        v = np.asarray(subscribers, dtype=np.int64)
        if not trusted:
            cls._validate_csr(t, ip, v)
        self = cls.__new__(cls)
        self._adopt_csr(t, ip, v)
        return self

    @staticmethod
    def _validate_csr(t: np.ndarray, ip: np.ndarray, v: np.ndarray) -> None:
        """Whole-array checks of the :meth:`from_csr` contract."""
        if ip.ndim != 1 or ip.size != t.size + 1 or (t.size and ip[0] != 0):
            raise ValueError("indptr must have length len(topics) + 1, start at 0")
        if ip.size == 1 and ip[0] != 0:
            raise ValueError("indptr of an empty selection must be [0]")
        if (np.diff(ip) <= 0).any():
            raise ValueError("indptr must be strictly increasing (no empty groups)")
        if v.size != int(ip[-1]):
            raise ValueError("subscribers length must equal indptr[-1]")
        if t.size and ((t < 0).any() or np.unique(t).size != t.size):
            raise ValueError("topics must be distinct non-negative ids")
        if v.size:
            group_idx = np.repeat(np.arange(t.size, dtype=np.int64), np.diff(ip))
            order = np.lexsort((v, group_idx))
            sv, sg = v[order], group_idx[order]
            dup = (sv[1:] == sv[:-1]) & (sg[1:] == sg[:-1])
            if dup.any():
                g = int(sg[int(np.flatnonzero(dup)[0])])
                raise ValueError(f"duplicate subscribers for topic {int(t[g])}")

    @classmethod
    def _from_pair_arrays(
        cls, topics: np.ndarray, subscribers: np.ndarray, *, trusted: bool
    ) -> "PairSelection":
        """The ``indptr=None`` arm of :meth:`from_csr`."""
        t = np.asarray(topics, dtype=np.int64)
        v = np.asarray(subscribers, dtype=np.int64)
        if t.size != v.size:
            raise ValueError("topics and subscribers must be parallel arrays")
        if t.size == 0:
            return cls({})
        order = np.argsort(t, kind="stable")
        s_t = t[order]
        starts = np.flatnonzero(np.concatenate(([True], s_t[1:] != s_t[:-1])))
        indptr = np.append(starts, s_t.size).astype(np.int64)
        return cls.from_csr(s_t[starts], indptr, v[order], trusted=trusted)

    @classmethod
    def from_trusted_arrays(
        cls, by_topic: Mapping[int, np.ndarray]
    ) -> "PairSelection":
        """Deprecated: use ``PairSelection(by_topic, trusted=True)``."""
        _warn_deprecated("from_trusted_arrays", "PairSelection(by_topic, trusted=True)")
        return cls(by_topic, trusted=True)

    @classmethod
    def from_pair_arrays(
        cls, topics: np.ndarray, subscribers: np.ndarray
    ) -> "PairSelection":
        """Deprecated: use ``from_csr(topics, None, subscribers, trusted=True)``."""
        _warn_deprecated(
            "from_pair_arrays", "from_csr(topics, None, subscribers, trusted=True)"
        )
        return cls.from_csr(topics, None, subscribers, trusted=True)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair]) -> "PairSelection":
        """Build from an iterable of ``(t, v)`` tuples."""
        buckets: Dict[int, List[int]] = {}
        for t, v in pairs:
            buckets.setdefault(int(t), []).append(int(v))
        return cls(buckets)

    @classmethod
    def from_subscriber_topics(
        cls, topics_by_subscriber: Mapping[int, Iterable[int]]
    ) -> "PairSelection":
        """Build from a ``subscriber -> topics`` mapping."""
        buckets: Dict[int, List[int]] = {}
        for v, topics in topics_by_subscriber.items():
            for t in topics:
                buckets.setdefault(int(t), []).append(int(v))
        return cls(buckets)

    @classmethod
    def full(cls, workload: Workload) -> "PairSelection":
        """The selection containing *every* pair of the workload."""
        topics = [
            t for t in range(workload.num_topics)
            if workload.subscribers_of(t).size
        ]
        return cls({t: workload.subscribers_of(t) for t in topics}, trusted=True)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Total number of selected pairs ``|S|``."""
        return int(self._indptr[-1])

    @property
    def num_topics(self) -> int:
        """Number of distinct topics that appear in the selection."""
        return int(self._topics.size)

    @property
    def topics(self) -> Tuple[int, ...]:
        """The distinct topics of the selection, in insertion order."""
        return tuple(self._topics.tolist())

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The native ``(topics, indptr, subscribers)`` CSR triple.

        ``subscribers[indptr[i]:indptr[i+1]]`` are the selected
        subscribers of ``topics[i]``; groups follow topic insertion
        order.  All arrays are read-only; this is the zero-copy form
        the vectorized Stage-2 packers consume.
        """
        return self._topics, self._indptr, self._subs

    def subscribers_of(self, topic: int) -> np.ndarray:
        """Selected subscribers of a topic (empty array if none).

        A zero-copy read-only slice of the flat CSR subscriber array.
        """
        i = self._topic_pos.get(int(topic))
        if i is None:
            return _EMPTY
        return self._subs[self._indptr[i]:self._indptr[i + 1]]

    def pair_count(self, topic: int) -> int:
        """Number of selected pairs for a topic."""
        i = self._topic_pos.get(int(topic))
        if i is None:
            return 0
        return int(self._indptr[i + 1] - self._indptr[i])

    def group_sizes(self) -> np.ndarray:
        """Pairs per topic group, aligned with :attr:`topics` order."""
        return np.diff(self._indptr)

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The selection as flat parallel ``(topics, subscribers)`` arrays.

        Topic-major (one run per topic, in insertion order), built once
        and cached.  This is the input format of the vectorized
        satisfaction reductions in :mod:`repro.core.satisfaction`.
        """
        cached = self._pair_arrays
        if cached is None:
            topics = np.repeat(self._topics, np.diff(self._indptr))
            topics.setflags(write=False)
            cached = (topics, self._subs)
            self._pair_arrays = cached
        return cached

    def __contains__(self, pair: Pair) -> bool:
        t, v = pair
        return bool(np.isin(v, self.subscribers_of(t)).item())

    def __iter__(self) -> Iterator[Pair]:
        for i, t in enumerate(self._topics.tolist()):
            for v in self._subs[self._indptr[i]:self._indptr[i + 1]].tolist():
                yield (t, v)

    def __len__(self) -> int:
        return self.num_pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairSelection):
            return NotImplemented
        if self._topic_pos.keys() != other._topic_pos.keys():
            return False
        return all(
            np.array_equal(
                np.sort(self.subscribers_of(t)), np.sort(other.subscribers_of(t))
            )
            for t in self._topic_pos
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(
            tuple(
                sorted(
                    (t, tuple(sorted(self.subscribers_of(t).tolist())))
                    for t in self._topic_pos
                )
            )
        )

    def topics_by_subscriber(self) -> Dict[int, List[int]]:
        """Invert the selection into ``subscriber -> topics``."""
        out: Dict[int, List[int]] = {}
        for i, t in enumerate(self._topics.tolist()):
            for v in self._subs[self._indptr[i]:self._indptr[i + 1]].tolist():
                out.setdefault(v, []).append(t)
        return out

    # ------------------------------------------------------------------
    # Bandwidth accounting (single hypothetical VM, Stage-1 objective)
    # ------------------------------------------------------------------
    def outgoing_rate(self, workload: Workload) -> float:
        """Sum of ``ev_t`` over all selected pairs (events per unit)."""
        if self._topics.size == 0:
            return 0.0
        rates = workload.event_rates
        return float((rates[self._topics] * np.diff(self._indptr)).sum())

    def incoming_rate(self, workload: Workload) -> float:
        """Sum of ``ev_t`` over the distinct selected topics."""
        if self._topics.size == 0:
            return 0.0
        return float(workload.event_rates[self._topics].sum())

    def single_vm_rate(self, workload: Workload) -> float:
        """Total event rate if the whole selection sat on one huge VM.

        This is the quantity Stage 1 minimizes: each pair costs its
        outgoing rate, and each distinct topic additionally costs one
        incoming copy (Section III-A prices a pair at ``2 * ev_t``
        because in the single-VM view every pair's topic is ingested
        exactly once; with topic sharing the true single-VM total is
        ``outgoing + incoming``).
        """
        return self.outgoing_rate(workload) + self.incoming_rate(workload)

    def single_vm_bytes(self, workload: Workload) -> float:
        """:meth:`single_vm_rate` converted to bytes per time unit."""
        return self.single_vm_rate(workload) * workload.message_size_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PairSelection(pairs={self.num_pairs}, topics={self.num_topics})"
