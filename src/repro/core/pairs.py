"""Selected topic-subscriber pair sets (the output of Stage 1).

Stage 1 of the MCSS heuristic chooses a subset ``S`` of topic-subscriber
pairs sufficient to satisfy every subscriber.  Stage 2 then packs ``S``
onto VMs.  :class:`PairSelection` is the interchange format between the
two stages.

The representation is *grouped by topic* (``topic -> array of
subscribers``) because Stage 2's main optimization -- "grouping of
pairs by topics" (optimization (b) in Section IV-D) -- needs exactly
this view, and because it is far more compact than materializing one
tuple per pair for multi-million-pair workloads.

Two fast paths support the vectorized Stage-1/validation code:

* :meth:`PairSelection.from_trusted_arrays` skips the per-topic
  ``np.unique`` re-validation for callers (like the vectorized GSP)
  that construct the groups by whole-array NumPy passes and can
  guarantee uniqueness by construction;
* :meth:`PairSelection.pair_arrays` exposes the selection as two flat
  parallel arrays ``(topics, subscribers)``, the form the vectorized
  satisfaction reductions consume without materializing per-subscriber
  Python dictionaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from .workload import Pair, Workload

__all__ = ["PairSelection"]


class PairSelection:
    """An immutable set of selected ``(t, v)`` pairs, grouped by topic."""

    __slots__ = ("_by_topic", "_num_pairs", "_pair_arrays")

    def __init__(self, by_topic: Mapping[int, Sequence[int]]) -> None:
        grouped: Dict[int, np.ndarray] = {}
        total = 0
        for t, subs in by_topic.items():
            arr = np.asarray(subs, dtype=np.int64)
            if arr.size == 0:
                continue
            if np.unique(arr).size != arr.size:
                raise ValueError(f"duplicate subscribers for topic {t}")
            arr.setflags(write=False)
            grouped[int(t)] = arr
            total += int(arr.size)
        self._by_topic = grouped
        self._num_pairs = total
        self._pair_arrays = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trusted_arrays(
        cls, by_topic: Mapping[int, np.ndarray]
    ) -> "PairSelection":
        """Adopt pre-validated per-topic subscriber arrays without checks.

        Contract (the caller vouches for all of it): every value is a
        non-empty ``int64`` array with **no duplicate subscribers**, and
        every key is a non-negative topic id.  The arrays are adopted
        as-is (marked read-only, not copied), so the caller must not
        mutate them afterwards.  This is the fast path used by the
        vectorized GSP selector, which derives the groups from a global
        lexsort and therefore knows they are duplicate-free; going
        through ``__init__`` would redundantly re-sort every group via
        ``np.unique``.
        """
        self = cls.__new__(cls)
        grouped: Dict[int, np.ndarray] = {}
        total = 0
        for t, arr in by_topic.items():
            arr.setflags(write=False)
            grouped[int(t)] = arr
            total += int(arr.size)
        self._by_topic = grouped
        self._num_pairs = total
        self._pair_arrays = None
        return self
    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair]) -> "PairSelection":
        """Build from an iterable of ``(t, v)`` tuples."""
        buckets: Dict[int, List[int]] = {}
        for t, v in pairs:
            buckets.setdefault(int(t), []).append(int(v))
        return cls(buckets)

    @classmethod
    def from_subscriber_topics(
        cls, topics_by_subscriber: Mapping[int, Iterable[int]]
    ) -> "PairSelection":
        """Build from a ``subscriber -> topics`` mapping."""
        buckets: Dict[int, List[int]] = {}
        for v, topics in topics_by_subscriber.items():
            for t in topics:
                buckets.setdefault(int(t), []).append(int(v))
        return cls(buckets)

    @classmethod
    def full(cls, workload: Workload) -> "PairSelection":
        """The selection containing *every* pair of the workload."""
        return cls(
            {t: workload.subscribers_of(t) for t in range(workload.num_topics)}
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Total number of selected pairs ``|S|``."""
        return self._num_pairs

    @property
    def num_topics(self) -> int:
        """Number of distinct topics that appear in the selection."""
        return len(self._by_topic)

    @property
    def topics(self) -> Tuple[int, ...]:
        """The distinct topics of the selection, in insertion order."""
        return tuple(self._by_topic)

    def subscribers_of(self, topic: int) -> np.ndarray:
        """Selected subscribers of a topic (empty array if none)."""
        arr = self._by_topic.get(int(topic))
        if arr is None:
            return np.empty(0, dtype=np.int64)
        return arr

    def pair_count(self, topic: int) -> int:
        """Number of selected pairs for a topic."""
        return int(self.subscribers_of(topic).size)

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The selection as flat parallel ``(topics, subscribers)`` arrays.

        Topic-major (one run per topic, in insertion order), built once
        and cached.  This is the input format of the vectorized
        satisfaction reductions in :mod:`repro.core.satisfaction`.
        """
        cached = self._pair_arrays
        if cached is None:
            if self._num_pairs:
                topics = np.repeat(
                    np.fromiter(self._by_topic, dtype=np.int64, count=len(self._by_topic)),
                    np.fromiter(
                        (a.size for a in self._by_topic.values()),
                        dtype=np.int64,
                        count=len(self._by_topic),
                    ),
                )
                subs = np.concatenate(list(self._by_topic.values()))
            else:
                topics = np.empty(0, dtype=np.int64)
                subs = np.empty(0, dtype=np.int64)
            topics.setflags(write=False)
            subs.setflags(write=False)
            cached = (topics, subs)
            self._pair_arrays = cached
        return cached

    def __contains__(self, pair: Pair) -> bool:
        t, v = pair
        return bool(np.isin(v, self.subscribers_of(t)).item())

    def __iter__(self) -> Iterator[Pair]:
        for t, subs in self._by_topic.items():
            for v in subs.tolist():
                yield (t, v)

    def __len__(self) -> int:
        return self._num_pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairSelection):
            return NotImplemented
        if set(self._by_topic) != set(other._by_topic):
            return False
        return all(
            np.array_equal(np.sort(self._by_topic[t]), np.sort(other._by_topic[t]))
            for t in self._by_topic
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(
            tuple(sorted((t, tuple(sorted(s.tolist()))) for t, s in self._by_topic.items()))
        )

    def topics_by_subscriber(self) -> Dict[int, List[int]]:
        """Invert the selection into ``subscriber -> topics``."""
        out: Dict[int, List[int]] = {}
        for t, subs in self._by_topic.items():
            for v in subs.tolist():
                out.setdefault(v, []).append(t)
        return out

    # ------------------------------------------------------------------
    # Bandwidth accounting (single hypothetical VM, Stage-1 objective)
    # ------------------------------------------------------------------
    def outgoing_rate(self, workload: Workload) -> float:
        """Sum of ``ev_t`` over all selected pairs (events per unit)."""
        rates = workload.event_rates
        return float(
            sum(rates[t] * subs.size for t, subs in self._by_topic.items())
        )

    def incoming_rate(self, workload: Workload) -> float:
        """Sum of ``ev_t`` over the distinct selected topics."""
        rates = workload.event_rates
        return float(sum(rates[t] for t in self._by_topic))

    def single_vm_rate(self, workload: Workload) -> float:
        """Total event rate if the whole selection sat on one huge VM.

        This is the quantity Stage 1 minimizes: each pair costs its
        outgoing rate, and each distinct topic additionally costs one
        incoming copy (Section III-A prices a pair at ``2 * ev_t``
        because in the single-VM view every pair's topic is ingested
        exactly once; with topic sharing the true single-VM total is
        ``outgoing + incoming``).
        """
        return self.outgoing_rate(workload) + self.incoming_rate(workload)

    def single_vm_bytes(self, workload: Workload) -> float:
        """:meth:`single_vm_rate` converted to bytes per time unit."""
        return self.single_vm_rate(workload) * workload.message_size_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PairSelection(pairs={self._num_pairs}, topics={self.num_topics})"
