"""Core MCSS model: workload, satisfaction, pairs, placement, problem.

This package is the paper's Section II in executable form.  Everything
else in the library (selection, packing, bounds, exact solver,
simulation) is written against these types.
"""

from .backend import AdoptBackend, ArrayBackend, MmapBackend, RamBackend
from .pairs import PairSelection
from .placement import CapacityError, Placement, VirtualMachine
from .problem import MCSSProblem, SolutionCost
from .satisfaction import (
    all_satisfied,
    delivered_rate,
    delivered_rates,
    delivered_rates_from_arrays,
    is_satisfied,
    satisfaction_slack,
    satisfied_mask,
    selection_all_satisfied,
    selection_satisfied_mask,
    subscriber_threshold,
    subscriber_thresholds,
    unsatisfied_subscribers,
)
from .validation import ValidationReport, validate_placement, validate_placement_loop
from .workload import Pair, Workload, WorkloadStats, build_workload

__all__ = [
    "AdoptBackend",
    "ArrayBackend",
    "MmapBackend",
    "RamBackend",
    "PairSelection",
    "CapacityError",
    "Placement",
    "VirtualMachine",
    "MCSSProblem",
    "SolutionCost",
    "all_satisfied",
    "delivered_rate",
    "delivered_rates",
    "delivered_rates_from_arrays",
    "is_satisfied",
    "satisfaction_slack",
    "satisfied_mask",
    "selection_all_satisfied",
    "selection_satisfied_mask",
    "subscriber_threshold",
    "subscriber_thresholds",
    "unsatisfied_subscribers",
    "ValidationReport",
    "validate_placement",
    "validate_placement_loop",
    "Pair",
    "Workload",
    "WorkloadStats",
    "build_workload",
]
