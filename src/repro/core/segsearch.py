"""Lane-parallel segmented binary search (shared vectorized primitive).

Several hot paths bisect *per-subscriber windows* of one big flat
array simultaneously -- the GSP sweep over rate-descending segments,
the satisfaction membership test over sorted interest segments, the
overshoot recovery over running skip counts.  They all reduce to the
same branchless lane-parallel bisection, differing only in the
comparison that decides "answer is at or left of mid"; this module is
its single implementation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["segmented_left_search", "sorted_member"]


def sorted_member(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean membership of ``needles`` in a *sorted* ``haystack``.

    One ``np.searchsorted`` plus a gather -- O(m log n) for m needles.
    The shared primitive behind the dynamic epoch pipeline's set
    algebra (old/new selection differences in the reprovisioner, the
    already-subscribed test in the churn model).
    """
    if haystack.size == 0 or needles.size == 0:
        return np.zeros(needles.size, dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos_clip = np.minimum(pos, haystack.size - 1)
    return (pos < haystack.size) & (haystack[pos_clip] == needles)


def segmented_left_search(
    values: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    target: np.ndarray,
    go_left_when: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Per-lane leftmost index ``i`` in ``[lo, hi)`` satisfying the predicate.

    ``go_left_when(values[mid], target)`` must be monotone inside every
    window: False ... False True ... True along the window (e.g.
    ``np.greater_equal`` over ascending values, ``np.less_equal`` over
    descending ones).  Returns ``hi`` for lanes where no index
    satisfies it.

    Branchless lane-parallel bisection: every lane advances one step
    per iteration, so the body runs ``ceil(log2(max_window + 1))``
    times however many lanes there are.
    """
    if lo.size == 0:
        return lo.copy()
    lo = lo.copy()
    hi = hi.copy()
    size = values.size
    span = int((hi - lo).max())
    for _ in range(max(span, 0).bit_length()):
        mid = (lo + hi) >> 1
        # Converged lanes (lo == hi) are forced left so they stay put.
        go_left = go_left_when(values[np.minimum(mid, size - 1)], target) | (lo >= hi)
        hi = np.where(go_left, mid, hi)
        lo = np.where(go_left, lo, mid + 1)
    return lo
