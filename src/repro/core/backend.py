"""Array storage backends: where a workload's CSR arrays live.

The core model (:class:`~repro.core.workload.Workload`,
:class:`~repro.core.pairs.PairSelection`) operates on flat int64/float64
NumPy arrays.  At paper scale (Section IV runs 8M users / 683.5M pairs)
those arrays no longer fit comfortably in one process's RAM, so the
*storage* of the arrays is factored behind a small seam:

* :class:`RamBackend` -- the default.  Arrays are owned in RAM with the
  historical defensive-copy semantics: any array the workload does not
  own outright is copied once at construction, then frozen.
* :class:`MmapBackend` -- arrays stay where they are (typically
  ``np.memmap`` views into an uncompressed ``.npz`` written by
  :func:`repro.workloads.io.save_workload`), and *derived* pair-sized
  caches (the rate-descending scan order, sorted pair keys, ...) are
  spilled to ``.npy`` sidecar files and re-opened as read-only maps, so
  the OS page cache -- not the Python heap -- holds the bulk data.
  ``tracemalloc`` (the slow-suite memory referee) only counts
  Python-allocator memory, which is exactly the accounting we want for
  out-of-core solves.
* :class:`AdoptBackend` -- trusted zero-copy adoption; used internally
  for derived views (subscriber shards, message-size rebinds) whose
  arrays are already frozen slices of a live workload.

Backends never change *values*, only residency: every solver path is
bit-exact across backends (pinned by the backend-parametrized cases in
``tests/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

__all__ = ["ArrayBackend", "RamBackend", "MmapBackend", "AdoptBackend"]


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only in place and return it."""
    arr.setflags(write=False)
    return arr


def is_mapped(arr: np.ndarray) -> bool:
    """True when ``arr`` is (a view into) a memory-mapped file."""
    base: Optional[np.ndarray] = arr
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
        if base is not None and not isinstance(base, np.ndarray):
            # e.g. an mmap.mmap object backing a raw np.frombuffer view
            return True
    return False


class ArrayBackend(ABC):
    """Residency policy for a workload's base and derived arrays."""

    @abstractmethod
    def adopt(self, arr: np.ndarray, tag: str) -> np.ndarray:
        """Take ownership of a base CSR array at construction time.

        Returns a read-only array with the same values; whether it is
        the same object, a copy, or an on-disk map is the backend's
        business.  ``tag`` names the array for sidecar files.
        """

    @abstractmethod
    def cache(self, tag: str, arr: np.ndarray) -> np.ndarray:
        """Store a derived (typically pair-sized) cache array.

        Called once per tag per workload; returns the array to keep a
        reference to (read-only).
        """


class RamBackend(ArrayBackend):
    """In-RAM arrays with defensive-copy-on-adopt (the historical default)."""

    def adopt(self, arr: np.ndarray, tag: str) -> np.ndarray:
        return _frozen(arr.copy() if not arr.flags.owndata else arr)

    def cache(self, tag: str, arr: np.ndarray) -> np.ndarray:
        return _frozen(arr)


class AdoptBackend(ArrayBackend):
    """Trusted zero-copy adoption: arrays are kept exactly as passed.

    For internal derived views (:meth:`Workload.subscriber_range`,
    :meth:`Workload.with_message_size`) whose inputs are already
    immutable slices of a live workload -- copying them would densify
    an mmap-backed parent.  Derived caches stay in RAM (they are
    sized to the view, not to the parent).
    """

    def adopt(self, arr: np.ndarray, tag: str) -> np.ndarray:
        return _frozen(arr)

    def cache(self, tag: str, arr: np.ndarray) -> np.ndarray:
        return _frozen(arr)


class MmapBackend(ArrayBackend):
    """Disk-resident arrays: adopt maps as-is, spill derived caches.

    Parameters
    ----------
    cache_dir:
        Directory for spilled derived caches (created on first use).
        ``None`` disables spilling -- base arrays still stay mapped,
        but derived caches live in RAM (useful when only the base
        arrays are large).
    """

    def __init__(self, cache_dir: Union[str, os.PathLike, None] = None) -> None:
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None

    def adopt(self, arr: np.ndarray, tag: str) -> np.ndarray:
        # Adopt as-is: a map (or a view into one) stays on disk, and
        # copying here is exactly the densification this backend
        # exists to avoid.  RAM-resident inputs are adopted too -- the
        # caller chose this backend to keep construction zero-copy.
        return _frozen(arr)

    def cache(self, tag: str, arr: np.ndarray) -> np.ndarray:
        if self.cache_dir is None or arr.nbytes < (1 << 20):
            # Small caches (indptr-sized, topic-sized) are cheaper in
            # RAM than as one file each.
            return _frozen(arr)
        os.makedirs(self.cache_dir, exist_ok=True)
        path = os.path.join(self.cache_dir, f"{tag}.npy")
        np.save(path, arr)
        return np.load(path, mmap_mode="r")
