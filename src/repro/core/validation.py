"""Independent validation of candidate MCSS solutions.

Every solver in this library is audited by the same referee: given a
:class:`~repro.core.problem.MCSSProblem` and a
:class:`~repro.core.placement.Placement`, :func:`validate_placement`
re-derives from first principles that

1. no VM exceeds its bandwidth capacity ``BC`` (Equation (2)), and
2. every subscriber is satisfied (Equation (3)), and
3. the placement's incremental bandwidth bookkeeping matches a from-
   scratch recomputation (guards against accounting bugs in solvers).

Two implementations are provided:

* :func:`validate_placement` -- the default: per-VM bandwidth via
  ``np.bincount`` over the flat assignment arrays, and the
  satisfaction half via the vectorized pair-key reductions of
  :mod:`repro.core.satisfaction` (dedup with ``np.unique``, interest
  membership with ``np.searchsorted``, delivered rates with
  ``np.bincount``).  O(P log P) whole-array work instead of a Python
  loop over subscribers -- this is what makes ``solve()`` viable at
  100k+ subscribers, where the loop referee dominated the runtime.
* :func:`validate_placement_loop` -- the original direct-style loop,
  deliberately sharing no code with the solvers *or* with the
  vectorized validator, kept as the slow referee.  The randomized
  equivalence suite asserts both produce identical verdicts, so a bug
  in the vectorized fast path cannot hide.

Equivalence contract: both validators compute the same verdict fields
(``capacity_ok``, ``satisfaction_ok``, ``accounting_ok``,
``overloaded_vms``, ``unsatisfied_subscribers``); summation-order
float differences are bounded by the ``_REL_TOL``/``_ABS_TOL``
comparisons and vanish for integer-valued event rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from .placement import Placement
from .problem import MCSSProblem
from .satisfaction import delivered_rates_from_arrays

__all__ = ["ValidationReport", "validate_placement", "validate_placement_loop"]

_REL_TOL = 1e-9
_ABS_TOL = 1e-6


@dataclass
class ValidationReport:
    """Outcome of auditing a placement against an MCSS instance."""

    capacity_ok: bool
    satisfaction_ok: bool
    accounting_ok: bool
    overloaded_vms: List[int] = field(default_factory=list)
    unsatisfied_subscribers: List[int] = field(default_factory=list)
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the placement is a feasible MCSS solution."""
        return self.capacity_ok and self.satisfaction_ok and self.accounting_ok

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` with a readable summary if not ok."""
        if not self.ok:
            raise ValueError("invalid placement: " + "; ".join(self.messages))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "ValidationReport(ok)"
        return "ValidationReport(FAILED: " + "; ".join(self.messages) + ")"


def _reduce_assignments(
    problem: MCSSProblem,
    placement: Placement,
    entries: "np.ndarray | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, List[str]]":
    """From-scratch partial reduction over a subset of assignment groups.

    Recomputes, over the (vm, topic) assignment groups selected by
    ``entries`` (all of them when ``None``), the three additive vectors
    the audit needs -- per-VM outgoing bytes, per-VM incoming bytes,
    per-subscriber delivered rate -- plus the duplicate-subscriber
    messages for the selected groups.

    These reductions are *additive over any partition of the groups
    whose parts never split a topic*: capacity sums are per-group
    independent, and the (t, v) dedup inside the delivered-rate
    reduction only ever merges pairs sharing a topic, so a
    topic-determined partition keeps every potential duplicate inside
    one part.  That is what lets :func:`repro.solver.sharded` validate
    topic shards in parallel and sum the partials
    (:func:`validate_placement` is the ``entries=None`` special case).
    """
    workload = problem.workload
    msg_bytes = workload.message_size_bytes
    rates = workload.event_rates
    num_vms = placement.num_vms

    # Flat assignment view, cached on the placement: one entry per
    # (vm, topic) group -- orders of magnitude fewer than pairs.
    vm_arr, topic_arr, size_arr, all_subs = placement.assignment_arrays()
    if entries is not None:
        starts = np.concatenate(([0], np.cumsum(size_arr[:-1])))
        vm_arr = vm_arr[entries]
        topic_arr = topic_arr[entries]
        size_arr = size_arr[entries]
        # Gather the selected groups' flat subscribers: lay the chosen
        # chunks end to end via one repeat+arange fancy index.
        out_starts = np.concatenate(([0], np.cumsum(size_arr[:-1])))
        gather = np.repeat(starts[entries] - out_starts, size_arr) + np.arange(
            int(size_arr.sum()), dtype=np.int64
        )
        all_subs = all_subs[gather]
    topic_bytes = rates[topic_arr] * msg_bytes if topic_arr.size else np.empty(0)

    # Duplicate subscribers inside one (vm, topic) group: one global
    # sorted pass over (group, subscriber) keys instead of a np.unique
    # per assignment.
    duplicate_msgs: List[str] = []
    if all_subs.size:
        group_idx = np.repeat(np.arange(vm_arr.size, dtype=np.int64), size_arr)
        low = int(all_subs.min())
        span = np.int64(int(all_subs.max()) - low + 1)
        gkeys = np.sort(group_idx * span + (all_subs - low))
        dup_pos = np.flatnonzero(gkeys[1:] == gkeys[:-1])
        if dup_pos.size:
            # repolint: allow(VL01): message formatting over duplicate-bearing groups (broken placements only)
            for g in np.unique(gkeys[dup_pos] // span).tolist():
                duplicate_msgs.append(
                    f"VM {vm_arr[g]} lists duplicate subscribers for "
                    f"topic {topic_arr[g]}"
                )

    # Capacity: Equation (2), per-VM out/in byte rates by bincount.
    out_bytes = np.bincount(vm_arr, weights=topic_bytes * size_arr, minlength=num_vms)
    in_bytes = np.bincount(vm_arr, weights=topic_bytes, minlength=num_vms)

    # Satisfaction inputs: Equation (3), a pair counts if assigned to
    # >= 1 VM.  Delivered (t, v) pairs, VM identity dropped; dedup +
    # interest membership + per-subscriber sums all happen inside the
    # vectorized reduction.
    flat_topics = (
        np.repeat(topic_arr, size_arr) if all_subs.size else np.empty(0, dtype=np.int64)
    )
    delivered = delivered_rates_from_arrays(workload, flat_topics, all_subs)
    return out_bytes, in_bytes, delivered, duplicate_msgs


def _verdict(
    problem: MCSSProblem,
    placement: Placement,
    out_bytes: np.ndarray,
    in_bytes: np.ndarray,
    delivered: np.ndarray,
    duplicate_msgs: List[str],
) -> ValidationReport:
    """Turn the (possibly summed) reduction vectors into the report."""
    workload = problem.workload
    capacity = problem.capacity_bytes
    num_vms = placement.num_vms

    accounting_ok = not duplicate_msgs
    messages: List[str] = list(duplicate_msgs)

    used = out_bytes + in_bytes
    recorded = placement.used_bytes_array()

    over_mask = used > capacity * (1.0 + _REL_TOL) + _ABS_TOL
    overloaded = [int(b) for b in np.flatnonzero(over_mask)]
    mismatch = np.abs(recorded - used) > np.maximum(
        _ABS_TOL, _REL_TOL * np.maximum(recorded, used)
    )
    # Interleave the messages per VM, as the loop referee emits them.
    # repolint: allow(VL01): verdict-message formatting, O(VMs) -- referee-identical interleave
    for b in range(num_vms):
        if over_mask[b]:
            messages.append(
                f"VM {b} uses {used[b]:.1f} B of {capacity:.1f} B capacity"
            )
        if mismatch[b]:
            accounting_ok = False
            messages.append(
                f"VM {b} bookkeeping says {recorded[b]:.3f} B but recomputation "
                f"says {used[b]:.3f} B"
            )

    # Satisfaction verdict from the per-subscriber delivered rates.
    thresholds = np.minimum(float(problem.tau), workload.interest_rate_sums())
    unsat_mask = delivered < thresholds * (1.0 - _REL_TOL)
    unsatisfied = [int(v) for v in np.flatnonzero(unsat_mask)]
    if unsatisfied:
        shown = ", ".join(str(v) for v in unsatisfied[:10])
        more = "" if len(unsatisfied) <= 10 else f" (+{len(unsatisfied) - 10} more)"
        messages.append(f"unsatisfied subscribers: {shown}{more}")

    return ValidationReport(
        capacity_ok=not overloaded,
        satisfaction_ok=not unsatisfied,
        accounting_ok=accounting_ok,
        overloaded_vms=overloaded,
        unsatisfied_subscribers=unsatisfied,
        messages=messages,
    )


def validate_placement(problem: MCSSProblem, placement: Placement) -> ValidationReport:
    """Audit a placement; see the module docstring for the checks.

    Vectorized fast path; :func:`validate_placement_loop` is the
    independent slow referee with identical verdict semantics.
    Internally one whole-array :func:`_reduce_assignments` pass feeding
    :func:`_verdict`; :func:`repro.solver.sharded.sharded_validate`
    reuses the same halves over topic shards.
    """
    return _verdict(problem, placement, *_reduce_assignments(problem, placement))


def validate_placement_loop(
    problem: MCSSProblem, placement: Placement
) -> ValidationReport:
    """The original per-subscriber loop referee (slow, zero shared code).

    Deliberately written in the most direct style possible -- no shared
    code with the solvers or the vectorized validator -- so that a bug
    in either cannot hide inside the referee.  Use only on small
    instances; it is linear in ``|V|`` with Python-loop constants.
    """
    workload = problem.workload
    msg_bytes = workload.message_size_bytes
    rates = workload.event_rates
    capacity = problem.capacity_bytes

    # Recompute per-VM bandwidth from the raw assignment lists.
    pair_counts: Dict[int, Dict[int, int]] = {}
    delivered: Dict[int, Set[int]] = {}
    duplicate_msgs: List[str] = []
    for b, t, subs in placement.iter_assignments():
        per_vm = pair_counts.setdefault(b, {})
        per_vm[t] = per_vm.get(t, 0) + len(subs)
        if len(set(subs)) != len(subs):
            duplicate_msgs.append(f"VM {b} lists duplicate subscribers for topic {t}")
        for v in subs:
            delivered.setdefault(v, set()).add(t)

    overloaded: List[int] = []
    accounting_ok = not duplicate_msgs
    messages: List[str] = list(duplicate_msgs)
    for b in range(placement.num_vms):
        per_vm = pair_counts.get(b, {})
        out_bytes = sum(rates[t] * c for t, c in per_vm.items()) * msg_bytes
        in_bytes = sum(rates[t] for t in per_vm) * msg_bytes
        used = out_bytes + in_bytes
        if used > capacity * (1.0 + _REL_TOL) + _ABS_TOL:
            overloaded.append(b)
            messages.append(
                f"VM {b} uses {used:.1f} B of {capacity:.1f} B capacity"
            )
        recorded = placement.vms[b].used_bytes
        if abs(recorded - used) > max(_ABS_TOL, _REL_TOL * max(recorded, used)):
            accounting_ok = False
            messages.append(
                f"VM {b} bookkeeping says {recorded:.3f} B but recomputation "
                f"says {used:.3f} B"
            )

    # Satisfaction: Equation (3), a pair counts if assigned to >= 1 VM.
    unsatisfied: List[int] = []
    for v in range(workload.num_subscribers):
        interest = workload.interest(v)
        if interest.size == 0:
            continue  # tau_v == 0: trivially satisfied
        tau_v = min(problem.tau, float(rates[interest].sum()))
        got_topics = delivered.get(v, set())
        # Hoisted: the interest set is built once per subscriber, not
        # once per delivered topic.
        interest_set = set(interest.tolist())
        got = sum(float(rates[t]) for t in got_topics if t in interest_set)
        if got < tau_v * (1.0 - _REL_TOL):
            unsatisfied.append(v)
    if unsatisfied:
        shown = ", ".join(str(v) for v in unsatisfied[:10])
        more = "" if len(unsatisfied) <= 10 else f" (+{len(unsatisfied) - 10} more)"
        messages.append(f"unsatisfied subscribers: {shown}{more}")

    return ValidationReport(
        capacity_ok=not overloaded,
        satisfaction_ok=not unsatisfied,
        accounting_ok=accounting_ok,
        overloaded_vms=overloaded,
        unsatisfied_subscribers=unsatisfied,
        messages=messages,
    )
