"""Independent validation of candidate MCSS solutions.

Every solver in this library is audited by the same referee: given a
:class:`~repro.core.problem.MCSSProblem` and a
:class:`~repro.core.placement.Placement`, :func:`validate_placement`
re-derives from first principles that

1. no VM exceeds its bandwidth capacity ``BC`` (Equation (2)), and
2. every subscriber is satisfied (Equation (3)), and
3. the placement's incremental bandwidth bookkeeping matches a from-
   scratch recomputation (guards against accounting bugs in solvers).

The validator is deliberately written in the most direct style possible
-- no shared code with the solvers -- so that a bug in a solver cannot
hide inside the referee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .placement import Placement
from .problem import MCSSProblem

__all__ = ["ValidationReport", "validate_placement"]

_REL_TOL = 1e-9
_ABS_TOL = 1e-6


@dataclass
class ValidationReport:
    """Outcome of auditing a placement against an MCSS instance."""

    capacity_ok: bool
    satisfaction_ok: bool
    accounting_ok: bool
    overloaded_vms: List[int] = field(default_factory=list)
    unsatisfied_subscribers: List[int] = field(default_factory=list)
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the placement is a feasible MCSS solution."""
        return self.capacity_ok and self.satisfaction_ok and self.accounting_ok

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` with a readable summary if not ok."""
        if not self.ok:
            raise ValueError("invalid placement: " + "; ".join(self.messages))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "ValidationReport(ok)"
        return "ValidationReport(FAILED: " + "; ".join(self.messages) + ")"


def validate_placement(problem: MCSSProblem, placement: Placement) -> ValidationReport:
    """Audit a placement; see the module docstring for the checks."""
    workload = problem.workload
    msg_bytes = workload.message_size_bytes
    rates = workload.event_rates
    capacity = problem.capacity_bytes

    # Recompute per-VM bandwidth from the raw assignment lists.
    pair_counts: Dict[int, Dict[int, int]] = {}
    delivered: Dict[int, Set[int]] = {}
    duplicate_msgs: List[str] = []
    for b, t, subs in placement.iter_assignments():
        per_vm = pair_counts.setdefault(b, {})
        per_vm[t] = per_vm.get(t, 0) + len(subs)
        if len(set(subs)) != len(subs):
            duplicate_msgs.append(f"VM {b} lists duplicate subscribers for topic {t}")
        for v in subs:
            delivered.setdefault(v, set()).add(t)

    overloaded: List[int] = []
    accounting_ok = not duplicate_msgs
    messages: List[str] = list(duplicate_msgs)
    for b in range(placement.num_vms):
        per_vm = pair_counts.get(b, {})
        out_bytes = sum(rates[t] * c for t, c in per_vm.items()) * msg_bytes
        in_bytes = sum(rates[t] for t in per_vm) * msg_bytes
        used = out_bytes + in_bytes
        if used > capacity * (1.0 + _REL_TOL) + _ABS_TOL:
            overloaded.append(b)
            messages.append(
                f"VM {b} uses {used:.1f} B of {capacity:.1f} B capacity"
            )
        recorded = placement.vms[b].used_bytes
        if abs(recorded - used) > max(_ABS_TOL, _REL_TOL * max(recorded, used)):
            accounting_ok = False
            messages.append(
                f"VM {b} bookkeeping says {recorded:.3f} B but recomputation "
                f"says {used:.3f} B"
            )

    # Satisfaction: Equation (3), a pair counts if assigned to >= 1 VM.
    unsatisfied: List[int] = []
    for v in range(workload.num_subscribers):
        interest = workload.interest(v)
        if interest.size == 0:
            continue  # tau_v == 0: trivially satisfied
        tau_v = min(problem.tau, float(rates[interest].sum()))
        got_topics = delivered.get(v, set())
        got = sum(float(rates[t]) for t in got_topics if t in set(interest.tolist()))
        if got < tau_v * (1.0 - _REL_TOL):
            unsatisfied.append(v)
    if unsatisfied:
        shown = ", ".join(str(v) for v in unsatisfied[:10])
        more = "" if len(unsatisfied) <= 10 else f" (+{len(unsatisfied) - 10} more)"
        messages.append(f"unsatisfied subscribers: {shown}{more}")

    return ValidationReport(
        capacity_ok=not overloaded,
        satisfaction_ok=not unsatisfied,
        accounting_ok=accounting_ok,
        overloaded_vms=overloaded,
        unsatisfied_subscribers=unsatisfied,
        messages=messages,
    )
