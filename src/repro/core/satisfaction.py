"""Subscriber satisfaction thresholds and checks (Section II-B).

The paper's satisfaction model: a subscriber ``v`` is *satisfied* when
the cumulative event rate of the topics delivered to it reaches the
subscriber-specific threshold

    tau_v = min(tau, sum(ev_t for t in Tv))

where ``tau`` is the system-wide satisfaction threshold.  Delivering
more than ``tau_v`` brings no extra benefit (the subscriber is a human
reader), which is exactly the slack the MCSS optimization exploits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from .workload import Pair, Workload

__all__ = [
    "subscriber_threshold",
    "subscriber_thresholds",
    "delivered_rate",
    "delivered_rates",
    "is_satisfied",
    "satisfied_mask",
    "all_satisfied",
    "unsatisfied_subscribers",
    "satisfaction_slack",
]


def subscriber_threshold(workload: Workload, subscriber: int, tau: float) -> float:
    """Return ``tau_v = min(tau, sum(ev_t for t in Tv))`` for one subscriber."""
    if tau < 0:
        raise ValueError("tau must be non-negative")
    return min(float(tau), workload.interest_rate_sum(subscriber))


def subscriber_thresholds(workload: Workload, tau: float) -> np.ndarray:
    """Vector of ``tau_v`` for every subscriber."""
    if tau < 0:
        raise ValueError("tau must be non-negative")
    return np.minimum(float(tau), workload.interest_rate_sums())


def delivered_rate(
    workload: Workload, subscriber: int, delivered_topics: Iterable[int]
) -> float:
    """Total event rate a subscriber receives from ``delivered_topics``.

    Topics outside the subscriber's interest are ignored: a broker may
    host extra topics, but only topics in ``Tv`` count towards the
    satisfaction of ``v`` (Equation (3) only sums over ``t in Tv``).
    """
    interest = set(workload.interest(subscriber).tolist())
    rates = workload.event_rates
    seen: Set[int] = set()
    total = 0.0
    for t in delivered_topics:
        if t in interest and t not in seen:
            seen.add(t)
            total += float(rates[t])
    return total


def delivered_rates(
    workload: Workload, pairs_by_subscriber: Mapping[int, Iterable[int]]
) -> np.ndarray:
    """Vector of delivered rates given a per-subscriber topic mapping."""
    out = np.zeros(workload.num_subscribers, dtype=np.float64)
    for v, topics in pairs_by_subscriber.items():
        out[v] = delivered_rate(workload, v, topics)
    return out


def is_satisfied(
    workload: Workload,
    subscriber: int,
    delivered_topics: Iterable[int],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> bool:
    """Check Equation (3) for a single subscriber.

    A small relative tolerance absorbs floating-point accumulation
    error; the threshold comparison in the paper is exact because the
    original implementation used integer event counts.
    """
    threshold = subscriber_threshold(workload, subscriber, tau)
    got = delivered_rate(workload, subscriber, delivered_topics)
    return got >= threshold * (1.0 - rel_tol)


def satisfied_mask(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> np.ndarray:
    """Boolean vector ``f_v`` over all subscribers (Equation (3))."""
    thresholds = subscriber_thresholds(workload, tau)
    got = np.zeros(workload.num_subscribers, dtype=np.float64)
    for v, topics in topics_by_subscriber.items():
        got[v] = delivered_rate(workload, v, topics)
    return got >= thresholds * (1.0 - rel_tol)


def all_satisfied(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> bool:
    """Check the constraint ``sum(f_v) == |V|`` from Equation (2)."""
    return bool(
        satisfied_mask(workload, topics_by_subscriber, tau, rel_tol=rel_tol).all()
    )


def unsatisfied_subscribers(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> List[int]:
    """Return the ids of unsatisfied subscribers (useful in error messages)."""
    mask = satisfied_mask(workload, topics_by_subscriber, tau, rel_tol=rel_tol)
    return [int(v) for v in np.flatnonzero(~mask)]


def satisfaction_slack(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
) -> np.ndarray:
    """Per-subscriber slack ``delivered - tau_v`` (negative = unsatisfied).

    The aggregate positive slack measures how much bandwidth a selection
    "wastes" beyond the satisfaction requirement; Stage 1's greedy
    heuristic tries to keep this small.
    """
    thresholds = subscriber_thresholds(workload, tau)
    got = np.zeros(workload.num_subscribers, dtype=np.float64)
    for v, topics in topics_by_subscriber.items():
        got[v] = delivered_rate(workload, v, topics)
    return got - thresholds
