"""Subscriber satisfaction thresholds and checks (Section II-B).

The paper's satisfaction model: a subscriber ``v`` is *satisfied* when
the cumulative event rate of the topics delivered to it reaches the
subscriber-specific threshold

    tau_v = min(tau, sum(ev_t for t in Tv))

where ``tau`` is the system-wide satisfaction threshold.  Delivering
more than ``tau_v`` brings no extra benefit (the subscriber is a human
reader), which is exactly the slack the MCSS optimization exploits.

Vectorized engine
-----------------
The whole-population checks (:func:`delivered_rates`,
:func:`satisfied_mask`, :func:`satisfaction_slack`) are whole-array
NumPy reductions over flat ``(topic, subscriber)`` pair arrays rather
than per-subscriber Python loops:

1. each delivered pair ``(t, v)`` is located inside the workload's
   per-subscriber-sorted CSR interests
   (:meth:`repro.core.workload.Workload.sorted_interest_topics`) by a
   *segmented* vectorized binary search -- ``O(log |Tv|)`` bisection
   steps executed for all pairs at once;
2. pairs outside the subscriber's interest simply find no slot and are
   dropped (Equation (3) only sums over ``t in Tv``);
3. duplicates (a topic delivered from several VMs counts once) are
   collapsed by scattering onto the found pair slots -- no sort;
4. per-subscriber delivered rates are a single ``np.bincount`` with
   the topic rates as weights.

:func:`delivered_rates_from_arrays` is the raw entry point;
the mapping-based functions convert their ``subscriber -> topics``
mapping to flat arrays first, and :func:`selection_satisfied_mask` /
:func:`selection_all_satisfied` consume a
:class:`~repro.core.pairs.PairSelection` with no Python-level
per-subscriber work at all.

Equivalence contract: the vectorized reductions compute the same
delivered-rate sums as the per-subscriber :func:`delivered_rate`
referee, with summation order differences bounded by float rounding --
bit-identical whenever the partial sums are exactly representable
(e.g. integer-valued event rates, which is what every generator in
:mod:`repro.workloads` produces).  The randomized suite in
``tests/test_vectorized_equivalence.py`` pins this down.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Set, Tuple

import numpy as np

from .pairs import PairSelection
from .segsearch import segmented_left_search
from .workload import Workload

__all__ = [
    "subscriber_threshold",
    "subscriber_thresholds",
    "delivered_rate",
    "delivered_rates",
    "delivered_rates_from_arrays",
    "is_satisfied",
    "satisfied_mask",
    "all_satisfied",
    "unsatisfied_subscribers",
    "satisfaction_slack",
    "selection_satisfied_mask",
    "selection_all_satisfied",
]


def subscriber_threshold(workload: Workload, subscriber: int, tau: float) -> float:
    """Return ``tau_v = min(tau, sum(ev_t for t in Tv))`` for one subscriber."""
    if tau < 0:
        raise ValueError("tau must be non-negative")
    return min(float(tau), workload.interest_rate_sum(subscriber))


def subscriber_thresholds(workload: Workload, tau: float) -> np.ndarray:
    """Vector of ``tau_v`` for every subscriber."""
    if tau < 0:
        raise ValueError("tau must be non-negative")
    return np.minimum(float(tau), workload.interest_rate_sums())


def delivered_rate(
    workload: Workload, subscriber: int, delivered_topics: Iterable[int]
) -> float:
    """Total event rate a subscriber receives from ``delivered_topics``.

    Topics outside the subscriber's interest are ignored: a broker may
    host extra topics, but only topics in ``Tv`` count towards the
    satisfaction of ``v`` (Equation (3) only sums over ``t in Tv``).

    This is the scalar referee the vectorized reductions are tested
    against; use :func:`delivered_rates_from_arrays` for whole
    populations.
    """
    interest = set(workload.interest(subscriber).tolist())
    rates = workload.event_rates
    seen: Set[int] = set()
    total = 0.0
    for t in delivered_topics:
        if t in interest and t not in seen:
            seen.add(t)
            total += float(rates[t])
    return total


def _segmented_find(
    values: np.ndarray, lo: np.ndarray, hi: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Per-lane leftmost index ``i`` in ``[lo, hi)`` with ``values[i] >= target``.

    ``values`` must be ascending inside every ``[lo, hi)`` window (the
    per-subscriber sorted interests).  Returns ``hi`` when no element
    qualifies.
    """
    return segmented_left_search(values, lo, hi, target, np.greater_equal)


def delivered_rates_from_arrays(
    workload: Workload,
    pair_topics: np.ndarray,
    pair_subscribers: np.ndarray,
    *,
    assume_unique: bool = False,
) -> np.ndarray:
    """Vector of delivered rates from flat parallel pair arrays.

    ``pair_topics[i]`` was delivered to ``pair_subscribers[i]``.
    Duplicate pairs count once (pass ``assume_unique=True`` to skip the
    dedup when the caller guarantees it); pairs whose topic is not in
    the subscriber's interest -- or that reference unknown ids -- are
    ignored, matching :func:`delivered_rate`.
    """
    n = workload.num_subscribers
    num_topics = workload.num_topics
    topics = np.asarray(pair_topics, dtype=np.int64)
    subs = np.asarray(pair_subscribers, dtype=np.int64)
    if num_topics == 0 or topics.size == 0 or workload.num_pairs == 0:
        return np.zeros(n, dtype=np.float64)

    valid = (topics >= 0) & (topics < num_topics) & (subs >= 0) & (subs < n)
    if not valid.all():
        topics, subs = topics[valid], subs[valid]

    # Locate each delivered pair inside the subscriber's sorted
    # interest segment; misses (topic not in Tv) fall out naturally.
    sorted_topics = workload.sorted_interest_topics()
    indptr = workload.interest_indptr
    lo = indptr[subs]
    hi = indptr[subs + 1]
    slot = _segmented_find(sorted_topics, lo, hi, topics)
    slot_clipped = np.minimum(slot, sorted_topics.size - 1)
    member = (slot < hi) & (sorted_topics[slot_clipped] == topics)

    if assume_unique:
        hit_subs = subs[member]
        hit_topics = topics[member]
    else:
        # Dedup by scattering onto the found pair slots: a pair slot is
        # unique per (v, t), and scattering beats sorting the keys.
        seen = np.zeros(sorted_topics.size, dtype=bool)
        seen[slot_clipped[member]] = True
        hits = np.flatnonzero(seen)
        hit_subs = workload.pair_subscribers()[hits]
        hit_topics = sorted_topics[hits]
    return np.bincount(
        hit_subs,
        weights=workload.event_rates[hit_topics],
        minlength=n,
    )


def _mapping_to_pair_arrays(
    topics_by_subscriber: Mapping[int, Iterable[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a ``subscriber -> topics`` mapping into parallel arrays."""
    if not topics_by_subscriber:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    chunks: List[np.ndarray] = []
    owners: List[int] = []
    sizes: List[int] = []
    for v, topics in topics_by_subscriber.items():
        if isinstance(topics, np.ndarray):
            arr = topics.astype(np.int64, copy=False)
        else:
            arr = np.fromiter((int(t) for t in topics), dtype=np.int64)
        chunks.append(arr)
        owners.append(int(v))
        sizes.append(arr.size)
    flat_topics = np.concatenate(chunks)
    flat_subs = np.repeat(
        np.asarray(owners, dtype=np.int64), np.asarray(sizes, dtype=np.int64)
    )
    return flat_topics, flat_subs


def delivered_rates(
    workload: Workload, pairs_by_subscriber: Mapping[int, Iterable[int]]
) -> np.ndarray:
    """Vector of delivered rates given a per-subscriber topic mapping."""
    topics, subs = _mapping_to_pair_arrays(pairs_by_subscriber)
    return delivered_rates_from_arrays(workload, topics, subs)


def is_satisfied(
    workload: Workload,
    subscriber: int,
    delivered_topics: Iterable[int],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> bool:
    """Check Equation (3) for a single subscriber.

    A small relative tolerance absorbs floating-point accumulation
    error; the threshold comparison in the paper is exact because the
    original implementation used integer event counts.
    """
    threshold = subscriber_threshold(workload, subscriber, tau)
    got = delivered_rate(workload, subscriber, delivered_topics)
    return got >= threshold * (1.0 - rel_tol)


def satisfied_mask(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> np.ndarray:
    """Boolean vector ``f_v`` over all subscribers (Equation (3))."""
    thresholds = subscriber_thresholds(workload, tau)
    got = delivered_rates(workload, topics_by_subscriber)
    return got >= thresholds * (1.0 - rel_tol)


def selection_satisfied_mask(
    workload: Workload,
    selection: PairSelection,
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> np.ndarray:
    """:func:`satisfied_mask` straight from a :class:`PairSelection`.

    Uses the selection's cached flat pair arrays, so no per-subscriber
    dictionary is ever materialized -- the fast path for Stage-1
    sufficiency checks on large workloads.
    """
    thresholds = subscriber_thresholds(workload, tau)
    topics, subs = selection.pair_arrays()
    got = delivered_rates_from_arrays(workload, topics, subs, assume_unique=True)
    return got >= thresholds * (1.0 - rel_tol)


def selection_all_satisfied(
    workload: Workload,
    selection: PairSelection,
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> bool:
    """Whether a selection satisfies every subscriber (Equation (2))."""
    return bool(
        selection_satisfied_mask(workload, selection, tau, rel_tol=rel_tol).all()
    )


def all_satisfied(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> bool:
    """Check the constraint ``sum(f_v) == |V|`` from Equation (2)."""
    return bool(
        satisfied_mask(workload, topics_by_subscriber, tau, rel_tol=rel_tol).all()
    )


def unsatisfied_subscribers(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
    *,
    rel_tol: float = 1e-9,
) -> List[int]:
    """Return the ids of unsatisfied subscribers (useful in error messages)."""
    mask = satisfied_mask(workload, topics_by_subscriber, tau, rel_tol=rel_tol)
    return [int(v) for v in np.flatnonzero(~mask)]


def satisfaction_slack(
    workload: Workload,
    topics_by_subscriber: Mapping[int, Iterable[int]],
    tau: float,
) -> np.ndarray:
    """Per-subscriber slack ``delivered - tau_v`` (negative = unsatisfied).

    The aggregate positive slack measures how much bandwidth a selection
    "wastes" beyond the satisfaction requirement; Stage 1's greedy
    heuristic tries to keep this small.
    """
    thresholds = subscriber_thresholds(workload, tau)
    got = delivered_rates(workload, topics_by_subscriber)
    return got - thresholds
