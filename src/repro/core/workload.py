"""Pub/sub workload model.

This module implements the notation of Section II-B of the paper:

* ``T`` -- a collection of *l* topics.  Topics are identified by the
  integers ``0 .. l-1``.
* ``V`` -- a collection of *n* subscribers, identified by ``0 .. n-1``.
* ``Tv`` -- the *interest* of subscriber ``v``: the topics ``v``
  subscribes to.
* ``ev_t`` -- the event rate of topic ``t`` (events per time unit).
* ``Vt`` -- the subscribers of topic ``t`` (derived from the interests).

A :class:`Workload` is immutable once constructed.  All derived
quantities (reverse index, per-subscriber rate sums, pair counts) are
computed lazily and cached, because the experiment harness frequently
builds large workloads and only touches some of the derived views.

Units
-----
Event rates are "events per time unit"; the time unit itself is opaque
to the core model.  Bandwidth-related quantities are obtained by
multiplying event rates with :attr:`Workload.message_size_bytes`, which
yields "bytes per time unit".  The pricing layer
(:mod:`repro.pricing`) is the only place that attaches wall-clock
meaning (e.g. a 10-day trace period) to the time unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Pair", "Workload", "WorkloadStats", "build_workload"]


Pair = Tuple[int, int]
"""A topic-subscriber pair ``(t, v)`` -- the allocation granularity of MCSS."""


class WorkloadError(ValueError):
    """Raised when a workload is malformed (bad ids, negative rates...)."""


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregate statistics of a workload, as reported in Section IV-B."""

    num_topics: int
    num_subscribers: int
    num_pairs: int
    total_event_rate: float
    mean_interest_size: float
    max_interest_size: int
    mean_audience_size: float
    max_audience_size: int
    message_size_bytes: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadStats(topics={self.num_topics}, "
            f"subscribers={self.num_subscribers}, pairs={self.num_pairs}, "
            f"total_rate={self.total_event_rate:.1f}, "
            f"mean_interest={self.mean_interest_size:.2f}, "
            f"mean_audience={self.mean_audience_size:.2f})"
        )


class Workload:
    """An immutable pub/sub workload ``(T, V, ev, Int)``.

    Parameters
    ----------
    event_rates:
        Array of length ``l`` with the event rate ``ev_t > 0`` of every
        topic (events per time unit).
    interests:
        One integer array per subscriber listing the topics the
        subscriber follows (``Tv``).  Subscribers with empty interests
        are permitted: they are trivially satisfied (``tau_v == 0``).
    message_size_bytes:
        Mean size of one event message.  The paper uses 200 bytes for
        both the Twitter and the Spotify experiments (Section IV-A).
    topic_labels / subscriber_labels:
        Optional human-readable names, purely cosmetic.
    """

    __slots__ = (
        "_event_rates",
        "_interests",
        "_message_size_bytes",
        "_topic_labels",
        "_subscriber_labels",
        "_subscribers_of",
        "_interest_rate_sums",
        "_num_pairs",
    )

    def __init__(
        self,
        event_rates: Sequence[float],
        interests: Sequence[Sequence[int]],
        message_size_bytes: float = 200.0,
        topic_labels: Optional[Sequence[str]] = None,
        subscriber_labels: Optional[Sequence[str]] = None,
    ) -> None:
        rates = np.asarray(event_rates, dtype=np.float64)
        if rates.ndim != 1:
            raise WorkloadError("event_rates must be one-dimensional")
        if rates.size and rates.min() <= 0:
            raise WorkloadError(
                "event rates must be strictly positive (paper assumes ev_t > 0)"
            )
        if message_size_bytes <= 0:
            raise WorkloadError("message_size_bytes must be positive")
        rates.setflags(write=False)
        object.__setattr__(self, "_event_rates", rates)

        num_topics = rates.size
        frozen: List[np.ndarray] = []
        for v, topics in enumerate(interests):
            arr = np.asarray(topics, dtype=np.int64)
            if arr.size:
                if arr.min() < 0 or arr.max() >= num_topics:
                    raise WorkloadError(
                        f"subscriber {v} references a topic id outside "
                        f"[0, {num_topics})"
                    )
                if np.unique(arr).size != arr.size:
                    raise WorkloadError(
                        f"subscriber {v} has duplicate topics in its interest"
                    )
            arr.setflags(write=False)
            frozen.append(arr)
        object.__setattr__(self, "_interests", tuple(frozen))
        object.__setattr__(self, "_message_size_bytes", float(message_size_bytes))

        if topic_labels is not None and len(topic_labels) != num_topics:
            raise WorkloadError("topic_labels length mismatch")
        if subscriber_labels is not None and len(subscriber_labels) != len(frozen):
            raise WorkloadError("subscriber_labels length mismatch")
        object.__setattr__(
            self, "_topic_labels", tuple(topic_labels) if topic_labels else None
        )
        object.__setattr__(
            self,
            "_subscriber_labels",
            tuple(subscriber_labels) if subscriber_labels else None,
        )
        # Lazy caches.
        object.__setattr__(self, "_subscribers_of", None)
        object.__setattr__(self, "_interest_rate_sums", None)
        object.__setattr__(self, "_num_pairs", None)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Workload is immutable")

    @property
    def num_topics(self) -> int:
        """``l`` -- the number of topics."""
        return int(self._event_rates.size)

    @property
    def num_subscribers(self) -> int:
        """``n`` -- the number of subscribers."""
        return len(self._interests)

    @property
    def event_rates(self) -> np.ndarray:
        """Read-only array of per-topic event rates ``ev_t``."""
        return self._event_rates

    @property
    def message_size_bytes(self) -> float:
        """Mean size of a single event message in bytes."""
        return self._message_size_bytes

    def event_rate(self, topic: int) -> float:
        """Return ``ev_t`` for a single topic."""
        return float(self._event_rates[topic])

    def interest(self, subscriber: int) -> np.ndarray:
        """Return ``Tv``: the topics subscribed to by ``subscriber``."""
        return self._interests[subscriber]

    @property
    def interests(self) -> Tuple[np.ndarray, ...]:
        """All interests (``Int`` in the paper's notation)."""
        return self._interests

    def topic_label(self, topic: int) -> str:
        """Human-readable name of a topic (falls back to ``t<idx>``)."""
        if self._topic_labels is not None:
            return self._topic_labels[topic]
        return f"t{topic}"

    def subscriber_label(self, subscriber: int) -> str:
        """Human-readable name of a subscriber (falls back to ``v<idx>``)."""
        if self._subscriber_labels is not None:
            return self._subscriber_labels[subscriber]
        return f"v{subscriber}"

    # ------------------------------------------------------------------
    # Derived (cached) views
    # ------------------------------------------------------------------
    def subscribers_of(self, topic: int) -> np.ndarray:
        """Return ``Vt``: the subscribers of ``topic``.

        Built lazily for the whole workload on first use (a single
        O(pairs) pass), then served from the cache.
        """
        return self._audience_index()[topic]

    def _audience_index(self) -> Tuple[np.ndarray, ...]:
        cached = self._subscribers_of
        if cached is None:
            buckets: List[List[int]] = [[] for _ in range(self.num_topics)]
            for v, topics in enumerate(self._interests):
                for t in topics.tolist():
                    buckets[t].append(v)
            arrays = []
            for bucket in buckets:
                arr = np.asarray(bucket, dtype=np.int64)
                arr.setflags(write=False)
                arrays.append(arr)
            cached = tuple(arrays)
            object.__setattr__(self, "_subscribers_of", cached)
        return cached

    def audience_sizes(self) -> np.ndarray:
        """Number of subscribers per topic (``|Vt|`` for every topic)."""
        index = self._audience_index()
        return np.asarray([arr.size for arr in index], dtype=np.int64)

    def interest_rate_sum(self, subscriber: int) -> float:
        """Return ``sum(ev_t for t in Tv)`` for a subscriber.

        This is the maximum event rate the subscriber could ever
        receive, and caps the satisfaction threshold ``tau_v``.
        """
        return float(self._rate_sums()[subscriber])

    def _rate_sums(self) -> np.ndarray:
        cached = self._interest_rate_sums
        if cached is None:
            rates = self._event_rates
            sums = np.asarray(
                [rates[topics].sum() if topics.size else 0.0 for topics in self._interests],
                dtype=np.float64,
            )
            sums.setflags(write=False)
            cached = sums
            object.__setattr__(self, "_interest_rate_sums", cached)
        return cached

    def interest_rate_sums(self) -> np.ndarray:
        """Vector of ``sum(ev_t for t in Tv)`` for all subscribers."""
        return self._rate_sums()

    @property
    def num_pairs(self) -> int:
        """Total number of topic-subscriber pairs in the workload."""
        cached = self._num_pairs
        if cached is None:
            cached = int(sum(topics.size for topics in self._interests))
            object.__setattr__(self, "_num_pairs", cached)
        return cached

    def iter_pairs(self) -> Iterator[Pair]:
        """Iterate over every ``(t, v)`` pair of the workload."""
        for v, topics in enumerate(self._interests):
            for t in topics.tolist():
                yield (t, v)

    def stats(self) -> WorkloadStats:
        """Compute aggregate statistics for reporting."""
        interest_sizes = np.asarray(
            [topics.size for topics in self._interests], dtype=np.int64
        )
        audience = self.audience_sizes()
        return WorkloadStats(
            num_topics=self.num_topics,
            num_subscribers=self.num_subscribers,
            num_pairs=self.num_pairs,
            total_event_rate=float(self._event_rates.sum()),
            mean_interest_size=float(interest_sizes.mean()) if interest_sizes.size else 0.0,
            max_interest_size=int(interest_sizes.max()) if interest_sizes.size else 0,
            mean_audience_size=float(audience.mean()) if audience.size else 0.0,
            max_audience_size=int(audience.max()) if audience.size else 0,
            message_size_bytes=self._message_size_bytes,
        )

    # ------------------------------------------------------------------
    # Convenience transforms
    # ------------------------------------------------------------------
    def restrict_subscribers(self, subscribers: Iterable[int]) -> "Workload":
        """Return a sub-workload containing only the given subscribers.

        Topic ids are preserved; topics that lose their entire audience
        simply keep a zero audience.  Useful for sampling experiments.
        """
        keep = sorted(set(int(v) for v in subscribers))
        interests = [self._interests[v] for v in keep]
        labels = (
            [self._subscriber_labels[v] for v in keep]
            if self._subscriber_labels is not None
            else None
        )
        return Workload(
            self._event_rates,
            interests,
            message_size_bytes=self._message_size_bytes,
            topic_labels=self._topic_labels,
            subscriber_labels=labels,
        )

    def with_message_size(self, message_size_bytes: float) -> "Workload":
        """Return a copy of the workload with a different message size."""
        return Workload(
            self._event_rates,
            self._interests,
            message_size_bytes=message_size_bytes,
            topic_labels=self._topic_labels,
            subscriber_labels=self._subscriber_labels,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload(topics={self.num_topics}, "
            f"subscribers={self.num_subscribers}, pairs={self.num_pairs})"
        )


def build_workload(
    subscriptions: Mapping[int, Sequence[int]],
    event_rates: Mapping[int, float],
    message_size_bytes: float = 200.0,
) -> Workload:
    """Build a :class:`Workload` from sparse mappings.

    ``subscriptions`` maps *subscriber id -> iterable of topic ids* and
    ``event_rates`` maps *topic id -> rate*.  Ids may be arbitrary
    non-negative integers; they are compacted into dense ranges and the
    original ids are preserved as labels.

    This is the friendly entry point for users loading their own traces
    (the generators in :mod:`repro.workloads` construct dense
    :class:`Workload` objects directly).
    """
    topic_ids = sorted(event_rates)
    topic_index = {t: i for i, t in enumerate(topic_ids)}
    rates = [float(event_rates[t]) for t in topic_ids]

    subscriber_ids = sorted(subscriptions)
    interests: List[List[int]] = []
    for v in subscriber_ids:
        try:
            interests.append(sorted(topic_index[t] for t in subscriptions[v]))
        except KeyError as exc:  # re-raise with context
            raise WorkloadError(
                f"subscriber {v} subscribes to unknown topic {exc.args[0]}"
            ) from exc

    return Workload(
        rates,
        interests,
        message_size_bytes=message_size_bytes,
        topic_labels=[str(t) for t in topic_ids],
        subscriber_labels=[str(v) for v in subscriber_ids],
    )
