"""Pub/sub workload model.

This module implements the notation of Section II-B of the paper:

* ``T`` -- a collection of *l* topics.  Topics are identified by the
  integers ``0 .. l-1``.
* ``V`` -- a collection of *n* subscribers, identified by ``0 .. n-1``.
* ``Tv`` -- the *interest* of subscriber ``v``: the topics ``v``
  subscribes to.
* ``ev_t`` -- the event rate of topic ``t`` (events per time unit).
* ``Vt`` -- the subscribers of topic ``t`` (derived from the interests).

A :class:`Workload` is immutable once constructed.  All derived
quantities (reverse index, per-subscriber rate sums, pair counts) are
computed lazily and cached, because the experiment harness frequently
builds large workloads and only touches some of the derived views.

CSR interest representation
---------------------------
Internally the interests are stored once, in CSR (compressed sparse
row) form: a flat ``interest_topics`` array holding every subscriber's
topics back to back, and an ``interest_indptr`` offset array of length
``n + 1`` such that subscriber ``v``'s interest is
``interest_topics[indptr[v]:indptr[v+1]]``.  This is the zero-copy
"one big array" view the vectorized hot paths (Stage-1 GSP in
:mod:`repro.selection.greedy`, the satisfaction reductions in
:mod:`repro.core.satisfaction`, and :func:`repro.core.validation.
validate_placement`) operate on: they replace per-subscriber Python
loops with whole-array ``np.lexsort`` / ``np.bincount`` /
``np.searchsorted`` passes over the flat pair arrays.  The classic
tuple-of-arrays view (:meth:`interest` / :attr:`interests`) is
materialized lazily as read-only slices of the same flat array.

Construction validation (id range, per-subscriber duplicates) is also
performed as whole-array passes, so building a million-subscriber
workload does not loop over subscribers for anything but the initial
per-subscriber ``np.asarray`` conversion.  :meth:`Workload.from_csr`
skips even that when the caller already has flat arrays -- it is the
entry point of every bulk generator (the synthetic Zipf/uniform draws
and, since generator version 3, the social-graph compaction in
:mod:`repro.workloads.social`).

Units
-----
Event rates are "events per time unit"; the time unit itself is opaque
to the core model.  Bandwidth-related quantities are obtained by
multiplying event rates with :attr:`Workload.message_size_bytes`, which
yields "bytes per time unit".  The pricing layer
(:mod:`repro.pricing`) is the only place that attaches wall-clock
meaning (e.g. a 10-day trace period) to the time unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .backend import AdoptBackend, ArrayBackend, RamBackend

__all__ = ["Pair", "Workload", "WorkloadStats", "build_workload"]

_RAM_BACKEND = RamBackend()
_ADOPT_BACKEND = AdoptBackend()


Pair = Tuple[int, int]
"""A topic-subscriber pair ``(t, v)`` -- the allocation granularity of MCSS."""


class WorkloadError(ValueError):
    """Raised when a workload is malformed (bad ids, negative rates...)."""


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregate statistics of a workload, as reported in Section IV-B."""

    num_topics: int
    num_subscribers: int
    num_pairs: int
    total_event_rate: float
    mean_interest_size: float
    max_interest_size: int
    mean_audience_size: float
    max_audience_size: int
    message_size_bytes: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadStats(topics={self.num_topics}, "
            f"subscribers={self.num_subscribers}, pairs={self.num_pairs}, "
            f"total_rate={self.total_event_rate:.1f}, "
            f"mean_interest={self.mean_interest_size:.2f}, "
            f"mean_audience={self.mean_audience_size:.2f})"
        )


class Workload:
    """An immutable pub/sub workload ``(T, V, ev, Int)``.

    Parameters
    ----------
    event_rates:
        Array of length ``l`` with the event rate ``ev_t > 0`` of every
        topic (events per time unit).
    interests:
        One integer array per subscriber listing the topics the
        subscriber follows (``Tv``).  Subscribers with empty interests
        are permitted: they are trivially satisfied (``tau_v == 0``).
    message_size_bytes:
        Mean size of one event message.  The paper uses 200 bytes for
        both the Twitter and the Spotify experiments (Section IV-A).
    topic_labels / subscriber_labels:
        Optional human-readable names, purely cosmetic.
    """

    __slots__ = (
        "_event_rates",
        "_indptr",
        "_flat_topics",
        "_interests",
        "_message_size_bytes",
        "_topic_labels",
        "_subscriber_labels",
        "_subscribers_of",
        "_interest_rate_sums",
        "_pair_subscribers",
        "_pair_keys",
        "_rate_desc_pairs",
        "_sorted_csr_topics",
        "_backend",
    )

    def __init__(
        self,
        event_rates: Sequence[float],
        interests: Sequence[Sequence[int]],
        message_size_bytes: float = 200.0,
        topic_labels: Optional[Sequence[str]] = None,
        subscriber_labels: Optional[Sequence[str]] = None,
    ) -> None:
        arrays = [np.asarray(topics, dtype=np.int64) for topics in interests]
        counts = np.fromiter(
            (a.size for a in arrays), dtype=np.int64, count=len(arrays)
        )
        indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if arrays:
            flat = np.concatenate(arrays) if indptr[-1] else np.empty(0, np.int64)
        else:
            flat = np.empty(0, dtype=np.int64)
        self._init_common(
            event_rates,
            indptr,
            flat,
            message_size_bytes,
            topic_labels,
            subscriber_labels,
            validate=True,
        )

    @classmethod
    def from_csr(
        cls,
        event_rates: Sequence[float],
        indptr: Sequence[int],
        topics: Sequence[int],
        message_size_bytes: float = 200.0,
        topic_labels: Optional[Sequence[str]] = None,
        subscriber_labels: Optional[Sequence[str]] = None,
        validate: bool = True,
        backend: Optional[ArrayBackend] = None,
    ) -> "Workload":
        """Build directly from CSR arrays (the fast bulk entry point).

        ``indptr`` has length ``n + 1`` with ``indptr[0] == 0`` and
        monotonically non-decreasing offsets; ``topics`` holds the
        concatenated interests.  With ``validate=False`` the caller
        vouches that every topic id is in range and no subscriber lists
        a topic twice -- the same contract the positional constructor
        enforces.

        ``backend`` picks the storage policy for the arrays (see
        :mod:`repro.core.backend`): the default
        :class:`~repro.core.backend.RamBackend` keeps the historical
        copy-if-not-owned semantics; a
        :class:`~repro.core.backend.MmapBackend` adopts memory-mapped
        inputs without densifying them and spills pair-sized derived
        caches to sidecar files.
        """
        self = cls.__new__(cls)
        ip = np.ascontiguousarray(indptr, dtype=np.int64)
        if ip.ndim != 1 or ip.size == 0 or ip[0] != 0:
            raise WorkloadError("indptr must be 1-D, non-empty and start at 0")
        if ip.size > 1 and (np.diff(ip) < 0).any():
            raise WorkloadError("indptr must be non-decreasing")
        flat = np.ascontiguousarray(topics, dtype=np.int64)
        if flat.ndim != 1 or flat.size != int(ip[-1]):
            raise WorkloadError("topics length must equal indptr[-1]")
        self._init_common(
            event_rates,
            ip,
            flat,
            message_size_bytes,
            topic_labels,
            subscriber_labels,
            validate=validate,
            backend=backend,
        )
        return self

    def _init_common(
        self,
        event_rates: Sequence[float],
        indptr: np.ndarray,
        flat: np.ndarray,
        message_size_bytes: float,
        topic_labels: Optional[Sequence[str]],
        subscriber_labels: Optional[Sequence[str]],
        validate: bool,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        backend = backend if backend is not None else _RAM_BACKEND
        rates = np.asarray(event_rates, dtype=np.float64)
        if rates.ndim != 1:
            raise WorkloadError("event_rates must be one-dimensional")
        if rates.size and rates.min() <= 0:
            raise WorkloadError(
                "event rates must be strictly positive (paper assumes ev_t > 0)"
            )
        if message_size_bytes <= 0:
            raise WorkloadError("message_size_bytes must be positive")
        num_topics = rates.size
        num_subscribers = indptr.size - 1

        if validate and flat.size:
            self._validate_csr(num_topics, indptr, flat)

        rates = backend.adopt(rates, "event_rates")
        flat = backend.adopt(flat, "interest_topics")
        indptr = backend.adopt(indptr, "interest_indptr")

        object.__setattr__(self, "_backend", backend)
        object.__setattr__(self, "_event_rates", rates)
        object.__setattr__(self, "_indptr", indptr)
        object.__setattr__(self, "_flat_topics", flat)
        object.__setattr__(self, "_message_size_bytes", float(message_size_bytes))

        if topic_labels is not None and len(topic_labels) != num_topics:
            raise WorkloadError("topic_labels length mismatch")
        if subscriber_labels is not None and len(subscriber_labels) != num_subscribers:
            raise WorkloadError("subscriber_labels length mismatch")
        object.__setattr__(
            self, "_topic_labels", tuple(topic_labels) if topic_labels else None
        )
        object.__setattr__(
            self,
            "_subscriber_labels",
            tuple(subscriber_labels) if subscriber_labels else None,
        )
        # Lazy caches.
        object.__setattr__(self, "_interests", None)
        object.__setattr__(self, "_subscribers_of", None)
        object.__setattr__(self, "_interest_rate_sums", None)
        object.__setattr__(self, "_pair_subscribers", None)
        object.__setattr__(self, "_pair_keys", None)
        object.__setattr__(self, "_rate_desc_pairs", None)
        object.__setattr__(self, "_sorted_csr_topics", None)

    @staticmethod
    def _validate_csr(num_topics: int, indptr: np.ndarray, flat: np.ndarray) -> None:
        """Whole-array range and per-subscriber duplicate checks."""
        bad = (flat < 0) | (flat >= num_topics)
        if bad.any():
            pos = int(np.flatnonzero(bad)[0])
            v = int(np.searchsorted(indptr, pos, side="right")) - 1
            raise WorkloadError(
                f"subscriber {v} references a topic id outside "
                f"[0, {num_topics})"
            )
        # Duplicates: sort pairs by (subscriber, topic) and look for an
        # equal neighbour within the same subscriber segment.
        subs = np.repeat(
            np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr)
        )
        order = np.lexsort((flat, subs))
        st, ss = flat[order], subs[order]
        dup = (st[1:] == st[:-1]) & (ss[1:] == ss[:-1])
        if dup.any():
            v = int(ss[int(np.flatnonzero(dup)[0]) + 1])
            raise WorkloadError(
                f"subscriber {v} has duplicate topics in its interest"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Workload is immutable")

    @property
    def num_topics(self) -> int:
        """``l`` -- the number of topics."""
        return int(self._event_rates.size)

    @property
    def num_subscribers(self) -> int:
        """``n`` -- the number of subscribers."""
        return int(self._indptr.size - 1)

    @property
    def backend(self) -> ArrayBackend:
        """The storage backend holding this workload's arrays."""
        return self._backend

    @property
    def event_rates(self) -> np.ndarray:
        """Read-only array of per-topic event rates ``ev_t``."""
        return self._event_rates

    @property
    def message_size_bytes(self) -> float:
        """Mean size of a single event message in bytes."""
        return self._message_size_bytes

    def event_rate(self, topic: int) -> float:
        """Return ``ev_t`` for a single topic."""
        return float(self._event_rates[topic])

    def interest(self, subscriber: int) -> np.ndarray:
        """Return ``Tv``: the topics subscribed to by ``subscriber``."""
        return self.interests[subscriber]

    @property
    def interests(self) -> Tuple[np.ndarray, ...]:
        """All interests (``Int`` in the paper's notation).

        Materialized lazily as read-only views into the flat CSR topic
        array (no copies).
        """
        cached = self._interests
        if cached is None:
            if self.num_subscribers == 0:
                cached = ()
            else:
                cached = tuple(
                    np.split(self._flat_topics, self._indptr[1:-1].tolist())
                )
            object.__setattr__(self, "_interests", cached)
        return cached

    # ------------------------------------------------------------------
    # CSR views (the representation the vectorized hot paths consume)
    # ------------------------------------------------------------------
    @property
    def interest_indptr(self) -> np.ndarray:
        """CSR offsets: subscriber ``v`` owns ``topics[indptr[v]:indptr[v+1]]``."""
        return self._indptr

    @property
    def interest_topics(self) -> np.ndarray:
        """Flat topic ids of every ``(t, v)`` pair, subscriber-major."""
        return self._flat_topics

    def interest_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, topics)`` -- the CSR interest arrays."""
        return self._indptr, self._flat_topics

    def pair_subscribers(self) -> np.ndarray:
        """Subscriber id of every flat pair (``np.repeat`` of ``arange``).

        Together with :attr:`interest_topics` this materializes the
        workload's pair list as two parallel arrays; cached because
        every vectorized hot path starts from it.
        """
        cached = self._pair_subscribers
        if cached is None:
            cached = np.repeat(
                np.arange(self.num_subscribers, dtype=np.int64),
                np.diff(self._indptr),
            )
            cached = self._backend.cache("pair_subscribers", cached)
            object.__setattr__(self, "_pair_subscribers", cached)
        return cached

    def pair_keys(self) -> np.ndarray:
        """Sorted packed keys ``v * num_topics + t`` of every pair.

        The sorted-key form supports O(log P) vectorized membership
        tests ("is ``(t, v)`` one of the workload's pairs?") via
        ``np.searchsorted`` -- the core primitive of the vectorized
        satisfaction checks.  Empty when the workload has no topics.
        """
        cached = self._pair_keys
        if cached is None:
            if self.num_topics:
                keys = self.pair_subscribers() * np.int64(self.num_topics)
                keys = keys + self._flat_topics
                keys = np.sort(keys)
            else:
                keys = np.empty(0, dtype=np.int64)
            cached = self._backend.cache("pair_keys", keys)
            object.__setattr__(self, "_pair_keys", cached)
        return cached

    def sorted_interest_topics(self) -> np.ndarray:
        """Flat interest topics, ascending *within* each subscriber.

        Shares :attr:`interest_indptr` with the raw CSR view; cached.
        Per-subscriber sortedness turns interest-membership queries
        ("is topic ``t`` in ``Tv``?") into a segmented binary search of
        ``O(log |Tv|)`` steps -- the primitive behind the vectorized
        satisfaction reductions.
        """
        cached = self._sorted_csr_topics
        if cached is None:
            flat = self._flat_topics
            if self.num_topics == 0:
                cached = np.empty(0, dtype=np.int64)
            elif self._flat_is_subscriber_sorted():
                # Already ascending within every subscriber (true for
                # every packed-key generator and v2 trace files): the
                # raw CSR array *is* the sorted view.  Zero-copy --
                # crucial for mmap-backed workloads, where building the
                # pair_keys sort would cost pair-sized heap transients.
                cached = flat
            else:
                # pair_keys is sorted by (subscriber, topic); taking the
                # topic component back out yields the per-subscriber
                # ascending order in one pass, sharing that cache.
                cached = self.pair_keys() % np.int64(self.num_topics)
                cached = self._backend.cache("sorted_interest_topics", cached)
            object.__setattr__(self, "_sorted_csr_topics", cached)
        return cached

    def _flat_is_subscriber_sorted(self) -> bool:
        """Whether ``interest_topics`` is already ascending per subscriber.

        One whole-array neighbor comparison: every descent position
        must be a segment boundary (topics are distinct within a
        subscriber, so in-segment order must be strictly ascending).
        """
        flat = self._flat_topics
        if flat.size < 2:
            return True
        breaks = np.flatnonzero(flat[1:] <= flat[:-1]) + 1
        if breaks.size == 0:
            return True
        pos = np.searchsorted(self._indptr, breaks)
        return bool(np.all(self._indptr[np.minimum(pos, self._indptr.size - 1)] == breaks))

    def rate_descending_pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pairs sorted subscriber-major with rates descending (cached).

        Returns ``(topics, subscribers, rates, cumsum)``: every pair,
        ordered per subscriber by descending event rate with topic ids
        ascending inside equal rates -- the exact scan order of the GSP
        sweep -- plus the global running sum of the sorted rates
        (strictly increasing, so per-segment run ends are a plain
        ``np.searchsorted``).  tau-independent, hence cached on the
        workload: the cost ladder re-selects for several taus and pays
        the sort once.

        Implemented as a single ``np.argsort`` over the packed key
        ``v * l + rank(t)`` where ``rank`` orders topics by
        ``(-ev_t, t)`` -- one int64 sort instead of a three-key
        lexsort.
        """
        cached = self._rate_desc_pairs
        if cached is None:
            num_topics = self.num_topics
            rates = self._event_rates
            rank = np.empty(num_topics, dtype=np.int64)
            rank[np.lexsort((np.arange(num_topics), -rates))] = np.arange(num_topics)
            key = self.pair_subscribers() * np.int64(max(num_topics, 1))
            key = key + rank[self._flat_topics]
            order = np.argsort(key)  # keys are unique: stability not needed
            s_topics = self._flat_topics[order]
            s_subs = self.pair_subscribers()[order]
            s_rates = rates[s_topics]
            cums = np.cumsum(s_rates)
            cached = tuple(
                self._backend.cache(f"rate_desc_{tag}", arr)
                for tag, arr in (
                    ("topics", s_topics),
                    ("subscribers", s_subs),
                    ("rates", s_rates),
                    ("cumsum", cums),
                )
            )
            object.__setattr__(self, "_rate_desc_pairs", cached)
        return cached

    def interest_sizes(self) -> np.ndarray:
        """``|Tv|`` for every subscriber (one ``np.diff`` over indptr)."""
        return np.diff(self._indptr)

    def topic_label(self, topic: int) -> str:
        """Human-readable name of a topic (falls back to ``t<idx>``)."""
        if self._topic_labels is not None:
            return self._topic_labels[topic]
        return f"t{topic}"

    def subscriber_label(self, subscriber: int) -> str:
        """Human-readable name of a subscriber (falls back to ``v<idx>``)."""
        if self._subscriber_labels is not None:
            return self._subscriber_labels[subscriber]
        return f"v{subscriber}"

    # ------------------------------------------------------------------
    # Derived (cached) views
    # ------------------------------------------------------------------
    def subscribers_of(self, topic: int) -> np.ndarray:
        """Return ``Vt``: the subscribers of ``topic``.

        Built lazily for the whole workload on first use (a single
        O(pairs log pairs) vectorized pass), then served from the cache.
        """
        return self._audience_index()[topic]

    def _audience_index(self) -> Tuple[np.ndarray, ...]:
        cached = self._subscribers_of
        if cached is None:
            flat = self._flat_topics
            # Stable sort by topic keeps subscribers ascending within
            # each topic (the flat arrays are subscriber-major).
            order = np.argsort(flat, kind="stable")
            subs_sorted = self.pair_subscribers()[order]
            subs_sorted.setflags(write=False)
            counts = np.bincount(flat, minlength=self.num_topics)
            bounds = np.cumsum(counts)[:-1].tolist()
            cached = tuple(np.split(subs_sorted, bounds))
            object.__setattr__(self, "_subscribers_of", cached)
        return cached

    def audience_sizes(self) -> np.ndarray:
        """Number of subscribers per topic (``|Vt|`` for every topic)."""
        return np.bincount(self._flat_topics, minlength=self.num_topics)

    def interest_rate_sum(self, subscriber: int) -> float:
        """Return ``sum(ev_t for t in Tv)`` for a subscriber.

        This is the maximum event rate the subscriber could ever
        receive, and caps the satisfaction threshold ``tau_v``.
        """
        return float(self._rate_sums()[subscriber])

    def _rate_sums(self) -> np.ndarray:
        cached = self._interest_rate_sums
        if cached is None:
            sums = np.bincount(
                self.pair_subscribers(),
                weights=self._event_rates[self._flat_topics],
                minlength=self.num_subscribers,
            )
            sums.setflags(write=False)
            cached = sums
            object.__setattr__(self, "_interest_rate_sums", cached)
        return cached

    def interest_rate_sums(self) -> np.ndarray:
        """Vector of ``sum(ev_t for t in Tv)`` for all subscribers."""
        return self._rate_sums()

    @property
    def num_pairs(self) -> int:
        """Total number of topic-subscriber pairs in the workload."""
        return int(self._indptr[-1])

    def iter_pairs(self) -> Iterator[Pair]:
        """Iterate over every ``(t, v)`` pair of the workload."""
        flat = self._flat_topics.tolist()
        subs = self.pair_subscribers().tolist()
        for t, v in zip(flat, subs):
            yield (t, v)

    def stats(self) -> WorkloadStats:
        """Compute aggregate statistics for reporting."""
        interest_sizes = self.interest_sizes()
        audience = self.audience_sizes()
        return WorkloadStats(
            num_topics=self.num_topics,
            num_subscribers=self.num_subscribers,
            num_pairs=self.num_pairs,
            total_event_rate=float(self._event_rates.sum()),
            mean_interest_size=float(interest_sizes.mean()) if interest_sizes.size else 0.0,
            max_interest_size=int(interest_sizes.max()) if interest_sizes.size else 0,
            mean_audience_size=float(audience.mean()) if audience.size else 0.0,
            max_audience_size=int(audience.max()) if audience.size else 0,
            message_size_bytes=self._message_size_bytes,
        )

    # ------------------------------------------------------------------
    # Convenience transforms
    # ------------------------------------------------------------------
    def restrict_subscribers(self, subscribers: Iterable[int]) -> "Workload":
        """Return a sub-workload containing only the given subscribers.

        Topic ids are preserved; topics that lose their entire audience
        simply keep a zero audience.  Useful for sampling experiments.
        """
        # np.unique = sort + dedup in one whole-array pass; the hot
        # caller (incremental reselection) passes a large index array
        # every epoch, so avoid the per-element Python set round trip.
        keep = np.unique(np.asarray(
            subscribers if isinstance(subscribers, np.ndarray) else list(subscribers),
            dtype=np.int64,
        ))
        # Subset-sized segment lengths (a full np.diff would allocate a
        # parent-subscriber-sized temporary -- noticeable when slicing a
        # few rows out of an mmap-backed multi-million-row workload).
        counts = (
            self._indptr[keep + 1] - self._indptr[keep]
            if keep.size
            else np.empty(0, np.int64)
        )
        indptr = np.zeros(keep.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if keep.size and int(indptr[-1]):
            # Gather every kept subscriber's flat range in one pass:
            # global positions are the new offsets shifted segment-wise
            # to each kept subscriber's old start.
            shift = np.repeat(self._indptr[keep] - indptr[:-1], counts)
            flat = self._flat_topics[np.arange(int(indptr[-1])) + shift]
        else:
            flat = np.empty(0, dtype=np.int64)
        labels = (
            [self._subscriber_labels[v] for v in keep.tolist()]
            if self._subscriber_labels is not None
            else None
        )
        return Workload.from_csr(
            self._event_rates,
            indptr,
            flat,
            message_size_bytes=self._message_size_bytes,
            topic_labels=self._topic_labels,
            subscriber_labels=labels,
            validate=False,
        )

    def subscriber_range(self, lo: int, hi: int) -> "Workload":
        """Zero-copy sub-workload over the contiguous subscribers ``[lo, hi)``.

        The shard's subscriber ``v`` is this workload's ``lo + v``;
        topic ids and event rates are shared unchanged.  The flat
        interest array is a read-only *view* into this workload's
        (possibly mmap-backed) array -- taking a shard allocates only
        the rebased ``hi - lo + 1`` offsets, never the pair data, which
        is what makes the sharded GSP pipeline
        (:mod:`repro.selection.sharded`) out-of-core safe.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.num_subscribers:
            raise ValueError(
                f"invalid subscriber range [{lo}, {hi}) for n={self.num_subscribers}"
            )
        offsets = self._indptr[lo : hi + 1]
        indptr = offsets - offsets[0]
        flat = self._flat_topics[int(self._indptr[lo]) : int(self._indptr[hi])]
        labels = (
            self._subscriber_labels[lo:hi]
            if self._subscriber_labels is not None
            else None
        )
        return Workload.from_csr(
            self._event_rates,
            indptr,
            flat,
            message_size_bytes=self._message_size_bytes,
            topic_labels=self._topic_labels,
            subscriber_labels=labels,
            validate=False,
            backend=_ADOPT_BACKEND,
        )

    def with_message_size(self, message_size_bytes: float) -> "Workload":
        """Return a copy of the workload with a different message size.

        The CSR arrays are shared (adopted read-only, never copied), so
        this stays cheap -- and non-densifying -- for mmap-backed
        workloads.
        """
        return Workload.from_csr(
            self._event_rates,
            self._indptr,
            self._flat_topics,
            message_size_bytes=message_size_bytes,
            topic_labels=self._topic_labels,
            subscriber_labels=self._subscriber_labels,
            validate=False,
            backend=_ADOPT_BACKEND,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload(topics={self.num_topics}, "
            f"subscribers={self.num_subscribers}, pairs={self.num_pairs})"
        )


def build_workload(
    subscriptions: Mapping[int, Sequence[int]],
    event_rates: Mapping[int, float],
    message_size_bytes: float = 200.0,
) -> Workload:
    """Build a :class:`Workload` from sparse mappings.

    ``subscriptions`` maps *subscriber id -> iterable of topic ids* and
    ``event_rates`` maps *topic id -> rate*.  Ids may be arbitrary
    non-negative integers; they are compacted into dense ranges and the
    original ids are preserved as labels.

    This is the friendly entry point for users loading their own traces
    (the generators in :mod:`repro.workloads` construct dense
    :class:`Workload` objects directly).
    """
    topic_ids = sorted(event_rates)
    topic_index = {t: i for i, t in enumerate(topic_ids)}
    rates = [float(event_rates[t]) for t in topic_ids]

    subscriber_ids = sorted(subscriptions)
    interests: List[List[int]] = []
    for v in subscriber_ids:
        try:
            interests.append(sorted(topic_index[t] for t in subscriptions[v]))
        except KeyError as exc:  # re-raise with context
            raise WorkloadError(
                f"subscriber {v} subscribes to unknown topic {exc.args[0]}"
            ) from exc

    return Workload(
        rates,
        interests,
        message_size_bytes=message_size_bytes,
        topic_labels=[str(t) for t in topic_ids],
        subscriber_labels=[str(v) for v in subscriber_ids],
    )
