"""VM placement model and per-VM bandwidth accounting (Equation (2)).

A :class:`Placement` is the output of Stage 2: an assignment of the
selected topic-subscriber pairs to a fleet of VMs ``B``.  For a VM
``b`` the paper defines

    bw_b = sum_{(t,v) assigned to b} ev_t        (outgoing)
         + sum_{t hosted on b} ev_t              (incoming, once per VM)

i.e. each pair costs one outgoing copy of the topic's event stream and
each *distinct* topic hosted on a VM costs one incoming copy.  Spreading
the pairs of one topic over ``k`` VMs therefore wastes ``(k-1) * ev_t``
of incoming bandwidth -- the effect Stage 2's optimizations fight.

All bandwidth quantities on this class are kept in **bytes per time
unit** (event rate x message size) so the capacity constraint ``bw_b <=
BC`` can be checked directly against the byte-denominated VM capacity
of the pricing catalog.

Array-backed core
-----------------
The hot-path state is held in NumPy arrays so the vectorized Stage-2
packers never loop over VMs in Python:

* :meth:`Placement.used_bytes_array` / :meth:`free_bytes_array` --
  per-VM byte accounting as one float64 vector (geometrically grown);
* :meth:`Placement.hosts_mask` -- the "which VMs ingest topic t"
  bitset, served from a per-topic VM index kept incrementally;
* :meth:`Placement.assign_range` -- batch assignment of a flat
  subscriber array slice: O(1) accounting plus one adopted array
  chunk, instead of per-subscriber list work;
* :meth:`Placement.remove_range` / :meth:`Placement.remove_topic` --
  the removal/eviction mirrors of ``assign_range``, for tooling that
  mutates a live placement under churn;
* :meth:`Placement.from_pair_arrays` -- batch-materialize a whole
  placement from flat per-pair ``(vm, topic, subscriber)`` arrays
  (one lexsort, one ``assign_range`` per group);
* :meth:`Placement.new_vms` -- deploy a batch of VMs at once;
* :meth:`Placement.copy` -- an O(VMs + groups) snapshot sharing the
  immutable subscriber chunks, used by the warm-started Stage-2
  packers to adopt a prior pack's state without rebuilding it.

Per-(vm, topic) subscriber identities are retained as lists of array
chunks (appended, never extended element-wise) so the placement can be
audited (satisfaction, duplicate-assignment) and replayed by the
deployment simulator.  The per-VM :class:`VirtualMachine` objects
remain the scalar accounting/query API; each batch assignment updates
exactly one of them in O(1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .pairs import PairSelection
from .workload import Workload

__all__ = ["VirtualMachine", "Placement", "CapacityError"]


class CapacityError(ValueError):
    """Raised when an assignment would exceed a VM's bandwidth capacity."""


class VirtualMachine:
    """A single VM holding topic-subscriber pairs.

    Tracks, incrementally:

    * ``pair_counts``: ``topic -> number of pairs of that topic on
      this VM`` (subscriber identities are tracked by the owning
      :class:`Placement`);
    * the outgoing/incoming byte rates implied by those counts.
    """

    __slots__ = ("capacity_bytes", "_pair_counts", "_out_bytes", "_in_bytes")

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ValueError("VM capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._pair_counts: Dict[int, int] = {}
        self._out_bytes = 0.0
        self._in_bytes = 0.0

    # -- accounting ----------------------------------------------------
    @property
    def outgoing_bytes(self) -> float:
        """Outgoing byte rate (one copy per assigned pair)."""
        return self._out_bytes

    @property
    def incoming_bytes(self) -> float:
        """Incoming byte rate (one copy per distinct hosted topic)."""
        return self._in_bytes

    @property
    def used_bytes(self) -> float:
        """``bw_b`` -- total (incoming + outgoing) byte rate."""
        return self._out_bytes + self._in_bytes

    @property
    def free_bytes(self) -> float:
        """Remaining capacity ``BC - bw_b``."""
        return self.capacity_bytes - self.used_bytes

    @property
    def topics(self) -> Iterable[int]:
        """Distinct topics hosted on this VM."""
        return self._pair_counts.keys()

    @property
    def num_pairs(self) -> int:
        """Number of pairs assigned to this VM."""
        return sum(self._pair_counts.values())

    def pair_count(self, topic: int) -> int:
        """Number of pairs of ``topic`` on this VM."""
        return self._pair_counts.get(topic, 0)

    def hosts_topic(self, topic: int) -> bool:
        """Whether the topic's event stream is ingested by this VM."""
        return topic in self._pair_counts

    # -- mutation ------------------------------------------------------
    def addition_cost_bytes(self, topic_bytes: float, count: int, new_topic: bool) -> float:
        """Byte-rate delta of adding ``count`` pairs of a topic.

        ``topic_bytes`` is ``ev_t * message_size``; ``new_topic`` says
        whether this VM would start ingesting the topic (one extra
        incoming copy).
        """
        return topic_bytes * (count + (1 if new_topic else 0))

    def fits(self, topic_bytes: float, count: int, new_topic: bool) -> bool:
        """Whether ``count`` pairs of a topic fit in the free capacity."""
        return self.addition_cost_bytes(topic_bytes, count, new_topic) <= self.free_bytes + 1e-9

    def max_new_pairs(self, topic_bytes: float, already_hosted: bool) -> int:
        """Largest number of pairs of a topic this VM can still accept.

        Accounts for the one-off incoming copy if the topic is not yet
        hosted here.  Returns 0 when not even a single pair fits.
        """
        free = self.free_bytes + 1e-9
        if not already_hosted:
            free -= topic_bytes
        if free < topic_bytes:
            return 0
        return int(free // topic_bytes)

    def add_pairs(self, topic: int, topic_bytes: float, count: int) -> None:
        """Assign ``count`` pairs of ``topic`` to this VM.

        Raises :class:`CapacityError` if the capacity would be exceeded;
        callers are expected to check :meth:`fits` first.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        new_topic = topic not in self._pair_counts
        delta = self.addition_cost_bytes(topic_bytes, count, new_topic)
        if delta > self.free_bytes + 1e-9:
            raise CapacityError(
                f"adding {count} pairs of topic {topic} needs {delta:.1f} B "
                f"but only {self.free_bytes:.1f} B free"
            )
        self._pair_counts[topic] = self._pair_counts.get(topic, 0) + count
        self._out_bytes += topic_bytes * count
        if new_topic:
            self._in_bytes += topic_bytes

    def copy(self) -> "VirtualMachine":
        """An independent clone with identical counts and byte rates."""
        clone = VirtualMachine(self.capacity_bytes)
        clone._pair_counts = dict(self._pair_counts)
        clone._out_bytes = self._out_bytes
        clone._in_bytes = self._in_bytes
        return clone

    def remove_pairs(self, topic: int, topic_bytes: float, count: int) -> None:
        """Remove ``count`` pairs of ``topic`` from this VM.

        The accounting mirror of :meth:`add_pairs`: the outgoing rate
        drops by ``count`` copies, and when the last pair of the topic
        leaves, the VM stops ingesting it (one incoming copy freed).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        have = self._pair_counts.get(topic, 0)
        if count > have:
            raise ValueError(
                f"cannot remove {count} pairs of topic {topic}: only {have} here"
            )
        left = have - count
        self._out_bytes -= topic_bytes * count
        if left:
            self._pair_counts[topic] = left
        else:
            del self._pair_counts[topic]
            self._in_bytes -= topic_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualMachine(used={self.used_bytes:.0f}/"
            f"{self.capacity_bytes:.0f} B, topics={len(self._pair_counts)}, "
            f"pairs={self.num_pairs})"
        )


class Placement:
    """A complete assignment of selected pairs to a VM fleet.

    Stage-2 algorithms build a placement incrementally through
    :meth:`assign` / :meth:`assign_range` / :meth:`new_vm`; analysis
    code reads the aggregate properties.  See the module docstring for
    the array-backed core the vectorized packers consume.
    """

    def __init__(self, workload: Workload, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ValueError("VM capacity must be positive")
        self.workload = workload
        self.capacity_bytes = float(capacity_bytes)
        self._vms: List[VirtualMachine] = []
        # Array core: per-VM used bytes (geometrically grown buffer).
        self._used = np.zeros(8, dtype=np.float64)
        # topic -> indices of the VMs hosting it (appended on first host).
        self._topic_vms: Dict[int, List[int]] = {}
        # (vm index, topic) -> adopted subscriber-array chunks.
        self._members: Dict[Tuple[int, int], List[np.ndarray]] = {}
        self._num_pairs = 0
        # Flat-array view cache (see assignment_arrays).
        self._mutations = 0
        self._flat_cache: Optional[Tuple[int, Tuple[np.ndarray, ...]]] = None
        # Optional mutation event log (None = off).  The traced Stage-2
        # packers (repro.packing.warmstart) point this at a list to
        # capture (deploy, assign) events without a subclass dispatch
        # on the hot path; everyone else pays one None check.
        self._event_log: Optional[List[tuple]] = None

    # -- construction ----------------------------------------------------
    @classmethod
    def from_pair_arrays(
        cls,
        workload: Workload,
        capacity_bytes: float,
        vm_ids: np.ndarray,
        topics: np.ndarray,
        subscribers: np.ndarray,
        num_vms: Optional[int] = None,
    ) -> "Placement":
        """Build a placement from flat per-pair arrays in one batch pass.

        ``vm_ids``, ``topics`` and ``subscribers`` are parallel arrays,
        one row per assigned pair; VM indices must be dense in
        ``[0, num_vms)`` (``num_vms`` defaults to ``max(vm_ids) + 1``).
        One ``np.lexsort`` groups the pairs by ``(vm, topic)``; each
        group becomes a single :meth:`assign_range` whose subscriber
        slice is adopted zero-copy, so the cost is O(pairs log pairs)
        regardless of how many pairs each group holds.  The sort is
        stable: subscribers keep their input order inside each group.

        This is the batch materialization path of the dynamic
        reprovisioner (its per-epoch state is exactly these arrays).
        """
        vm = np.ascontiguousarray(vm_ids, dtype=np.int64)
        t = np.ascontiguousarray(topics, dtype=np.int64)
        v = np.ascontiguousarray(subscribers, dtype=np.int64)
        if not (vm.size == t.size == v.size):
            raise ValueError("vm_ids, topics and subscribers must be parallel")
        placement = cls(workload, capacity_bytes)
        count = int(num_vms) if num_vms is not None else (
            int(vm.max()) + 1 if vm.size else 0
        )
        if vm.size and (int(vm.min()) < 0 or int(vm.max()) >= count):
            raise ValueError(
                f"vm_ids must lie in [0, {count}); got "
                f"[{int(vm.min())}, {int(vm.max())}]"
            )
        if count:
            placement.new_vms(count)
        if vm.size == 0:
            return placement
        order = np.lexsort((t, vm))
        s_vm, s_t, s_v = vm[order], t[order], v[order]
        s_v.setflags(write=False)
        key = s_vm * np.int64(int(s_t.max()) + 1) + s_t
        starts = np.flatnonzero(np.concatenate(([True], key[1:] != key[:-1])))
        ends = np.append(starts[1:], s_vm.size)
        for g in range(starts.size):
            lo = int(starts[g])
            placement.assign_range(int(s_vm[lo]), int(s_t[lo]), s_v[lo:int(ends[g])])
        return placement

    def copy(self) -> "Placement":
        """A cheap independent snapshot of the whole placement.

        Clones the array-backed core (the per-VM used-bytes vector, the
        per-topic hosting index, the per-VM accounting objects) and
        shallow-copies the per-group chunk lists -- the subscriber
        chunks themselves are immutable (read-only arrays appended,
        never edited in place), so they are shared, making the copy
        O(VMs + assignment groups) regardless of how many pairs are
        placed.  Dict insertion orders (and therefore
        :meth:`iter_assignments` order, part of the referee pinning
        contract) are preserved.  Mutating either side never affects
        the other.  The snapshot is always a plain :class:`Placement`,
        whatever subclass it was taken from.
        """
        clone = Placement(self.workload, self.capacity_bytes)
        clone._vms = [vm.copy() for vm in self._vms]
        clone._used = self._used.copy()
        clone._topic_vms = {t: list(vms) for t, vms in self._topic_vms.items()}
        clone._members = {key: list(chunks) for key, chunks in self._members.items()}
        clone._num_pairs = self._num_pairs
        return clone

    def new_vm(self) -> int:
        """Deploy a new empty VM; returns its index."""
        return self.new_vms(1)

    def new_vms(self, count: int) -> int:
        """Deploy ``count`` new empty VMs; returns the first index."""
        if count <= 0:
            raise ValueError("count must be positive")
        first = len(self._vms)
        total = first + count
        if total > self._used.size:
            grown = np.zeros(max(2 * self._used.size, total), dtype=np.float64)
            grown[:first] = self._used[:first]
            self._used = grown
        else:
            self._used[first:total] = 0.0
        for _ in range(count):
            self._vms.append(VirtualMachine(self.capacity_bytes))
        if self._event_log is not None:
            self._event_log.append((0, count))  # (EV_NEWVMS, count)
        return first

    def assign(self, vm_index: int, topic: int, subscribers: Sequence[int]) -> None:
        """Assign pairs ``(topic, v) for v in subscribers`` to a VM."""
        self.assign_range(
            vm_index, topic, np.asarray(list(subscribers), dtype=np.int64)
        )

    def assign_range(
        self, vm_index: int, topic: int, subscribers: np.ndarray
    ) -> None:
        """Batch-assign a flat subscriber array to one VM.

        The array is adopted (not copied) when it is already read-only
        -- the contract of the CSR slices the vectorized packers pass
        -- and defensively copied otherwise.  Accounting is O(1) in the
        number of subscribers: one :meth:`VirtualMachine.add_pairs`
        update plus one chunk append.
        """
        subs = np.asarray(subscribers, dtype=np.int64)
        if subs.size == 0:
            return
        if subs.flags.writeable:
            subs = subs.copy()
            subs.setflags(write=False)
        topic = int(topic)
        vm = self._vms[vm_index]
        new_topic = not vm.hosts_topic(topic)
        vm.add_pairs(topic, self.topic_bytes(topic), int(subs.size))
        self._used[vm_index] = vm.used_bytes
        if new_topic:
            self._topic_vms.setdefault(topic, []).append(vm_index)
        self._members.setdefault((vm_index, topic), []).append(subs)
        self._num_pairs += int(subs.size)
        self._mutations += 1
        if self._event_log is not None:
            # (EV_ASSIGN, vm, topic, chunk); the adopted (read-only)
            # chunk, so replaying the log re-adopts it zero-copy.
            self._event_log.append((1, vm_index, topic, subs))

    def remove_range(
        self, vm_index: int, topic: int, subscribers: np.ndarray
    ) -> None:
        """Batch-remove pairs ``(topic, v) for v in subscribers`` from a VM.

        The removal mirror of :meth:`assign_range`: one membership mask
        over the group's flattened chunks, one O(1) accounting update.
        Public surgery primitive for tooling that maintains a *live*
        placement under churn (the bundled reprovisioner instead keeps
        flat pair arrays and re-materializes via
        :meth:`from_pair_arrays`, because its referee renumbers VMs
        every epoch).  ``subscribers`` must be distinct and all
        currently assigned to ``(vm_index, topic)`` -- a ``ValueError``
        means the caller's bookkeeping has diverged from the placement,
        so it must never pass silently.
        """
        subs = np.asarray(subscribers, dtype=np.int64)
        if subs.size == 0:
            return
        topic = int(topic)
        chunks = self._members.get((vm_index, topic))
        if not chunks:
            raise ValueError(
                f"VM {vm_index} hosts no pairs of topic {topic}"
            )
        flat = self._group_members(chunks)
        keep = ~np.isin(flat, subs)
        removed = int(flat.size - int(keep.sum()))
        if removed != subs.size or np.unique(subs).size != subs.size:
            raise ValueError(
                f"not all listed subscribers of topic {topic} are assigned "
                f"to VM {vm_index} (or duplicates were passed)"
            )
        vm = self._vms[vm_index]
        vm.remove_pairs(topic, self.topic_bytes(topic), removed)
        self._used[vm_index] = vm.used_bytes
        if removed < flat.size:
            kept = flat[keep]
            kept.setflags(write=False)
            self._members[(vm_index, topic)] = [kept]
        else:
            del self._members[(vm_index, topic)]
            hosting = self._topic_vms[topic]
            hosting.remove(vm_index)
            if not hosting:
                del self._topic_vms[topic]
        self._num_pairs -= removed
        self._mutations += 1

    def remove_topic(self, vm_index: int, topic: int) -> np.ndarray:
        """Evict a whole topic group from a VM; returns its subscribers.

        Batch eviction primitive for live-placement tooling (see
        :meth:`remove_range`): the VM stops ingesting the topic and the
        freed pairs can re-enter through :meth:`assign_range` elsewhere.
        """
        topic = int(topic)
        chunks = self._members.get((vm_index, topic))
        if not chunks:
            raise ValueError(f"VM {vm_index} hosts no pairs of topic {topic}")
        members = self._group_members(chunks)
        vm = self._vms[vm_index]
        vm.remove_pairs(topic, self.topic_bytes(topic), int(members.size))
        self._used[vm_index] = vm.used_bytes
        del self._members[(vm_index, topic)]
        hosting = self._topic_vms[topic]
        hosting.remove(vm_index)
        if not hosting:
            del self._topic_vms[topic]
        self._num_pairs -= int(members.size)
        self._mutations += 1
        return members

    def topic_bytes(self, topic: int) -> float:
        """Byte rate of one copy of a topic's event stream."""
        return self.workload.event_rate(topic) * self.workload.message_size_bytes

    # -- views -----------------------------------------------------------
    @property
    def vms(self) -> Sequence[VirtualMachine]:
        """The VM fleet ``B`` (read-only view)."""
        return tuple(self._vms)

    def vm(self, vm_index: int) -> VirtualMachine:
        """O(1) access to one VM (no fleet tuple materialization)."""
        return self._vms[vm_index]

    @property
    def num_vms(self) -> int:
        """``|B|``."""
        return len(self._vms)

    def used_bytes_array(self) -> np.ndarray:
        """Per-VM ``bw_b`` as one float64 vector (read-only view)."""
        view = self._used[: len(self._vms)].view()
        view.setflags(write=False)
        return view

    def free_bytes_array(self) -> np.ndarray:
        """Per-VM ``BC - bw_b`` as a fresh float64 vector (a snapshot)."""
        return self.capacity_bytes - self._used[: len(self._vms)]

    def hosts_mask(self, topic: int) -> np.ndarray:
        """Boolean vector over VMs: does VM ``b`` ingest ``topic``?"""
        mask = np.zeros(len(self._vms), dtype=bool)
        hosting = self._topic_vms.get(int(topic))
        if hosting:
            mask[hosting] = True
        return mask

    def hosting_vms(self, topic: int) -> List[int]:
        """Indices of the VMs ingesting ``topic``, in first-host order."""
        return list(self._topic_vms.get(int(topic), ()))

    @property
    def total_bytes(self) -> float:
        """``sum(bw_b)`` in bytes per time unit."""
        return float(self._used[: len(self._vms)].sum())

    @property
    def total_outgoing_bytes(self) -> float:
        """Aggregate outgoing byte rate over the fleet."""
        return sum(vm.outgoing_bytes for vm in self._vms)

    @property
    def total_incoming_bytes(self) -> float:
        """Aggregate incoming byte rate over the fleet."""
        return sum(vm.incoming_bytes for vm in self._vms)

    @property
    def num_pairs(self) -> int:
        """Total number of assigned pairs."""
        return self._num_pairs

    def _group_members(self, chunks: List[np.ndarray]) -> np.ndarray:
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    def members(self, vm_index: int, topic: int) -> List[int]:
        """Subscribers of ``topic`` served from VM ``vm_index``."""
        chunks = self._members.get((vm_index, topic))
        if not chunks:
            return []
        return self._group_members(chunks).tolist()

    def vm_topics(self, vm_index: int) -> List[int]:
        """Distinct topics hosted on a VM."""
        return list(self._vms[vm_index].topics)

    def topic_replicas(self, topic: int) -> int:
        """Number of VMs ingesting ``topic`` (replication degree)."""
        return len(self._topic_vms.get(int(topic), ()))

    def iter_assignments(self) -> Iterator[Tuple[int, int, List[int]]]:
        """Yield ``(vm_index, topic, subscribers)`` triples."""
        for (b, t), chunks in self._members.items():
            yield b, t, self._group_members(chunks).tolist()

    def assignment_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The assignments as flat arrays (vectorized-validator view).

        Returns ``(vm_ids, topics, sizes, subscribers)``: one entry per
        (vm, topic) group in :meth:`iter_assignments` order, plus the
        concatenated subscriber ids (group-major).  Cached until the
        next :meth:`assign`, so repeated audits of a finished placement
        flatten the chunk lists only once.
        """
        cached = self._flat_cache
        if cached is not None and cached[0] == self._mutations:
            return cached[1]
        groups = len(self._members)
        vm_ids = np.empty(groups, dtype=np.int64)
        topics = np.empty(groups, dtype=np.int64)
        sizes = np.empty(groups, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for g, ((b, t), group) in enumerate(self._members.items()):
            arr = self._group_members(group)
            vm_ids[g] = b
            topics[g] = t
            sizes[g] = arr.size
            chunks.append(arr)
        subscribers = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        arrays = (vm_ids, topics, sizes, subscribers)
        self._flat_cache = (self._mutations, arrays)
        return arrays

    def topics_by_subscriber(self) -> Dict[int, List[int]]:
        """``subscriber -> distinct topics delivered`` over the fleet.

        A pair assigned to several VMs (allowed by Equation (3)'s
        ``max_b``) counts once.
        """
        seen: Dict[int, set] = {}
        for (_, t), chunks in self._members.items():
            for v in self._group_members(chunks).tolist():
                seen.setdefault(v, set()).add(t)
        return {v: sorted(topics) for v, topics in seen.items()}

    def to_selection(self) -> PairSelection:
        """Collapse the placement back into the distinct pair set."""
        by_topic: Dict[int, set] = {}
        for (_, t), chunks in self._members.items():
            by_topic.setdefault(t, set()).update(
                self._group_members(chunks).tolist()
            )
        return PairSelection({t: sorted(s) for t, s in by_topic.items()})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Placement(vms={self.num_vms}, pairs={self.num_pairs}, "
            f"bytes={self.total_bytes:.0f})"
        )
