"""Incremental maintenance of the reprovisioner's two sort orders.

:class:`~repro.dynamic.reprovision.IncrementalReprovisioner` keeps its
pair table in canonical subscriber-major ``(subscriber, topic)`` order
and, each epoch, additionally needs the ``(vm, topic)`` group index --
the permutation that sorts the table VM-major.  The batch pipeline
obtained both with ``np.lexsort`` over the full table: two
O(P log P) sorts per epoch even when the epoch touched a handful of
pairs.  Under sustained micro-epoch churn (the serving layer's regime)
those two sorts dominate the epoch cost.

This module replaces them with sorted merges.  Both orders are total:
``(subscriber, topic)`` keys are unique by construction (a pair is
selected at most once) and ``(vm, topic, subscriber)`` keys are unique
because a subscriber appears at most once per topic.  A total order has
exactly one sorted permutation, so the merge-maintained result is
**bit-identical** to the lexsort it replaces -- the equivalence suite
pins the whole pipeline against the ``reprovision-loop`` referee either
way.

Per epoch the kept rows are already sorted in both orders (a subset of
a sorted sequence is sorted, and VM assignments of kept rows do not
change), so only the A added rows need sorting; the merge is
O(P + A log A + P log A) via ``np.searchsorted`` rank arithmetic,
amortizing the group-index cost away for small epochs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["advance_orders"]

# Composite keys must stay well inside int64; beyond this the caller
# falls back to lexsort (which needs no composite key at all).
_KEY_LIMIT = 2**62


def advance_orders(
    kept_v: np.ndarray,
    kept_t: np.ndarray,
    kept_vm: np.ndarray,
    kept_bt: np.ndarray,
    add_v: np.ndarray,
    add_t: np.ndarray,
    add_vm: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge kept and freshly placed pairs, maintaining both orders.

    Parameters
    ----------
    kept_v, kept_t, kept_vm:
        Surviving pairs, in canonical ``(subscriber, topic)`` order
        (the masked subset of last epoch's sorted table).
    kept_bt:
        Indices into the kept arrays listing them in
        ``(vm, topic, subscriber)`` order -- last epoch's group-index
        permutation with dropped rows squeezed out and re-ranked.
    add_v, add_t, add_vm:
        Freshly placed pairs, in placement order (unsorted).

    Returns
    -------
    ``(p_v, p_t, p_vm, bt_perm)`` -- the merged table in canonical
    ``(subscriber, topic)`` order plus the permutation sorting it
    ``(vm, topic, subscriber)``-major, both bit-identical to what
    ``np.lexsort`` would produce on the concatenated table.
    """
    n_keep = int(kept_v.size)
    n_add = int(add_v.size)
    total = n_keep + n_add
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()

    nb_v = int(max(
        int(kept_v.max()) if n_keep else -1,
        int(add_v.max()) if n_add else -1,
    )) + 1
    nb_t = int(max(
        int(kept_t.max()) if n_keep else -1,
        int(add_t.max()) if n_add else -1,
    )) + 1
    nb_vm = int(max(
        int(kept_vm.max()) if n_keep else -1,
        int(add_vm.max()) if n_add else -1,
    )) + 1
    if nb_vm * nb_t * nb_v >= _KEY_LIMIT:
        # Composite keys would overflow int64: sort outright.  (Python
        # ints above never overflow, so the guard itself is exact.)
        p_v = np.concatenate([kept_v, add_v])
        p_t = np.concatenate([kept_t, add_t])
        p_vm = np.concatenate([kept_vm, add_vm])
        order_vt = np.lexsort((p_t, p_v))
        p_v, p_t, p_vm = p_v[order_vt], p_t[order_vt], p_vm[order_vt]
        return p_v, p_t, p_vm, np.lexsort((p_t, p_vm))

    # ---- canonical (subscriber, topic) order: merge by rank ----------
    add_order = np.lexsort((add_t, add_v))
    kept_keys = kept_v * nb_t + kept_t
    add_keys = (add_v * nb_t + add_t)[add_order]
    dest_kept = (
        np.arange(n_keep, dtype=np.int64)
        + np.searchsorted(add_keys, kept_keys)
    )
    dest_add = (
        np.searchsorted(kept_keys, add_keys)
        + np.arange(n_add, dtype=np.int64)
    )
    p_v = np.empty(total, dtype=np.int64)
    p_t = np.empty(total, dtype=np.int64)
    p_vm = np.empty(total, dtype=np.int64)
    p_v[dest_kept] = kept_v
    p_t[dest_kept] = kept_t
    p_vm[dest_kept] = kept_vm
    p_v[dest_add] = add_v[add_order]
    p_t[dest_add] = add_t[add_order]
    p_vm[dest_add] = add_vm[add_order]

    # ---- (vm, topic, subscriber) group index: merge two runs ---------
    # Kept rows in bt order, re-addressed to their merged positions;
    # their relative order is unchanged because kept keys are unchanged.
    a_pos = dest_kept[kept_bt]
    # Added rows sorted bt-major, re-addressed via placement index.
    add_bt = np.lexsort((add_v, add_t, add_vm))
    final_add = np.empty(n_add, dtype=np.int64)
    final_add[add_order] = dest_add
    b_pos = final_add[add_bt]
    key = (p_vm * nb_t + p_t) * nb_v + p_v
    a_keys = key[a_pos]
    b_keys = key[b_pos]
    dest_a = (
        np.arange(a_pos.size, dtype=np.int64)
        + np.searchsorted(b_keys, a_keys)
    )
    dest_b = (
        np.searchsorted(a_keys, b_keys)
        + np.arange(b_pos.size, dtype=np.int64)
    )
    bt_perm = np.empty(total, dtype=np.int64)
    bt_perm[dest_a] = a_pos
    bt_perm[dest_b] = b_pos
    return p_v, p_t, p_vm, bt_perm
