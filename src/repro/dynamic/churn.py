"""Workload churn model for dynamic reprovisioning experiments.

Section IV-F motivates re-running the allocator periodically "to adapt
to the changes in the event rates, new subscriptions, unsubscriptions,
etc.", and Section VI leaves an online algorithm as future work.  This
module supplies the *change process*: given a workload, draw the next
epoch's workload by

* unsubscribing a fraction of existing pairs,
* subscribing new pairs (popularity-biased, like the generators),
* drifting every topic's event rate lognormally.

The deltas are reported explicitly so an incremental reprovisioner can
react to exactly what changed instead of re-reading the world.

Vectorized epoch surgery
------------------------
:class:`ChurnModel` (the default) performs the whole epoch as CSR
surgery on the workload's flat interest arrays: the unsubscribe draw is
resolved against the canonical pair enumeration (subscriber-major,
topics ascending -- exactly :meth:`Workload.pair_keys` order), deleted
pairs are mask-compressed out of the sorted key array, the subscribe
batch is deduplicated and membership-tested with one ``searchsorted``
against the surviving keys, and the next epoch's workload is rebuilt
through :meth:`Workload.from_csr` without ever materializing a Python
set per subscriber.  The resulting :class:`WorkloadDelta` carries flat
NumPy arrays; the tuple-of-pairs views remain available as lazy
properties.

:class:`LoopChurnModel` (``churn-loop``) is the retained per-subscriber
referee: dict-of-sets surgery, one Python set per subscriber and a list
of every pair per epoch.  Its only change from the pre-vectorization
code is that pairs are enumerated in the canonical sorted order instead
of Python-set iteration order, which makes the random draws (and hence
the whole epoch stream) well-defined; with that, the vectorized model
is **bit-identical** to the referee on shared seeds -- the contract
``tests/test_vectorized_equivalence.py`` pins, epoch after epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import Pair, Workload
from ..core.segsearch import sorted_member

__all__ = ["ChurnConfig", "WorkloadDelta", "ChurnModel", "LoopChurnModel"]


@dataclass(frozen=True)
class ChurnConfig:
    """Per-epoch churn intensities."""

    unsubscribe_fraction: float = 0.02
    subscribe_fraction: float = 0.02
    rate_drift_sigma: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.unsubscribe_fraction < 1:
            raise ValueError("unsubscribe_fraction must be in [0, 1)")
        if self.subscribe_fraction < 0:
            raise ValueError("subscribe_fraction must be non-negative")
        if self.rate_drift_sigma < 0:
            raise ValueError("rate_drift_sigma must be non-negative")


def _as_pair_array(pairs: Sequence[Pair]) -> Tuple[np.ndarray, np.ndarray]:
    topics = np.fromiter((t for t, _v in pairs), dtype=np.int64, count=len(pairs))
    subs = np.fromiter((v for _t, v in pairs), dtype=np.int64, count=len(pairs))
    return topics, subs


class WorkloadDelta:
    """What changed between two epochs, carried as flat arrays.

    The native representation is four parallel int64 arrays (subscribed
    and unsubscribed pairs, in draw order) plus the changed-topic id
    array -- the form the vectorized reprovisioner consumes directly.
    The historical tuple-of-pairs views (:attr:`subscribed`,
    :attr:`unsubscribed`, :attr:`rate_changed_topics`) are materialized
    lazily for compatibility and for small-scale test code.
    """

    __slots__ = (
        "workload",
        "subscribed_topics",
        "subscribed_subscribers",
        "unsubscribed_topics",
        "unsubscribed_subscribers",
        "changed_topics",
        "_subscribed",
        "_unsubscribed",
        "_touched",
    )

    def __init__(
        self,
        workload: Workload,
        subscribed_topics: np.ndarray,
        subscribed_subscribers: np.ndarray,
        unsubscribed_topics: np.ndarray,
        unsubscribed_subscribers: np.ndarray,
        changed_topics: np.ndarray,
    ) -> None:
        self.workload = workload
        for name, arr in (
            ("subscribed_topics", subscribed_topics),
            ("subscribed_subscribers", subscribed_subscribers),
            ("unsubscribed_topics", unsubscribed_topics),
            ("unsubscribed_subscribers", unsubscribed_subscribers),
            ("changed_topics", changed_topics),
        ):
            a = np.asarray(arr, dtype=np.int64)
            # Freeze a private copy when asarray aliased the caller's
            # (writable) array -- the delta must be immutable without
            # side effects on caller-owned buffers.
            if a is arr and a.flags.writeable:
                a = a.copy()
            a.setflags(write=False)
            setattr(self, name, a)
        if self.subscribed_topics.size != self.subscribed_subscribers.size:
            raise ValueError("subscribed pair arrays must be parallel")
        if self.unsubscribed_topics.size != self.unsubscribed_subscribers.size:
            raise ValueError("unsubscribed pair arrays must be parallel")
        self._subscribed: Optional[Tuple[Pair, ...]] = None
        self._unsubscribed: Optional[Tuple[Pair, ...]] = None
        self._touched: Optional[np.ndarray] = None

    @classmethod
    def from_pairs(
        cls,
        workload: Workload,
        subscribed: Sequence[Pair],
        unsubscribed: Sequence[Pair],
        changed_topics: Sequence[int],
    ) -> "WorkloadDelta":
        """Build from pair tuples (the loop referee's native output)."""
        st, sv = _as_pair_array(subscribed)
        ut, uv = _as_pair_array(unsubscribed)
        return cls(
            workload, st, sv, ut, uv, np.asarray(changed_topics, dtype=np.int64)
        )

    # -- compatibility views -------------------------------------------
    @property
    def subscribed(self) -> Tuple[Pair, ...]:
        """New ``(t, v)`` pairs as tuples, in draw order (lazy view)."""
        if self._subscribed is None:
            self._subscribed = tuple(
                zip(self.subscribed_topics.tolist(), self.subscribed_subscribers.tolist())
            )
        return self._subscribed

    @property
    def unsubscribed(self) -> Tuple[Pair, ...]:
        """Dropped ``(t, v)`` pairs as tuples, in draw order (lazy view)."""
        if self._unsubscribed is None:
            self._unsubscribed = tuple(
                zip(
                    self.unsubscribed_topics.tolist(),
                    self.unsubscribed_subscribers.tolist(),
                )
            )
        return self._unsubscribed

    @property
    def rate_changed_topics(self) -> Tuple[int, ...]:
        """Topics whose event rate moved this epoch (tuple view)."""
        return tuple(self.changed_topics.tolist())

    @property
    def touched_subscribers(self) -> Set[int]:
        """Subscribers whose interest changed (set view)."""
        return set(self.touched_array().tolist())

    def touched_array(self) -> np.ndarray:
        """Sorted unique subscribers whose interest changed (cached)."""
        if self._touched is None:
            self._touched = np.unique(
                np.concatenate(
                    [self.subscribed_subscribers, self.unsubscribed_subscribers]
                )
            )
        return self._touched


class ChurnModel:
    """Evolve a workload epoch by epoch; deterministic given a seed.

    Whole-array implementation: one epoch is two ``rng`` draws resolved
    against the canonical sorted pair enumeration, a mask-compress, a
    sorted merge and a ``Workload.from_csr`` -- no per-subscriber Python
    objects.  Bit-identical to :class:`LoopChurnModel` on shared seeds.
    """

    def __init__(
        self,
        workload: Workload,
        config: ChurnConfig = ChurnConfig(),
        seed: Optional[int] = 0,
    ) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._workload = workload

    @property
    def workload(self) -> Workload:
        """The current epoch's workload."""
        return self._workload

    def rng_state(self) -> dict:
        """The bit-generator state, as a JSON-able dict.

        Together with :meth:`set_rng_state` this is the
        checkpoint/resume seam: restoring the state makes the next
        :meth:`step` draw exactly what an uninterrupted run would have
        drawn (see :mod:`repro.resilience.checkpoint`).
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Rewind/advance the stream to a :meth:`rng_state` capture."""
        self._rng.bit_generator.state = state

    def step(self) -> WorkloadDelta:
        """Advance one epoch and return the delta."""
        cfg = self.config
        rng = self._rng
        workload = self._workload
        num_topics = workload.num_topics
        num_subscribers = workload.num_subscribers
        num_pairs = workload.num_pairs

        # Canonical pair enumeration: subscriber-major, topics ascending
        # == the sorted packed keys v * l + t.
        keys = workload.pair_keys()
        degrees = workload.interest_sizes()
        big_l = np.int64(max(num_topics, 1))

        # Unsubscriptions: drop a uniform fraction of existing pairs,
        # but never a subscriber's last topic (subscribers do not
        # vanish mid-experiment; they lose interest in topics).  The
        # draw-order semantics of the referee -- the j-th pick of a
        # subscriber succeeds only while more than one topic remains --
        # collapse to: the first ``degree - 1`` picks of each
        # subscriber (in draw order) succeed.
        unsub_t = np.empty(0, dtype=np.int64)
        unsub_v = np.empty(0, dtype=np.int64)
        unsub_pos = np.empty(0, dtype=np.int64)
        if num_pairs and cfg.unsubscribe_fraction > 0:
            k = int(num_pairs * cfg.unsubscribe_fraction)
            picks = rng.choice(num_pairs, size=k, replace=False).astype(np.int64)
            if picks.size:
                v_of = keys[picks] // big_l
                # Rank of each pick within its subscriber, in draw order.
                order = np.argsort(v_of, kind="stable")
                sv = v_of[order]
                new_grp = np.empty(sv.size, dtype=bool)
                new_grp[0] = True
                np.not_equal(sv[1:], sv[:-1], out=new_grp[1:])
                grp_starts = np.flatnonzero(new_grp)
                grp_id = np.cumsum(new_grp) - 1
                rank_sorted = np.arange(sv.size, dtype=np.int64) - grp_starts[grp_id]
                rank = np.empty_like(rank_sorted)
                rank[order] = rank_sorted
                ok = rank < degrees[v_of] - 1
                unsub_pos = picks[ok]
                unsub_v = v_of[ok]
                unsub_t = keys[unsub_pos] % big_l

        keep = np.ones(num_pairs, dtype=bool)
        keep[unsub_pos] = False
        current_keys = keys[keep]

        # Subscriptions: popularity-biased new pairs (rate-weighted, a
        # proxy for follower counts).  Sequential accept semantics --
        # "not already subscribed at processing time" -- reduce to:
        # not in the post-unsubscribe pair set, and the first
        # occurrence within the batch.
        sub_t = np.empty(0, dtype=np.int64)
        sub_v = np.empty(0, dtype=np.int64)
        if cfg.subscribe_fraction > 0 and num_topics > 0:
            k = int(num_pairs * cfg.subscribe_fraction)
            weights = workload.event_rates / workload.event_rates.sum()
            topics = rng.choice(num_topics, size=k, p=weights).astype(np.int64)
            subscribers = rng.integers(0, num_subscribers, size=k).astype(np.int64)
            if topics.size:
                cand = subscribers * big_l + topics
                present = sorted_member(current_keys, cand)
                first = np.zeros(cand.size, dtype=bool)
                first[np.unique(cand, return_index=True)[1]] = True
                accept = first & ~present
                sub_t = topics[accept]
                sub_v = subscribers[accept]

        # Rate drift: multiplicative lognormal, floored at one event.
        rates = workload.event_rates.copy()
        changed = np.empty(0, dtype=np.int64)
        if cfg.rate_drift_sigma > 0:
            factors = np.exp(
                rng.normal(0.0, cfg.rate_drift_sigma, size=num_topics)
            )
            new_rates = np.maximum(1.0, np.round(rates * factors))
            changed = np.flatnonzero(new_rates != rates)
            rates = new_rates

        if sub_t.size:
            new_keys = np.sort(
                np.concatenate([current_keys, sub_v * big_l + sub_t])
            )
        else:
            new_keys = current_keys
        flat = new_keys % big_l
        counts = np.bincount(new_keys // big_l, minlength=num_subscribers)
        indptr = np.zeros(num_subscribers + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._workload = Workload.from_csr(
            rates,
            indptr,
            flat,
            message_size_bytes=workload.message_size_bytes,
            validate=False,
        )
        return WorkloadDelta(
            self._workload, sub_t, sub_v, unsub_t, unsub_v, changed
        )


class LoopChurnModel:
    """The retained dict-of-sets churn referee (``churn-loop``).

    One Python set per subscriber, a list of every ``(t, v)`` pair per
    epoch -- the pre-vectorization implementation, kept as an
    executable specification.  Only change: pairs are enumerated in the
    canonical sorted order (subscriber-major, topics ascending) rather
    than Python-set iteration order, so the random draws resolve to a
    well-defined pair stream that the vectorized model reproduces
    bit-exactly on shared seeds.
    """

    def __init__(
        self,
        workload: Workload,
        config: ChurnConfig = ChurnConfig(),
        seed: Optional[int] = 0,
    ) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._workload = workload

    @property
    def workload(self) -> Workload:
        """The current epoch's workload."""
        return self._workload

    def step(self) -> WorkloadDelta:
        """Advance one epoch and return the delta."""
        cfg = self.config
        rng = self._rng
        workload = self._workload
        num_topics = workload.num_topics

        interests: List[Set[int]] = [
            set(workload.interest(v).tolist())
            for v in range(workload.num_subscribers)
        ]
        all_pairs: List[Pair] = [
            (t, v) for v, topics in enumerate(interests) for t in sorted(topics)
        ]

        # Unsubscriptions: drop a uniform fraction of existing pairs,
        # but never a subscriber's last topic (subscribers do not
        # vanish mid-experiment; they lose interest in topics).
        unsubscribed: List[Pair] = []
        if all_pairs and cfg.unsubscribe_fraction > 0:
            k = int(len(all_pairs) * cfg.unsubscribe_fraction)
            for idx in rng.choice(len(all_pairs), size=k, replace=False):
                t, v = all_pairs[int(idx)]
                if len(interests[v]) > 1 and t in interests[v]:
                    interests[v].discard(t)
                    unsubscribed.append((t, v))

        # Subscriptions: popularity-biased new pairs (rate-weighted, a
        # proxy for follower counts).
        subscribed: List[Pair] = []
        if cfg.subscribe_fraction > 0 and num_topics > 0:
            k = int(len(all_pairs) * cfg.subscribe_fraction)
            weights = workload.event_rates / workload.event_rates.sum()
            topics = rng.choice(num_topics, size=k, p=weights)
            subscribers = rng.integers(0, workload.num_subscribers, size=k)
            for t, v in zip(topics.tolist(), subscribers.tolist()):
                if t not in interests[v]:
                    interests[v].add(t)
                    subscribed.append((t, v))

        # Rate drift: multiplicative lognormal, floored at one event.
        rates = workload.event_rates.copy()
        changed_topics: Tuple[int, ...] = ()
        if cfg.rate_drift_sigma > 0:
            factors = np.exp(
                rng.normal(0.0, cfg.rate_drift_sigma, size=num_topics)
            )
            new_rates = np.maximum(1.0, np.round(rates * factors))
            changed_topics = tuple(
                int(t) for t in np.flatnonzero(new_rates != rates)
            )
            rates = new_rates

        self._workload = Workload(
            rates,
            [sorted(s) for s in interests],
            message_size_bytes=workload.message_size_bytes,
        )
        return WorkloadDelta.from_pairs(
            self._workload, subscribed, unsubscribed, changed_topics
        )
