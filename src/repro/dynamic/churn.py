"""Workload churn model for dynamic reprovisioning experiments.

Section IV-F motivates re-running the allocator periodically "to adapt
to the changes in the event rates, new subscriptions, unsubscriptions,
etc.", and Section VI leaves an online algorithm as future work.  This
module supplies the *change process*: given a workload, draw the next
epoch's workload by

* unsubscribing a fraction of existing pairs,
* subscribing new pairs (popularity-biased, like the generators),
* drifting every topic's event rate lognormally.

The deltas are reported explicitly so an incremental reprovisioner can
react to exactly what changed instead of re-reading the world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import Pair, Workload

__all__ = ["ChurnConfig", "WorkloadDelta", "ChurnModel"]


@dataclass(frozen=True)
class ChurnConfig:
    """Per-epoch churn intensities."""

    unsubscribe_fraction: float = 0.02
    subscribe_fraction: float = 0.02
    rate_drift_sigma: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.unsubscribe_fraction < 1:
            raise ValueError("unsubscribe_fraction must be in [0, 1)")
        if self.subscribe_fraction < 0:
            raise ValueError("subscribe_fraction must be non-negative")
        if self.rate_drift_sigma < 0:
            raise ValueError("rate_drift_sigma must be non-negative")


@dataclass(frozen=True)
class WorkloadDelta:
    """What changed between two epochs."""

    workload: Workload
    subscribed: Tuple[Pair, ...]
    unsubscribed: Tuple[Pair, ...]
    rate_changed_topics: Tuple[int, ...]

    @property
    def touched_subscribers(self) -> Set[int]:
        """Subscribers whose interest changed."""
        return {v for _t, v in self.subscribed} | {v for _t, v in self.unsubscribed}


class ChurnModel:
    """Evolve a workload epoch by epoch; deterministic given a seed."""

    def __init__(
        self,
        workload: Workload,
        config: ChurnConfig = ChurnConfig(),
        seed: Optional[int] = 0,
    ) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._workload = workload

    @property
    def workload(self) -> Workload:
        """The current epoch's workload."""
        return self._workload

    def step(self) -> WorkloadDelta:
        """Advance one epoch and return the delta."""
        cfg = self.config
        rng = self._rng
        workload = self._workload
        num_topics = workload.num_topics

        interests: List[Set[int]] = [
            set(workload.interest(v).tolist())
            for v in range(workload.num_subscribers)
        ]
        all_pairs: List[Pair] = [
            (t, v) for v, topics in enumerate(interests) for t in topics
        ]

        # Unsubscriptions: drop a uniform fraction of existing pairs,
        # but never a subscriber's last topic (subscribers do not
        # vanish mid-experiment; they lose interest in topics).
        unsubscribed: List[Pair] = []
        if all_pairs and cfg.unsubscribe_fraction > 0:
            k = int(len(all_pairs) * cfg.unsubscribe_fraction)
            for idx in rng.choice(len(all_pairs), size=k, replace=False):
                t, v = all_pairs[int(idx)]
                if len(interests[v]) > 1 and t in interests[v]:
                    interests[v].discard(t)
                    unsubscribed.append((t, v))

        # Subscriptions: popularity-biased new pairs (rate-weighted, a
        # proxy for follower counts).
        subscribed: List[Pair] = []
        if cfg.subscribe_fraction > 0 and num_topics > 0:
            k = int(len(all_pairs) * cfg.subscribe_fraction)
            weights = workload.event_rates / workload.event_rates.sum()
            topics = rng.choice(num_topics, size=k, p=weights)
            subscribers = rng.integers(0, workload.num_subscribers, size=k)
            for t, v in zip(topics.tolist(), subscribers.tolist()):
                if t not in interests[v]:
                    interests[v].add(t)
                    subscribed.append((t, v))

        # Rate drift: multiplicative lognormal, floored at one event.
        rates = workload.event_rates.copy()
        changed_topics: Tuple[int, ...] = ()
        if cfg.rate_drift_sigma > 0:
            factors = np.exp(
                rng.normal(0.0, cfg.rate_drift_sigma, size=num_topics)
            )
            new_rates = np.maximum(1.0, np.round(rates * factors))
            changed_topics = tuple(
                int(t) for t in np.flatnonzero(new_rates != rates)
            )
            rates = new_rates

        self._workload = Workload(
            rates,
            [sorted(s) for s in interests],
            message_size_bytes=workload.message_size_bytes,
        )
        return WorkloadDelta(
            workload=self._workload,
            subscribed=tuple(subscribed),
            unsubscribed=tuple(unsubscribed),
            rate_changed_topics=changed_topics,
        )
