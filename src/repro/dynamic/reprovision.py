"""Incremental reprovisioning across workload epochs.

The paper's answer to workload dynamics is "re-run the whole solver
periodically" (Section IV-F); a true online algorithm is left as future
work (Section VI).  This module implements that future-work extension
in the most natural form compatible with the two-stage structure:

* per epoch, Stage 1 is re-run **only for subscribers whose interest
  or threshold changed** (selection is per-subscriber independent, so
  the untouched selections remain optimal w.r.t. the greedy);
* removed pairs are plucked out of their VMs; new pairs are placed
  preferring VMs that already host the topic (no extra ingest), then
  the most-free VM, then a fresh VM;
* rate drift re-prices every VM; overloaded VMs evict their
  smallest-rate topic groups, which re-enter through the same placer;
* empty VMs are terminated;
* when the incremental fleet drifts more than ``rebuild_threshold``
  above a fresh two-stage solve, the reprovisioner rebuilds from
  scratch (the paper's periodic full re-run, used as a safety net
  rather than the steady state).

The per-epoch :class:`EpochReport` records cost, move counts, and how
the incremental solution compares to solving from scratch -- the
stability-vs-optimality trade-off an online system actually cares
about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core import MCSSProblem, Pair, PairSelection, Placement, SolutionCost
from ..pricing import PricingPlan
from ..solver import MCSSSolver

__all__ = ["EpochReport", "IncrementalReprovisioner"]

_EPS = 1e-12


@dataclass(frozen=True)
class EpochReport:
    """What one epoch of reprovisioning did."""

    epoch: int
    cost: SolutionCost
    fresh_cost: SolutionCost
    pairs_added: int
    pairs_removed: int
    pairs_moved: int
    vms_opened: int
    vms_closed: int
    rebuilt: bool
    seconds: float

    @property
    def drift(self) -> float:
        """Incremental cost relative to a fresh solve (1.0 = equal)."""
        if self.fresh_cost.total_usd == 0:
            return 1.0
        return self.cost.total_usd / self.fresh_cost.total_usd


class IncrementalReprovisioner:
    """Maintain a near-optimal placement under workload churn."""

    def __init__(
        self,
        problem: MCSSProblem,
        rebuild_threshold: float = 1.15,
        solver: Optional[MCSSSolver] = None,
    ) -> None:
        if rebuild_threshold < 1.0:
            raise ValueError("rebuild_threshold must be >= 1.0")
        self._solver = solver or MCSSSolver.paper()
        self._rebuild_threshold = rebuild_threshold
        self._tau = problem.tau
        self._plan = problem.plan
        self._epoch = 0

        solution = self._solver.solve(problem)
        self._workload = problem.workload
        # Mutable mirror of the placement: vm -> topic -> set(subs).
        self._vms: List[Dict[int, Set[int]]] = []
        for b in range(solution.placement.num_vms):
            table: Dict[int, Set[int]] = {}
            for t in solution.placement.vm_topics(b):
                table[t] = set(solution.placement.members(b, t))
            self._vms.append(table)
        # subscriber -> set of selected topics (the Stage-1 state).
        self._selected: Dict[int, Set[int]] = {}
        for t, v in solution.selection:
            self._selected.setdefault(v, set()).add(t)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def problem(self) -> MCSSProblem:
        """The current epoch's MCSS instance."""
        return MCSSProblem(self._workload, self._tau, self._plan)

    def placement(self) -> Placement:
        """Materialize the current assignment as a Placement."""
        problem = self.problem
        placement = problem.empty_placement()
        for table in self._vms:
            if not table:
                continue
            b = placement.new_vm()
            for t, subs in sorted(table.items()):
                placement.assign(b, t, sorted(subs))
        return placement

    def step(self, new_workload) -> EpochReport:
        """Adapt to a new epoch's workload; returns the epoch report.

        Accepts either a :class:`~repro.dynamic.churn.WorkloadDelta`
        (preferred: only touched subscribers are re-selected) or a bare
        :class:`~repro.core.workload.Workload` (every subscriber is
        re-checked).
        """
        t0 = time.perf_counter()
        self._epoch += 1
        from .churn import WorkloadDelta  # local import avoids a cycle

        if isinstance(new_workload, WorkloadDelta):
            delta = new_workload
            workload = delta.workload
            touched = set(delta.touched_subscribers)
            # Rate changes move thresholds, so every subscriber of a
            # re-priced topic must be re-checked.
            if delta.rate_changed_topics:
                changed = set(delta.rate_changed_topics)
                for v in range(workload.num_subscribers):
                    if changed.intersection(workload.interest(v).tolist()):
                        touched.add(v)
        else:
            workload = new_workload
            touched = set(range(workload.num_subscribers))

        old_workload = self._workload
        self._workload = workload

        added, removed = self._reselect(touched, old_workload)
        moves = self._evict_overloaded()
        opened_before = len(self._vms)
        for t, v in removed:
            self._remove_pair(t, v)
        placed = list(added) + moves
        for t, v in placed:
            self._place_pair(t, v)
        closed = self._close_empty_vms()

        # Compare against a fresh solve; rebuild when drifted too far.
        problem = self.problem
        fresh = self._solver.solve(problem)
        placement = self.placement()
        cost = problem.cost_components(
            placement.num_vms, placement.total_bytes
        )
        rebuilt = False
        if cost.total_usd > fresh.cost.total_usd * self._rebuild_threshold:
            self._adopt(fresh.placement, fresh.selection)
            placement = self.placement()
            cost = problem.cost_components(placement.num_vms, placement.total_bytes)
            rebuilt = True

        return EpochReport(
            epoch=self._epoch,
            cost=cost,
            fresh_cost=fresh.cost,
            pairs_added=len(added),
            pairs_removed=len(removed),
            pairs_moved=len(moves),
            vms_opened=max(0, len(self._vms) - opened_before),
            vms_closed=closed,
            rebuilt=rebuilt,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    # Stage-1 incremental re-selection
    # ------------------------------------------------------------------
    def _reselect(
        self, touched: Set[int], old_workload
    ) -> Tuple[List[Pair], List[Pair]]:
        """Re-run greedy selection for touched subscribers only."""
        workload = self._workload
        rates = workload.event_rates
        tau = float(self._tau)
        added: List[Pair] = []
        removed: List[Pair] = []

        for v in touched:
            old_topics = self._selected.get(v, set())
            if v >= workload.num_subscribers:
                # Subscriber disappeared entirely.
                removed.extend((t, v) for t in old_topics)
                self._selected.pop(v, None)
                continue
            interest = workload.interest(v)
            new_topics = self._greedy_for(interest, rates, tau)
            for t in old_topics - new_topics:
                removed.append((t, v))
            for t in new_topics - old_topics:
                added.append((t, v))
            if new_topics:
                self._selected[v] = new_topics
            else:
                self._selected.pop(v, None)
        return added, removed

    @staticmethod
    def _greedy_for(interest, rates, tau: float) -> Set[int]:
        """Single-subscriber GSP (same schedule as GreedySelectPairs)."""
        if interest.size == 0:
            return set()
        topic_rates = rates[interest]
        tau_v = min(tau, float(topic_rates.sum()))
        if tau_v <= 0:
            return set()
        order = np.lexsort((interest, -topic_rates))
        chosen: Set[int] = set()
        remaining = tau_v
        best_skip, best_rate = -1, float("inf")
        for i in order.tolist():
            if remaining <= _EPS:
                break
            rate = float(topic_rates[i])
            if rate <= remaining + _EPS:
                chosen.add(int(interest[i]))
                remaining -= rate
            elif rate < best_rate:
                best_rate = rate
                best_skip = int(interest[i])
        if remaining > _EPS:
            chosen.add(best_skip)
        return chosen

    # ------------------------------------------------------------------
    # Placement surgery
    # ------------------------------------------------------------------
    def _vm_used_bytes(self, table: Dict[int, Set[int]]) -> float:
        rates = self._workload.event_rates
        msg = self._workload.message_size_bytes
        return sum(
            float(rates[t]) * (len(subs) + 1) for t, subs in table.items()
        ) * msg

    def _remove_pair(self, t: int, v: int) -> None:
        for table in self._vms:
            subs = table.get(t)
            if subs is not None and v in subs:
                subs.discard(v)
                if not subs:
                    del table[t]
                return

    def _place_pair(self, t: int, v: int) -> None:
        """Host-topic VM first, then most-free, then a fresh VM."""
        rates = self._workload.event_rates
        msg = self._workload.message_size_bytes
        capacity = self._plan.capacity_bytes
        topic_bytes = float(rates[t]) * msg

        best_idx = -1
        best_free = -1.0
        for idx, table in enumerate(self._vms):
            used = self._vm_used_bytes(table)
            free = capacity - used
            need = topic_bytes if t in table else 2.0 * topic_bytes
            if need <= free + 1e-9:
                # Prefer any VM already hosting the topic; among the
                # rest, the most free one.
                score = free + (capacity if t in table else 0.0)
                if score > best_free:
                    best_free = score
                    best_idx = idx
        if best_idx < 0:
            self._vms.append({})
            best_idx = len(self._vms) - 1
        self._vms[best_idx].setdefault(t, set()).add(v)

    def _evict_overloaded(self) -> List[Pair]:
        """Evict smallest-rate topic groups until every VM fits."""
        rates = self._workload.event_rates
        capacity = self._plan.capacity_bytes
        evicted: List[Pair] = []
        for table in self._vms:
            while table and self._vm_used_bytes(table) > capacity + 1e-6:
                t = min(table, key=lambda t_: float(rates[t_]) * len(table[t_]))
                for v in sorted(table.pop(t)):
                    evicted.append((t, v))
        # Stale pairs (topics that vanished from interests) are dropped
        # rather than re-placed.
        valid: List[Pair] = []
        for t, v in evicted:
            if t in self._selected.get(v, set()):
                valid.append((t, v))
        return valid

    def _close_empty_vms(self) -> int:
        before = len(self._vms)
        self._vms = [table for table in self._vms if table]
        return before - len(self._vms)

    def _adopt(self, placement: Placement, selection: PairSelection) -> None:
        """Replace internal state with a fresh solve's output."""
        self._vms = []
        for b in range(placement.num_vms):
            table: Dict[int, Set[int]] = {}
            for t in placement.vm_topics(b):
                table[t] = set(placement.members(b, t))
            self._vms.append(table)
        self._selected = {}
        for t, v in selection:
            self._selected.setdefault(v, set()).add(t)
