"""Incremental reprovisioning across workload epochs.

The paper's answer to workload dynamics is "re-run the whole solver
periodically" (Section IV-F); a true online algorithm is left as future
work (Section VI).  This module implements that future-work extension
in the most natural form compatible with the two-stage structure:

* per epoch, Stage 1 is re-run **only for subscribers whose interest
  or threshold changed** (selection is per-subscriber independent, so
  the untouched selections remain optimal w.r.t. the greedy);
* removed pairs are plucked out of their VMs; new pairs are placed
  preferring VMs that already host the topic (no extra ingest), then
  the most-free VM, then a fresh VM;
* rate drift re-prices every VM; overloaded VMs evict their
  smallest-rate topic groups, which re-enter through the same placer;
* empty VMs are terminated;
* when the incremental fleet drifts more than ``rebuild_threshold``
  above a fresh two-stage solve, the reprovisioner rebuilds from
  scratch (the paper's periodic full re-run, used as a safety net
  rather than the steady state).

Array-backed epoch pipeline
---------------------------
:class:`IncrementalReprovisioner` (the default) holds its whole state
as flat arrays -- one ``(subscriber, topic, vm)`` row per placed pair,
sorted subscriber-major -- and runs each epoch as whole-array passes:

* the rate-changed-topic scan is one boolean gather over the CSR
  ``interest_topics`` (the old referee intersected a Python set per
  subscriber: O(V * d));
* touched subscribers are re-selected **in one batch** through the
  vectorized GSP on a :meth:`Workload.restrict_subscribers` sub-view,
  and added/removed pairs fall out of two sorted-key set differences;
* per-VM used bytes are one ``np.bincount`` over the (vm, topic)
  groups; eviction walks only the overloaded VMs;
* added pairs are placed grouped by topic: per pair one ``argmax``
  over a maintained score vector (``free + capacity * hosts``) instead
  of a Python rescan of every VM that re-sums its table;
* the placement is materialized on demand via
  :meth:`Placement.from_pair_arrays`;
* both sort orders -- the canonical ``(subscriber, topic)`` table and
  the ``(vm, topic)`` group index -- are **maintained across epochs**
  by sorted merges (:mod:`repro.dynamic.group_index`): kept rows stay
  sorted, only the added rows are sorted, and the per-epoch
  O(P log P) lexsorts amortize away under micro-epoch churn while the
  resulting permutations stay bit-identical to the lexsorts they
  replace (both key sets are total orders).

The per-epoch **fresh solve** the old code paid just to measure drift
is gated: a vectorized Algorithm-5 lower bound prices the epoch in
O(pairs) array work, and a full reference solve runs only every
``fresh_solve_every`` epochs (the paper's periodic re-run as a safety
net) or when the calibrated estimate suggests the incremental fleet
may have drifted past ``rebuild_threshold``.  See :class:`EpochReport`
for how drift is reported on estimate-only epochs.

:class:`LoopIncrementalReprovisioner` (``reprovision-loop``) is the
retained dict-of-sets referee.  Its only changes from the
pre-vectorization code make its decisions well-defined so they can be
pinned: added pairs are placed in canonical ``(topic, subscriber)``
order (previously Python-set iteration order) and eviction breaks
rate ties by topic id (previously dict order).  With integer-valued
event rates (all bundled generators) every byte total is exactly
representable, and the vectorized reprovisioner produces **identical
epoch placements, costs and move counts** -- the contract enforced by
``tests/test_vectorized_equivalence.py`` on shared-seed churn streams
(with ``fresh_solve_every=1``, matching the referee's every-epoch
fresh solve).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..bounds import lower_bound
from ..core import MCSSProblem, Pair, PairSelection, Placement, SolutionCost
from ..core.segsearch import sorted_member as _sorted_member
from ..selection import GreedySelectPairs
from ..solver import MCSSSolver
from .group_index import advance_orders

__all__ = [
    "EpochReport",
    "IncrementalReprovisioner",
    "LoopIncrementalReprovisioner",
]

_EPS = 1e-12


@dataclass(frozen=True)
class EpochReport:
    """What one epoch of reprovisioning did.

    ``fresh_cost`` is the cost of a from-scratch solve when one ran
    this epoch (always, for the loop referee; on gated epochs for the
    vectorized reprovisioner) and ``None`` otherwise.
    ``fresh_estimate_usd`` is the calibrated Algorithm-5 estimate of
    the fresh cost that gated the decision.  :attr:`drift` falls back
    to the estimate on estimate-only epochs; the skip condition
    guarantees it stays within the rebuild threshold either way.
    """

    epoch: int
    cost: SolutionCost
    fresh_cost: Optional[SolutionCost]
    pairs_added: int
    pairs_removed: int
    pairs_moved: int
    vms_opened: int
    vms_closed: int
    rebuilt: bool
    seconds: float
    fresh_solved: bool = True
    fresh_estimate_usd: float = 0.0

    @property
    def drift(self) -> float:
        """Incremental cost relative to a fresh solve (1.0 = equal).

        On epochs where the fresh solve was skipped, relative to the
        calibrated lower-bound estimate of the fresh cost instead.
        """
        reference = (
            self.fresh_cost.total_usd
            if self.fresh_cost is not None
            else self.fresh_estimate_usd
        )
        if reference == 0:
            return 1.0
        return self.cost.total_usd / reference


def _estimate_lower_bound(problem: MCSSProblem) -> float:
    """Algorithm-5 lower bound in USD, as whole-array passes (cheap)."""
    return lower_bound(problem).total_usd


class IncrementalReprovisioner:
    """Maintain a near-optimal placement under workload churn.

    Parameters
    ----------
    problem:
        The epoch-0 MCSS instance (solved once at construction).
    rebuild_threshold:
        Rebuild from scratch when the incremental cost exceeds a fresh
        solve by this factor (>= 1.0).
    solver:
        The reference solver for the initial/fresh solves (defaults to
        the paper configuration, GSP + full CBP).
    fresh_solve_every:
        Cadence of the guaranteed fresh reference solve (>= 1).  In
        between, the fresh solve runs only when the calibrated
        Algorithm-5 estimate says the fleet may have drifted past the
        rebuild threshold; ``1`` reproduces the referee's
        fresh-solve-every-epoch behavior exactly.
    """

    def __init__(
        self,
        problem: MCSSProblem,
        rebuild_threshold: float = 1.15,
        solver: Optional[MCSSSolver] = None,
        fresh_solve_every: int = 8,
    ) -> None:
        if rebuild_threshold < 1.0:
            raise ValueError("rebuild_threshold must be >= 1.0")
        if fresh_solve_every < 1:
            raise ValueError("fresh_solve_every must be >= 1")
        self._solver = solver or MCSSSolver.paper()
        # Incremental re-selection is the GSP schedule by construction
        # (per-subscriber independent), regardless of the fresh solver.
        self._selector = GreedySelectPairs()
        self._rebuild_threshold = rebuild_threshold
        self._fresh_every = int(fresh_solve_every)
        self._tau = problem.tau
        self._plan = problem.plan
        self._epoch = 0
        self._since_fresh = 0

        solution = self._solver.solve(problem)
        self._workload = problem.workload
        self._adopt(solution.placement)
        lb = _estimate_lower_bound(problem)
        self._lb_ratio = solution.cost.total_usd / lb if lb > 0 else 1.0

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def problem(self) -> MCSSProblem:
        """The current epoch's MCSS instance."""
        return MCSSProblem(self._workload, self._tau, self._plan)

    def placement(self) -> Placement:
        """Materialize the current assignment as a Placement."""
        return Placement.from_pair_arrays(
            self._workload,
            self._plan.capacity_bytes,
            self._p_vm,
            self._p_t,
            self._p_v,
            num_vms=self._num_vms,
        )

    def selection(self) -> PairSelection:
        """The current Stage-1 state (== the placed pair set)."""
        return PairSelection.from_csr(self._p_t, None, self._p_v, trusted=True)

    @property
    def epoch(self) -> int:
        """Epochs stepped so far (0 before the first :meth:`step`)."""
        return self._epoch

    @property
    def num_vms(self) -> int:
        """Current fleet size (without materializing the placement)."""
        return self._num_vms

    def snapshot(self) -> dict:
        """The complete mutable state as a dict of arrays and scalars.

        Everything :meth:`restore` needs to continue the run bit-exactly
        without re-solving: the sorted pair arrays, fleet size, epoch
        counters, the calibration ratio, the solve parameters, and the
        current workload (carried by reference -- persist its CSR arrays
        through the backend seam; see
        :mod:`repro.resilience.checkpoint`).  ``used_bytes`` is derived
        state included as an integrity cross-check.
        """
        return {
            "pair_subscribers": self._p_v.copy(),
            "pair_topics": self._p_t.copy(),
            "pair_vms": self._p_vm.copy(),
            "used_bytes": self._used_bytes(),
            "num_vms": int(self._num_vms),
            "epoch": int(self._epoch),
            "since_fresh": int(self._since_fresh),
            "lb_ratio": float(self._lb_ratio),
            "tau": float(self._tau),
            "rebuild_threshold": float(self._rebuild_threshold),
            "fresh_solve_every": int(self._fresh_every),
            "workload": self._workload,
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        plan,
        solver: Optional[MCSSSolver] = None,
    ) -> "IncrementalReprovisioner":
        """Rebuild from a :meth:`snapshot` without re-solving epoch 0.

        ``plan`` is configuration, not run state, so the caller passes
        the same :class:`ProvisioningPlan` the original run used.  The
        stored ``used_bytes`` is recomputed from the pair arrays and
        cross-checked, catching a snapshot whose members were swapped
        or tampered with after the per-member digests were stripped.
        """
        inst = cls.__new__(cls)
        inst._solver = solver or MCSSSolver.paper()
        inst._selector = GreedySelectPairs()
        inst._rebuild_threshold = float(snapshot["rebuild_threshold"])
        inst._fresh_every = int(snapshot["fresh_solve_every"])
        inst._tau = float(snapshot["tau"])
        inst._plan = plan
        inst._epoch = int(snapshot["epoch"])
        inst._since_fresh = int(snapshot["since_fresh"])
        inst._lb_ratio = float(snapshot["lb_ratio"])
        inst._workload = snapshot["workload"]
        inst._p_v = np.asarray(snapshot["pair_subscribers"], dtype=np.int64)
        inst._p_t = np.asarray(snapshot["pair_topics"], dtype=np.int64)
        inst._p_vm = np.asarray(snapshot["pair_vms"], dtype=np.int64)
        inst._num_vms = int(snapshot["num_vms"])
        if not (inst._p_v.shape == inst._p_t.shape == inst._p_vm.shape):
            raise ValueError("snapshot pair arrays disagree in length")
        # Derived state: the group-index permutation is rebuilt rather
        # than persisted, keeping the checkpoint format unchanged.
        inst._bt_perm = np.lexsort((inst._p_t, inst._p_vm))
        recomputed = inst._used_bytes()
        stored = np.asarray(snapshot["used_bytes"], dtype=np.float64)
        if stored.shape != recomputed.shape or not np.allclose(
            stored, recomputed, rtol=1e-9, atol=0.0
        ):
            raise ValueError(
                "snapshot used_bytes does not match its pair arrays "
                "(inconsistent or tampered snapshot)"
            )
        return inst

    def _used_bytes(self) -> np.ndarray:
        """Per-VM used bytes derived from the pair arrays (whole-array)."""
        rates = self._workload.event_rates
        msg = self._workload.message_size_bytes
        if not self._p_v.size:
            return np.zeros(self._num_vms, dtype=np.float64)
        big_l = int(self._workload.num_topics)
        gkey, g_cnt = np.unique(
            self._p_vm * big_l + self._p_t, return_counts=True
        )
        return (
            np.bincount(
                gkey // big_l,
                weights=rates[gkey % big_l] * (g_cnt + 1),
                minlength=self._num_vms,
            ).astype(np.float64)
            * msg
        )

    def step(self, new_workload) -> EpochReport:
        """Adapt to a new epoch's workload; returns the epoch report.

        Accepts either a :class:`~repro.dynamic.churn.WorkloadDelta`
        (preferred: only touched subscribers are re-selected) or a bare
        :class:`~repro.core.workload.Workload` (every subscriber is
        re-checked).
        """
        t0 = time.perf_counter()
        self._epoch += 1
        from .churn import WorkloadDelta  # local import avoids a cycle

        delta = new_workload if isinstance(new_workload, WorkloadDelta) else None
        workload = delta.workload if delta is not None else new_workload
        self._workload = workload
        n = workload.num_subscribers
        rates = workload.event_rates
        msg = workload.message_size_bytes
        capacity = self._plan.capacity_bytes
        big_l = np.int64(
            max(
                workload.num_topics,
                int(self._p_t.max()) + 1 if self._p_t.size else 0,
                1,
            )
        )

        # ---- touched subscribers (vectorized rate-changed scan) ------
        touched = np.zeros(n, dtype=bool)
        vanished = np.empty(0, dtype=np.int64)
        if delta is not None:
            ta = delta.touched_array()
            vanished = ta[ta >= n]
            touched[ta[ta < n]] = True
            changed = delta.changed_topics
            if changed.size:
                # Rate changes move thresholds, so every subscriber of
                # a re-priced topic must be re-checked: one boolean
                # gather over the CSR interest arrays replaces the old
                # per-subscriber set intersection.
                lut = np.zeros(workload.num_topics, dtype=bool)
                lut[changed] = True
                hit = lut[workload.interest_topics]
                touched[workload.pair_subscribers()[hit]] = True
        else:
            touched[:] = True

        # ---- Stage 1: batched incremental re-selection ---------------
        # Old selection == placed pairs, subscriber-major sorted keys.
        old_keys = self._p_v * big_l + self._p_t
        pair_lut_size = int(max(n, self._p_v.max() + 1 if self._p_v.size else 0))
        touch_lut = np.zeros(pair_lut_size, dtype=bool)
        touch_lut[:n] = touched
        if vanished.size:
            touch_lut[vanished[vanished < pair_lut_size]] = True
        touched_pair = (
            touch_lut[self._p_v] if self._p_v.size else np.empty(0, dtype=bool)
        )
        old_touched_keys = old_keys[touched_pair]

        touched_idx = np.flatnonzero(touched)
        if touched_idx.size and workload.num_pairs:
            sub_workload = workload.restrict_subscribers(touched_idx)
            sub_problem = MCSSProblem(sub_workload, self._tau, self._plan)
            sub_selection = self._selector.select(sub_problem)
            sel_t, sel_v_local = sub_selection.pair_arrays()
            new_keys = np.sort(touched_idx[sel_v_local] * big_l + sel_t)
        else:
            new_keys = np.empty(0, dtype=np.int64)

        removed_keys = old_touched_keys[~_sorted_member(new_keys, old_touched_keys)]
        added_keys = new_keys[~_sorted_member(old_touched_keys, new_keys)]
        # Post-reselect selection, for the eviction validity filter.
        kept_keys = old_keys[~_sorted_member(removed_keys, old_keys)]

        # ---- re-price + (vm, topic) group index ----------------------
        # Maintained incrementally across epochs (see group_index.py):
        # identical to np.lexsort((self._p_t, self._p_vm)) because the
        # (vm, topic, subscriber) keys form a total order.
        order_bt = self._bt_perm
        s_vm = self._p_vm[order_bt]
        s_t = self._p_t[order_bt]
        if s_vm.size:
            gkey = s_vm * big_l + s_t
            starts = np.flatnonzero(
                np.concatenate(([True], gkey[1:] != gkey[:-1]))
            )
            g_vm = s_vm[starts]
            g_t = s_t[starts]
            g_cnt = np.diff(np.append(starts, s_vm.size))
        else:
            g_vm = g_t = g_cnt = starts = np.empty(0, dtype=np.int64)
        used = (
            np.bincount(
                g_vm, weights=rates[g_t] * (g_cnt + 1), minlength=self._num_vms
            ).astype(np.float64)
            * msg
        )

        # ---- eviction of overloaded VMs ------------------------------
        drop = np.zeros(self._p_v.size, dtype=bool)
        moves_t: List[np.ndarray] = []
        moves_v: List[np.ndarray] = []
        group_alive = np.ones(g_vm.size, dtype=bool)
        group_ends = np.append(starts, s_vm.size)[1:] if g_vm.size else starts
        # repolint: allow(VL01): one iteration per overloaded VM (churn-bounded, usually none)
        for b in np.flatnonzero(used > capacity + 1e-6).tolist():
            lo = int(np.searchsorted(g_vm, b))
            hi = int(np.searchsorted(g_vm, b, side="right"))
            if lo == hi:
                continue
            local_w = rates[g_t[lo:hi]] * g_cnt[lo:hi]
            local_alive = np.ones(hi - lo, dtype=bool)
            # repolint: allow(VL01): one masked argmin per evicted group -- referee-identical tie-breaks
            while used[b] > capacity + 1e-6 and local_alive.any():
                # Smallest rate * count; topic-id tie-break is argmin's
                # first-index rule (topics ascend within the VM slice).
                masked = np.where(local_alive, local_w, np.inf)
                i = int(np.argmin(masked))
                local_alive[i] = False
                group_alive[lo + i] = False
                g = lo + i
                t = int(g_t[g])
                used[b] -= rates[t] * (g_cnt[g] + 1) * msg
                sl = slice(int(starts[g]), int(group_ends[g]))
                drop[order_bt[sl]] = True
                # Members ascend (base order is subscriber-major).
                moves_t.append(np.full(int(g_cnt[g]), t, dtype=np.int64))
                moves_v.append(self._p_v[order_bt[sl]])
        if moves_t:
            mt = np.concatenate(moves_t)
            mv = np.concatenate(moves_v)
            # Stale pairs (no longer selected) are dropped, not re-placed.
            mkeys = mv * big_l + mt
            valid = _sorted_member(kept_keys, mkeys) | _sorted_member(
                added_keys, mkeys
            )
            mt, mv = mt[valid], mv[valid]
        else:
            mt = mv = np.empty(0, dtype=np.int64)

        # ---- apply removals ------------------------------------------
        if removed_keys.size:
            pos = np.searchsorted(old_keys, removed_keys)
            fresh_drop = pos[~drop[pos]]
            drop[pos] = True
            if fresh_drop.size:
                # Per-group removal counts -> used-bytes decrement, with
                # the extra ingest copy back when a group empties.
                rkey = self._p_vm[fresh_drop] * big_l + self._p_t[fresh_drop]
                uk, uc = np.unique(rkey, return_counts=True)
                gi = np.searchsorted(gkey[starts], uk)
                left = g_cnt[gi] - uc
                dec = rates[uk % big_l] * (uc + (left == 0)) * msg
                used -= np.bincount(
                    uk // big_l, weights=dec, minlength=used.size
                )
                group_alive[gi[left == 0]] = False
                g_cnt_after = g_cnt.copy()
                g_cnt_after[gi] = left
            else:
                g_cnt_after = g_cnt
        else:
            g_cnt_after = g_cnt

        # ---- place added pairs (grouped by topic) + evicted moves ----
        opened_before = self._num_vms
        if added_keys.size:
            at = added_keys % big_l
            av = added_keys // big_l
            order_tv = np.lexsort((av, at))  # canonical (topic, sub) order
            at, av = at[order_tv], av[order_tv]
        else:
            at = av = np.empty(0, dtype=np.int64)
        place_t = np.concatenate([at, mt])
        place_v = np.concatenate([av, mv])
        placed_vm, used = self._place_stream(
            place_t, place_v, used, capacity, rates, msg,
            g_vm, g_t, g_cnt_after, group_alive,
        )

        # ---- rebuild the pair arrays + close empty VMs ---------------
        # Kept rows are already sorted in both orders, so the canonical
        # (subscriber, topic) table and the (vm, topic) group index are
        # advanced by sorted merges instead of full lexsorts -- the two
        # O(P log P) sorts amortize away under micro-epoch churn.
        keep_mask = ~drop
        kept_rank = np.cumsum(keep_mask) - 1
        sel = keep_mask[order_bt]
        kept_bt = kept_rank[order_bt[sel]]
        self._p_v, self._p_t, self._p_vm, self._bt_perm = advance_orders(
            self._p_v[keep_mask],
            self._p_t[keep_mask],
            self._p_vm[keep_mask],
            kept_bt,
            place_v,
            place_t,
            placed_vm,
        )
        total_vms = self._num_vms
        pair_counts = np.bincount(self._p_vm, minlength=total_vms)
        live = pair_counts > 0
        closed = int(total_vms - int(live.sum()))
        if closed:
            # Monotone remap: relative VM order is preserved, so the
            # maintained group-index permutation stays valid.
            remap = np.cumsum(live) - 1
            self._p_vm = remap[self._p_vm]
        self._num_vms = int(live.sum())
        used = used[live]

        # ---- cost + gated drift check --------------------------------
        problem = self.problem
        cost = problem.cost_components(self._num_vms, float(used.sum()))
        self._since_fresh += 1
        lb = _estimate_lower_bound(problem)
        estimate = lb * self._lb_ratio
        fresh = None
        rebuilt = False
        if (
            self._since_fresh >= self._fresh_every
            or cost.total_usd > estimate * self._rebuild_threshold
        ):
            fresh = self._solver.solve(problem)
            self._since_fresh = 0
            self._lb_ratio = fresh.cost.total_usd / lb if lb > 0 else 1.0
            if cost.total_usd > fresh.cost.total_usd * self._rebuild_threshold:
                self._adopt(fresh.placement)
                cost = problem.cost_components(
                    fresh.placement.num_vms, fresh.placement.total_bytes
                )
                rebuilt = True

        return EpochReport(
            epoch=self._epoch,
            cost=cost,
            fresh_cost=fresh.cost if fresh is not None else None,
            pairs_added=int(added_keys.size),
            pairs_removed=int(removed_keys.size),
            pairs_moved=int(mt.size),
            # Mirror the referee's formula at report time (after any
            # rebuild adopt): fleet size now minus fleet size before
            # placement.  On non-rebuild epochs this equals the gross
            # append count, because opens and closes are mutually
            # exclusive (an empty VM always fits any feasible pair, so
            # nothing is appended while one exists).
            vms_opened=max(0, self._num_vms - opened_before),
            vms_closed=closed,
            rebuilt=rebuilt,
            seconds=time.perf_counter() - t0,
            fresh_solved=fresh is not None,
            fresh_estimate_usd=estimate,
        )

    # ------------------------------------------------------------------
    # Placement surgery
    # ------------------------------------------------------------------
    def _place_stream(
        self,
        place_t: np.ndarray,
        place_v: np.ndarray,
        used: np.ndarray,
        capacity: float,
        rates: np.ndarray,
        msg: float,
        g_vm: np.ndarray,
        g_t: np.ndarray,
        g_cnt: np.ndarray,
        group_alive: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assign a pair stream to VMs, replicating the referee's scan.

        Per pair, the referee scores every VM as ``free + capacity *
        hosts(t)`` among those with room (``topic_bytes`` if hosting,
        twice that otherwise) and takes the first maximum; here that
        scan is a handful of whole-array ops plus one masked
        ``np.argmax`` per pair over the maintained used-bytes vector --
        still O(VMs) per pair like the referee, but without the Python
        rescan that re-sums every VM's table per candidate (see ROADMAP
        for the within-topic waterfall batching that would amortize the
        argmax if this ever profiles hot).  Runs of equal topics (the
        canonical grouped-by-topic order) share the hosting mask.
        Returns ``(vm per pair, per-VM used bytes)``; ``self._num_vms``
        is updated to include freshly opened VMs.
        """
        placed_vm = np.empty(place_t.size, dtype=np.int64)
        if place_t.size == 0:
            return placed_vm, used
        num_vms = self._num_vms
        cap_vms = num_vms + place_t.size  # worst case: one fresh VM per pair
        used_buf = np.zeros(cap_vms, dtype=np.float64)
        used_buf[:num_vms] = used
        # Host sets survive across runs of the same topic (an added run
        # now, an evicted move later must see the VMs it just filled).
        host_sets: Dict[int, Set[int]] = {}
        hosted = group_alive & (g_cnt > 0)
        # repolint: allow(VL01): host-set index build feeding the sequential placement below
        for g in np.flatnonzero(hosted).tolist():
            host_sets.setdefault(int(g_t[g]), set()).add(int(g_vm[g]))

        run_topic = -1
        host_mask = np.zeros(cap_vms, dtype=bool)
        # repolint: allow(VL01): one masked argmax per added pair -- batching is ROADMAP item 5
        for i in range(place_t.size):
            t = int(place_t[i])
            if t != run_topic:
                run_topic = t
                host_mask[:] = False
                hosts = host_sets.get(t)
                if hosts:
                    host_mask[list(hosts)] = True
            tb = float(rates[t]) * msg
            free = capacity - used_buf[:num_vms]
            mask = host_mask[:num_vms]
            need = np.where(mask, tb, 2.0 * tb)
            fits = need <= free + 1e-9
            if fits.any():
                score = np.where(fits, free + np.where(mask, capacity, 0.0), -np.inf)
                b = int(np.argmax(score))
                used_buf[b] += need[b]
            else:
                b = num_vms
                num_vms += 1
                used_buf[b] = 2.0 * tb
            placed_vm[i] = b
            host_mask[b] = True
            host_sets.setdefault(t, set()).add(b)
        self._num_vms = num_vms
        return placed_vm, used_buf[:num_vms]

    def _adopt(self, placement: Placement) -> None:
        """Replace internal state with a fresh solve's placement."""
        vm_ids, topics, sizes, subscribers = placement.assignment_arrays()
        p_vm = np.repeat(vm_ids, sizes)
        p_t = np.repeat(topics, sizes)
        p_v = np.asarray(subscribers, dtype=np.int64)
        order = np.lexsort((p_t, p_v))
        self._p_v = p_v[order]
        self._p_t = p_t[order]
        self._p_vm = p_vm[order]
        self._num_vms = placement.num_vms
        self._bt_perm = np.lexsort((self._p_t, self._p_vm))


class LoopIncrementalReprovisioner:
    """The retained dict-of-sets referee (``reprovision-loop``).

    One Python set per (vm, topic) group and per-pair placement scans
    that re-sum every VM's table -- the pre-vectorization
    implementation, kept as an executable specification for the
    equivalence suite.  Two canonicalizations make its decisions
    well-defined (and hence pinnable): added pairs are placed in sorted
    ``(topic, subscriber)`` order instead of Python-set iteration
    order, and eviction breaks equal ``rate * count`` ties by topic id
    instead of dict insertion order.  It still pays a full fresh solve
    every epoch, exactly as before.
    """

    def __init__(
        self,
        problem: MCSSProblem,
        rebuild_threshold: float = 1.15,
        solver: Optional[MCSSSolver] = None,
    ) -> None:
        if rebuild_threshold < 1.0:
            raise ValueError("rebuild_threshold must be >= 1.0")
        self._solver = solver or MCSSSolver.paper()
        self._rebuild_threshold = rebuild_threshold
        self._tau = problem.tau
        self._plan = problem.plan
        self._epoch = 0

        solution = self._solver.solve(problem)
        self._workload = problem.workload
        # Mutable mirror of the placement: vm -> topic -> set(subs).
        self._vms: List[Dict[int, Set[int]]] = []
        for b in range(solution.placement.num_vms):
            table: Dict[int, Set[int]] = {}
            for t in solution.placement.vm_topics(b):
                table[t] = set(solution.placement.members(b, t))
            self._vms.append(table)
        # subscriber -> set of selected topics (the Stage-1 state).
        self._selected: Dict[int, Set[int]] = {}
        for t, v in solution.selection:
            self._selected.setdefault(v, set()).add(t)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def problem(self) -> MCSSProblem:
        """The current epoch's MCSS instance."""
        return MCSSProblem(self._workload, self._tau, self._plan)

    def placement(self) -> Placement:
        """Materialize the current assignment as a Placement."""
        problem = self.problem
        placement = problem.empty_placement()
        for table in self._vms:
            if not table:
                continue
            b = placement.new_vm()
            for t, subs in sorted(table.items()):
                placement.assign(b, t, sorted(subs))
        return placement

    def selection(self) -> PairSelection:
        """The current Stage-1 state as a selection."""
        return PairSelection.from_subscriber_topics(
            {v: sorted(topics) for v, topics in sorted(self._selected.items())}
        )

    def step(self, new_workload) -> EpochReport:
        """Adapt to a new epoch's workload; returns the epoch report."""
        t0 = time.perf_counter()
        self._epoch += 1
        from .churn import WorkloadDelta  # local import avoids a cycle

        if isinstance(new_workload, WorkloadDelta):
            delta = new_workload
            workload = delta.workload
            touched = set(delta.touched_subscribers)
            # Rate changes move thresholds, so every subscriber of a
            # re-priced topic must be re-checked.
            if delta.rate_changed_topics:
                changed = set(delta.rate_changed_topics)
                for v in range(workload.num_subscribers):
                    if changed.intersection(workload.interest(v).tolist()):
                        touched.add(v)
        else:
            workload = new_workload
            touched = set(range(workload.num_subscribers))

        old_workload = self._workload
        self._workload = workload

        added, removed = self._reselect(touched, old_workload)
        moves = self._evict_overloaded()
        opened_before = len(self._vms)
        for t, v in removed:
            self._remove_pair(t, v)
        placed = sorted(added) + moves
        for t, v in placed:
            self._place_pair(t, v)
        closed = self._close_empty_vms()

        # Compare against a fresh solve; rebuild when drifted too far.
        problem = self.problem
        fresh = self._solver.solve(problem)
        placement = self.placement()
        cost = problem.cost_components(
            placement.num_vms, placement.total_bytes
        )
        rebuilt = False
        if cost.total_usd > fresh.cost.total_usd * self._rebuild_threshold:
            self._adopt(fresh.placement, fresh.selection)
            placement = self.placement()
            cost = problem.cost_components(placement.num_vms, placement.total_bytes)
            rebuilt = True

        return EpochReport(
            epoch=self._epoch,
            cost=cost,
            fresh_cost=fresh.cost,
            pairs_added=len(added),
            pairs_removed=len(removed),
            pairs_moved=len(moves),
            vms_opened=max(0, len(self._vms) - opened_before),
            vms_closed=closed,
            rebuilt=rebuilt,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    # Stage-1 incremental re-selection
    # ------------------------------------------------------------------
    def _reselect(
        self, touched: Set[int], old_workload
    ) -> Tuple[List[Pair], List[Pair]]:
        """Re-run greedy selection for touched subscribers only."""
        workload = self._workload
        rates = workload.event_rates
        tau = float(self._tau)
        added: List[Pair] = []
        removed: List[Pair] = []

        for v in touched:
            old_topics = self._selected.get(v, set())
            if v >= workload.num_subscribers:
                # Subscriber disappeared entirely.
                removed.extend((t, v) for t in old_topics)
                self._selected.pop(v, None)
                continue
            interest = workload.interest(v)
            new_topics = self._greedy_for(interest, rates, tau)
            for t in old_topics - new_topics:
                removed.append((t, v))
            for t in new_topics - old_topics:
                added.append((t, v))
            if new_topics:
                self._selected[v] = new_topics
            else:
                self._selected.pop(v, None)
        return added, removed

    @staticmethod
    def _greedy_for(interest, rates, tau: float) -> Set[int]:
        """Single-subscriber GSP (same schedule as GreedySelectPairs)."""
        if interest.size == 0:
            return set()
        topic_rates = rates[interest]
        tau_v = min(tau, float(topic_rates.sum()))
        if tau_v <= 0:
            return set()
        order = np.lexsort((interest, -topic_rates))
        chosen: Set[int] = set()
        remaining = tau_v
        best_skip, best_rate = -1, float("inf")
        for i in order.tolist():
            if remaining <= _EPS:
                break
            rate = float(topic_rates[i])
            if rate <= remaining + _EPS:
                chosen.add(int(interest[i]))
                remaining -= rate
            elif rate < best_rate:
                best_rate = rate
                best_skip = int(interest[i])
        if remaining > _EPS:
            chosen.add(best_skip)
        return chosen

    # ------------------------------------------------------------------
    # Placement surgery
    # ------------------------------------------------------------------
    def _vm_used_bytes(self, table: Dict[int, Set[int]]) -> float:
        rates = self._workload.event_rates
        msg = self._workload.message_size_bytes
        return sum(
            float(rates[t]) * (len(subs) + 1) for t, subs in table.items()
        ) * msg

    def _remove_pair(self, t: int, v: int) -> None:
        for table in self._vms:
            subs = table.get(t)
            if subs is not None and v in subs:
                subs.discard(v)
                if not subs:
                    del table[t]
                return

    def _place_pair(self, t: int, v: int) -> None:
        """Host-topic VM first, then most-free, then a fresh VM."""
        rates = self._workload.event_rates
        msg = self._workload.message_size_bytes
        capacity = self._plan.capacity_bytes
        topic_bytes = float(rates[t]) * msg

        best_idx = -1
        best_free = -1.0
        for idx, table in enumerate(self._vms):
            used = self._vm_used_bytes(table)
            free = capacity - used
            need = topic_bytes if t in table else 2.0 * topic_bytes
            if need <= free + 1e-9:
                # Prefer any VM already hosting the topic; among the
                # rest, the most free one.
                score = free + (capacity if t in table else 0.0)
                if score > best_free:
                    best_free = score
                    best_idx = idx
        if best_idx < 0:
            self._vms.append({})
            best_idx = len(self._vms) - 1
        self._vms[best_idx].setdefault(t, set()).add(v)

    def _evict_overloaded(self) -> List[Pair]:
        """Evict smallest-rate topic groups until every VM fits."""
        rates = self._workload.event_rates
        capacity = self._plan.capacity_bytes
        evicted: List[Pair] = []
        for table in self._vms:
            while table and self._vm_used_bytes(table) > capacity + 1e-6:
                t = min(
                    table,
                    key=lambda t_: (float(rates[t_]) * len(table[t_]), t_),
                )
                for v in sorted(table.pop(t)):
                    evicted.append((t, v))
        # Stale pairs (topics that vanished from interests) are dropped
        # rather than re-placed.
        valid: List[Pair] = []
        for t, v in evicted:
            if t in self._selected.get(v, set()):
                valid.append((t, v))
        return valid

    def _close_empty_vms(self) -> int:
        before = len(self._vms)
        self._vms = [table for table in self._vms if table]
        return before - len(self._vms)

    def _adopt(self, placement: Placement, selection: PairSelection) -> None:
        """Replace internal state with a fresh solve's output."""
        self._vms = []
        for b in range(placement.num_vms):
            table: Dict[int, Set[int]] = {}
            for t in placement.vm_topics(b):
                table[t] = set(placement.members(b, t))
            self._vms.append(table)
        self._selected = {}
        for t, v in selection:
            self._selected.setdefault(v, set()).add(t)
