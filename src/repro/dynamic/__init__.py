"""Dynamic/online reprovisioning (the paper's future work, Section VI)."""

from .autoscaler import AutoscalePolicy, AutoscaleReport, Autoscaler
from .churn import ChurnConfig, ChurnModel, WorkloadDelta
from .reprovision import EpochReport, IncrementalReprovisioner

__all__ = [
    "AutoscalePolicy",
    "AutoscaleReport",
    "Autoscaler",
    "ChurnConfig",
    "ChurnModel",
    "WorkloadDelta",
    "EpochReport",
    "IncrementalReprovisioner",
]
