"""Dynamic/online reprovisioning (the paper's future work, Section VI)."""

from .autoscaler import AutoscalePolicy, AutoscaleReport, Autoscaler
from .churn import ChurnConfig, ChurnModel, LoopChurnModel, WorkloadDelta
from .reprovision import (
    EpochReport,
    IncrementalReprovisioner,
    LoopIncrementalReprovisioner,
)

__all__ = [
    "AutoscalePolicy",
    "AutoscaleReport",
    "Autoscaler",
    "ChurnConfig",
    "ChurnModel",
    "LoopChurnModel",
    "WorkloadDelta",
    "EpochReport",
    "IncrementalReprovisioner",
    "LoopIncrementalReprovisioner",
]
