"""Utilization-driven autoscaling for a running broker cluster.

The incremental reprovisioner (:mod:`repro.dynamic.reprovision`) reacts
to *workload* changes it is told about.  An operator also wants the
reverse direction: watch the *fleet* and act when VMs run hot or cold,
without being handed a workload diff.  This controller implements the
classic threshold policy on top of :class:`~repro.broker.BrokerCluster`:

* when a node's utilization exceeds ``scale_up_threshold``, shed its
  smallest topic groups onto the fleet (the cluster's placement policy
  prefers nodes already hosting the topic, then the freest node, then a
  fresh one);
* when a node drops below ``scale_down_threshold``, drain it entirely
  and retire it -- *if* the remaining fleet has room at the target
  utilization;
* hysteresis (the gap between the two thresholds) prevents flapping.

Every action is recorded in an :class:`AutoscaleReport`, so experiments
can compare the steady-state fleet against a fresh MCSS solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..broker import BrokerCluster

__all__ = ["AutoscalePolicy", "AutoscaleReport", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Threshold policy with hysteresis."""

    scale_up_threshold: float = 0.9
    scale_down_threshold: float = 0.3
    target_utilization: float = 0.75

    def __post_init__(self) -> None:
        if not 0 < self.scale_down_threshold < self.scale_up_threshold <= 1.0:
            raise ValueError(
                "need 0 < scale_down < scale_up <= 1 (hysteresis band)"
            )
        if not self.scale_down_threshold < self.target_utilization < self.scale_up_threshold:
            raise ValueError("target utilization must sit inside the band")


@dataclass
class AutoscaleReport:
    """What one autoscaling pass did."""

    moves: int = 0
    nodes_drained: int = 0
    hot_nodes_cooled: int = 0
    actions: List[str] = field(default_factory=list)

    def record(self, action: str) -> None:
        """Append a human-readable action line."""
        self.actions.append(action)


class Autoscaler:
    """Threshold autoscaler bound to one broker cluster."""

    def __init__(
        self, cluster: BrokerCluster, policy: AutoscalePolicy = AutoscalePolicy()
    ) -> None:
        self.cluster = cluster
        self.policy = policy

    # ------------------------------------------------------------------
    def run_once(self) -> AutoscaleReport:
        """One control pass: cool hot nodes, then drain cold ones."""
        report = AutoscaleReport()
        self._cool_hot_nodes(report)
        self._drain_cold_nodes(report)
        return report

    # ------------------------------------------------------------------
    def _cool_hot_nodes(self, report: AutoscaleReport) -> None:
        policy = self.policy
        for node in list(self.cluster.nodes):
            if node.utilization <= policy.scale_up_threshold:
                continue
            cooled = False
            # Shed smallest topic groups until back at target.
            while node.utilization > policy.target_utilization:
                groups = sorted(
                    ((t, node.subscribers_of(t)) for t in list(node.topics)),
                    key=lambda ts: len(ts[1]),
                )
                if not groups or (len(groups) == 1 and node.utilization <= 1.0):
                    break  # cannot shed the only group of a stable node
                topic, subs = groups[0]
                for v in sorted(subs):
                    node_from = self.cluster.unsubscribe(topic, v)
                    assert node_from == node.node_id
                    self.cluster.subscribe(topic, v, exclude={node.node_id})
                    report.moves += 1
                cooled = True
                report.record(
                    f"moved topic {topic} ({len(subs)} pairs) off hot "
                    f"node {node.node_id}"
                )
            if cooled:
                report.hot_nodes_cooled += 1

    def _drain_cold_nodes(self, report: AutoscaleReport) -> None:
        policy = self.policy
        for node in list(self.cluster.nodes):
            if node.num_pairs == 0 or node.utilization >= policy.scale_down_threshold:
                continue
            # Only drain when the rest of the fleet has headroom.
            others_free = sum(
                max(0.0, policy.target_utilization * n.capacity_bytes - n.used_bytes)
                for n in self.cluster.nodes
                if n.node_id != node.node_id
            )
            if node.used_bytes > others_free:
                continue
            pairs: List[Tuple[int, int]] = [
                (t, v)
                for t in list(node.topics)
                for v in sorted(node.subscribers_of(t))
            ]
            for t, v in pairs:
                self.cluster.unsubscribe(t, v)
                self.cluster.subscribe(t, v, exclude={node.node_id})
                report.moves += 1
            report.nodes_drained += 1
            report.record(
                f"drained cold node {node.node_id} ({len(pairs)} pairs)"
            )
