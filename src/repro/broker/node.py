"""A single broker node: subscription state plus live accounting.

The optimizer's :class:`~repro.core.placement.VirtualMachine` is a
*plan*: counts and byte rates.  A :class:`BrokerNode` is the *runtime*
that plan materializes into: it holds the actual subscription table
(topic -> subscriber set), accepts subscribe/unsubscribe operations,
dispatches published events to local subscribers, and keeps metrics.

Nodes enforce the same capacity rule the optimizer planned against
(total byte rate <= BC) so that a sequence of runtime operations can
never silently grow a node past what its VM can carry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .metrics import MetricsRegistry

__all__ = ["BrokerNode", "NodeOverloadError"]


class NodeOverloadError(RuntimeError):
    """Raised when an operation would push a node past its capacity."""


class BrokerNode:
    """One pub/sub broker VM at runtime."""

    def __init__(
        self,
        node_id: int,
        capacity_bytes_per_period: float,
        message_bytes: float,
    ) -> None:
        if capacity_bytes_per_period <= 0:
            raise ValueError("capacity must be positive")
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        self.node_id = node_id
        self.capacity_bytes = float(capacity_bytes_per_period)
        self.message_bytes = float(message_bytes)
        self.metrics = MetricsRegistry()
        self._subscribers: Dict[int, Set[int]] = {}
        self._topic_rates: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def topics(self) -> Iterable[int]:
        """Topics this node ingests."""
        return self._subscribers.keys()

    def subscribers_of(self, topic: int) -> Set[int]:
        """Local subscribers of a topic (copy)."""
        return set(self._subscribers.get(topic, ()))

    def hosts_topic(self, topic: int) -> bool:
        """Whether the node ingests ``topic``."""
        return topic in self._subscribers

    @property
    def num_pairs(self) -> int:
        """Number of (topic, subscriber) pairs served locally."""
        return sum(len(s) for s in self._subscribers.values())

    @property
    def used_bytes(self) -> float:
        """Planned byte volume for the period: ingest + deliveries."""
        total_events = 0.0
        for topic, subs in self._subscribers.items():
            total_events += self._topic_rates[topic] * (len(subs) + 1)
        return total_events * self.message_bytes

    @property
    def free_bytes(self) -> float:
        """Remaining capacity."""
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of the capacity in use."""
        return self.used_bytes / self.capacity_bytes

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(self, topic: int, subscriber: int, topic_rate: float) -> None:
        """Add a local (topic, subscriber) pair.

        Rejects the operation (raising :class:`NodeOverloadError`)
        when the implied byte volume would exceed capacity.
        """
        if topic_rate <= 0:
            raise ValueError("topic rate must be positive")
        known = self._subscribers.get(topic)
        extra_events = topic_rate * (1 if known is not None else 2)
        if known is not None and subscriber in known:
            return  # idempotent
        if extra_events * self.message_bytes > self.free_bytes + 1e-9:
            raise NodeOverloadError(
                f"node {self.node_id}: subscribing ({topic}, {subscriber}) "
                f"needs {extra_events * self.message_bytes:.0f} B, "
                f"free {self.free_bytes:.0f} B"
            )
        if known is None:
            self._subscribers[topic] = {subscriber}
            self._topic_rates[topic] = float(topic_rate)
        else:
            known.add(subscriber)
        self.metrics.counter("subscribes").inc()

    def unsubscribe(self, topic: int, subscriber: int) -> None:
        """Remove a local pair; drops the topic feed when it empties."""
        known = self._subscribers.get(topic)
        if known is None or subscriber not in known:
            raise KeyError(f"({topic}, {subscriber}) not on node {self.node_id}")
        known.discard(subscriber)
        if not known:
            del self._subscribers[topic]
            del self._topic_rates[topic]
        self.metrics.counter("unsubscribes").inc()

    def update_topic_rate(self, topic: int, topic_rate: float) -> None:
        """Re-price a hosted topic after publisher rate drift.

        Unlike :meth:`subscribe`, this is allowed to push the node past
        capacity (the publisher does not ask permission); callers check
        :attr:`utilization` and rebalance.
        """
        if topic_rate <= 0:
            raise ValueError("topic rate must be positive")
        if topic not in self._subscribers:
            raise KeyError(f"topic {topic} not on node {self.node_id}")
        self._topic_rates[topic] = float(topic_rate)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def dispatch(self, topic: int, count: int = 1) -> int:
        """Deliver ``count`` published events to the local subscribers.

        Returns the number of notifications sent; meters ingest and
        egress bytes.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        subs = self._subscribers.get(topic)
        if subs is None:
            return 0  # not hosted here: the router should not have called
        self.metrics.counter("events_ingested").inc(count)
        self.metrics.gauge("ingress_bytes").add(count * self.message_bytes)
        sent = count * len(subs)
        self.metrics.counter("notifications_sent").inc(sent)
        self.metrics.gauge("egress_bytes").add(sent * self.message_bytes)
        return sent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BrokerNode(id={self.node_id}, topics={len(self._subscribers)}, "
            f"pairs={self.num_pairs}, util={self.utilization:.0%})"
        )
