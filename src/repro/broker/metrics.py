"""Lightweight metrics primitives for the broker runtime.

A tiny counter/gauge/histogram trio -- enough to instrument the broker
cluster without dragging in a metrics dependency.  Histograms keep
power-of-two buckets, which is plenty for latency distributions whose
interesting questions are "what's the p50/p99 order of magnitude".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current value."""
        self.value += delta


class Histogram:
    """Power-of-two bucketed histogram for non-negative samples."""

    def __init__(self, num_buckets: int = 40) -> None:
        if num_buckets < 2:
            raise ValueError("need at least two buckets")
        self._buckets: List[int] = [0] * num_buckets
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if value < 0:
            raise ValueError("samples must be non-negative")
        idx = 0 if value < 1 else min(
            len(self._buckets) - 1, int(math.log2(value)) + 1
        )
        self._buckets[idx] += 1
        self._count += 1
        self._sum += value
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Number of samples."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean sample, 0 when empty."""
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest sample seen."""
        return self._max

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper edge of the bucket holding it."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        seen = 0
        for idx, bucket in enumerate(self._buckets):
            seen += bucket
            if seen >= target and bucket:
                return float(2**idx)
        return self._max


class LatencyRecorder:
    """Exact-quantile latency recorder with an injectable clock.

    :class:`Histogram` answers order-of-magnitude questions; SLO gates
    need exact percentiles, so this keeps every sample (bounded -- one
    per micro-epoch, not per message) and computes nearest-rank
    quantiles over the sorted list.  The clock is injected so tier-1
    tests can drive it deterministically: ``time()`` marks a start,
    ``stop()`` records the elapsed interval as a sample.
    """

    def __init__(self, clock=None) -> None:
        import time as _time

        self._clock = clock if clock is not None else _time.perf_counter
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0
        self._start: Optional[float] = None

    def start(self) -> None:
        """Mark the start of an interval on the injected clock."""
        self._start = self._clock()

    def stop(self) -> float:
        """Record the interval since :meth:`start`; returns it."""
        if self._start is None:
            raise RuntimeError("stop() without a matching start()")
        elapsed = self._clock() - self._start
        self._start = None
        self.observe(elapsed)
        return elapsed

    def observe(self, seconds: float) -> None:
        """Record one latency sample directly."""
        if seconds < 0:
            raise ValueError("samples must be non-negative")
        self._samples.append(float(seconds))
        self._sorted = None
        self._sum += seconds

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Mean sample, 0 when empty."""
        return self._sum / len(self._samples) if self._samples else 0.0

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._sum

    @property
    def max(self) -> float:
        """Largest sample, 0 when empty."""
        return max(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile (q in [0, 1]); 0 when empty."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(0, math.ceil(q * len(self._sorted)) - 1)
        return self._sorted[rank]


class MetricsRegistry:
    """Named metrics for one broker node or the whole cluster."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        return self._histograms.setdefault(name, Histogram())

    def snapshot(self) -> Dict[str, float]:
        """Flat name -> value view (histograms expose mean/p99/count)."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.p99"] = hist.quantile(0.99)
            out[f"{name}.count"] = float(hist.count)
        return out
