"""Broker runtime substrate: placements materialized as running nodes.

The optimizer plans; this package runs the plan: subscription tables,
event dispatch, runtime subscribe/unsubscribe, capacity enforcement,
metrics, and an M/G/1 latency/utilization view of the fleet.
"""

from .cluster import BrokerCluster, ClusterLatencyReport
from .latency import LatencyModel, VMLatency
from .metrics import Counter, Gauge, Histogram, LatencyRecorder, MetricsRegistry
from .node import BrokerNode, NodeOverloadError

__all__ = [
    "BrokerCluster",
    "ClusterLatencyReport",
    "LatencyModel",
    "VMLatency",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "BrokerNode",
    "NodeOverloadError",
]
