"""Queueing-theory latency model for broker VMs.

The MCSS capacity constraint keeps every VM's *throughput* under its
bandwidth cap, but a downstream operator also cares about *delay*: a VM
running at 95% of its cap delivers notifications much later than one at
50%, even though both are "feasible".  This module prices that effect
with the standard M/G/1 machinery:

* events arrive Poisson at rate ``lambda`` (the VM's total event rate,
  ingest plus deliveries);
* service time per event is the wire time of one message at the VM's
  line rate (deterministic, so M/D/1 is the default), plus optional
  per-event CPU overhead;
* the Pollaczek-Khinchine formula gives the expected wait, and the
  standard heavy-traffic approximation gives tail quantiles.

The model is intentionally analytic (no simulation): the experiment
harness evaluates it on every VM of a placement in microseconds, and
the deployment simulator's metered rates can be plugged in directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LatencyModel", "VMLatency"]


@dataclass(frozen=True)
class VMLatency:
    """Latency figures for one VM (all in seconds)."""

    utilization: float
    service_seconds: float
    mean_wait_seconds: float
    p99_wait_seconds: float

    @property
    def mean_sojourn_seconds(self) -> float:
        """Expected total time through the broker (wait + service)."""
        return self.mean_wait_seconds + self.service_seconds

    @property
    def saturated(self) -> bool:
        """Whether the VM is at or beyond its stable operating region."""
        return self.utilization >= 1.0


@dataclass(frozen=True)
class LatencyModel:
    """An M/G/1 latency model for broker VMs.

    Parameters
    ----------
    line_rate_bytes_per_sec:
        The VM's network line rate; one message of ``message_bytes``
        occupies the line for ``message_bytes / line_rate`` seconds.
    cpu_overhead_seconds:
        Fixed per-event processing cost added to the wire time.
    service_cv2:
        Squared coefficient of variation of the service time.  0 gives
        M/D/1 (deterministic service, the default -- messages are
        near-constant size); 1 gives M/M/1.
    """

    line_rate_bytes_per_sec: float
    cpu_overhead_seconds: float = 5e-6
    service_cv2: float = 0.0

    def __post_init__(self) -> None:
        if self.line_rate_bytes_per_sec <= 0:
            raise ValueError("line rate must be positive")
        if self.cpu_overhead_seconds < 0:
            raise ValueError("cpu overhead must be non-negative")
        if self.service_cv2 < 0:
            raise ValueError("service_cv2 must be non-negative")

    # ------------------------------------------------------------------
    def service_time(self, message_bytes: float) -> float:
        """Per-event service time in seconds."""
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        return message_bytes / self.line_rate_bytes_per_sec + self.cpu_overhead_seconds

    def evaluate(
        self, events_per_sec: float, message_bytes: float
    ) -> VMLatency:
        """Latency of a VM carrying ``events_per_sec`` total events.

        Uses Pollaczek-Khinchine for the mean wait::

            W = rho * S * (1 + cv^2) / (2 * (1 - rho))

        and the exponential-tail approximation ``p99 ~ W * ln(100)``
        (exact for M/M/1, a standard engineering bound for M/G/1).
        A saturated VM (rho >= 1) reports infinite waits rather than
        raising -- the caller decides what saturation means.
        """
        if events_per_sec < 0:
            raise ValueError("event rate must be non-negative")
        service = self.service_time(message_bytes)
        rho = events_per_sec * service
        if rho >= 1.0:
            return VMLatency(
                utilization=rho,
                service_seconds=service,
                mean_wait_seconds=float("inf"),
                p99_wait_seconds=float("inf"),
            )
        mean_wait = rho * service * (1.0 + self.service_cv2) / (2.0 * (1.0 - rho))
        p99 = mean_wait * math.log(100.0) if mean_wait > 0 else 0.0
        return VMLatency(
            utilization=rho,
            service_seconds=service,
            mean_wait_seconds=mean_wait,
            p99_wait_seconds=p99,
        )
