"""The broker cluster: a placement materialized as a running system.

:class:`BrokerCluster` turns an optimizer
:class:`~repro.core.placement.Placement` into a fleet of
:class:`~repro.broker.node.BrokerNode` objects with a routing table
(topic -> hosting nodes), and exposes the operations a pub/sub service
actually performs:

* ``publish(topic, count)`` -- fan events out through every hosting
  node to its local subscribers;
* ``subscribe`` / ``unsubscribe`` -- runtime subscription changes,
  placed like the incremental reprovisioner would (prefer a node
  already hosting the topic, else the freest node, else a new node);
* ``latency_report()`` -- per-node utilization and M/G/1 delay via
  :class:`~repro.broker.latency.LatencyModel`, answering the question
  the MCSS plan leaves open: *how close to saturation did cost
  optimization push each VM, and what does that do to delivery delay?*

The cluster checks conservation invariants (every planned pair served
exactly once) at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core import MCSSProblem, Placement
from .latency import LatencyModel, VMLatency
from .node import BrokerNode, NodeOverloadError

__all__ = ["BrokerCluster", "ClusterLatencyReport"]


@dataclass(frozen=True)
class ClusterLatencyReport:
    """Utilization/delay summary over the fleet."""

    per_node: Tuple[VMLatency, ...]

    @property
    def max_utilization(self) -> float:
        """The hottest VM's utilization."""
        return max((v.utilization for v in self.per_node), default=0.0)

    @property
    def mean_sojourn_seconds(self) -> float:
        """Fleet-mean broker transit time (unweighted)."""
        if not self.per_node:
            return 0.0
        return sum(v.mean_sojourn_seconds for v in self.per_node) / len(self.per_node)

    @property
    def any_saturated(self) -> bool:
        """Whether any VM is past its stable region."""
        return any(v.saturated for v in self.per_node)


class BrokerCluster:
    """A running fleet of broker nodes serving one workload."""

    def __init__(self, problem: MCSSProblem, placement: Placement) -> None:
        self.problem = problem
        workload = problem.workload
        self._message_bytes = workload.message_size_bytes
        self._rates = {
            t: float(workload.event_rates[t]) for t in range(workload.num_topics)
        }
        self._nodes: List[BrokerNode] = []
        self._hosting: Dict[int, Set[int]] = {}  # topic -> node ids

        for b in range(placement.num_vms):
            node = BrokerNode(
                node_id=b,
                capacity_bytes_per_period=problem.capacity_bytes,
                message_bytes=self._message_bytes,
            )
            self._nodes.append(node)
        for b, t, subs in placement.iter_assignments():
            for v in subs:
                self._nodes[b].subscribe(t, v, self._rates[t])
            self._hosting.setdefault(t, set()).add(b)

        # Conservation: the runtime serves exactly the planned pairs.
        planned = placement.num_pairs
        served = sum(node.num_pairs for node in self._nodes)
        if planned != served:
            raise AssertionError(
                f"cluster construction lost pairs: planned {planned}, "
                f"serving {served}"
            )

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[BrokerNode, ...]:
        """The fleet (read-only view)."""
        return tuple(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of broker VMs (including any added at runtime)."""
        return len(self._nodes)

    def hosting_nodes(self, topic: int) -> Set[int]:
        """Ids of the nodes ingesting ``topic``."""
        return set(self._hosting.get(topic, ()))

    # ------------------------------------------------------------------
    # Pub/sub operations
    # ------------------------------------------------------------------
    def publish(self, topic: int, count: int = 1) -> int:
        """Publish ``count`` events; returns notifications delivered."""
        delivered = 0
        for node_id in self._hosting.get(topic, ()):
            delivered += self._nodes[node_id].dispatch(topic, count)
        return delivered

    def subscribe(
        self,
        topic: int,
        subscriber: int,
        exclude: Optional[Set[int]] = None,
    ) -> int:
        """Serve a new pair; returns the node that took it.

        Placement policy mirrors the incremental reprovisioner: a node
        already ingesting the topic (no extra ingest) with room, else
        the node with the most free capacity, else a fresh node.
        ``exclude`` bars specific nodes -- the autoscaler uses it so a
        node being drained cannot win its own pairs back.
        """
        rate = self._rates.get(topic)
        if rate is None:
            raise KeyError(f"unknown topic {topic}")
        barred = exclude or set()

        hosts = sorted(
            (n for n in self._hosting.get(topic, ()) if n not in barred),
            key=lambda nid: -self._nodes[nid].free_bytes,
        )
        for node_id in hosts:
            try:
                self._nodes[node_id].subscribe(topic, subscriber, rate)
                return node_id
            except NodeOverloadError:
                continue
        others = sorted(
            (
                n
                for n in range(len(self._nodes))
                if n not in set(hosts) and n not in barred
            ),
            key=lambda nid: -self._nodes[nid].free_bytes,
        )
        for node_id in others:
            try:
                self._nodes[node_id].subscribe(topic, subscriber, rate)
                self._hosting.setdefault(topic, set()).add(node_id)
                return node_id
            except NodeOverloadError:
                continue
        node = BrokerNode(
            node_id=len(self._nodes),
            capacity_bytes_per_period=self.problem.capacity_bytes,
            message_bytes=self._message_bytes,
        )
        node.subscribe(topic, subscriber, rate)
        self._nodes.append(node)
        self._hosting.setdefault(topic, set()).add(node.node_id)
        return node.node_id

    def unsubscribe(self, topic: int, subscriber: int) -> int:
        """Drop a pair; returns the node it was served from."""
        for node_id in self._hosting.get(topic, set()):
            node = self._nodes[node_id]
            if subscriber in node.subscribers_of(topic):
                node.unsubscribe(topic, subscriber)
                if not node.hosts_topic(topic):
                    self._hosting[topic].discard(node_id)
                return node_id
        raise KeyError(f"({topic}, {subscriber}) not served by the cluster")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def latency_report(
        self,
        period_seconds: float,
        model: Optional[LatencyModel] = None,
    ) -> ClusterLatencyReport:
        """Per-node M/G/1 latency at the planned event rates.

        ``period_seconds`` converts the model's per-period rates to
        events/second; the default latency model derives the line rate
        from the node capacity over the same period.
        """
        if period_seconds <= 0:
            raise ValueError("period must be positive")
        if model is None:
            line_rate = self.problem.capacity_bytes / period_seconds
            model = LatencyModel(line_rate_bytes_per_sec=line_rate)
        reports = []
        for node in self._nodes:
            events_per_period = node.used_bytes / self._message_bytes
            reports.append(
                model.evaluate(events_per_period / period_seconds, self._message_bytes)
            )
        return ClusterLatencyReport(per_node=tuple(reports))

    def to_placement(self) -> Placement:
        """Snapshot the runtime state back into an optimizer Placement."""
        placement = self.problem.empty_placement()
        for node in self._nodes:
            if not list(node.topics):
                continue
            b = placement.new_vm()
            for t in sorted(node.topics):
                placement.assign(b, t, sorted(node.subscribers_of(t)))
        return placement

    def metrics_snapshot(self) -> Dict[str, float]:
        """Fleet-aggregated metrics."""
        out: Dict[str, float] = {}
        for node in self._nodes:
            for name, value in node.metrics.snapshot().items():
                out[name] = out.get(name, 0.0) + value
        return out
