"""repro -- a reproduction of *Cost-Effective Resource Allocation for
Deploying Pub/Sub on Cloud* (Setty, Vitenberg, Kreitz, Urdaneta,
van Steen; ICDCS 2014).

The library implements the MCSS (Minimum Cost Subscriber Satisfaction)
problem and everything around it: the two-stage heuristic (greedy pair
selection + customized bin packing), the naive baselines, the
per-instance lower bound, an exact MILP reference, the executable
NP-hardness reduction, synthetic Spotify/Twitter-like trace generators,
an EC2 pricing substrate, a deployment simulator, and the experiment
harness that regenerates every figure of the paper.

Quickstart::

    from repro import MCSSProblem, MCSSSolver, paper_plan
    from repro.workloads import SpotifyWorkloadGenerator

    trace = SpotifyWorkloadGenerator().generate(seed=7)
    problem = MCSSProblem(trace.workload, tau=100, plan=paper_plan("c3.large"))
    solution = MCSSSolver.paper().solve(problem)
    print(solution.summary())

See README.md for install/quickstart and docs/ARCHITECTURE.md for the
full system inventory and the referee policy.
"""

from .bounds import best_lower_bound, lower_bound, lower_bound_bytes, lp_lower_bound
from .core import (
    MCSSProblem,
    Pair,
    PairSelection,
    Placement,
    SolutionCost,
    ValidationReport,
    VirtualMachine,
    Workload,
    WorkloadStats,
    build_workload,
    validate_placement,
)
from .packing import (
    BestFitBinPacking,
    CBPOptions,
    CustomBinPacking,
    FFBinPacking,
    FirstFitDecreasingBinPacking,
    available_packers,
    get_packer,
)
from .pricing import (
    EC2_CATALOG,
    InstanceType,
    LinearBandwidthCost,
    LinearVMCost,
    PricingPlan,
    TieredBandwidthCost,
    get_instance,
    paper_plan,
)
from .selection import (
    GreedySelectPairs,
    KnapsackSelectPairs,
    RandomSelectPairs,
    ReferenceGreedySelectPairs,
    available_selectors,
    get_selector,
)
from .solver import MCSSSolution, MCSSSolver

__version__ = "0.6.0"

__all__ = [
    "best_lower_bound",
    "lower_bound",
    "lp_lower_bound",
    "lower_bound_bytes",
    "MCSSProblem",
    "Pair",
    "PairSelection",
    "Placement",
    "SolutionCost",
    "ValidationReport",
    "VirtualMachine",
    "Workload",
    "WorkloadStats",
    "build_workload",
    "validate_placement",
    "BestFitBinPacking",
    "CBPOptions",
    "CustomBinPacking",
    "FFBinPacking",
    "FirstFitDecreasingBinPacking",
    "available_packers",
    "get_packer",
    "EC2_CATALOG",
    "InstanceType",
    "LinearBandwidthCost",
    "LinearVMCost",
    "PricingPlan",
    "TieredBandwidthCost",
    "get_instance",
    "paper_plan",
    "GreedySelectPairs",
    "KnapsackSelectPairs",
    "RandomSelectPairs",
    "ReferenceGreedySelectPairs",
    "available_selectors",
    "get_selector",
    "MCSSSolution",
    "MCSSSolver",
    "__version__",
]
