"""Command-line interface (``mcss`` / ``python -m repro``).

Subcommands:

* ``mcss list`` -- list the reproducible figures;
* ``mcss figure fig3a`` -- run one figure's experiment and print the
  plain-text table;
* ``mcss solve --trace twitter --tau 100`` -- generate a trace, run a
  chosen (selector, packer) pipeline, print cost vs baseline and bound;
* ``mcss analyze --trace twitter`` -- print trace statistics;
* ``mcss churn --epochs 100 --checkpoint run.npz --checkpoint-every 10``
  -- run a churned epoch experiment with atomic checkpoints; add
  ``--resume`` to continue a killed run bit-exactly;
* ``mcss serve --epochs 64 --slo-p99 0.5 --metrics-out m.json`` -- run
  the micro-epoch serving loop with SLO metrics (exit 1 on an SLO
  miss); supports the same checkpoint/resume flags as ``churn``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bounds import lower_bound
from .core import MCSSProblem
from .experiments import (
    ExperimentScale,
    describe_figures,
    make_plan,
    make_trace,
    run_epoch_experiment,
    run_figure,
)
from .packing import available_packers
from .selection import available_selectors
from .solver import MCSSSolver

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="mcss",
        description=(
            "Reproduction of 'Cost-Effective Resource Allocation for "
            "Deploying Pub/Sub on Cloud' (ICDCS 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    fig = sub.add_parser("figure", help="run one figure's experiment")
    fig.add_argument("figure_id", help="e.g. fig2a, fig7, summary")
    fig.add_argument("--users", type=int, default=None, help="trace size")
    fig.add_argument("--seed", type=int, default=None, help="trace seed")

    solve = sub.add_parser("solve", help="solve one MCSS instance")
    solve.add_argument("--trace", default="spotify", choices=("spotify", "twitter"))
    solve.add_argument("--tau", type=float, default=100.0)
    solve.add_argument("--instance", default="c3.large")
    solve.add_argument("--selector", default="gsp", choices=available_selectors())
    solve.add_argument("--packer", default="cbp", choices=available_packers())
    solve.add_argument("--users", type=int, default=None)
    solve.add_argument("--seed", type=int, default=None)

    churn = sub.add_parser(
        "churn", help="run a churned epoch experiment (checkpoint/resume)"
    )
    churn.add_argument("--trace", default="spotify", choices=("spotify", "twitter"))
    churn.add_argument("--tau", type=float, default=100.0)
    churn.add_argument("--instance", default="c3.large")
    churn.add_argument("--users", type=int, default=None)
    churn.add_argument("--seed", type=int, default=None)
    churn.add_argument("--epochs", type=int, default=16)
    churn.add_argument(
        "--churn-seed", type=int, default=0, help="churn stream seed"
    )
    churn.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file (.npz), written atomically",
    )
    churn.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="persist run state every K epochs (0 = never)",
    )
    churn.add_argument(
        "--resume", action="store_true",
        help="resume bit-exactly from --checkpoint if it exists",
    )

    serve = sub.add_parser(
        "serve", help="run the micro-epoch serving loop (SLO metrics)"
    )
    serve.add_argument("--trace", default="spotify", choices=("spotify", "twitter"))
    serve.add_argument("--tau", type=float, default=100.0)
    serve.add_argument("--instance", default="c3.large")
    serve.add_argument("--users", type=int, default=None)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--epochs", type=int, default=16, help="micro-epochs")
    serve.add_argument(
        "--churn-seed", type=int, default=0, help="churn stream seed"
    )
    serve.add_argument(
        "--fresh-solve-every", type=int, default=8, metavar="K",
        help="fresh reference solve cadence (1 = referee behavior)",
    )
    serve.add_argument(
        "--slo-p99", type=float, default=0.0, metavar="SECONDS",
        help="p99 micro-epoch latency bound; exit 1 when missed (0 = off)",
    )
    serve.add_argument(
        "--traffic-every", type=int, default=0, metavar="K",
        help="replay traffic against the live placement every K "
        "micro-epochs (0 = never)",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final metrics snapshot as JSON",
    )
    serve.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file (.npz), written atomically",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="persist run state every K micro-epochs (0 = never)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="resume bit-exactly from --checkpoint if it exists",
    )

    analyze = sub.add_parser("analyze", help="print trace statistics")
    analyze.add_argument("--trace", default="twitter", choices=("spotify", "twitter"))
    analyze.add_argument("--users", type=int, default=None)
    analyze.add_argument("--seed", type=int, default=None)
    analyze.add_argument(
        "--plot", action="store_true",
        help="render figures as log-log scatter plots instead of tables",
    )

    return parser


def _scale(args: argparse.Namespace) -> ExperimentScale:
    base = ExperimentScale()
    return ExperimentScale(
        num_users=args.users if args.users is not None else base.num_users,
        seed=args.seed if args.seed is not None else base.seed,
        target_vms=base.target_vms,
    )


def _cmd_list() -> int:
    print(describe_figures())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    result = run_figure(args.figure_id, _scale(args))
    print(result.render())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    scale = _scale(args)
    trace = make_trace(args.trace, scale)
    plan = make_plan(args.instance, trace.workload, scale)
    problem = MCSSProblem(trace.workload, args.tau, plan)

    print(trace.describe())
    print(f"plan: {plan.describe()} (capacity scaled to trace)")

    solver = MCSSSolver.from_names(args.selector, args.packer)
    solution = solver.solve(problem)
    print(solution.summary())

    baseline = MCSSSolver.naive().solve(problem)
    print(f"naive baseline: {baseline.cost}")
    bound = lower_bound(problem)
    print(f"lower bound:    {bound}")
    saving = 1.0 - solution.cost.total_usd / baseline.cost.total_usd
    gap = solution.cost.total_usd / bound.total_usd - 1.0
    print(f"saving vs naive: {saving * 100:.1f}%   gap to bound: {gap * 100:.1f}%")
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    scale = _scale(args)
    trace = make_trace(args.trace, scale)
    plan = make_plan(args.instance, trace.workload, scale)
    print(trace.describe())
    result = run_epoch_experiment(
        trace.workload,
        plan,
        args.tau,
        args.epochs,
        seed=args.churn_seed,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    print(result.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .experiments import run_serving_experiment
    from .serving import ServingConfig

    scale = _scale(args)
    trace = make_trace(args.trace, scale)
    plan = make_plan(args.instance, trace.workload, scale)
    print(trace.describe())
    config = ServingConfig(
        fresh_solve_every=args.fresh_solve_every,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        slo_p99_seconds=args.slo_p99,
        traffic_every=args.traffic_every,
    )
    result = run_serving_experiment(
        trace.workload,
        plan,
        args.tau,
        args.epochs,
        seed=args.churn_seed,
        serving_config=config,
        resume=args.resume,
    )
    print(result.render())
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(result.metrics, fh, indent=2, sort_keys=True)
        print(f"metrics written to {args.metrics_out}")
    return 1 if result.slo_met is False else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = make_trace(args.trace, _scale(args))
    print(trace.describe())
    print(trace.workload.stats())
    for figure_id in ("fig8", "fig9", "fig10", "fig11", "fig12"):
        from .experiments import run_trace_figure

        figure = run_trace_figure(figure_id, trace)
        print()
        print(figure.plot() if args.plot else figure.render(points=8))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "churn":
        return _cmd_churn(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
