"""Lower bounds for MCSS.

* :func:`lower_bound` -- the paper's Algorithm 5 (Appendix C), cheap
  and ingest-blind;
* :func:`lp_lower_bound` -- the LP relaxation of the MCSS integer
  program, strictly stronger (it pays for ingest) at the price of an
  LP solve.
"""

from .lower import lower_bound, lower_bound_bytes
from .lp import best_lower_bound, lp_lower_bound

__all__ = [
    "lower_bound",
    "lower_bound_bytes",
    "lp_lower_bound",
    "best_lower_bound",
]
