"""LP-relaxation lower bound for MCSS.

Algorithm 5's bound (Appendix C) charges only *outgoing* bandwidth and
lets subscribers be satisfied by fractional topic slices, so it is loose
exactly where MCSS is interesting -- when the ingest duplication and
discrete topic choices matter.  This module adds a strictly stronger
bound: the linear-programming relaxation of the MCSS integer program,
collapsed over the (identical) VMs.

Collapsing argument.  In the LP relaxation of Section II-C's IP, the
VMs are interchangeable and all constraints/costs are linear, so any
fractional solution can be averaged across VMs without changing cost or
feasibility.  The per-VM structure therefore reduces to a fleet-level
program over

* ``x_tv in [0, 1]`` -- fraction of pair (t, v) served,
* ``z_t  in [0, 1]`` -- fraction of topic t's feed ingested (once);
  ``z_t >= x_tv`` because a pair cannot be served beyond its topic's
  ingest fraction,
* ``Y >= 0``        -- fractional VM count,

minimizing ``C1_unit * Y + C2_unit * volume`` subject to::

    volume      = sum ev_t x_tv + sum ev_t z_t        (out + in)
    volume     <= BC * Y                              (capacity)
    sum_{t in Tv} ev_t x_tv >= tau_v   for all v      (satisfaction)

Every feasible integer solution maps to a feasible point of this LP
with equal or lower LP cost, so the LP optimum is a valid lower bound
on MCSS -- and unlike Algorithm 5 it pays for ingest.  Solved with
HiGHS via ``scipy.optimize.linprog`` on sparse matrices; practical up
to a few hundred thousand pairs.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..core import MCSSProblem, SolutionCost
from ..pricing.costs import FreeBandwidthCost, LinearBandwidthCost, LinearVMCost

__all__ = ["lp_lower_bound", "best_lower_bound"]

_MAX_PAIRS = 400_000


class LPBoundError(RuntimeError):
    """Raised when the LP bound cannot be computed."""


def lp_lower_bound(problem: MCSSProblem) -> SolutionCost:
    """The LP-relaxation lower bound (see module docstring).

    Requires the paper's linear cost model; returns a
    :class:`~repro.core.problem.SolutionCost` whose ``total_usd`` no
    feasible MCSS solution can beat.  ``num_vms`` is the *ceiling* of
    the fractional fleet size (itself a valid VM-count bound).
    """
    c1 = problem.plan.c1
    c2 = problem.plan.c2
    if not isinstance(c1, LinearVMCost):
        raise LPBoundError("LP bound requires a LinearVMCost C1")
    if isinstance(c2, LinearBandwidthCost):
        usd_per_byte = c2.usd_per_gb / 1e9
    elif isinstance(c2, FreeBandwidthCost):
        usd_per_byte = 0.0
    else:
        raise LPBoundError("LP bound requires a linear (or free) C2")

    workload = problem.workload
    rates = workload.event_rates
    msg = workload.message_size_bytes
    tau = float(problem.tau)

    pairs: List[Tuple[int, int]] = list(workload.iter_pairs())
    num_pairs = len(pairs)
    if num_pairs > _MAX_PAIRS:
        raise LPBoundError(
            f"{num_pairs} pairs exceed the LP bound guard ({_MAX_PAIRS})"
        )
    if num_pairs == 0:
        return problem.cost_components(0, 0.0)

    topics = sorted({t for t, _v in pairs})
    topic_pos = {t: i for i, t in enumerate(topics)}
    num_topics = len(topics)

    # Variable layout: x (pairs), z (topics), Y (1).
    n_vars = num_pairs + num_topics + 1
    zi = num_pairs
    yi = num_pairs + num_topics

    usd_per_event = usd_per_byte * msg
    c = np.zeros(n_vars)
    pair_rates = np.array([float(rates[t]) for t, _v in pairs])
    c[:num_pairs] = usd_per_event * pair_rates
    c[zi : zi + num_topics] = usd_per_event * np.array(
        [float(rates[t]) for t in topics]
    )
    c[yi] = c1.price_per_vm

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    ub: List[float] = []
    row = 0

    # x_tv - z_t <= 0
    for p, (t, _v) in enumerate(pairs):
        rows += [row, row]
        cols += [p, zi + topic_pos[t]]
        vals += [1.0, -1.0]
        ub.append(0.0)
        row += 1

    # volume - BC * Y <= 0  (in event units)
    bc_events = problem.capacity_bytes / msg
    for p in range(num_pairs):
        rows.append(row)
        cols.append(p)
        vals.append(pair_rates[p])
    for i, t in enumerate(topics):
        rows.append(row)
        cols.append(zi + i)
        vals.append(float(rates[t]))
    rows.append(row)
    cols.append(yi)
    vals.append(-bc_events)
    ub.append(0.0)
    row += 1

    # -sum ev_t x_tv <= -tau_v
    pairs_of_v: dict = {}
    for p, (_t, v) in enumerate(pairs):
        pairs_of_v.setdefault(v, []).append(p)
    for v, plist in pairs_of_v.items():
        rate_sum = float(pair_rates[plist].sum()) if isinstance(plist, np.ndarray) else sum(
            pair_rates[p] for p in plist
        )
        tau_v = min(tau, rate_sum)
        if tau_v <= 0:
            continue
        for p in plist:
            rows.append(row)
            cols.append(p)
            vals.append(-pair_rates[p])
        ub.append(-tau_v)
        row += 1

    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    bounds = [(0.0, 1.0)] * (num_pairs + num_topics) + [(0.0, None)]
    result = linprog(c, A_ub=matrix, b_ub=np.asarray(ub), bounds=bounds, method="highs")
    if not result.success:
        raise LPBoundError(f"LP failed: {result.message}")

    x = result.x
    volume_events = float(
        (pair_rates * x[:num_pairs]).sum()
        + sum(float(rates[t]) * x[zi + i] for i, t in enumerate(topics))
    )
    volume_bytes = volume_events * msg
    fractional_vms = float(x[yi])
    # The *scalar* LP optimum is the bound; the VM cost component stays
    # fractional (rounding Y up could overshoot a feasible solution's
    # cost and break soundness).  num_vms is the rounded-up fleet for
    # display only.
    return SolutionCost(
        num_vms=int(math.ceil(fractional_vms - 1e-9)),
        total_bytes=volume_bytes,
        vm_usd=c1.price_per_vm * fractional_vms,
        bandwidth_usd=usd_per_byte * volume_bytes,
    )


def best_lower_bound(problem: MCSSProblem) -> SolutionCost:
    """The stronger of Algorithm 5 and the LP relaxation.

    The two bounds are *incomparable*: Algorithm 5's min-rate clause
    (``max(tau_v, min ev_t)``) encodes the combinatorial fact that a
    pair is served whole, which the LP relaxes fractionally -- so
    Algorithm 5 can win at small ``tau``; the LP pays for topic ingest,
    which Algorithm 5 ignores -- so the LP wins when ingest dominates.
    Both bound the same scalar, so their maximum is a valid (and
    pointwise stronger) bound.
    """
    from .lower import lower_bound

    alg5 = lower_bound(problem)
    try:
        lp = lp_lower_bound(problem)
    except LPBoundError:
        return alg5
    return lp if lp.total_usd > alg5.total_usd else alg5
