"""Per-instance lower bound on the MCSS objective (Alg. 5 / Thm. A.1).

The argument (Appendix C): satisfying subscriber ``v`` requires
delivering topics with total rate at least ``tau_v`` -- and when every
topic in ``Tv`` individually exceeds ``tau_v``, at least the cheapest
single topic, ``min_{t in Tv} ev_t``.  Hence any solution spends at
least ``max(tau_v, min_{t in Tv} ev_t)`` of *outgoing* bandwidth on
``v``.  Summing over subscribers lower-bounds the bandwidth; dividing
by ``BC`` (and rounding up) lower-bounds the VM count; pricing both
with ``C1``/``C2`` lower-bounds the objective.

The bound is not tight -- it ignores incoming bandwidth entirely and
lets every subscriber be satisfied by fractional topics -- but
Figures 2-3 use it as the "how much headroom is left" yardstick, with
the paper's heuristic landing within ~15% of it in many cases.

:func:`lower_bound` implements the paper's bound exactly;
``include_forced_ingest=True`` adds a sound strengthening (see the
function docstring) used in the ablation benches.
"""

from __future__ import annotations

import numpy as np

from ..core import MCSSProblem, SolutionCost

__all__ = ["lower_bound", "lower_bound_bytes"]


def lower_bound_bytes(problem: MCSSProblem, include_forced_ingest: bool = False) -> float:
    """Lower bound on total bandwidth (bytes per period).

    With ``include_forced_ingest`` the bound additionally charges one
    incoming copy for every *forced* topic: if a subscriber's whole
    interest is needed to reach ``tau_v`` (``sum(ev_t for t in Tv) <=
    tau``), then each of its topics must be selected by every feasible
    solution and therefore ingested by at least one VM.  This is sound
    (it never exceeds the true optimum) and strictly tightens the bound
    on sparse workloads; the paper's bound omits it.

    Computed as whole-array passes over the CSR interests (one
    ``np.minimum.reduceat`` for the per-subscriber minimum rates): the
    dynamic reprovisioner prices every epoch with this bound to gate
    its fresh-solve drift check, so it must stay O(pairs) array work
    rather than a per-subscriber Python loop.
    """
    workload = problem.workload
    rates = workload.event_rates
    tau = float(problem.tau)
    indptr, flat = workload.interest_csr()
    if flat.size == 0:
        return 0.0

    nonempty = np.diff(indptr) > 0
    sums = workload.interest_rate_sums()
    tau_v = np.minimum(tau, sums)[nonempty]
    # With tau_v <= 0 the subscriber is satisfied by receiving nothing;
    # the min-rate clause of Theorem A.1 only applies when something
    # must be delivered (an empty solution is feasible and costs 0, so
    # charging min ev_t there would be unsound).
    mins = np.minimum.reduceat(rates[flat], indptr[:-1][nonempty])
    # Lines 2-3 of Algorithm 5.
    contrib = np.maximum(tau_v, mins)
    total_rate = float(contrib[tau_v > 0].sum())

    if include_forced_ingest:
        forced_subs = nonempty & (sums <= tau) & (np.minimum(tau, sums) > 0)
        if forced_subs.any():
            forced_pairs = forced_subs[workload.pair_subscribers()]
            forced_topics = np.unique(flat[forced_pairs])
            total_rate += float(rates[forced_topics].sum())

    return total_rate * workload.message_size_bytes


def lower_bound(problem: MCSSProblem, include_forced_ingest: bool = False) -> SolutionCost:
    """Algorithm 5: lower bound on the full MCSS objective.

    Returns a :class:`~repro.core.problem.SolutionCost` whose
    ``total_usd`` no feasible solution can beat.
    """
    bw_bytes = lower_bound_bytes(problem, include_forced_ingest)
    capacity = problem.capacity_bytes
    num_vms = int(np.ceil(bw_bytes / capacity - 1e-12)) if bw_bytes > 0 else 0
    return problem.cost_components(num_vms, bw_bytes)
