"""Generated trace bundle: a workload plus the social graph behind it.

The optimization pipeline only needs the
:class:`~repro.core.workload.Workload`; the trace-analysis figures
(Figs. 8-12) need the *uncompacted* social graph (follower counts of
inactive users included).  Generators return both, bundled.  Since
generator version 3 the graph is CSR-backed
(:class:`~repro.workloads.social.SocialGraph`), so the bundle holds
exactly two flat arrays per view -- no per-user Python objects even at
millions of users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import Workload
from .social import SocialGraph

__all__ = ["GeneratedTrace"]


@dataclass(frozen=True)
class GeneratedTrace:
    """One synthetic trace draw."""

    name: str
    workload: Workload
    graph: SocialGraph
    seed: Optional[int]

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        stats = self.workload.stats()
        return (
            f"{self.name}(seed={self.seed}): {self.graph.num_users} users / "
            f"{self.graph.num_edges} edges -> {stats.num_topics} topics, "
            f"{stats.num_subscribers} subscribers, {stats.num_pairs} pairs, "
            f"mean interest {stats.mean_interest_size:.1f}"
        )
