"""Heavy-tailed samplers used by the synthetic trace generators.

The Twitter analysis in Appendix D shows the distributions our
generators must reproduce:

* follower / following counts follow truncated power laws (straight
  CCDF lines on log-log axes, Fig. 8);
* the *following* distribution has two man-made anomalies -- a spike at
  20 (the historical default number of accounts a new user was made to
  follow) and a pile-up at 2000 (the pre-2009 follow cap);
* event rates are heavy-tailed with a bot tail (Fig. 9).

Everything takes an explicit ``numpy.random.Generator`` -- generators
are deterministic given a seed, which the test suite and the experiment
harness rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "truncated_power_law",
    "glitched_following_counts",
    "lognormal_rates",
]


def truncated_power_law(
    rng: np.random.Generator,
    size: int,
    alpha: float,
    x_min: float = 1.0,
    x_max: float = 1e6,
) -> np.ndarray:
    """Sample integers from a truncated continuous power law.

    Density ``p(x) ~ x^-alpha`` on ``[x_min, x_max]``, sampled by CDF
    inversion and floored to integers.  ``alpha`` must exceed 1.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 for a normalizable power law")
    if not 0 < x_min < x_max:
        raise ValueError("need 0 < x_min < x_max")
    u = rng.random(size)
    one_minus = 1.0 - alpha
    lo = x_min**one_minus
    hi = x_max**one_minus
    samples = (lo + u * (hi - lo)) ** (1.0 / one_minus)
    return np.floor(samples).astype(np.int64)


def glitched_following_counts(
    rng: np.random.Generator,
    size: int,
    alpha: float = 2.1,
    max_following: int = 10_000,
    default_spike: int = 20,
    default_spike_prob: float = 0.12,
    cap: int = 2_000,
    cap_overflow_prob: float = 0.6,
) -> np.ndarray:
    """Following counts with the Appendix-D anomalies.

    * with probability ``default_spike_prob`` a user keeps the
      historical default of ``default_spike`` followings (the glitch at
      20 in Figs. 8 and 12);
    * samples that exceed ``cap`` are clamped *to* ``cap`` with
      probability ``cap_overflow_prob`` (the pre-2009 cap produced a
      visible pile-up at 2000 rather than a hard ceiling -- some users
      were later allowed past it);
    * everything else is a truncated power law on
      ``[1, max_following]``.
    """
    counts = truncated_power_law(rng, size, alpha, 1.0, float(max_following))
    spike = rng.random(size) < default_spike_prob
    counts[spike] = default_spike
    over = counts > cap
    clamp = over & (rng.random(size) < cap_overflow_prob)
    counts[clamp] = cap
    return counts


def lognormal_rates(
    rng: np.random.Generator,
    means: np.ndarray,
    sigma: float = 1.0,
) -> np.ndarray:
    """Integer event counts, lognormal around per-user target means.

    ``means`` are the desired expected values; the underlying normal is
    shifted by ``-sigma^2 / 2`` so that ``E[exp(N)] = mean`` holds.
    Counts are floored; zeros are legal (inactive users are filtered by
    the generators, mirroring the paper's "active users only" rule).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    means = np.asarray(means, dtype=np.float64)
    if means.size and means.min() < 0:
        raise ValueError("means must be non-negative")
    mu = np.log(np.maximum(means, 1e-12)) - sigma * sigma / 2.0
    # Draw with per-element mu: exp(mu + sigma * Z).
    z = rng.standard_normal(means.size)
    draws = np.exp(mu + sigma * z)
    draws[means <= 0] = 0.0
    return np.floor(draws).astype(np.int64)
