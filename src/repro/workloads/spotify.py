"""Synthetic Spotify-like trace generator (Section IV-B).

The real trace -- 10 days of music-playback notifications from
Spotify's Stockholm data center, 1.1M topics / 4.9M subscribers / 12M
pairs -- is proprietary.  Its published characteristics ([6] and
Section IV) differ from Twitter's in ways that matter for MCSS:

* interests are *small* (12M pairs / 4.9M subscribers ~ 2.4 topics per
  subscriber: you follow a handful of friends and artists, not
  thousands of accounts);
* the follower distribution is far less skewed (no celebrity regime
  comparable to Twitter's; the topic set is "users with >= 1
  follower");
* event rates are *activity* driven (music playback), only weakly
  correlated with popularity, and almost every user generates some
  events -- so per-pair rates are comparatively homogeneous.

The milder skew is exactly why the paper's savings are smaller on
Spotify (up to ~38%) than on Twitter (up to ~74%): with homogeneous
rates there is less slack between a random pair choice and a clever
one.  The generator keeps those contrasts; knobs live on
:class:`SpotifyConfig`.

Since :data:`~repro.workloads.synthetic.GENERATOR_VERSION` 3 the graph
construction is whole-array (CSR
:class:`~repro.workloads.social.SocialGraph`, multinomial-and-shuffle
weighted draws).  Per-seed streams changed from version 2; the sampled
distributions are unchanged and pinned against the
``build_social_graph_loop`` referee by KS-style equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .distributions import truncated_power_law
from .social import build_social_graph, generate_social_workload
from .trace import GeneratedTrace

__all__ = ["SpotifyConfig", "SpotifyWorkloadGenerator"]


@dataclass(frozen=True)
class SpotifyConfig:
    """Parameters of the Spotify-like generator.

    Defaults are calibrated to the published per-user statistics: mean
    interest ~2.4 topics, message size 200 bytes (the paper inflates
    the measured 111-byte mean to 200 for comparability with Twitter),
    and playback rates of a few hundred events per 10-day period.
    """

    num_users: int = 20_000
    message_size_bytes: float = 200.0

    # Interests: small and lightly skewed (mean ~2.5 after filtering,
    # matching the paper's 12M pairs / 4.9M subscribers).
    following_alpha: float = 2.3
    max_following: int = 200

    # Popularity: mildly heavy-tailed (friends + a few big artists);
    # alpha calibrated so mean audience lands near the paper's ~11.
    popularity_alpha: float = 1.8
    artist_prob: float = 0.01
    artist_boost: float = 25.0

    # Rates: activity-driven playback events, far more homogeneous
    # than Twitter's -- the reason the paper's savings are smaller on
    # Spotify (calibration record regenerable via
    # scripts/record_experiments.py).
    mean_rate: float = 500.0
    rate_sigma: float = 0.6
    active_prob: float = 0.85


class SpotifyWorkloadGenerator:
    """Generate Spotify-like workloads; deterministic given a seed."""

    name = "spotify"

    #: Testing seam: the randomized equivalence suite swaps in
    #: ``build_social_graph_loop`` to pin the vectorized construction.
    _graph_builder = staticmethod(build_social_graph)

    def __init__(self, config: SpotifyConfig = SpotifyConfig()) -> None:
        self.config = config

    def generate(self, seed: Optional[int] = 0) -> GeneratedTrace:
        """Draw a trace: the follower graph plus the compacted workload."""
        cfg = self.config
        rng = np.random.default_rng(seed)

        following = truncated_power_law(
            rng,
            cfg.num_users,
            cfg.following_alpha,
            1.0,
            float(min(cfg.max_following, cfg.num_users - 1)),
        )

        weights = truncated_power_law(
            rng, cfg.num_users, cfg.popularity_alpha, 1.0, 1e4
        ).astype(np.float64)
        artists = rng.random(cfg.num_users) < cfg.artist_prob
        weights[artists] *= cfg.artist_boost

        graph = self._graph_builder(
            cfg.num_users,
            rng,
            following_counts=following,
            popularity_weights=weights,
            rate_model=self._rate_model,
        )
        workload = generate_social_workload(graph, cfg.message_size_bytes)
        return GeneratedTrace(name=self.name, workload=workload, graph=graph, seed=seed)

    # ------------------------------------------------------------------
    def _rate_model(
        self, follower_counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Playback-event counts: lognormal, independent of popularity."""
        cfg = self.config
        n = follower_counts.size
        mu = np.log(cfg.mean_rate) - cfg.rate_sigma**2 / 2.0
        counts = np.floor(
            np.exp(mu + cfg.rate_sigma * rng.standard_normal(n))
        ).astype(np.int64)
        inactive = rng.random(n) >= cfg.active_prob
        counts[inactive] = 0
        return counts
