"""Simple parametric workloads for tests, examples, and ablations.

These skip the social-graph machinery: topics and subscribers are
separate populations, interests are drawn directly.  Deterministic
given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import Workload

__all__ = ["zipf_workload", "uniform_workload"]


def zipf_workload(
    num_topics: int,
    num_subscribers: int,
    mean_interest: float = 5.0,
    rate_exponent: float = 1.2,
    max_rate: float = 10_000.0,
    popularity_exponent: float = 1.1,
    message_size_bytes: float = 200.0,
    seed: Optional[int] = 0,
) -> Workload:
    """Zipf-flavoured workload: skewed rates, skewed topic popularity.

    Topic ``i`` gets rate ``~ max_rate / (i+1)^rate_exponent`` (floored
    to >= 1) and is subscribed with probability proportional to
    ``(i+1)^-popularity_exponent``.  Interest sizes are Poisson with
    the given mean (clipped to [1, num_topics]).
    """
    if num_topics <= 0 or num_subscribers <= 0:
        raise ValueError("populations must be positive")
    rng = np.random.default_rng(seed)

    ranks = np.arange(1, num_topics + 1, dtype=np.float64)
    rates = np.maximum(1.0, np.floor(max_rate / ranks**rate_exponent))

    probs = ranks**-popularity_exponent
    probs /= probs.sum()

    sizes = np.clip(rng.poisson(mean_interest, size=num_subscribers), 1, num_topics)
    interests = []
    for v in range(num_subscribers):
        k = int(sizes[v])
        picks = np.unique(rng.choice(num_topics, size=k, p=probs))
        interests.append(picks)

    return Workload(rates, interests, message_size_bytes=message_size_bytes)


def uniform_workload(
    num_topics: int,
    num_subscribers: int,
    mean_interest: float = 5.0,
    rate_low: float = 1.0,
    rate_high: float = 100.0,
    message_size_bytes: float = 200.0,
    seed: Optional[int] = 0,
) -> Workload:
    """Uniform everything: the no-skew control case.

    With homogeneous rates and popularity, clever pair selection and
    topic grouping have the least to exploit -- a useful floor when
    interpreting the savings on the social traces.
    """
    if num_topics <= 0 or num_subscribers <= 0:
        raise ValueError("populations must be positive")
    if not 0 < rate_low <= rate_high:
        raise ValueError("need 0 < rate_low <= rate_high")
    rng = np.random.default_rng(seed)

    rates = np.floor(rng.uniform(rate_low, rate_high + 1.0, size=num_topics))
    rates = np.maximum(rates, 1.0)

    sizes = np.clip(rng.poisson(mean_interest, size=num_subscribers), 1, num_topics)
    interests = []
    for v in range(num_subscribers):
        k = int(sizes[v])
        picks = rng.choice(num_topics, size=min(k, num_topics), replace=False)
        interests.append(np.sort(picks))

    return Workload(rates, interests, message_size_bytes=message_size_bytes)
