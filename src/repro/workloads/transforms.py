"""Workload transforms: combine, filter, and reshape traces.

Traces rarely arrive in exactly the shape an experiment needs.  These
transforms cover the operations the paper's preprocessing performs
(dropping inactive topics, sampling) and the ones a practitioner doing
capacity planning reaches for (merging two applications onto one
deployment, what-if rate scaling, slicing off the heavy hitters).

All transforms return new :class:`~repro.core.workload.Workload`
objects; nothing is mutated.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core import Workload

__all__ = [
    "merge_workloads",
    "filter_topics_by_rate",
    "scale_rates",
    "top_subscribers",
]


def merge_workloads(first: Workload, second: Workload) -> Workload:
    """Union of two workloads on one deployment.

    Topic and subscriber populations are disjoint (the second
    workload's ids are shifted), modeling two applications -- say, a
    Spotify-like and a Twitter-like feed -- consolidated onto a single
    broker fleet to share VM capacity.
    """
    if first.message_size_bytes != second.message_size_bytes:
        raise ValueError(
            "cannot merge workloads with different message sizes "
            f"({first.message_size_bytes} vs {second.message_size_bytes})"
        )
    offset = first.num_topics
    rates = np.concatenate([first.event_rates, second.event_rates])
    interests: List[np.ndarray] = [
        first.interest(v) for v in range(first.num_subscribers)
    ]
    interests += [
        second.interest(v) + offset for v in range(second.num_subscribers)
    ]
    return Workload(rates, interests, message_size_bytes=first.message_size_bytes)


def filter_topics_by_rate(
    workload: Workload, min_rate: float = 1.0, max_rate: float = float("inf")
) -> Workload:
    """Keep topics with ``min_rate <= ev_t <= max_rate``.

    Interests are remapped; subscribers left with empty interests stay
    in the population (they become trivially satisfied), mirroring how
    the paper drops inactive Twitter users' *topics* but keeps the
    followers.  Raises if no topic survives.
    """
    if min_rate > max_rate:
        raise ValueError("min_rate must not exceed max_rate")
    rates = workload.event_rates
    keep = np.flatnonzero((rates >= min_rate) & (rates <= max_rate))
    if keep.size == 0:
        raise ValueError("no topics survive the rate filter")
    remap = np.full(workload.num_topics, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    interests = []
    for v in range(workload.num_subscribers):
        mapped = remap[workload.interest(v)]
        interests.append(np.sort(mapped[mapped >= 0]))
    return Workload(
        rates[keep], interests, message_size_bytes=workload.message_size_bytes
    )


def scale_rates(workload: Workload, factor: float) -> Workload:
    """What-if scaling of every topic's event rate by ``factor``.

    Used for growth planning ("what does the bill look like when
    traffic doubles?"); rates stay strictly positive.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return Workload(
        workload.event_rates * factor,
        workload.interests,
        message_size_bytes=workload.message_size_bytes,
    )


def top_subscribers(workload: Workload, count: int) -> Workload:
    """Keep the ``count`` subscribers with the largest interest rate sums.

    The heavy-reader slice -- useful for stress experiments, since
    these subscribers pin the most pairs at high ``tau``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    sums = workload.interest_rate_sums()
    order = np.argsort(-sums, kind="stable")[: min(count, workload.num_subscribers)]
    return workload.restrict_subscribers(sorted(int(v) for v in order))
