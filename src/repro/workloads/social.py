"""Generic social-interaction workload builder.

Both traces the paper evaluates on (Spotify, Twitter) share one shape:
*users are both topics and subscribers* -- a user is a topic if someone
follows her, and a subscriber if she follows someone (Section II-A).
:func:`generate_social_workload` builds such a workload from three
ingredients:

1. a **following-count** sampler (how many users each user follows);
2. a **popularity weight** per user (how likely a user is to be
   followed -- heavy-tailed weights produce the heavy-tailed follower
   CCDF of Fig. 8);
3. a **rate model** mapping a user's follower count to her event count
   for the trace period (capturing Fig. 10's "more followers, more
   events ... until the celebrity cloud").

Only *active* users (>= 1 event in the period) with >= 1 follower
become topics, mirroring the paper's preprocessing of the Twitter data;
pairs pointing at inactive users are dropped, and users left with no
followings drop out of the subscriber set.

CSR graph representation (GENERATOR_VERSION 3)
----------------------------------------------
Since generator version 3 the follower graph is stored in CSR
(compressed sparse row) form: one flat ``following_targets`` array
holding every user's followings back to back (ascending within each
user) and a ``following_indptr`` offset array of length ``n + 1`` such
that user ``u`` follows ``following_targets[indptr[u]:indptr[u+1]]``.
The classic tuple-of-arrays view (:attr:`SocialGraph.followings`) is
materialized lazily as read-only, zero-copy slices of the flat array,
so the Fig. 8-12 analysis code keeps working unchanged.

Construction is whole-array end to end: one global weighted draw for
all edges, one packed-key sort + segmented-unique pass for dedup (which
also leaves each user's picks sorted), and vectorized
scatter/compaction top-up rounds over all deficient users at once.
The weighted draw itself is *exchangeability-based*: instead of
``rng.choice(..., p=probs)`` (an O(log n) binary search per edge), the
builder draws per-target totals with one ``rng.multinomial`` and
shuffles the repeated targets across edge slots -- for i.i.d.
sampling, (multinomial counts, uniformly random arrangement) is
*exactly* the same joint distribution as per-slot weighted picks, at a
fraction of the cost.  The per-seed random streams therefore differ
from the retained per-user loop (kept verbatim as
:func:`build_social_graph_loop`, the executable spec); the randomized
equivalence suite pins the *distributions* (followings, followers,
event rates) against the referee with KS-style checks instead of
bit-identity.  :func:`generate_social_workload` is a pure array remap
(active-topic relabel + segmented filter) feeding
:meth:`repro.core.Workload.from_csr` directly, with no intermediate
list of per-subscriber arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..core import Workload

__all__ = [
    "SocialGraph",
    "generate_social_workload",
    "generate_social_workload_loop",
    "build_social_graph",
    "build_social_graph_loop",
]

RateModel = Callable[[np.ndarray, np.random.Generator], np.ndarray]
"""Maps per-user follower counts to integer event counts."""

#: Top-up rounds for users left short by dedup; each round draws twice
#: every open deficit from the popularity distribution, so the residual
#: shortfall decays geometrically (6 rounds suffice in practice).
_TOPUP_ROUNDS = 6


@dataclass(frozen=True)
class SocialGraph:
    """The raw follower graph behind a workload (kept for Figs. 8-12).

    CSR-backed: user ``u`` follows
    ``following_targets[following_indptr[u]:following_indptr[u+1]]``
    (ascending); ``follower_counts`` and ``event_counts`` are per-user.
    :attr:`followings` recovers the classic tuple-of-arrays view as
    lazy zero-copy slices.  The companion
    :class:`~repro.core.workload.Workload` compacts this to active
    topics only; trace-analysis figures want the uncompacted view.
    """

    following_indptr: np.ndarray
    following_targets: np.ndarray
    follower_counts: np.ndarray
    event_counts: np.ndarray

    @classmethod
    def from_followings(
        cls,
        followings: Sequence[np.ndarray],
        follower_counts: np.ndarray,
        event_counts: np.ndarray,
    ) -> "SocialGraph":
        """Pack a per-user list of following arrays into CSR form."""
        counts = np.fromiter(
            (f.size for f in followings), dtype=np.int64, count=len(followings)
        )
        indptr = np.zeros(len(followings) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = (
            np.concatenate(followings)
            if len(followings) and indptr[-1]
            else np.empty(0, dtype=np.int64)
        )
        flat = flat.astype(np.int64, copy=False)
        # Freeze the CSR arrays this constructor built itself; the
        # caller-owned per-user arrays stay writable in their hands.
        indptr.setflags(write=False)
        if flat.flags.owndata:
            flat.setflags(write=False)
        return cls(
            following_indptr=indptr,
            following_targets=flat,
            follower_counts=follower_counts,
            event_counts=event_counts,
        )

    @property
    def num_users(self) -> int:
        """Total number of users in the graph."""
        return int(self.following_indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Total number of follow edges in the graph."""
        return int(self.following_indptr[-1])

    @property
    def followings(self) -> Tuple[np.ndarray, ...]:
        """Per-user following arrays (``followings[u]`` = whom ``u`` follows).

        Lazily materialized as read-only views into the flat CSR array
        (no copies); the CSR arrays are the primary representation.
        """
        cached = self.__dict__.get("_followings_cache")
        if cached is None:
            if self.num_users == 0:
                cached = ()
            else:
                cached = tuple(
                    np.split(
                        self.following_targets,
                        self.following_indptr[1:-1].tolist(),
                    )
                )
            object.__setattr__(self, "_followings_cache", cached)
        return cached

    def following_counts(self) -> np.ndarray:
        """Out-degree (number of followings) per user -- one ``np.diff``."""
        return np.diff(self.following_indptr)


def _validate_inputs(
    num_users: int,
    following_counts: np.ndarray,
    popularity_weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    if num_users <= 1:
        raise ValueError("need at least two users")
    if len(following_counts) != num_users or len(popularity_weights) != num_users:
        raise ValueError("per-user arrays must have length num_users")
    if popularity_weights.min() < 0 or popularity_weights.sum() <= 0:
        raise ValueError("popularity weights must be non-negative, not all zero")
    counts = np.clip(np.asarray(following_counts, dtype=np.int64), 0, num_users - 1)
    probs = np.asarray(popularity_weights, dtype=np.float64)
    probs = probs / probs.sum()
    return counts, probs


def _checked_event_counts(
    rate_model: RateModel,
    follower_counts: np.ndarray,
    rng: np.random.Generator,
    num_users: int,
) -> np.ndarray:
    event_counts = np.asarray(rate_model(follower_counts, rng), dtype=np.int64)
    if event_counts.shape != (num_users,):
        raise ValueError("rate model must return one count per user")
    if event_counts.min() < 0:
        raise ValueError("rate model produced negative event counts")
    return event_counts


def _weighted_multiset(
    rng: np.random.Generator, size: int, probs: np.ndarray
) -> np.ndarray:
    """``size`` i.i.d. draws from ``probs``, as an unordered-equivalent array.

    Exchangeability shortcut: draw the per-target totals with one
    ``multinomial`` and arrange the repeated targets uniformly at
    random across the slots.  The joint distribution over slots is
    exactly that of per-slot weighted picks (i.i.d. sequence ==
    multinomial counts + uniform arrangement), but costs one O(n)
    counts draw plus one O(size) shuffle instead of a binary search
    per slot.
    """
    draws = np.repeat(
        np.arange(probs.size, dtype=np.int64), rng.multinomial(size, probs)
    )
    rng.shuffle(draws)
    return draws


def _sorted_unique(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values of ``keys``: one sort + one neighbour mask.

    Equivalent to ``np.unique`` but avoids its hash-based path, which
    is an order of magnitude slower on multi-million-key arrays.
    """
    if keys.size == 0:
        return keys
    keys = np.sort(keys)
    mask = np.empty(keys.size, dtype=bool)
    mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    return keys[mask]


def build_social_graph(
    num_users: int,
    rng: np.random.Generator,
    following_counts: np.ndarray,
    popularity_weights: np.ndarray,
    rate_model: RateModel,
) -> SocialGraph:
    """Materialize the follower graph via weighted attachment.

    Every user draws her followings i.i.d. from the popularity
    distribution (duplicates and self-follows removed), so a user's
    expected follower count is proportional to her weight.

    Whole-array implementation: edges live as packed ``u * n + target``
    keys, deduplicated with one global sort + segmented-unique pass per
    round (which also leaves each user's picks sorted).  Duplicate
    draws (frequent when the popularity weights are heavy) are topped
    up in a few extra global rounds so each user ends with her
    *declared* out-degree -- otherwise the distribution anomalies at
    20/2000 followings (Appendix D) would smear away during
    deduplication.  Same sampling scheme as
    :func:`build_social_graph_loop` (the loop referee) but different
    per-seed streams (see :func:`_weighted_multiset`); the randomized
    equivalence suite pins the distributions with KS-style checks.
    """
    counts, probs = _validate_inputs(num_users, following_counts, popularity_weights)
    n = np.int64(num_users)

    total_edges = int(counts.sum())
    targets = _weighted_multiset(rng, total_edges, probs)
    owners = np.repeat(np.arange(num_users, dtype=np.int64), counts)

    # Packed keys cannot collide across users; one global sort dedups
    # every user's draw in one pass and sorts each segment.
    keys = _sorted_unique(owners * n + targets)
    key_owners = keys // n
    no_self = keys - key_owners * n != key_owners
    keys = keys[no_self]
    # `held` tracks each user's current out-degree and is maintained
    # incrementally; by construction it always equals the per-user key
    # counts, so the final indptr is one cumsum away.
    held = np.bincount(key_owners[no_self], minlength=num_users)

    # repolint: allow(VL01): bounded constant rounds (_TOPUP_ROUNDS); each round is whole-array
    for _round in range(_TOPUP_ROUNDS):
        deficits = counts - held
        short = np.flatnonzero(deficits > 0)
        total_deficit = int(deficits[short].sum())
        if total_deficit == 0:
            break
        pool = _weighted_multiset(rng, 2 * total_deficit, probs)
        draw_owners = np.repeat(short, 2 * deficits[short])
        cand = _sorted_unique(draw_owners * n + pool)
        cowners = cand // n
        mask = cand - cowners * n != cowners  # drop self-follows
        cand, cowners = cand[mask], cowners[mask]
        # Segmented set-difference against the held keys (both sorted);
        # `pos` doubles as the merge position for np.insert below.
        pos = np.searchsorted(keys, cand)
        if keys.size:
            mask = keys[np.minimum(pos, keys.size - 1)] != cand
            cand, cowners, pos = cand[mask], cowners[mask], pos[mask]
        if cand.size:
            # Keep each user's *smallest* `deficit` new targets -- the
            # loop referee's sorted-surplus trim -- via a segmented
            # rank over the (already sorted) candidate keys.
            boundary = np.flatnonzero(cowners[1:] != cowners[:-1]) + 1
            seg_first = np.concatenate((np.zeros(1, dtype=np.int64), boundary))
            seg_id = np.zeros(cand.size, dtype=np.int64)
            seg_id[boundary] = 1
            np.cumsum(seg_id, out=seg_id)
            rank = np.arange(cand.size, dtype=np.int64) - seg_first[seg_id]
            mask = rank < deficits[cowners]
            cand, cowners, pos = cand[mask], cowners[mask], pos[mask]
            # Both sides sorted: one O(edges) scatter-merge instead of
            # re-sorting the whole key array every round.
            keys = np.insert(keys, pos, cand)
            held += np.bincount(cowners, minlength=num_users)

    flat = keys % n
    indptr = np.zeros(num_users + 1, dtype=np.int64)
    np.cumsum(held, out=indptr[1:])
    follower_counts = np.bincount(flat, minlength=num_users)

    event_counts = _checked_event_counts(rate_model, follower_counts, rng, num_users)
    # All three arrays were built here; freeze them (the event counts
    # may alias the rate model's own buffer, so they stay writable).
    for arr in (flat, indptr, follower_counts):
        arr.setflags(write=False)
    return SocialGraph(
        following_indptr=indptr,
        following_targets=flat,
        follower_counts=follower_counts,
        event_counts=event_counts,
    )


def build_social_graph_loop(
    num_users: int,
    rng: np.random.Generator,
    following_counts: np.ndarray,
    popularity_weights: np.ndarray,
    rate_model: RateModel,
) -> SocialGraph:
    """Loop referee: the original per-user construction, kept verbatim.

    Executable specification for :func:`build_social_graph` (the
    repo's loop-referee convention).  Draws each edge with per-slot
    ``rng.choice`` picks, so its per-seed streams differ from the
    vectorized builder's multinomial-and-shuffle draw; the two agree
    in *distribution* (pinned by the KS-style equivalence tests) and
    in every structural invariant (declared out-degrees, no
    self-follows, no duplicates).  O(users) Python overhead -- only
    for tests and the profile script.
    """
    counts, probs = _validate_inputs(num_users, following_counts, popularity_weights)

    total_edges = int(counts.sum())
    targets = rng.choice(num_users, size=total_edges, p=probs)

    picks_by_user: List[np.ndarray] = []
    offset = 0
    for u in range(num_users):
        k = int(counts[u])
        picks = np.unique(targets[offset : offset + k])
        offset += k
        picks_by_user.append(picks[picks != u])

    for _round in range(_TOPUP_ROUNDS):
        deficits = [
            int(counts[u]) - picks_by_user[u].size for u in range(num_users)
        ]
        total_deficit = sum(max(0, d) for d in deficits)
        if total_deficit == 0:
            break
        pool = rng.choice(num_users, size=2 * total_deficit, p=probs)
        offset = 0
        for u, deficit in enumerate(deficits):
            if deficit <= 0:
                continue
            extra = pool[offset : offset + 2 * deficit]
            offset += 2 * deficit
            merged = np.unique(np.concatenate([picks_by_user[u], extra]))
            merged = merged[merged != u]
            # Trim any overshoot to keep the declared out-degree exact.
            if merged.size > counts[u]:
                surplus = np.setdiff1d(merged, picks_by_user[u])
                keep = counts[u] - picks_by_user[u].size
                merged = np.sort(
                    np.concatenate([picks_by_user[u], surplus[:keep]])
                )
            picks_by_user[u] = merged

    follower_counts = np.zeros(num_users, dtype=np.int64)
    for picks in picks_by_user:
        follower_counts[picks] += 1

    event_counts = _checked_event_counts(rate_model, follower_counts, rng, num_users)
    return SocialGraph.from_followings(picks_by_user, follower_counts, event_counts)


def _active_topic_index(graph: SocialGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Active users (>= 1 event, >= 1 follower) and the user->topic map."""
    active = (graph.event_counts >= 1) & (graph.follower_counts >= 1)
    topic_ids = np.flatnonzero(active)
    topic_index = np.full(graph.num_users, -1, dtype=np.int64)
    topic_index[topic_ids] = np.arange(topic_ids.size)
    return topic_ids, topic_index


def generate_social_workload(
    graph: SocialGraph,
    message_size_bytes: float = 200.0,
) -> Workload:
    """Compact a social graph into a :class:`Workload`.

    Topics are the *active* users (>= 1 event and >= 1 follower);
    subscribers are the users still following at least one topic.

    Pure array remap: relabel the flat CSR targets through the
    active-topic index, drop the pairs that map to inactive users with
    one boolean compaction, rebuild the offsets by sampling the
    running kept-pair total at the old CSR boundaries, and hand the
    arrays to :meth:`Workload.from_csr` (the relabeling is monotone,
    so each subscriber's interest stays sorted and duplicate-free --
    the contract ``validate=False`` asserts).
    """
    topic_ids, topic_index = _active_topic_index(graph)

    mapped = topic_index[graph.following_targets]
    keep = mapped >= 0
    # Per-user surviving-pair counts without materializing an O(edges)
    # owner-id array: the running total of kept pairs, sampled at each
    # user's CSR boundary.
    kept_running = np.zeros(graph.num_edges + 1, dtype=np.int64)
    np.cumsum(keep, out=kept_running[1:])
    kept_counts = np.diff(kept_running[graph.following_indptr])
    subscriber_counts = kept_counts[kept_counts > 0]
    indptr = np.zeros(subscriber_counts.size + 1, dtype=np.int64)
    np.cumsum(subscriber_counts, out=indptr[1:])

    rates = graph.event_counts[topic_ids].astype(np.float64)
    return Workload.from_csr(
        rates,
        indptr,
        mapped[keep],
        message_size_bytes=message_size_bytes,
        validate=False,
    )


def generate_social_workload_loop(
    graph: SocialGraph,
    message_size_bytes: float = 200.0,
) -> Workload:
    """Loop referee: the original per-user compaction, kept verbatim.

    Executable specification for :func:`generate_social_workload`;
    builds the interests as a list of per-subscriber arrays and pays
    the positional :class:`Workload` constructor's validation.
    """
    topic_ids, topic_index = _active_topic_index(graph)

    interests: List[np.ndarray] = []
    for u in range(graph.num_users):
        mapped = topic_index[graph.followings[u]]
        mapped = mapped[mapped >= 0]
        if mapped.size:
            interests.append(np.sort(mapped))

    rates = graph.event_counts[topic_ids].astype(np.float64)
    return Workload(
        event_rates=rates,
        interests=interests,
        message_size_bytes=message_size_bytes,
    )
