"""Generic social-interaction workload builder.

Both traces the paper evaluates on (Spotify, Twitter) share one shape:
*users are both topics and subscribers* -- a user is a topic if someone
follows her, and a subscriber if she follows someone (Section II-A).
:func:`generate_social_workload` builds such a workload from three
ingredients:

1. a **following-count** sampler (how many users each user follows);
2. a **popularity weight** per user (how likely a user is to be
   followed -- heavy-tailed weights produce the heavy-tailed follower
   CCDF of Fig. 8);
3. a **rate model** mapping a user's follower count to her event count
   for the trace period (capturing Fig. 10's "more followers, more
   events ... until the celebrity cloud").

Only *active* users (>= 1 event in the period) with >= 1 follower
become topics, mirroring the paper's preprocessing of the Twitter data;
pairs pointing at inactive users are dropped, and users left with no
followings drop out of the subscriber set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core import Workload

__all__ = ["SocialGraph", "generate_social_workload", "build_social_graph"]

RateModel = Callable[[np.ndarray, np.random.Generator], np.ndarray]
"""Maps per-user follower counts to integer event counts."""


@dataclass(frozen=True)
class SocialGraph:
    """The raw follower graph behind a workload (kept for Figs. 8-12).

    ``followings[u]`` lists the users ``u`` follows; ``follower_counts``
    and ``event_counts`` are per-user.  The companion
    :class:`~repro.core.workload.Workload` compacts this to active
    topics only; trace-analysis figures want the uncompacted view.
    """

    followings: Tuple[np.ndarray, ...]
    follower_counts: np.ndarray
    event_counts: np.ndarray

    @property
    def num_users(self) -> int:
        """Total number of users in the graph."""
        return len(self.followings)

    def following_counts(self) -> np.ndarray:
        """Out-degree (number of followings) per user."""
        return np.asarray([f.size for f in self.followings], dtype=np.int64)


def build_social_graph(
    num_users: int,
    rng: np.random.Generator,
    following_counts: np.ndarray,
    popularity_weights: np.ndarray,
    rate_model: RateModel,
) -> SocialGraph:
    """Materialize the follower graph via weighted attachment.

    Every user draws her followings i.i.d. from the popularity
    distribution (duplicates and self-follows removed), so a user's
    expected follower count is proportional to her weight.
    """
    if num_users <= 1:
        raise ValueError("need at least two users")
    if len(following_counts) != num_users or len(popularity_weights) != num_users:
        raise ValueError("per-user arrays must have length num_users")
    if popularity_weights.min() < 0 or popularity_weights.sum() <= 0:
        raise ValueError("popularity weights must be non-negative, not all zero")

    counts = np.clip(np.asarray(following_counts, dtype=np.int64), 0, num_users - 1)
    probs = np.asarray(popularity_weights, dtype=np.float64)
    probs = probs / probs.sum()

    # One global draw for all edges, then slice per user: much faster
    # than per-user weighted sampling.  Duplicate draws (frequent when
    # the popularity weights are heavy) are topped up in a few extra
    # global rounds so each user ends with her *declared* out-degree --
    # otherwise the distribution anomalies at 20/2000 followings
    # (Appendix D) would smear away during deduplication.
    total_edges = int(counts.sum())
    targets = rng.choice(num_users, size=total_edges, p=probs)

    picks_by_user: List[np.ndarray] = []
    offset = 0
    for u in range(num_users):
        k = int(counts[u])
        picks = np.unique(targets[offset : offset + k])
        offset += k
        picks_by_user.append(picks[picks != u])

    for _round in range(6):
        deficits = [
            int(counts[u]) - picks_by_user[u].size for u in range(num_users)
        ]
        total_deficit = sum(max(0, d) for d in deficits)
        if total_deficit == 0:
            break
        pool = rng.choice(num_users, size=2 * total_deficit, p=probs)
        offset = 0
        for u, deficit in enumerate(deficits):
            if deficit <= 0:
                continue
            extra = pool[offset : offset + 2 * deficit]
            offset += 2 * deficit
            merged = np.unique(np.concatenate([picks_by_user[u], extra]))
            merged = merged[merged != u]
            # Trim any overshoot to keep the declared out-degree exact.
            if merged.size > counts[u]:
                surplus = np.setdiff1d(merged, picks_by_user[u])
                keep = counts[u] - picks_by_user[u].size
                merged = np.sort(
                    np.concatenate([picks_by_user[u], surplus[:keep]])
                )
            picks_by_user[u] = merged

    followings: List[np.ndarray] = []
    follower_counts = np.zeros(num_users, dtype=np.int64)
    for picks in picks_by_user:
        picks.setflags(write=False)
        followings.append(picks)
        follower_counts[picks] += 1

    event_counts = np.asarray(rate_model(follower_counts, rng), dtype=np.int64)
    if event_counts.shape != (num_users,):
        raise ValueError("rate model must return one count per user")
    if event_counts.min() < 0:
        raise ValueError("rate model produced negative event counts")

    return SocialGraph(
        followings=tuple(followings),
        follower_counts=follower_counts,
        event_counts=event_counts,
    )


def generate_social_workload(
    graph: SocialGraph,
    message_size_bytes: float = 200.0,
) -> Workload:
    """Compact a social graph into a :class:`Workload`.

    Topics are the *active* users (>= 1 event and >= 1 follower);
    subscribers are the users still following at least one topic.
    """
    active = (graph.event_counts >= 1) & (graph.follower_counts >= 1)
    topic_ids = np.flatnonzero(active)
    topic_index = np.full(graph.num_users, -1, dtype=np.int64)
    topic_index[topic_ids] = np.arange(topic_ids.size)

    interests: List[np.ndarray] = []
    for u in range(graph.num_users):
        mapped = topic_index[graph.followings[u]]
        mapped = mapped[mapped >= 0]
        if mapped.size:
            interests.append(np.sort(mapped))

    rates = graph.event_counts[topic_ids].astype(np.float64)
    return Workload(
        event_rates=rates,
        interests=interests,
        message_size_bytes=message_size_bytes,
    )
