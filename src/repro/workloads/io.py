"""Workload (de)serialization.

Two formats:

* ``.npz`` (:func:`save_workload` / :func:`load_workload`) -- compact
  binary: the CSR interest arrays plus a header record.  The native
  format, **versioned**:

  - *version 3* (current): ``version``, ``generator_version`` (the
    :data:`repro.workloads.GENERATOR_VERSION` the writer ran), the CSR
    arrays ``event_rates`` / ``interest_indptr`` / ``interest_topics``,
    ``message_size_bytes``, and a ``digest_<member>`` CRC32 for each of
    those payload members.  Loads verify the digests and raise
    :class:`TraceCorruptionError` *naming the bad member*; writes go
    through tmp-file + fsync + atomic rename
    (:func:`repro.resilience.integrity.atomic_write`), so an
    interrupted save never leaves a half-valid trace behind.  Written
    *uncompressed* by default so that ``load_workload(path,
    mmap=True)`` can hand back a
    :class:`~repro.core.backend.MmapBackend`-backed
    :class:`~repro.core.Workload` whose arrays are ``np.memmap`` views
    straight into the file -- no pair-sized RAM allocation, the entry
    ticket to the out-of-core sharded solves
    (:mod:`repro.selection.sharded`).  The mmap path skips digest
    verification by default (it would page in the whole trace); pass
    ``verify=True`` to force it.
  - *version 2*: identical payload without the digests.  Still loads
    (including mmap); there is simply nothing to verify.
  - *version 1* (legacy): same data under the older
    ``interest_offsets`` key, always deflate-compressed.  Still loaded
    (in RAM); a truncated file raises :class:`TraceCorruptionError`
    naming the missing member, and asking to mmap it raises with a
    re-save hint (re-saving writes format v3).
  - anything newer raises a clear "unsupported version" error instead
    of misreading the file.

* CSV pair lists (:func:`save_workload_csv` /
  :func:`load_workload_csv`) -- the interchange format external traces
  usually arrive in: one ``topic,subscriber`` pair per line plus a
  ``topic,rate`` side file, mirroring how the paper's Twitter tarball
  was laid out.

:func:`save_zipf_workload_chunked` generates a Zipf workload directly
*into* a format-3 file, one subscriber chunk at a time, so traces
larger than RAM-comfortable (the 10M-user / >=100M-pair bench rung)
never exist as a single in-RAM draw.  Each completed chunk is
persisted to a ``<path>.parts/`` sidecar and recorded in a
``<path>.manifest.json``; a re-run after a crash resumes from the
completed chunks (bit-exactly -- chunks are independently seeded) and
cleans both up once the final trace is atomically in place.
"""

from __future__ import annotations

import csv
import json
import os
import shutil
import zipfile
from typing import Dict, List, Optional, Union

import numpy as np
from numpy.lib import format as npformat

from ..core import MmapBackend, Workload, build_workload
from ..resilience.integrity import (
    TraceCorruptionError,
    atomic_write,
    member_digest,
    verified_member,
    write_npz_atomic,
)
from .synthetic import GENERATOR_VERSION

__all__ = [
    "TraceCorruptionError",
    "save_workload",
    "load_workload",
    "save_workload_csv",
    "load_workload_csv",
    "save_zipf_workload_chunked",
]

_FORMAT_VERSION = 3
# Members carrying a digest_<name> CRC32 in format v3.
_PAYLOAD_MEMBERS = (
    "event_rates",
    "interest_indptr",
    "interest_topics",
    "message_size_bytes",
)


def _resolve_npz_path(path: Union[str, os.PathLike]) -> str:
    """Mirror ``np.savez``'s filename rule (``.npz`` appended if missing)."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    return path


def _workload_members(
    event_rates, interest_indptr, interest_topics, message_size_bytes
) -> Dict[str, np.ndarray]:
    return {
        "version": np.int64(_FORMAT_VERSION),
        "generator_version": np.int64(GENERATOR_VERSION),
        "event_rates": np.asarray(event_rates, dtype=np.float64),
        "interest_indptr": np.asarray(interest_indptr, dtype=np.int64),
        "interest_topics": np.asarray(interest_topics, dtype=np.int64),
        "message_size_bytes": np.float64(message_size_bytes),
    }


def save_workload(
    workload: Workload,
    path: Union[str, os.PathLike],
    *,
    compress: bool = False,
) -> str:
    """Write a workload to ``path`` (``.npz`` appended if missing).

    Format version 3: the CSR arrays verbatim, a header record (format
    version and the writer's generator version), and a per-member
    CRC32.  The write is atomic (tmp file + fsync + rename): readers
    see the old file or the complete new one, never a prefix.
    Uncompressed by default -- the members are then plain ``.npy``
    blocks inside the zip and :func:`load_workload` can memory-map
    them; pass ``compress=True`` to trade that ability for a smaller
    file.  Returns the path actually written.
    """
    path = _resolve_npz_path(path)
    write_npz_atomic(
        path,
        _workload_members(
            workload.event_rates,
            workload.interest_indptr,
            workload.interest_topics,
            workload.message_size_bytes,
        ),
        digest_members=_PAYLOAD_MEMBERS,
        compress=compress,
    )
    return path


def _mmap_npz_member(path: str, zf: zipfile.ZipFile, name: str) -> np.ndarray:
    """Memory-map one uncompressed ``.npy`` member of an ``.npz`` file.

    A stored (non-deflated) zip member is the byte-identical ``.npy``
    stream at a known file offset: local header (30 fixed bytes +
    filename + extra field), then the npy magic/header, then the raw
    array data -- which ``np.memmap`` can map directly.
    """
    member = name + ".npy"
    info = zf.getinfo(member)
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError(
            f"cannot mmap compressed member {member!r}; re-save with "
            "save_workload(..., compress=False)"
        )
    with open(path, "rb") as fh:
        fh.seek(info.header_offset)
        local = fh.read(30)
        if local[:4] != b"PK\x03\x04":
            raise ValueError(f"corrupt local header for member {member!r}")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        fh.seek(info.header_offset + 30 + name_len + extra_len)
        magic = npformat.read_magic(fh)
        if magic == (1, 0):
            shape, fortran, dtype = npformat.read_array_header_1_0(fh)
        elif magic == (2, 0):
            shape, fortran, dtype = npformat.read_array_header_2_0(fh)
        else:
            raise ValueError(f"unsupported npy header version {magic} in {member!r}")
        data_offset = fh.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _v1_member(data, name: str, path: str) -> np.ndarray:
    """Fetch a legacy-format member, diagnosing truncation by name."""
    try:
        return data[name]
    except KeyError:
        raise TraceCorruptionError(
            f"legacy (v1) workload file {path!r} is truncated: member "
            f"{name!r} is missing; re-generate it, or load an intact copy "
            "and re-save with save_workload() (writes format v3)"
        ) from None


def load_workload(
    path: Union[str, os.PathLike],
    *,
    mmap: bool = False,
    verify: Optional[bool] = None,
) -> Workload:
    """Read a workload previously written by :func:`save_workload`.

    ``verify`` controls digest checking of format-v3 members: the
    default (``None``) verifies on in-RAM loads and skips on mmap
    loads (checking there would page in the whole trace up front);
    ``verify=True`` forces the check everywhere and *requires* digests
    (a v2 file then fails with an error naming the missing digest
    member); ``verify=False`` skips it.  A failed check raises
    :class:`TraceCorruptionError` naming the corrupt member.

    With ``mmap=True`` (uncompressed v2/v3 files) the returned
    workload is backed by a :class:`~repro.core.backend.MmapBackend`:
    its CSR arrays are read-only ``np.memmap`` views into the file, and
    pair-sized derived caches spill to ``<path>.cache/`` sidecar files
    instead of the Python heap.  The file is trusted on this path (it
    was written from an already-validated workload); the in-RAM path
    keeps the historical full re-validation.  Unknown (future) format
    versions raise ``ValueError``.
    """
    path = os.fspath(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version == 1:
            if mmap:
                raise ValueError(
                    "workload format version 1 is compressed and cannot be "
                    "memory-mapped; load it in RAM and re-save with "
                    "save_workload() (writes format v3) to enable mmap=True"
                )
            return Workload.from_csr(
                _v1_member(data, "event_rates", path),
                _v1_member(data, "interest_offsets", path),
                _v1_member(data, "interest_topics", path),
                message_size_bytes=float(
                    _v1_member(data, "message_size_bytes", path)
                ),
            )
        if version not in (2, _FORMAT_VERSION):
            raise ValueError(
                f"unsupported workload format version {version} "
                f"(this build reads versions 1-{_FORMAT_VERSION})"
            )
        if not mmap:
            check = verify is not False
            members = {
                name: verified_member(
                    data, name, path,
                    verify=check, require_digest=verify is True,
                )
                for name in _PAYLOAD_MEMBERS
            }
            return Workload.from_csr(
                members["event_rates"],
                members["interest_indptr"],
                members["interest_topics"],
                message_size_bytes=float(members["message_size_bytes"]),
            )
        message_size = float(
            verified_member(
                data, "message_size_bytes", path,
                verify=bool(verify), require_digest=verify is True,
            )
        )
    with zipfile.ZipFile(path) as zf:
        rates = _mmap_npz_member(path, zf, "event_rates")
        indptr = _mmap_npz_member(path, zf, "interest_indptr")
        flat = _mmap_npz_member(path, zf, "interest_topics")
    if verify:
        # Explicit opt-in: stream every mapped member through the CRC
        # (pages the trace in once) before trusting it.
        with np.load(path, allow_pickle=False) as data:
            for name, arr in (
                ("event_rates", rates),
                ("interest_indptr", indptr),
                ("interest_topics", flat),
            ):
                digest_name = "digest_" + name
                if digest_name not in data.files:
                    raise TraceCorruptionError(
                        f"member {digest_name!r} is missing from {path!r}; "
                        f"cannot verify {name!r}"
                    )
                want = int(np.uint32(data[digest_name]))
                got = member_digest(arr)
                if got != want:
                    raise TraceCorruptionError(
                        f"member {name!r} of {path!r} is corrupt: "
                        f"crc32 {got:#010x} != recorded {want:#010x}"
                    )
    return Workload.from_csr(
        rates,
        indptr,
        flat,
        message_size_bytes=message_size,
        validate=False,
        backend=MmapBackend(path + ".cache"),
    )


def _draw_zipf_chunk(
    chunk: int,
    lo: int,
    hi: int,
    num_topics: int,
    mean_interest: float,
    probs: np.ndarray,
    seed: Optional[int],
):
    """Draw one subscriber chunk; an independent stream per chunk index.

    The per-chunk seeding is what makes resume-after-crash bit-exact:
    a chunk's draw never depends on which other chunks already ran.
    """
    rng = np.random.default_rng([seed if seed is not None else 0, chunk])
    sizes = np.clip(
        rng.poisson(mean_interest, size=hi - lo), 1, num_topics
    ).astype(np.int64)
    subs = np.repeat(np.arange(lo, hi, dtype=np.int64), sizes)
    picks = rng.choice(num_topics, size=int(sizes.sum()), p=probs)
    # Packed-key unique: per-subscriber dedup + sorted interests,
    # exactly as the in-RAM generator does -- global subscriber ids
    # keep the chunks' key ranges disjoint and ascending, so the
    # concatenated flats are already subscriber-major CSR data.
    keys = np.unique(subs * num_topics + picks)
    chunk_counts = np.bincount(keys // num_topics - lo, minlength=hi - lo)
    return chunk_counts.astype(np.int64), keys % num_topics


def _load_manifest(manifest_path: str, params: dict) -> List[int]:
    """Completed chunk ids from a matching sidecar manifest, else []."""
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError):
        return []
    if manifest.get("params") != params:
        return []  # different draw: the partial state is useless
    return [int(c) for c in manifest.get("chunks", [])]


def save_zipf_workload_chunked(
    path: Union[str, os.PathLike],
    num_topics: int,
    num_subscribers: int,
    mean_interest: float = 5.0,
    rate_exponent: float = 1.2,
    max_rate: float = 10_000.0,
    popularity_exponent: float = 1.1,
    message_size_bytes: float = 200.0,
    seed: Optional[int] = 0,
    chunk_subscribers: int = 1_000_000,
    resume: bool = True,
) -> str:
    """Draw a Zipf workload chunk-by-chunk straight into a format-3 file.

    Same marginals as :func:`repro.workloads.zipf_workload` (the rates
    and popularity weights are deterministic functions of
    ``num_topics``; interest sizes are Poisson-clipped; within-draw
    duplicates collapse), but subscribers are drawn in independent
    per-chunk streams seeded ``default_rng([seed, chunk_index])`` --
    so the output is *not* a replay of ``zipf_workload(seed)``, it is
    the out-of-core generator for traces whose single-draw temporaries
    would not fit the memory budget (the 10M-user bench rung).  Peak
    RAM is one chunk's draw plus the accumulated CSR arrays; the
    workload itself is meant to be read back with
    ``load_workload(path, mmap=True)``.

    Each completed chunk is persisted atomically to
    ``<path>.parts/chunk_<i>.npz`` and recorded in
    ``<path>.manifest.json``; with ``resume=True`` (the default) a
    re-run whose parameters match the manifest skips the completed
    chunks -- bit-exact, since chunk streams are independent -- and a
    parameter mismatch starts the draw from scratch.  The final file is
    written atomically, then the sidecar state is removed.  Returns the
    written path.
    """
    if num_topics <= 0 or num_subscribers <= 0:
        raise ValueError("populations must be positive")
    if chunk_subscribers <= 0:
        raise ValueError("chunk_subscribers must be positive")

    path = _resolve_npz_path(path)
    manifest_path = path + ".manifest.json"
    parts_dir = path + ".parts"
    params = {
        "format_version": _FORMAT_VERSION,
        "generator_version": GENERATOR_VERSION,
        "num_topics": num_topics,
        "num_subscribers": num_subscribers,
        "mean_interest": mean_interest,
        "rate_exponent": rate_exponent,
        "max_rate": max_rate,
        "popularity_exponent": popularity_exponent,
        "message_size_bytes": message_size_bytes,
        "seed": seed,
        "chunk_subscribers": chunk_subscribers,
    }
    completed = set(_load_manifest(manifest_path, params)) if resume else set()

    ranks = np.arange(1, num_topics + 1, dtype=np.float64)
    rates = np.maximum(1.0, np.floor(max_rate / ranks**rate_exponent))
    probs = ranks**-popularity_exponent
    probs /= probs.sum()

    counts = np.zeros(num_subscribers, dtype=np.int64)
    flat_chunks: List[np.ndarray] = []
    for chunk, lo in enumerate(range(0, num_subscribers, chunk_subscribers)):
        hi = min(lo + chunk_subscribers, num_subscribers)
        part_path = os.path.join(parts_dir, f"chunk_{chunk}.npz")
        if chunk in completed:
            try:
                with np.load(part_path, allow_pickle=False) as part:
                    chunk_counts = np.array(
                        verified_member(
                            part, "counts", part_path, require_digest=True
                        )
                    )
                    chunk_flat = np.array(
                        verified_member(
                            part, "flat", part_path, require_digest=True
                        )
                    )
            except (OSError, TraceCorruptionError):
                # A part that vanished or failed its digest is simply
                # not completed; redraw it (same stream, same bits).
                completed.discard(chunk)
        if chunk not in completed:
            chunk_counts, chunk_flat = _draw_zipf_chunk(
                chunk, lo, hi, num_topics, mean_interest, probs, seed
            )
            os.makedirs(parts_dir, exist_ok=True)
            write_npz_atomic(
                part_path,
                {"counts": chunk_counts, "flat": chunk_flat},
                digest_members=("counts", "flat"),
            )
            completed.add(chunk)
            with atomic_write(manifest_path, mode="w") as fh:
                json.dump(
                    {"params": params, "chunks": sorted(completed)}, fh
                )
        counts[lo:hi] = chunk_counts
        flat_chunks.append(chunk_flat)

    indptr = np.zeros(num_subscribers + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    flat = (
        np.concatenate(flat_chunks) if flat_chunks else np.empty(0, np.int64)
    )
    write_npz_atomic(
        path,
        _workload_members(rates, indptr, flat, message_size_bytes),
        digest_members=_PAYLOAD_MEMBERS,
    )
    for leftover in (manifest_path,):
        if os.path.exists(leftover):
            os.unlink(leftover)
    shutil.rmtree(parts_dir, ignore_errors=True)
    return path


def save_workload_csv(
    workload: Workload,
    pairs_path: Union[str, os.PathLike],
    rates_path: Union[str, os.PathLike],
) -> None:
    """Write the pair list and the topic-rate table as CSV files.

    ``pairs_path`` gets ``topic,subscriber`` rows; ``rates_path`` gets
    ``topic,rate`` rows.  Message size is not representable in this
    interchange format -- the loader takes it as a parameter.
    """
    with open(pairs_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["topic", "subscriber"])
        for v in range(workload.num_subscribers):
            for t in workload.interest(v).tolist():
                writer.writerow([t, v])
    with open(rates_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["topic", "rate"])
        for t in range(workload.num_topics):
            writer.writerow([t, workload.event_rate(t)])


def load_workload_csv(
    pairs_path: Union[str, os.PathLike],
    rates_path: Union[str, os.PathLike],
    message_size_bytes: float = 200.0,
) -> Workload:
    """Read a workload from the CSV interchange format.

    Topic/subscriber ids may be arbitrary non-negative integers; they
    are compacted like :func:`repro.core.build_workload` does.  Pairs
    referencing topics missing from the rate table raise.
    """
    rates: Dict[int, float] = {}
    with open(rates_path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            rates[int(row["topic"])] = float(row["rate"])
    subscriptions: Dict[int, List[int]] = {}
    with open(pairs_path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            subscriptions.setdefault(int(row["subscriber"]), []).append(
                int(row["topic"])
            )
    return build_workload(
        subscriptions, rates, message_size_bytes=message_size_bytes
    )
