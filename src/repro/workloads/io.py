"""Workload (de)serialization.

Two formats:

* ``.npz`` (:func:`save_workload` / :func:`load_workload`) -- compact
  binary: event rates, a flattened interest array with offsets (the
  standard CSR trick), and the message size.  The native format.
* CSV pair lists (:func:`save_workload_csv` /
  :func:`load_workload_csv`) -- the interchange format external traces
  usually arrive in: one ``topic,subscriber`` pair per line plus a
  ``topic,rate`` side file, mirroring how the paper's Twitter tarball
  was laid out.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Tuple, Union

import numpy as np

from ..core import Workload, build_workload

__all__ = [
    "save_workload",
    "load_workload",
    "save_workload_csv",
    "load_workload_csv",
]

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path: Union[str, os.PathLike]) -> None:
    """Write a workload to ``path`` (``.npz`` appended if missing)."""
    offsets = np.zeros(workload.num_subscribers + 1, dtype=np.int64)
    chunks = []
    for v in range(workload.num_subscribers):
        interest = workload.interest(v)
        offsets[v + 1] = offsets[v] + interest.size
        chunks.append(interest)
    flat = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        event_rates=workload.event_rates,
        interest_offsets=offsets,
        interest_topics=flat,
        message_size_bytes=np.float64(workload.message_size_bytes),
    )


def load_workload(path: Union[str, os.PathLike]) -> Workload:
    """Read a workload previously written by :func:`save_workload`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported workload format version {version}")
        rates = data["event_rates"]
        offsets = data["interest_offsets"]
        flat = data["interest_topics"]
        message_size = float(data["message_size_bytes"])

    interests = [
        flat[offsets[v] : offsets[v + 1]] for v in range(offsets.size - 1)
    ]
    return Workload(rates, interests, message_size_bytes=message_size)


def save_workload_csv(
    workload: Workload,
    pairs_path: Union[str, os.PathLike],
    rates_path: Union[str, os.PathLike],
) -> None:
    """Write the pair list and the topic-rate table as CSV files.

    ``pairs_path`` gets ``topic,subscriber`` rows; ``rates_path`` gets
    ``topic,rate`` rows.  Message size is not representable in this
    interchange format -- the loader takes it as a parameter.
    """
    with open(pairs_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["topic", "subscriber"])
        for v in range(workload.num_subscribers):
            for t in workload.interest(v).tolist():
                writer.writerow([t, v])
    with open(rates_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["topic", "rate"])
        for t in range(workload.num_topics):
            writer.writerow([t, workload.event_rate(t)])


def load_workload_csv(
    pairs_path: Union[str, os.PathLike],
    rates_path: Union[str, os.PathLike],
    message_size_bytes: float = 200.0,
) -> Workload:
    """Read a workload from the CSV interchange format.

    Topic/subscriber ids may be arbitrary non-negative integers; they
    are compacted like :func:`repro.core.build_workload` does.  Pairs
    referencing topics missing from the rate table raise.
    """
    rates: Dict[int, float] = {}
    with open(rates_path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            rates[int(row["topic"])] = float(row["rate"])
    subscriptions: Dict[int, List[int]] = {}
    with open(pairs_path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            subscriptions.setdefault(int(row["subscriber"]), []).append(
                int(row["topic"])
            )
    return build_workload(
        subscriptions, rates, message_size_bytes=message_size_bytes
    )
