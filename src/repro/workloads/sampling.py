"""Trace down-sampling (the paper evaluates 10% / 1% samples).

Sampling keeps a random subset of *subscribers* (topics and their rates
are untouched; topics whose whole audience is sampled away simply stop
mattering).  This matches how the paper's samples were taken -- the
Spotify trace is "about a 10% sample" and the Twitter trace "about a 1%
sample" of the respective full populations (Section IV-F).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import Workload

__all__ = ["sample_subscribers"]


def sample_subscribers(
    workload: Workload,
    fraction: float,
    seed: Optional[int] = 0,
) -> Workload:
    """Keep a uniform ``fraction`` of subscribers.

    At least one subscriber is kept for any positive fraction.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return workload
    rng = np.random.default_rng(seed)
    n = workload.num_subscribers
    keep_count = max(1, int(round(n * fraction)))
    keep = rng.choice(n, size=keep_count, replace=False)
    return workload.restrict_subscribers(sorted(int(v) for v in keep))
