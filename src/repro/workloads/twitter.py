"""Synthetic Twitter-like trace generator (Section IV-B, Appendix D).

The real dataset -- the Kwak et al. social graph joined with 10 days of
tweet counts fetched from the public API in late 2013 -- is no longer
downloadable (the paper's tidal-news.org link is dead) and contained 8M
active users / 30M subscribers / 683.5M pairs.  This generator
reproduces its *statistical shape* at a configurable scale:

* follower and following CCDFs are truncated power laws (Fig. 8);
* the following distribution carries the man-made anomalies at 20
  (signup default) and 2000 (pre-2009 cap);
* a small "suggested users" boost reproduces the follower-count bump
  around the celebrity scale (the 1e5 glitch in Fig. 8);
* mean event rate grows near-linearly with follower count, except for
  a *celebrity cloud* of high-follower low-rate users (Fig. 10);
* a bot tail tweets >= 1000 times in the period regardless of
  followers, and roughly half of all active users tweet < 10 times
  (Fig. 9);
* users who did not tweet in the period are dropped ("active users"
  rule), as are their incoming pairs.

All knobs live on :class:`TwitterConfig`; the defaults are calibrated
so that a 20k-user draw matches the paper's per-user statistics (mean
followings ~23 after filtering, heavy-tailed rates with mean ~60).

Since :data:`~repro.workloads.synthetic.GENERATOR_VERSION` 3 the graph
construction behind :meth:`TwitterWorkloadGenerator.generate` is
whole-array (CSR :class:`~repro.workloads.social.SocialGraph`, one
multinomial-and-shuffle weighted draw, global packed-key dedup,
vectorized deficit top-up).  Per-seed streams changed from version 2;
the sampled *distributions* are unchanged and are pinned against the
retained ``build_social_graph_loop`` referee by KS-style equivalence
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .distributions import glitched_following_counts, truncated_power_law
from .social import SocialGraph, build_social_graph, generate_social_workload
from .trace import GeneratedTrace

__all__ = ["TwitterConfig", "TwitterWorkloadGenerator"]


@dataclass(frozen=True)
class TwitterConfig:
    """Parameters of the Twitter-like generator.

    Scale-free parameters (exponents, probabilities) come from the
    Appendix-D analysis; absolute cutoffs shrink with ``num_users`` so
    a small draw keeps the same log-log shape.
    """

    num_users: int = 20_000
    message_size_bytes: float = 200.0

    # Following (out-degree) distribution -- Fig. 8 / Fig. 12 anomalies.
    # alpha < 2 gives the large mean interest (~23 in the paper's
    # sample) that lets greedy selection beat a random pick by a lot.
    following_alpha: float = 1.7
    default_spike: int = 20
    default_spike_prob: float = 0.12
    following_cap: int = 2_000
    cap_overflow_prob: float = 0.6

    # Popularity (in-degree) weights -- Fig. 8 followers CCDF.
    popularity_alpha: float = 1.9
    suggested_user_prob: float = 0.0008
    suggested_user_boost: float = 40.0

    # Rate model -- Figs. 9 and 10.  Calibrated (record regenerable
    # via scripts/record_experiments.py) so
    # the cost ladder reproduces the paper's savings shape: ~60-70%
    # over the naive baseline at tau=10 decaying to ~30% at tau=1000.
    base_rate: float = 1.5
    rate_follower_exponent: float = 0.6
    rate_sigma: float = 1.5
    celebrity_quantile: float = 0.999
    celebrity_damping: float = 0.08
    bot_prob: float = 0.005
    bot_rate_alpha: float = 1.8
    bot_rate_min: float = 1_000.0
    bot_rate_max: float = 20_000.0

    @property
    def max_following(self) -> int:
        """Out-degree ceiling, shrunk with the user population."""
        return max(100, min(10_000, self.num_users // 2))


class TwitterWorkloadGenerator:
    """Generate Twitter-like workloads; deterministic given a seed."""

    name = "twitter"

    #: Testing seam: the randomized equivalence suite swaps in
    #: ``build_social_graph_loop`` to pin the vectorized construction.
    _graph_builder = staticmethod(build_social_graph)

    def __init__(self, config: TwitterConfig = TwitterConfig()) -> None:
        self.config = config

    def generate(self, seed: Optional[int] = 0) -> GeneratedTrace:
        """Draw a trace: the follower graph plus the compacted workload."""
        cfg = self.config
        rng = np.random.default_rng(seed)

        following = glitched_following_counts(
            rng,
            cfg.num_users,
            alpha=cfg.following_alpha,
            max_following=cfg.max_following,
            default_spike=cfg.default_spike,
            default_spike_prob=cfg.default_spike_prob,
            cap=min(cfg.following_cap, cfg.max_following),
            cap_overflow_prob=cfg.cap_overflow_prob,
        )

        weights = truncated_power_law(
            rng, cfg.num_users, cfg.popularity_alpha, 1.0, 1e6
        ).astype(np.float64)
        boosted = rng.random(cfg.num_users) < cfg.suggested_user_prob
        weights[boosted] *= cfg.suggested_user_boost

        graph = self._graph_builder(
            cfg.num_users,
            rng,
            following_counts=following,
            popularity_weights=weights,
            rate_model=self._rate_model,
        )
        workload = generate_social_workload(graph, cfg.message_size_bytes)
        return GeneratedTrace(name=self.name, workload=workload, graph=graph, seed=seed)

    # ------------------------------------------------------------------
    def _rate_model(
        self, follower_counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Follower-correlated tweet counts with celebrity + bot regimes."""
        cfg = self.config
        followers = follower_counts.astype(np.float64)

        means = cfg.base_rate * np.power(1.0 + followers, cfg.rate_follower_exponent)
        # Celebrity cloud: the top follower quantile tweets far less
        # than the linear trend predicts (Fig. 10's flat cloud).
        if followers.max() > 0:
            threshold = np.quantile(followers, cfg.celebrity_quantile)
            celebrities = followers >= max(threshold, 1.0)
            means[celebrities] *= cfg.celebrity_damping

        mu = np.log(np.maximum(means, 1e-9)) - cfg.rate_sigma**2 / 2.0
        counts = np.floor(
            np.exp(mu + cfg.rate_sigma * rng.standard_normal(followers.size))
        ).astype(np.int64)

        # Bots / aggregators: huge rates independent of followers.
        bots = rng.random(followers.size) < cfg.bot_prob
        if bots.any():
            counts[bots] = truncated_power_law(
                rng,
                int(bots.sum()),
                cfg.bot_rate_alpha,
                cfg.bot_rate_min,
                cfg.bot_rate_max,
            )
        return counts
