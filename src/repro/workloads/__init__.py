"""Trace substrate: synthetic workload generators and trace I/O.

The paper's real traces (Spotify internal, Twitter from a dead link)
are unavailable; :class:`SpotifyWorkloadGenerator` and
:class:`TwitterWorkloadGenerator` reproduce their published statistical
shape at configurable scale (a documented substitution; see
docs/ARCHITECTURE.md).
:func:`zipf_workload` / :func:`uniform_workload` are simple parametric
workloads for tests and ablations.
"""

from .distributions import (
    glitched_following_counts,
    lognormal_rates,
    truncated_power_law,
)
from .io import (
    TraceCorruptionError,
    load_workload,
    load_workload_csv,
    save_workload,
    save_workload_csv,
    save_zipf_workload_chunked,
)
from .sampling import sample_subscribers
from .social import (
    SocialGraph,
    build_social_graph,
    build_social_graph_loop,
    generate_social_workload,
    generate_social_workload_loop,
)
from .spotify import SpotifyConfig, SpotifyWorkloadGenerator
from .synthetic import GENERATOR_VERSION, uniform_workload, zipf_workload
from .trace import GeneratedTrace
from .transforms import (
    filter_topics_by_rate,
    merge_workloads,
    scale_rates,
    top_subscribers,
)
from .twitter import TwitterConfig, TwitterWorkloadGenerator

__all__ = [
    "glitched_following_counts",
    "lognormal_rates",
    "truncated_power_law",
    "TraceCorruptionError",
    "load_workload",
    "load_workload_csv",
    "save_workload",
    "save_workload_csv",
    "save_zipf_workload_chunked",
    "sample_subscribers",
    "SocialGraph",
    "build_social_graph",
    "build_social_graph_loop",
    "generate_social_workload",
    "generate_social_workload_loop",
    "SpotifyConfig",
    "SpotifyWorkloadGenerator",
    "GENERATOR_VERSION",
    "uniform_workload",
    "zipf_workload",
    "GeneratedTrace",
    "filter_topics_by_rate",
    "merge_workloads",
    "scale_rates",
    "top_subscribers",
    "TwitterConfig",
    "TwitterWorkloadGenerator",
]
