"""Amazon EC2 instance catalog (Section IV-A).

The paper evaluates with *On-Demand, Compute Optimized -- Current
Generation* instances, specifically ``c3.large`` ($0.15/hour, 64 mbps
bandwidth cap) and ``c3.xlarge`` ($0.30/hour, 128 mbps), because these
types have documented bandwidth limits [13].  We ship the full c3
family (prices from the 2014 price sheet the paper cites) plus a
``custom`` constructor so experiments can sweep capacity independently
of price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping

__all__ = ["InstanceType", "EC2_CATALOG", "get_instance", "mbps_to_bytes_per_hour"]


def mbps_to_bytes_per_hour(mbps: float) -> float:
    """Convert a link rate in megabits/s to bytes per hour."""
    return mbps * 1e6 / 8.0 * 3600.0


@dataclass(frozen=True)
class InstanceType:
    """An IaaS VM type with an hourly price and a bandwidth cap.

    ``bandwidth_mbps`` is the *total* (incoming + outgoing) cap ``BC``
    of Section II-B; the paper derives 64/128 mbps for c3.large and
    c3.xlarge from the EBS-optimized dedicated-throughput figures [13].
    """

    name: str
    hourly_price_usd: float
    bandwidth_mbps: float
    vcpus: int = 2
    memory_gib: float = 3.75

    def __post_init__(self) -> None:
        if self.hourly_price_usd < 0:
            raise ValueError("hourly price must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth cap must be positive")

    @property
    def bandwidth_bytes_per_hour(self) -> float:
        """Bandwidth cap expressed in bytes per hour."""
        return mbps_to_bytes_per_hour(self.bandwidth_mbps)

    def capacity_bytes(self, period_hours: float) -> float:
        """Total bytes the VM may transfer over ``period_hours``."""
        if period_hours <= 0:
            raise ValueError("period must be positive")
        return self.bandwidth_bytes_per_hour * period_hours

    def price(self, period_hours: float) -> float:
        """Rental price of one VM for ``period_hours``."""
        if period_hours < 0:
            raise ValueError("period must be non-negative")
        return self.hourly_price_usd * period_hours

    @classmethod
    def custom(
        cls,
        name: str,
        hourly_price_usd: float,
        bandwidth_mbps: float,
        vcpus: int = 2,
        memory_gib: float = 4.0,
    ) -> "InstanceType":
        """Create an ad-hoc instance type (for sweeps and tests)."""
        return cls(name, hourly_price_usd, bandwidth_mbps, vcpus, memory_gib)


# 2014 us-east-1 On-Demand prices for the Compute Optimized (c3) family,
# matching the snapshot of [8] the paper used.  Bandwidth caps scale the
# paper's 64 mbps (c3.large) figure with instance size, following [13].
EC2_CATALOG: Mapping[str, InstanceType] = {
    it.name: it
    for it in (
        InstanceType("c3.large", 0.15, 64.0, vcpus=2, memory_gib=3.75),
        InstanceType("c3.xlarge", 0.30, 128.0, vcpus=4, memory_gib=7.5),
        InstanceType("c3.2xlarge", 0.60, 256.0, vcpus=8, memory_gib=15.0),
        InstanceType("c3.4xlarge", 1.20, 512.0, vcpus=16, memory_gib=30.0),
        InstanceType("c3.8xlarge", 2.40, 1024.0, vcpus=32, memory_gib=60.0),
    )
}


def get_instance(name: str) -> InstanceType:
    """Look up an instance type by name, with a helpful error."""
    try:
        return EC2_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(EC2_CATALOG))
        raise KeyError(f"unknown instance type {name!r}; known types: {known}") from None


def iter_catalog() -> Iterator[InstanceType]:
    """Iterate over the built-in catalog, smallest instance first."""
    return iter(sorted(EC2_CATALOG.values(), key=lambda it: it.hourly_price_usd))
