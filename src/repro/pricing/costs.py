"""Cost functions ``C1`` (VM rental) and ``C2`` (bandwidth).

The paper abstracts the IaaS bill into two monotone functions:

* ``C1(|B|)`` -- the price of renting ``|B|`` VMs for the billing
  period;
* ``C2(total bandwidth)`` -- the price of the bytes moved in and out of
  the cloud.  The paper simplifies real pricing by charging incoming
  and outgoing traffic at the same $0.12/GB rate (Section II-B).

Both are modelled as small callable objects so the optimizer (Stage 2's
``CheaperToDistribute``) can evaluate *hypothetical* bills cheaply, and
so experiments can swap in tiered or free variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

__all__ = [
    "VMCostFunction",
    "BandwidthCostFunction",
    "LinearVMCost",
    "LinearBandwidthCost",
    "TieredBandwidthCost",
    "FreeBandwidthCost",
    "GB",
]

GB = 1e9
"""Bytes per gigabyte (decimal, as billed by AWS)."""


class VMCostFunction(Protocol):
    """``C1``: price of a number of VMs for the billing period."""

    def __call__(self, num_vms: int) -> float:  # pragma: no cover - protocol
        ...


class BandwidthCostFunction(Protocol):
    """``C2``: price of a total byte volume over the billing period."""

    def __call__(self, total_bytes: float) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LinearVMCost:
    """``C1(x) = x * price_per_vm`` -- the paper's VM cost model."""

    price_per_vm: float

    def __post_init__(self) -> None:
        if self.price_per_vm < 0:
            raise ValueError("price_per_vm must be non-negative")

    def __call__(self, num_vms: int) -> float:
        if num_vms < 0:
            raise ValueError("num_vms must be non-negative")
        return self.price_per_vm * num_vms


@dataclass(frozen=True)
class LinearBandwidthCost:
    """``C2(bytes) = bytes/GB * usd_per_gb`` -- the paper's $0.12/GB model."""

    usd_per_gb: float = 0.12

    def __post_init__(self) -> None:
        if self.usd_per_gb < 0:
            raise ValueError("usd_per_gb must be non-negative")

    def __call__(self, total_bytes: float) -> float:
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        return total_bytes / GB * self.usd_per_gb


@dataclass(frozen=True)
class FreeBandwidthCost:
    """``C2(x) = 0`` -- used by the NP-hardness reduction (Section II-D)."""

    def __call__(self, total_bytes: float) -> float:
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        return 0.0


class TieredBandwidthCost:
    """Real EC2 data-transfer pricing: marginal price drops with volume.

    The paper flattens this to $0.12/GB; we keep the tiered schedule as
    an ablation to check that the flattening does not change which
    algorithm wins.

    ``tiers`` is a sequence of ``(upper_bound_gb, usd_per_gb)`` with the
    last bound ``inf``; e.g. the 2014 schedule::

        TieredBandwidthCost([(10240, 0.12), (40960, 0.09),
                             (102400, 0.07), (float("inf"), 0.05)])
    """

    DEFAULT_TIERS: Sequence[Tuple[float, float]] = (
        (10240.0, 0.12),
        (40960.0, 0.09),
        (102400.0, 0.07),
        (float("inf"), 0.05),
    )

    def __init__(self, tiers: Sequence[Tuple[float, float]] = DEFAULT_TIERS) -> None:
        if not tiers:
            raise ValueError("at least one tier is required")
        previous = 0.0
        for bound, price in tiers:
            if bound <= previous:
                raise ValueError("tier bounds must be strictly increasing")
            if price < 0:
                raise ValueError("tier prices must be non-negative")
            previous = bound
        if tiers[-1][0] != float("inf"):
            raise ValueError("last tier bound must be inf")
        self._tiers: List[Tuple[float, float]] = [
            (float(b), float(p)) for b, p in tiers
        ]

    def __call__(self, total_bytes: float) -> float:
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        remaining_gb = total_bytes / GB
        cost = 0.0
        lower = 0.0
        for bound, price in self._tiers:
            span = min(remaining_gb, bound - lower)
            if span <= 0:
                break
            cost += span * price
            remaining_gb -= span
            lower = bound
        return cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TieredBandwidthCost(tiers={self._tiers!r})"
