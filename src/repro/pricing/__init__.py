"""Amazon EC2 pricing substrate (Section IV-A of the paper).

Public surface:

* :class:`InstanceType` and :data:`EC2_CATALOG` -- the c3 family with
  the 2014 On-Demand prices and documented bandwidth caps;
* cost functions :class:`LinearVMCost`, :class:`LinearBandwidthCost`,
  :class:`TieredBandwidthCost`, :class:`FreeBandwidthCost`;
* :class:`PricingPlan` / :func:`paper_plan` binding everything to a
  billing period.
"""

from .costs import (
    GB,
    BandwidthCostFunction,
    FreeBandwidthCost,
    LinearBandwidthCost,
    LinearVMCost,
    TieredBandwidthCost,
    VMCostFunction,
)
from .instances import EC2_CATALOG, InstanceType, get_instance, mbps_to_bytes_per_hour
from .plan import TRACE_PERIOD_HOURS, PricingPlan, paper_plan

__all__ = [
    "GB",
    "BandwidthCostFunction",
    "FreeBandwidthCost",
    "LinearBandwidthCost",
    "LinearVMCost",
    "TieredBandwidthCost",
    "VMCostFunction",
    "EC2_CATALOG",
    "InstanceType",
    "get_instance",
    "mbps_to_bytes_per_hour",
    "TRACE_PERIOD_HOURS",
    "PricingPlan",
    "paper_plan",
]
