"""Pricing plans: binding instance types, prices, and the trace period.

The core optimization model is unit-agnostic: event rates are "events
per time unit".  A :class:`PricingPlan` fixes that time unit to a
concrete billing period (the paper uses the 10-day span of its traces)
and derives, for a chosen instance type:

* ``capacity_bytes`` -- the per-VM bandwidth budget ``BC`` over the
  period, against which the capacity constraint is checked;
* ``C1`` -- VM rental for the period;
* ``C2`` -- data transfer cost.

With this convention the total bytes a VM moves over the period equals
its byte *rate* in the core model, so no further conversion is needed
anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .costs import (
    BandwidthCostFunction,
    LinearBandwidthCost,
    LinearVMCost,
    VMCostFunction,
)
from .instances import EC2_CATALOG, InstanceType, get_instance

__all__ = ["PricingPlan", "TRACE_PERIOD_HOURS", "paper_plan"]


TRACE_PERIOD_HOURS = 240.0
"""Ten days -- the span of both the Spotify and Twitter traces."""


@dataclass(frozen=True)
class PricingPlan:
    """A complete billing configuration for one MCSS instance.

    Parameters
    ----------
    instance:
        The VM type rented for every broker (the paper provisions a
        homogeneous fleet).
    period_hours:
        Billing period; also the time unit of all event rates.
    bandwidth_cost:
        ``C2``.  Defaults to the paper's flat $0.12/GB.
    vm_cost:
        ``C1``.  Defaults to ``instance price x period``; override for
        the hardness reduction (where ``C1(x) = x``) or for sweeps.
    capacity_bytes_override:
        Explicit ``BC`` in bytes per period, bypassing the instance's
        bandwidth cap.  Used by synthetic instances (e.g. the
        Partition reduction) where ``BC`` is part of the construction.
    """

    instance: InstanceType
    period_hours: float = TRACE_PERIOD_HOURS
    bandwidth_cost: BandwidthCostFunction = field(default_factory=LinearBandwidthCost)
    vm_cost: Optional[VMCostFunction] = None
    capacity_bytes_override: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period_hours <= 0:
            raise ValueError("period_hours must be positive")
        if self.capacity_bytes_override is not None and self.capacity_bytes_override <= 0:
            raise ValueError("capacity override must be positive")

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> float:
        """``BC`` -- per-VM byte budget over the billing period."""
        if self.capacity_bytes_override is not None:
            return self.capacity_bytes_override
        return self.instance.capacity_bytes(self.period_hours)

    @property
    def c1(self) -> VMCostFunction:
        """``C1`` -- VM rental cost function."""
        if self.vm_cost is not None:
            return self.vm_cost
        return LinearVMCost(self.instance.price(self.period_hours))

    @property
    def c2(self) -> BandwidthCostFunction:
        """``C2`` -- bandwidth cost function."""
        return self.bandwidth_cost

    # ------------------------------------------------------------------
    def total_cost(self, num_vms: int, total_bytes: float) -> float:
        """Evaluate the MCSS objective ``C1(|B|) + C2(sum bw_b)``."""
        return self.c1(num_vms) + self.c2(total_bytes)

    def scaled(self, fraction: float) -> "PricingPlan":
        """Scale the plan to a down-sampled trace.

        The paper evaluates 10%/1% samples of the real traces against
        full-size VMs; our synthetic traces are smaller still.  Scaling
        *both* the capacity ``BC`` and the per-VM price by ``fraction``
        models "fractional VMs": the instance keeps the paper's exact
        price-per-capacity ratio, so VM counts, the VM-vs-bandwidth
        trade-off, and all *relative* savings match what the same
        workload would produce at full scale (``C2`` is linear, so the
        whole objective simply scales by ``fraction``).
        """
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        base_price = (
            self.vm_cost(1) - self.vm_cost(0)
            if self.vm_cost is not None
            else self.instance.price(self.period_hours)
        )
        return replace(
            self,
            capacity_bytes_override=self.capacity_bytes * fraction,
            vm_cost=LinearVMCost(base_price * fraction),
        )

    def with_instance(self, name_or_instance) -> "PricingPlan":
        """Return a copy of the plan with a different instance type."""
        inst = (
            name_or_instance
            if isinstance(name_or_instance, InstanceType)
            else get_instance(name_or_instance)
        )
        return replace(self, instance=inst)

    def describe(self) -> str:
        """One-line human summary for experiment logs."""
        return (
            f"{self.instance.name} @ ${self.instance.hourly_price_usd}/h, "
            f"BC={self.instance.bandwidth_mbps:g} mbps, "
            f"period={self.period_hours:g} h"
        )


def paper_plan(instance_name: str = "c3.large") -> PricingPlan:
    """The exact configuration of Section IV-A.

    c3.large or c3.xlarge, 10-day period, $0.12/GB flat transfer cost.
    """
    return PricingPlan(instance=get_instance(instance_name))
