"""Trace analysis: CCDFs and the Appendix-D statistics (Figs. 8-12)."""

from .asciiplot import loglog_plot
from .ccdf import CCDF, ccdf
from .trace_stats import (
    BinnedMeans,
    event_rate_ccdf,
    follower_ccdf,
    following_ccdf,
    mean_rate_by_followers,
    mean_sc_by_followings,
    subscription_cardinality,
    subscription_cardinality_ccdf,
)

__all__ = [
    "loglog_plot",
    "CCDF",
    "ccdf",
    "BinnedMeans",
    "event_rate_ccdf",
    "follower_ccdf",
    "following_ccdf",
    "mean_rate_by_followers",
    "mean_sc_by_followings",
    "subscription_cardinality",
    "subscription_cardinality_ccdf",
]
