"""Terminal log-log scatter plots for the Appendix-D figures.

The paper's Figures 8-12 are log-log scatter/line plots; in a
terminal-first reproduction the same data renders as a character
raster.  Multiple series overlay with distinct glyphs, axes carry
decade tick labels, and the whole thing needs nothing but a monospace
font.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["loglog_plot"]

_GLYPHS = "ox+*#@%"


def _decades(lo: float, hi: float) -> List[float]:
    """Powers of ten spanning [lo, hi]."""
    start = math.floor(math.log10(lo))
    stop = math.ceil(math.log10(hi))
    return [10.0**e for e in range(start, stop + 1)]


def loglog_plot(
    series: Sequence[Tuple[str, np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 20,
    title: Optional[str] = None,
) -> str:
    """Render named (x, y) series on log-log axes.

    Points with non-positive coordinates are dropped (log axes).  The
    legend maps glyphs to series names.  Raises on empty input.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 6:
        raise ValueError("canvas too small")

    cleaned = []
    for name, x, y in series:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        mask = (x > 0) & (y > 0)
        if mask.any():
            cleaned.append((name, x[mask], y[mask]))
    if not cleaned:
        raise ValueError("no positive points to plot")

    x_lo = min(float(x.min()) for _n, x, _y in cleaned)
    x_hi = max(float(x.max()) for _n, x, _y in cleaned)
    y_lo = min(float(y.min()) for _n, _x, y in cleaned)
    y_hi = max(float(y.max()) for _n, _x, y in cleaned)
    # Degenerate ranges get a decade of headroom.
    if x_lo == x_hi:
        x_hi = x_lo * 10
    if y_lo == y_hi:
        y_hi = y_lo * 10

    lx_lo, lx_hi = math.log10(x_lo), math.log10(x_hi)
    ly_lo, ly_hi = math.log10(y_lo), math.log10(y_hi)

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, x, y) in enumerate(cleaned):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        cols = np.clip(
            ((np.log10(x) - lx_lo) / (lx_hi - lx_lo) * (width - 1)).round().astype(int),
            0,
            width - 1,
        )
        rows = np.clip(
            ((np.log10(y) - ly_lo) / (ly_hi - ly_lo) * (height - 1)).round().astype(int),
            0,
            height - 1,
        )
        for c, r in zip(cols.tolist(), rows.tolist()):
            grid[height - 1 - r][c] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.0e}"
    label_lo = f"{y_lo:.0e}"
    margin = max(len(label_hi), len(label_lo))
    for r, row in enumerate(grid):
        label = label_hi if r == 0 else (label_lo if r == height - 1 else "")
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    x_left = f"{x_lo:.0e}"
    x_right = f"{x_hi:.0e}"
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (margin + 2) + x_left + " " * max(1, pad) + x_right)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, (name, _x, _y) in enumerate(cleaned)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)
