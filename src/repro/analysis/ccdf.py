"""Complementary cumulative distribution functions.

Appendix D characterizes the Twitter trace almost entirely through
CCDFs on log-log axes (Figs. 8, 9, 11).  The paper's footnote 2 defines
the CCDF as ``P(X > x)``; :func:`ccdf` computes exactly that over the
distinct values of a sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["CCDF", "ccdf"]


@dataclass(frozen=True)
class CCDF:
    """An empirical CCDF: ``probability[i] = P(X > value[i])``."""

    values: np.ndarray
    probabilities: np.ndarray

    def at(self, x: float) -> float:
        """Evaluate ``P(X > x)``."""
        idx = np.searchsorted(self.values, x, side="right") - 1
        if idx < 0:
            return 1.0
        return float(self.probabilities[idx])

    def tail_exponent(self, x_min: float = 1.0) -> float:
        """Least-squares slope of the log-log tail (a power-law check).

        A CCDF ``~ x^-a`` has slope ``-a``; the estimate regresses
        ``log P`` on ``log x`` over values ``>= x_min`` with positive
        probability.  Crude but sufficient for shape assertions.
        """
        mask = (self.values >= x_min) & (self.probabilities > 0)
        if mask.sum() < 2:
            raise ValueError("not enough tail points for a slope estimate")
        logx = np.log10(self.values[mask].astype(np.float64))
        logp = np.log10(self.probabilities[mask])
        slope, _intercept = np.polyfit(logx, logp, 1)
        return float(slope)


def ccdf(samples: np.ndarray) -> CCDF:
    """Empirical CCDF ``P(X > x)`` over the distinct sample values."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    values, counts = np.unique(samples, return_counts=True)
    # P(X > values[i]) = (# samples strictly greater) / n
    greater = counts[::-1].cumsum()[::-1] - counts
    probabilities = greater / samples.size
    return CCDF(values=values, probabilities=probabilities)
