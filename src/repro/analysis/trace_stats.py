"""Trace statistics behind Figures 8-12 (Appendix D).

Everything operates on the *uncompacted*
:class:`~repro.workloads.social.SocialGraph` (the figures include
inactive users where the paper's do) or, for subscription cardinality,
on the compacted workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core import Workload
from ..workloads.social import SocialGraph
from .ccdf import CCDF, ccdf

__all__ = [
    "follower_ccdf",
    "following_ccdf",
    "event_rate_ccdf",
    "subscription_cardinality",
    "subscription_cardinality_ccdf",
    "BinnedMeans",
    "mean_rate_by_followers",
    "mean_sc_by_followings",
]


def follower_ccdf(graph: SocialGraph) -> CCDF:
    """Fig. 8 (one series): CCDF of per-user follower counts."""
    return ccdf(graph.follower_counts)


def following_ccdf(graph: SocialGraph) -> CCDF:
    """Fig. 8 (other series): CCDF of per-user following counts."""
    return ccdf(graph.following_counts())


def event_rate_ccdf(graph: SocialGraph) -> CCDF:
    """Fig. 9: CCDF of events published per user over the period.

    Restricted to active users (>= 1 event), matching the paper's
    preprocessing.
    """
    counts = graph.event_counts
    return ccdf(counts[counts >= 1])


def subscription_cardinality(workload: Workload) -> np.ndarray:
    """Per-subscriber SC: her share of all published events, in percent.

    ``SC_v = 100 * sum(ev_t for t in Tv) / sum(ev_t for t in T)``
    (defined in [6] and used in Figs. 11-12).
    """
    total = float(workload.event_rates.sum())
    if total <= 0:
        raise ValueError("workload has no events")
    return workload.interest_rate_sums() / total * 100.0


def subscription_cardinality_ccdf(workload: Workload) -> CCDF:
    """Fig. 11: CCDF of subscription cardinality."""
    sc = subscription_cardinality(workload)
    return ccdf(sc[sc > 0])


@dataclass(frozen=True)
class BinnedMeans:
    """Mean of ``y`` grouped by log-spaced bins of ``x``."""

    bin_centers: np.ndarray
    means: np.ndarray
    counts: np.ndarray


def _binned_means(x: np.ndarray, y: np.ndarray, bins_per_decade: int = 4) -> BinnedMeans:
    mask = x >= 1
    x = x[mask].astype(np.float64)
    y = y[mask].astype(np.float64)
    if x.size == 0:
        raise ValueError("no points with x >= 1")
    hi = np.log10(x.max()) + 1e-9
    edges = np.logspace(0, hi, max(2, int(hi * bins_per_decade) + 1))
    idx = np.clip(np.digitize(x, edges) - 1, 0, edges.size - 2)
    centers = np.sqrt(edges[:-1] * edges[1:])
    sums = np.bincount(idx, weights=y, minlength=edges.size - 1)
    counts = np.bincount(idx, minlength=edges.size - 1)
    occupied = counts > 0
    return BinnedMeans(
        bin_centers=centers[occupied],
        means=sums[occupied] / counts[occupied],
        counts=counts[occupied],
    )


def mean_rate_by_followers(graph: SocialGraph, bins_per_decade: int = 4) -> BinnedMeans:
    """Fig. 10: mean event rate as a function of follower count.

    The paper's shape: near-linear growth up to the celebrity scale,
    then a depressed cloud (celebrities have many followers but tweet
    comparatively little).
    """
    return _binned_means(
        graph.follower_counts, graph.event_counts, bins_per_decade
    )


def mean_sc_by_followings(
    graph: SocialGraph, workload: Workload, bins_per_decade: int = 4
) -> BinnedMeans:
    """Fig. 12: mean subscription cardinality vs following count.

    Only users that survived compaction into subscribers contribute
    (inactive-topic followings hold no events); SC grows linearly with
    followings, with the 20/2000 anomalies inherited from Fig. 8.
    """
    # Rebuild the subscriber <-> user alignment the compaction used:
    # subscribers are the users with >= 1 active followed topic, in
    # user order.  Whole-array over the CSR graph: count each user's
    # active followings with one bincount over the flat targets.
    active_mask = (graph.event_counts >= 1) & (graph.follower_counts >= 1)
    total = float(workload.event_rates.sum())
    sc_by_subscriber = workload.interest_rate_sums() / total * 100.0

    flat_active = active_mask[graph.following_targets]
    # Per-user count of active followings, via the running total of
    # active pairs sampled at each user's CSR boundary (no O(edges)
    # owner-id temporary).
    active_running = np.zeros(graph.num_edges + 1, dtype=np.int64)
    np.cumsum(flat_active, out=active_running[1:])
    active_followed = np.diff(active_running[graph.following_indptr])
    subscribers = np.flatnonzero(active_followed > 0)
    if subscribers.size != workload.num_subscribers:
        raise ValueError("graph/workload mismatch: not the same trace?")
    followings = graph.following_counts()[subscribers]
    return _binned_means(followings, sc_by_subscriber, bins_per_decade)
