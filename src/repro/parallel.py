"""Process fan-out helpers for the sharded pipeline.

The out-of-core path (:mod:`repro.selection.sharded`,
:mod:`repro.solver.sharded`, the ladder's tau fan-out) splits work into
independent pieces and optionally runs them across worker processes.
:func:`fork_map` is the one primitive they share.  It deliberately uses
the ``fork`` start method and passes work *by index* through a
module-level table set before the pool spawns: children inherit the
parent's address space, so mmap-backed workloads cross the process
boundary as shared pages -- pickling them (what ``Pool.map`` does to
its arguments) would densify every ``np.memmap`` into a private copy,
defeating the point of the mmap backend.  Only the (small) per-piece
results travel back through pickles.

Whenever ``workers <= 1``, the piece count is 1, or ``fork`` is
unavailable on the platform, :func:`fork_map` degrades to a plain
serial loop in-process -- same results, same order, no pool.

For fault tolerance (dead-child detection, per-piece timeouts,
retries, fault injection) wrap pieces in
:func:`repro.resilience.supervise.supervised_map`, which keeps this
module's contract and is what the sharded pipeline actually calls;
``fork_map`` stays the raw, unsupervised primitive.

Environment knobs (read at call/construction time, documented in
docs/BENCHMARKS.md): ``MCSS_SHARD_SIZE`` (subscribers per shard,
default 1,000,000) and ``MCSS_SHARD_WORKERS`` (worker processes,
default 1 = serial).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .resilience.knobs import env_int

__all__ = [
    "default_shard_size",
    "default_workers",
    "fork_map",
    "shard_bounds",
]


def default_shard_size() -> int:
    """Subscribers per shard (``MCSS_SHARD_SIZE``, default 1,000,000)."""
    return env_int("MCSS_SHARD_SIZE", 1_000_000, minimum=1)


def default_workers() -> int:
    """Worker processes for fan-out (``MCSS_SHARD_WORKERS``, default 1)."""
    return env_int("MCSS_SHARD_WORKERS", 1, minimum=0)


def shard_bounds(n: int, shard_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``range(n)``.

    Every shard has ``shard_size`` items except possibly the last.
    ``n == 0`` yields no shards.
    """
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    return [(lo, min(lo + shard_size, n)) for lo in range(0, n, shard_size)]


# Work table for forked children: set (in the parent) immediately before
# the pool spawns, inherited by fork, cleared afterwards.  Keyed access
# from _invoke_index keeps Pool.map's pickled payload down to plain ints.
_SHARED: dict = {}


def _invoke_index(i: int) -> Any:
    return _SHARED["fn"](_SHARED["items"][i])


def fork_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
) -> List[Any]:
    """``[fn(item) for item in items]``, optionally across forked workers.

    ``fn`` must be a module-level function (children resolve it through
    the inherited work table, results come back pickled).  Result order
    matches ``items`` order regardless of worker scheduling, so callers
    get identical output from the serial and parallel paths.
    """
    workers = default_workers() if workers is None else int(workers)
    items = list(items)
    use_pool = (
        workers > 1
        and len(items) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not use_pool:
        return [fn(item) for item in items]
    _SHARED["fn"] = fn
    _SHARED["items"] = items
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(workers, len(items))) as pool:
            return pool.map(_invoke_index, range(len(items)))
    finally:
        _SHARED.clear()
