"""Exact per-subscriber selection via dynamic programming.

Section III-A notes that for one subscriber, picking the cheapest topic
subset whose rate sum reaches ``tau_v`` "is basically a variant of the
knapsack problem that can be solved optimally using dynamic
programming", but dismisses it as too slow at the paper's scale and
uses the greedy heuristic instead.  We implement the DP anyway:

* it quantifies how far GSP is from per-subscriber optimality (the
  Stage-1 ablation bench), and
* on small fuzzed instances the property tests assert
  ``cost(DP) <= cost(GSP)`` pairwise.

Formulation (min-cost covering knapsack, per subscriber ``v``)::

    minimize   sum_{t in X} ev_t          over X subseteq Tv
    subject to sum_{t in X} ev_t >= tau_v

(The bandwidth price of a pair is ``2 ev_t``, a constant multiple, so
minimizing the rate sum is equivalent.)  Rates are scaled to integers
with ``resolution``; the DP table has ``ceil(tau_v / resolution) + 1``
cells, giving O(|Tv| * tau_v / resolution) time per subscriber.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..core import MCSSProblem, PairSelection
from .base import SelectionAlgorithm, register_selector

__all__ = ["KnapsackSelectPairs", "min_cover_subset"]


def min_cover_subset(rates: List[float], need: float, resolution: float = 1.0) -> List[int]:
    """Indices of a min-sum subset of ``rates`` whose sum covers ``need``.

    Exact when every rate and ``need`` are integer multiples of
    ``resolution``; otherwise the quantization (ceil for the target,
    floor for items) keeps the result feasible but possibly slightly
    conservative.  Raises ``ValueError`` when even the full set cannot
    cover ``need``.
    """
    if need <= 0:
        return []
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    total = sum(rates)
    if total < need - 1e-9:
        raise ValueError(f"rates sum to {total}, cannot cover {need}")

    # The item's cost *is* its weight (both are ev_t), so "cheapest
    # subset covering `need`" is exactly "smallest achievable subset
    # sum >= need" -- a subset-sum sweep on a bitset, with per-prefix
    # snapshots for reconstruction.  A minimal covering subset has sum
    # < target + max weight (dropping any item would fall below the
    # target), so the bitset is capped there.
    target = int(math.ceil(need / resolution - 1e-9))
    weights = [max(1, int(rate / resolution + 1e-9)) for rate in rates]
    cap = target + max(weights) + 1
    mask = (1 << cap) - 1

    prefixes: List[int] = [1]  # bit s set <=> sum s achievable
    reachable = 1
    for w in weights:
        reachable = (reachable | (reachable << w)) & mask
        prefixes.append(reachable)

    tail = reachable >> target
    if tail == 0:  # pragma: no cover - excluded by the sum check
        raise ValueError("DP failed to cover the target")
    best = target + (tail & -tail).bit_length() - 1

    picked: List[int] = []
    s = best
    for i in range(len(weights) - 1, -1, -1):
        if (prefixes[i] >> s) & 1:
            continue  # sum s achievable without item i
        picked.append(i)
        s -= weights[i]
    picked.reverse()
    return picked


@register_selector("knapsack")
class KnapsackSelectPairs(SelectionAlgorithm):
    """Per-subscriber-optimal Stage-1 selection (slow; for ablations).

    ``resolution`` trades accuracy for speed on non-integer rates; the
    paper's traces use integer event counts, where ``resolution=1`` is
    exact.
    """

    def __init__(self, resolution: float = 1.0) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self._resolution = resolution

    def select(self, problem: MCSSProblem) -> PairSelection:
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)
        by_topic: Dict[int, List[int]] = {}

        for v in range(workload.num_subscribers):
            interest = workload.interest(v)
            if interest.size == 0:
                continue
            topic_rates = rates[interest].tolist()
            tau_v = min(tau, sum(topic_rates))
            if tau_v <= 0:
                continue
            picked = min_cover_subset(topic_rates, tau_v, self._resolution)
            for i in picked:
                by_topic.setdefault(int(interest[i]), []).append(v)

        return PairSelection(by_topic)
