"""Common interface for Stage-1 pair-selection algorithms.

Stage 1 (Section III-A) answers: *which topic-subscriber pairs should
the deployment serve at all?*  The output must satisfy every subscriber
when hosted on a hypothetical infinite-capacity VM; the quality metric
is the total bandwidth the selection implies.

All selection algorithms implement :class:`SelectionAlgorithm` and are
discoverable through :func:`get_selector` so the experiment harness can
sweep them by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Type

from ..core import MCSSProblem, PairSelection

__all__ = ["SelectionAlgorithm", "register_selector", "get_selector", "available_selectors"]


class SelectionAlgorithm(ABC):
    """A Stage-1 algorithm: choose pairs that satisfy every subscriber."""

    #: Short name used in experiment tables and the CLI.
    name: str = "abstract"

    @abstractmethod
    def select(self, problem: MCSSProblem) -> PairSelection:
        """Return a pair set meeting ``tau_v`` for every subscriber."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[[], SelectionAlgorithm]] = {}


def register_selector(name: str) -> Callable[[Type[SelectionAlgorithm]], Type[SelectionAlgorithm]]:
    """Class decorator registering a selector under ``name``."""

    def decorate(cls: Type[SelectionAlgorithm]) -> Type[SelectionAlgorithm]:
        if name in _REGISTRY:
            raise ValueError(f"selector {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_selector(name: str, **kwargs) -> SelectionAlgorithm:
    """Instantiate a registered selector by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown selector {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_selectors() -> List[str]:
    """Names of all registered Stage-1 algorithms."""
    return sorted(_REGISTRY)
