"""Stage 1 of the MCSS heuristic: topic-subscriber pair selection.

Algorithms (Section III-A / Appendix A of the paper):

* :class:`GreedySelectPairs` (``"gsp"``) -- the paper's benefit-cost
  greedy, fully vectorized over the workload's CSR interests;
* :class:`LoopGreedySelectPairs` (``"gsp-loop"``) -- the equivalent
  O(k log k)-per-subscriber loop form, kept as a referee;
* :class:`ReferenceGreedySelectPairs` (``"gsp-reference"``) -- literal
  Algorithm 2, used as the executable specification in tests;
* :class:`ShardedGreedySelectPairs` (``"gsp-sharded"``) -- GSP over
  subscriber shards (optionally forked workers), bit-exact with
  ``"gsp"``; the out-of-core entry point;
* :class:`RandomSelectPairs` (``"rsp"``) -- the naive baseline;
* :class:`KnapsackSelectPairs` (``"knapsack"``) -- per-subscriber
  optimal DP (the "optimal but too costly" option the paper mentions).
"""

from .base import (
    SelectionAlgorithm,
    available_selectors,
    get_selector,
    register_selector,
)
from .greedy import (
    GreedySelectPairs,
    LoopGreedySelectPairs,
    ReferenceGreedySelectPairs,
    benefit_cost_ratio,
)
from .knapsack import KnapsackSelectPairs, min_cover_subset
from .random_ import RandomSelectPairs
from .sharded import ShardedGreedySelectPairs, merge_shard_groups

__all__ = [
    "SelectionAlgorithm",
    "available_selectors",
    "get_selector",
    "register_selector",
    "GreedySelectPairs",
    "LoopGreedySelectPairs",
    "ReferenceGreedySelectPairs",
    "benefit_cost_ratio",
    "KnapsackSelectPairs",
    "min_cover_subset",
    "RandomSelectPairs",
    "ShardedGreedySelectPairs",
    "merge_shard_groups",
]
