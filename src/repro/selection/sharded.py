"""Sharded GSP: Stage-1 selection over subscriber shards, bit-exact.

:class:`ShardedGreedySelectPairs` (``"gsp-sharded"``) splits the
subscriber axis into contiguous shards, runs the vectorized sweep of
:class:`~repro.selection.greedy.GreedySelectPairs` on each shard's
zero-copy sub-view (:meth:`repro.core.Workload.subscriber_range`), and
merges the per-shard topic groups into exactly the selection the
whole-array sweep emits.  With an mmap-backed workload no shard ever
materializes pair-sized arrays beyond its own slice, which is what
makes 100M-pair solves fit a small RAM budget; with
``MCSS_SHARD_WORKERS > 1`` shards additionally run across forked,
supervised worker processes
(:func:`repro.resilience.supervise.supervised_map`: dead-child
detection, per-piece timeouts, seeded-backoff retries, and a
degrade-to-serial fallback -- all result-neutral because the merge
below is order-independent).

Why the merge is bit-exact
--------------------------
GSP is per-subscriber independent: subscriber ``v``'s picks depend only
on its own interest row, its threshold, and the global rate table --
all identical in the shard sub-view.  The only cross-subscriber state
is the *presentation order*: groups keyed by first appearance in the
global subscriber-major scan.  :meth:`GreedySelectPairs.select_grouped`
exposes precisely that order as per-group first-appearance ranks
(twice the global scan position; overshoot picks rank
``2*indptr[v+1] - 1``).  A shard covering ``[lo, hi)`` scans the slice
of the global order starting at ``indptr[lo]``, so rebasing its local
ranks by ``2*indptr[lo]`` (both rank forms shift identically) and its
subscriber ids by ``lo`` makes shard ranks globally comparable.  The
merge then takes, per distinct topic, the minimum rebased rank and
concatenates the shard chunks in shard order -- which *is* ascending
subscriber order, since shards partition the subscriber axis
contiguously.  No floats are compared across shards at any point, so
the equivalence holds exactly, not just to tolerance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core import MCSSProblem, PairSelection
from ..parallel import default_shard_size, default_workers, shard_bounds
from ..resilience.supervise import supervised_map
from .base import SelectionAlgorithm, register_selector
from .greedy import GreedySelectPairs

__all__ = ["ShardedGreedySelectPairs", "merge_shard_groups"]

_Groups = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _select_shard(args: Tuple[MCSSProblem, int, int]) -> Optional[_Groups]:
    """Run grouped GSP on subscribers ``[lo, hi)`` and rebase to global ids."""
    problem, lo, hi = args
    workload = problem.workload
    sub = workload.subscriber_range(lo, hi)
    grouped = GreedySelectPairs().select_grouped(
        MCSSProblem(sub, problem.tau, problem.plan)
    )
    if grouped is None:
        return None
    topics, sizes, first_seen, subscribers = grouped
    rank_offset = 2 * int(workload.interest_indptr[lo])
    return topics, sizes, first_seen + rank_offset, subscribers + lo


def merge_shard_groups(groups: List[_Groups]) -> _Groups:
    """Merge rebased per-shard topic groups into global topic groups.

    Input tuples are ``(group_topics, sizes, first_seen, subscribers)``
    from :func:`_select_shard`, one per shard *in shard order*.  The
    output is the same shape over the union of topics: distinct topics
    ascending, per-topic sizes summed, per-topic minimum first-seen
    rank, and each topic's subscribers concatenated in shard order
    (= ascending subscriber, shards being contiguous ranges).  All
    integer bookkeeping -- exact by construction.
    """
    topics = np.concatenate([g[0] for g in groups])
    sizes = np.concatenate([g[1] for g in groups]).astype(np.int64)
    first_seen = np.concatenate([g[2] for g in groups])
    all_subs = np.concatenate([g[3] for g in groups])

    # Per distinct topic: summed size and minimum first-appearance rank.
    g_topics, dest = np.unique(topics, return_inverse=True)
    g_sizes = np.bincount(dest, weights=sizes, minlength=g_topics.size).astype(
        np.int64
    )
    g_first = np.full(g_topics.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(g_first, dest, first_seen)

    # Scatter the shard chunks into topic-grouped layout in O(P): sort
    # the *chunks* by destination topic (stable, so shard order -- i.e.
    # ascending subscribers -- survives within a topic); laying the
    # sorted chunks end to end is then exactly the grouped output, and
    # one repeat+arange turns chunk copies into a single fancy gather.
    src_starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
    corder = np.argsort(dest, kind="stable")
    sizes_sorted = sizes[corder]
    out_starts = np.concatenate(([0], np.cumsum(sizes_sorted[:-1])))
    gather = (
        np.repeat(src_starts[corder] - out_starts, sizes_sorted)
        + np.arange(all_subs.size, dtype=np.int64)
    )
    return g_topics, g_sizes, g_first, all_subs[gather]


@register_selector("gsp-sharded")
class ShardedGreedySelectPairs(SelectionAlgorithm):
    """Chunked GSP over subscriber shards; identical output to ``"gsp"``.

    ``shard_size`` / ``workers`` default to the ``MCSS_SHARD_SIZE`` /
    ``MCSS_SHARD_WORKERS`` environment knobs (read at construction).
    Workloads smaller than one shard take the plain whole-array path
    with zero sharding overhead.
    """

    def __init__(
        self, shard_size: Optional[int] = None, workers: Optional[int] = None
    ) -> None:
        self.shard_size = (
            default_shard_size() if shard_size is None else int(shard_size)
        )
        self.workers = default_workers() if workers is None else int(workers)
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")

    def select(self, problem: MCSSProblem) -> PairSelection:
        bounds = shard_bounds(problem.workload.num_subscribers, self.shard_size)
        if len(bounds) <= 1:
            return GreedySelectPairs().select(problem)
        shard_groups = supervised_map(
            _select_shard,
            [(problem, lo, hi) for lo, hi in bounds],
            self.workers,
        )
        shard_groups = [g for g in shard_groups if g is not None]
        if not shard_groups:
            return PairSelection({})
        merged = merge_shard_groups(shard_groups)
        return GreedySelectPairs._finalize_groups(*merged)
