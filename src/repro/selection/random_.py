"""RandomSelectPairs (RSP) -- Algorithm 6, the naive Stage-1 baseline.

For each subscriber the algorithm grabs pairs "in no particular order"
until the satisfaction threshold ``tau_v`` is reached.  It makes no
attempt to minimize bandwidth, which is precisely why the paper uses it
as the baseline that GSP beats by up to 71% (Twitter) / 33% (Spotify).

Determinism: by default pairs are taken in the stored interest-list
order (matching "the first obtained pairs" of Appendix A).  Passing a
``seed`` shuffles each subscriber's interest first, which models an
adversarial "no particular order" and is useful for variance studies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import MCSSProblem, PairSelection
from .base import SelectionAlgorithm, register_selector

__all__ = ["RandomSelectPairs"]

_EPS = 1e-12


@register_selector("rsp")
class RandomSelectPairs(SelectionAlgorithm):
    """Naive pair selection: accumulate pairs until ``tau_v`` is met."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed

    def select(self, problem: MCSSProblem) -> PairSelection:
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)
        rng = np.random.default_rng(self._seed) if self._seed is not None else None
        by_topic: Dict[int, List[int]] = {}

        for v in range(workload.num_subscribers):
            interest = workload.interest(v)
            if interest.size == 0:
                continue
            topic_rates = rates[interest]
            tau_v = min(tau, float(topic_rates.sum()))
            if tau_v <= 0:
                continue
            order = (
                rng.permutation(interest.size)
                if rng is not None
                else range(interest.size)
            )
            got = 0.0
            for i in order:
                t = int(interest[i])
                by_topic.setdefault(t, []).append(v)
                got += float(topic_rates[i])
                if got >= tau_v - _EPS:
                    break

        return PairSelection(by_topic)
