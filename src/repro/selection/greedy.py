"""GreedySelectPairs (GSP) -- Algorithms 1 and 2 of the paper.

For every subscriber ``v`` the algorithm repeatedly picks the pair
``(t, v)`` with the best *benefit-cost ratio*

    h(t, v) = min(1, ev_t / rem_v) / (2 * ev_t)

where ``rem_v`` is the event rate still missing towards ``tau_v``
(Algorithm 1).  The ``2 * ev_t`` denominator is the bandwidth price of
the pair: one incoming plus one outgoing copy per event.

Two implementations are provided:

* :class:`GreedySelectPairs` -- an O(k log k)-per-subscriber rewrite
  that exploits the structure of the ratio (see below).  This is the
  default used by experiments.
* :class:`ReferenceGreedySelectPairs` -- a literal transcription of
  Algorithm 2 (recomputing the ratio array after every pick, O(k^2)).
  It exists as an executable specification: the test suite asserts the
  fast version selects exactly the same pairs.

Why the rewrite is equivalent
-----------------------------
While ``rem_v > 0``, every candidate topic with ``ev_t <= rem_v`` has
ratio ``(ev_t / rem_v) / (2 ev_t) = 1 / (2 rem_v)`` -- the *same* value
-- and every topic with ``ev_t > rem_v`` has the strictly smaller ratio
``1 / (2 ev_t)``.  Hence the greedy picks (a) any not-yet-exceeding
topic while one exists, and only then (b) the *smallest-rate* exceeding
topic.  Breaking ties in (a) towards the largest rate fills the
threshold fastest and leaves the least overshoot, so both
implementations use that tie-break; the whole schedule then collapses
into one descending sweep over the subscriber's topics.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import MCSSProblem, PairSelection
from .base import SelectionAlgorithm, register_selector

__all__ = ["GreedySelectPairs", "ReferenceGreedySelectPairs", "benefit_cost_ratio"]

_EPS = 1e-12


def benefit_cost_ratio(event_rate: float, remaining: float) -> float:
    """Algorithm 1: heuristic value of a pair given the remaining need.

    Returns 0 when the subscriber is already satisfied (``remaining <=
    0``); otherwise ``min(1, ev_t/rem) / (2 ev_t)``.

    Computed in the algebraically simplified piecewise form -- ``1 /
    (2 rem)`` when the topic fits, ``1 / (2 ev_t)`` when it exceeds --
    because the naive ``min(1, ev/rem) / (2 ev)`` expression evaluates
    mathematically *equal* ratios to different floats (e.g. ``0.6/12``
    vs ``0.7/14``), which would let rounding noise, not the documented
    tie-break, decide the argmax in Algorithm 2.
    """
    if event_rate <= 0:
        raise ValueError("event rate must be positive")
    if remaining <= 0:
        return 0.0
    if event_rate <= remaining:
        return 1.0 / (2.0 * remaining)
    return 1.0 / (2.0 * event_rate)


@register_selector("gsp")
class GreedySelectPairs(SelectionAlgorithm):
    """Fast GSP: one descending sweep per subscriber (see module doc)."""

    def select(self, problem: MCSSProblem) -> PairSelection:
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)
        by_topic: Dict[int, List[int]] = {}

        for v in range(workload.num_subscribers):
            interest = workload.interest(v)
            if interest.size == 0:
                continue
            topic_rates = rates[interest]
            tau_v = min(tau, float(topic_rates.sum()))
            if tau_v <= 0:
                continue
            # Descending by rate; ties by topic id for determinism.
            order = np.lexsort((interest, -topic_rates))
            sorted_topics = interest[order].tolist()
            sorted_rates = topic_rates[order].tolist()

            remaining = tau_v
            chosen: List[int] = []
            best_skip_topic = -1  # smallest-rate (then smallest-id) skip
            best_skip_rate = float("inf")
            for i, rate in enumerate(sorted_rates):
                if remaining <= _EPS:
                    break
                if rate <= remaining + _EPS:
                    chosen.append(sorted_topics[i])
                    remaining -= rate
                elif rate < best_skip_rate:
                    # The sweep is rate-descending with ascending ids
                    # inside equal-rate runs, so a strict "<" keeps the
                    # smallest id of the smallest skipped rate.
                    best_skip_rate = rate
                    best_skip_topic = sorted_topics[i]
            if remaining > _EPS:
                # Every leftover topic exceeds the need; Algorithm 1
                # penalizes overshoot by 1/(2 ev_t), so take the
                # smallest-rate skipped topic.
                chosen.append(best_skip_topic)

            for t in chosen:
                by_topic.setdefault(t, []).append(v)

        return PairSelection(by_topic)


@register_selector("gsp-reference")
class ReferenceGreedySelectPairs(SelectionAlgorithm):
    """Literal Algorithm 2: argmax over a ratio array, re-scored each pick.

    O(k^2) per subscriber -- use only on small workloads (its role is to
    pin down the semantics the fast version must match).
    """

    def select(self, problem: MCSSProblem) -> PairSelection:
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)
        by_topic: Dict[int, List[int]] = {}

        for v in range(workload.num_subscribers):
            interest = workload.interest(v).tolist()
            if not interest:
                continue
            topic_rates = {t: float(rates[t]) for t in interest}
            tau_v = min(tau, sum(topic_rates.values()))
            if tau_v <= 0:
                continue

            selected: List[int] = []
            selected_rate = 0.0
            candidates = set(interest)
            # Lines 5-11 of Algorithm 2: keep picking the argmax ratio
            # until the threshold is met.
            while selected_rate < tau_v - _EPS:
                remaining = tau_v - selected_rate
                best_t = -1
                best_key = (-1.0, -1.0, 0.0)
                for t in candidates:
                    ratio = benefit_cost_ratio(topic_rates[t], remaining)
                    # Tie-break: larger rate first, then smaller id --
                    # must match GreedySelectPairs exactly.
                    key = (ratio, topic_rates[t], -t)
                    if key > best_key:
                        best_key = key
                        best_t = t
                selected.append(best_t)
                selected_rate += topic_rates[best_t]
                candidates.discard(best_t)

            for t in selected:
                by_topic.setdefault(t, []).append(v)

        return PairSelection(by_topic)
