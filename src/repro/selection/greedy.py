"""GreedySelectPairs (GSP) -- Algorithms 1 and 2 of the paper.

For every subscriber ``v`` the algorithm repeatedly picks the pair
``(t, v)`` with the best *benefit-cost ratio*

    h(t, v) = min(1, ev_t / rem_v) / (2 * ev_t)

where ``rem_v`` is the event rate still missing towards ``tau_v``
(Algorithm 1).  The ``2 * ev_t`` denominator is the bandwidth price of
the pair: one incoming plus one outgoing copy per event.

Three implementations are provided:

* :class:`GreedySelectPairs` (``"gsp"``) -- the default: a fully
  vectorized whole-array rewrite over the workload's CSR interest
  representation (see below).  No Python loop over subscribers.
* :class:`LoopGreedySelectPairs` (``"gsp-loop"``) -- the
  O(k log k)-per-subscriber loop rewrite (the previous default),
  retained as an intermediate referee.
* :class:`ReferenceGreedySelectPairs` (``"gsp-reference"``) -- a
  literal transcription of Algorithm 2 (recomputing the ratio array
  after every pick, O(k^2)).  It exists as an executable
  specification: the test suite asserts both other versions select
  exactly the same pairs.

Why the loop rewrite is equivalent
----------------------------------
While ``rem_v > 0``, every candidate topic with ``ev_t <= rem_v`` has
ratio ``(ev_t / rem_v) / (2 ev_t) = 1 / (2 rem_v)`` -- the *same* value
-- and every topic with ``ev_t > rem_v`` has the strictly smaller ratio
``1 / (2 ev_t)``.  Hence the greedy picks (a) any not-yet-exceeding
topic while one exists, and only then (b) the *smallest-rate* exceeding
topic.  Breaking ties in (a) towards the largest rate fills the
threshold fastest and leaves the least overshoot, so both
implementations use that tie-break; the whole schedule then collapses
into one descending sweep over the subscriber's topics.

How the vectorized version works
--------------------------------
One global ``np.lexsort`` orders all (subscriber, topic, rate) triples
subscriber-major with rates descending (ids ascending inside equal
rates) -- exactly the order the per-subscriber sweep scans.  The sweep
itself is replaced by rounds of whole-array *run extraction* over the
still-active subscribers:

1. a vectorized segmented binary search finds, per subscriber, the
   next scan position whose rate fits the remaining need (the items
   jumped over are precisely the ones the loop would skip);
2. because the global cumulative sum of sorted rates is strictly
   increasing, one ``np.searchsorted`` then yields the *longest
   chosen run* from that position -- the maximal stretch of
   consecutive items the sweep would take back to back;
3. subscribers whose remaining need drops to zero retire; the rest
   re-enter the next round at the position after their run.

The number of rounds equals the maximum number of chosen *runs* of any
subscriber (not the number of chosen items), which is tiny in practice
-- subscribers whose threshold is met by a prefix finish in round one.
Subscribers that exhaust their scan still unsatisfied receive their
smallest-rate skipped topic (smallest id on ties), recovered post-hoc
from the chosen mask with two more searchsorted passes -- identical to
the loop's running ``best_skip`` tracking.

Equivalence contract: selections are identical to
:class:`ReferenceGreedySelectPairs` -- pair for pair, including the
grouped-by-topic insertion order -- whenever partial sums of event
rates are exactly representable (e.g. integer-valued rates, which all
bundled workload generators produce); otherwise float associativity
may flip ``_EPS``-sized boundary cases, the same caveat the loop
rewrite always had.  ``tests/test_vectorized_equivalence.py`` enforces
this on randomized workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import MCSSProblem, PairSelection
from ..core.segsearch import segmented_left_search
from .base import SelectionAlgorithm, register_selector

__all__ = [
    "GreedySelectPairs",
    "LoopGreedySelectPairs",
    "ReferenceGreedySelectPairs",
    "benefit_cost_ratio",
]

_EPS = 1e-12


def benefit_cost_ratio(event_rate: float, remaining: float) -> float:
    """Algorithm 1: heuristic value of a pair given the remaining need.

    Returns 0 when the subscriber is already satisfied (``remaining <=
    0``); otherwise ``min(1, ev_t/rem) / (2 ev_t)``.

    Computed in the algebraically simplified piecewise form -- ``1 /
    (2 rem)`` when the topic fits, ``1 / (2 ev_t)`` when it exceeds --
    because the naive ``min(1, ev/rem) / (2 ev)`` expression evaluates
    mathematically *equal* ratios to different floats (e.g. ``0.6/12``
    vs ``0.7/14``), which would let rounding noise, not the documented
    tie-break, decide the argmax in Algorithm 2.
    """
    if event_rate <= 0:
        raise ValueError("event rate must be positive")
    if remaining <= 0:
        return 0.0
    if event_rate <= remaining:
        return 1.0 / (2.0 * remaining)
    return 1.0 / (2.0 * event_rate)


def _segmented_first_leq(
    values: np.ndarray, lo: np.ndarray, hi: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Per-lane leftmost index ``i`` in ``[lo, hi)`` with ``values[i] <= target``.

    ``values`` must be non-increasing inside every ``[lo, hi)`` window
    (the per-subscriber descending rate order).  Returns ``hi`` for
    lanes with no such index.
    """
    return segmented_left_search(values, lo, hi, target, np.less_equal)


def _segmented_ascending_search(
    values: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    target: np.ndarray,
    *,
    strict: bool,
) -> np.ndarray:
    """Leftmost index in ``[lo, hi)`` with ``values[i] > target`` (or ``>=``).

    Same lane-parallel bisection as :func:`_segmented_first_leq`, but
    over windows of *ascending* values (running sums, running counts).
    """
    return segmented_left_search(
        values, lo, hi, target, np.greater if strict else np.greater_equal
    )


def _grouping_order(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of small non-negative int keys, radix when possible.

    NumPy's stable sort is a radix sort for 1- and 2-byte integer
    dtypes only, which is ~7x faster than the comparison sort used for
    int64 -- worth the downcast whenever the key range allows it.
    """
    if keys.size and int(keys.max()) < (1 << 15):
        return np.argsort(keys.astype(np.int16), kind="stable")
    return np.argsort(keys, kind="stable")


@register_selector("gsp")
class GreedySelectPairs(SelectionAlgorithm):
    """Vectorized GSP: whole-array passes over the CSR interests."""

    def select(self, problem: MCSSProblem) -> PairSelection:
        grouped = self.select_grouped(problem)
        if grouped is None:
            return PairSelection({})
        return self._finalize_groups(*grouped)

    def select_grouped(
        self, problem: MCSSProblem
    ) -> "Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
        """Run the sweep and return the topic groups in ascending-topic order.

        Returns ``None`` for an empty selection, otherwise the 4-tuple
        ``(group_topics, sizes, first_seen, subscribers)``: the distinct
        chosen topics ascending, each group's size, the pick-order rank
        of each group's first appearance, and the flat subscriber array
        (groups concatenated in ascending-topic order, subscribers
        ascending inside each group).

        This is the shard-mergeable half of :meth:`select`.  Ranks are
        (twice) positions in the workload's global scan order, so a
        subscriber shard's ranks rebase by twice its scan offset and
        its subscribers by its id offset; rebased shard groups merge
        exactly (:mod:`repro.selection.sharded`) before
        :meth:`_finalize_groups` rebuilds the first-appearance group
        order the loop referees pin down.
        """
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)

        indptr, _ = workload.interest_csr()
        num_pairs = workload.num_pairs
        if num_pairs == 0 or tau <= 0:
            return None

        # Global scan order: subscriber-major, rates descending, topic
        # ids ascending inside equal rates (the documented tie-break),
        # with the strictly increasing global running sum -- all cached
        # on the workload (tau-independent).
        s_topics, s_subs, s_rates, cums = workload.rate_descending_pairs()

        tau_v = np.minimum(tau, workload.interest_rate_sums())
        active = np.flatnonzero(tau_v > 0)
        pos = indptr[:-1][active].astype(np.int64)
        lim = indptr[1:][active].astype(np.int64)
        rem = tau_v[active]

        # Round-1 fast path (most subscribers finish in one run): with
        # rem == tau_v the first fitting index is known in closed form
        # -- sum-capped subscribers (tau_v == interest sum) start at
        # their segment head since no single rate exceeds the sum, and
        # tau-capped ones skip exactly the rates above tau, counted by
        # one bincount over all pairs.
        over_mask = s_rates > tau + _EPS
        if over_mask.any():
            over_cnt = np.bincount(s_subs[over_mask], minlength=tau_v.size)
            i_first = np.where(rem >= tau, pos + over_cnt[active], pos)
        else:
            i_first = pos

        run_starts: List[np.ndarray] = []
        run_ends: List[np.ndarray] = []
        overshoot_lim: List[np.ndarray] = []

        first_round = True
        # repolint: allow(VL01): segmented sweep -- each round is whole-array over all active subscribers
        while pos.size:
            # (1) Next chosen item: first scan position that fits the
            # remaining need.  Everything jumped over is a loop "skip".
            if first_round:
                i = i_first
                first_round = False
            else:
                i = _segmented_first_leq(s_rates, pos, lim, rem + _EPS)
            exhausted = i >= lim
            if exhausted.any():
                # Scan ran dry while unsatisfied: overshoot needed.
                overshoot_lim.append(lim[exhausted])
                keep = ~exhausted
                i, rem, lim = i[keep], rem[keep], lim[keep]
            if i.size == 0:
                break
            # (2) Longest chosen run from i: consecutive items are taken
            # while the running sum stays within the remaining need
            # (item i itself fits, so the search starts at i + 1).
            base = np.where(i > 0, cums[i - 1], 0.0)
            end = _segmented_ascending_search(
                cums, i + 1, lim, rem + base + _EPS, strict=True
            )
            run_starts.append(i)
            run_ends.append(end)
            # (3) Update lanes; those satisfied retire, the rest rescan.
            rem = rem - (cums[end - 1] - base)
            pos = end
            unsat = rem > _EPS
            dry = unsat & (pos >= lim)
            if dry.any():
                overshoot_lim.append(lim[dry])
            cont = unsat & (pos < lim)
            pos, lim, rem = pos[cont], lim[cont], rem[cont]

        chosen = self._chosen_mask(num_pairs, run_starts, run_ends)
        overshoot_idx = self._overshoot_indices(
            chosen, s_rates, overshoot_lim, indptr, s_subs
        )
        if overshoot_idx.size:
            chosen[overshoot_idx] = True

        return self._group_chosen(chosen, overshoot_idx, s_topics, s_subs, indptr)

    @staticmethod
    def _chosen_mask(
        num_pairs: int, run_starts: List[np.ndarray], run_ends: List[np.ndarray]
    ) -> np.ndarray:
        """Materialize the disjoint chosen runs as a boolean pair mask."""
        marks = np.zeros(num_pairs + 1, dtype=np.int8)
        if run_starts:
            starts = np.concatenate(run_starts)
            ends = np.concatenate(run_ends)
            # Runs are pairwise disjoint and non-empty, so all start
            # indices are distinct and all end indices are distinct:
            # plain fancy updates apply every increment (no need for
            # the much slower np.add.at), and the running sum stays in
            # {0, 1} so int8 cannot overflow.
            marks[starts] += 1
            marks[ends] -= 1
        return np.cumsum(marks[:-1]) > 0

    @staticmethod
    def _overshoot_indices(
        chosen: np.ndarray,
        s_rates: np.ndarray,
        overshoot_lim: List[np.ndarray],
        indptr: np.ndarray,
        s_subs: np.ndarray,
    ) -> np.ndarray:
        """Smallest-rate (then smallest-id) skipped topic per dry subscriber.

        Replays the loop's ``best_skip`` tracking post hoc: with the
        chosen mask in hand, the minimum skipped rate of a subscriber
        is the rate at its last skipped position (rates descend), and
        the id tie-break selects the first skipped position inside that
        equal-rate range.  Both lookups are searchsorted over the
        global running count of skipped items.
        """
        if not overshoot_lim:
            return np.empty(0, dtype=np.int64)
        lim = np.concatenate(overshoot_lim)
        # Segment bounds of each dry subscriber.
        sub_of = s_subs[lim - 1]
        seg_lo = indptr[:-1][sub_of]
        seg_hi = lim

        # Global inclusive running count of skipped items.
        count_t = np.int32 if chosen.size < (1 << 31) else np.int64
        chosen_cum = np.cumsum(chosen, dtype=count_t)
        skipped_cum = np.arange(1, chosen.size + 1, dtype=count_t) - chosen_cum

        before_seg = np.where(seg_lo > 0, skipped_cum[seg_lo - 1], 0)
        has_skip = skipped_cum[seg_hi - 1] > before_seg
        if not has_skip.all():
            # Degenerate float-noise case (everything chosen yet still
            # nominally unsatisfied): nothing left to add.
            seg_lo, seg_hi = seg_lo[has_skip], seg_hi[has_skip]
        if seg_lo.size == 0:
            return np.empty(0, dtype=np.int64)

        # Last skipped position q -> minimal skipped rate rho.
        q = _segmented_ascending_search(
            skipped_cum, seg_lo, seg_hi, skipped_cum[seg_hi - 1], strict=False
        )
        rho = s_rates[q]
        # First position of the equal-rate range containing q.
        j0 = _segmented_first_leq(s_rates, seg_lo, seg_hi, rho)
        # First *skipped* position at or after j0 (the smallest id among
        # minimal-rate skips -- chosen items of the same rate precede
        # skipped ones inside an equal-rate range).
        before_j0 = np.where(j0 > 0, skipped_cum[j0 - 1], 0)
        return _segmented_ascending_search(
            skipped_cum, j0, seg_hi, before_j0, strict=True
        )

    @staticmethod
    def _group_chosen(
        chosen: np.ndarray,
        overshoot_idx: np.ndarray,
        s_topics: np.ndarray,
        s_subs: np.ndarray,
        indptr: np.ndarray,
    ) -> "Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
        """Group chosen pairs by topic, recording each group's first rank.

        The loop referees append each subscriber's picks in sweep order
        with the overshoot pick last, keying the by-topic dict by first
        appearance.  The rank computed here encodes that sweep order
        exactly; :meth:`_finalize_groups` turns the per-group minimum
        rank back into the dict insertion order, keeping downstream
        packers (whose iteration order follows the group order)
        bit-compatible.  Two stable small-key argsorts, no per-topic
        dictionary of arrays.
        """
        chosen_idx = np.flatnonzero(chosen)
        if chosen_idx.size == 0:
            return None
        t_sel = s_topics[chosen_idx]
        v_sel = s_subs[chosen_idx]

        # Pick-order rank: regular picks keep (twice) their scan
        # position; an overshoot pick ranks after every regular pick of
        # its subscriber but before the next subscriber's.
        rank = chosen_idx * 2
        if overshoot_idx.size:
            is_over = np.zeros(chosen.size, dtype=bool)
            is_over[overshoot_idx] = True
            ov_sel = is_over[chosen_idx]
            rank = rank.copy()
            rank[ov_sel] = 2 * indptr[v_sel[ov_sel] + 1] - 1

        # Group by topic: a stable argsort keeps ascending subscribers
        # inside each group (chosen_idx is subscriber-major), and the
        # per-group minimum rank is the topic's first appearance.
        group_order = _grouping_order(t_sel)
        t_grouped = t_sel[group_order]
        starts = np.concatenate(
            ([0], np.flatnonzero(t_grouped[1:] != t_grouped[:-1]) + 1)
        )
        group_topics = t_grouped[starts]
        first_seen = np.minimum.reduceat(rank[group_order], starts)
        sizes = np.diff(np.append(starts, t_grouped.size))
        return group_topics, sizes, first_seen, v_sel[group_order]

    @staticmethod
    def _finalize_groups(
        group_topics: np.ndarray,
        sizes: np.ndarray,
        first_seen: np.ndarray,
        subscribers: np.ndarray,
    ) -> PairSelection:
        """Order the topic groups by first appearance and emit the CSR.

        Reorders whole groups by their first-appearance rank: give
        every pair its group's destination rank and stable-sort on that
        small key (order inside each group is preserved).
        """
        perm = np.argsort(first_seen, kind="stable")
        dest_rank = np.empty(perm.size, dtype=np.int64)
        dest_rank[perm] = np.arange(perm.size)
        final = _grouping_order(np.repeat(dest_rank, sizes))
        csr_indptr = np.zeros(perm.size + 1, dtype=np.int64)
        np.cumsum(sizes[perm], out=csr_indptr[1:])
        return PairSelection.from_csr(
            group_topics[perm], csr_indptr, subscribers[final], trusted=True
        )


@register_selector("gsp-loop")
class LoopGreedySelectPairs(SelectionAlgorithm):
    """Loop GSP: one descending sweep per subscriber (see module doc).

    The previous default implementation, kept as a referee between the
    O(k^2) reference and the vectorized version.
    """

    def select(self, problem: MCSSProblem) -> PairSelection:
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)
        by_topic: Dict[int, List[int]] = {}

        for v in range(workload.num_subscribers):
            interest = workload.interest(v)
            if interest.size == 0:
                continue
            topic_rates = rates[interest]
            tau_v = min(tau, float(topic_rates.sum()))
            if tau_v <= 0:
                continue
            # Descending by rate; ties by topic id for determinism.
            order = np.lexsort((interest, -topic_rates))
            sorted_topics = interest[order].tolist()
            sorted_rates = topic_rates[order].tolist()

            remaining = tau_v
            chosen: List[int] = []
            best_skip_topic = -1  # smallest-rate (then smallest-id) skip
            best_skip_rate = float("inf")
            for i, rate in enumerate(sorted_rates):
                if remaining <= _EPS:
                    break
                if rate <= remaining + _EPS:
                    chosen.append(sorted_topics[i])
                    remaining -= rate
                elif rate < best_skip_rate:
                    # The sweep is rate-descending with ascending ids
                    # inside equal-rate runs, so a strict "<" keeps the
                    # smallest id of the smallest skipped rate.
                    best_skip_rate = rate
                    best_skip_topic = sorted_topics[i]
            if remaining > _EPS:
                # Every leftover topic exceeds the need; Algorithm 1
                # penalizes overshoot by 1/(2 ev_t), so take the
                # smallest-rate skipped topic.
                chosen.append(best_skip_topic)

            for t in chosen:
                by_topic.setdefault(t, []).append(v)

        return PairSelection(by_topic)


@register_selector("gsp-reference")
class ReferenceGreedySelectPairs(SelectionAlgorithm):
    """Literal Algorithm 2: argmax over a ratio array, re-scored each pick.

    O(k^2) per subscriber -- use only on small workloads (its role is to
    pin down the semantics the fast version must match).
    """

    def select(self, problem: MCSSProblem) -> PairSelection:
        workload = problem.workload
        rates = workload.event_rates
        tau = float(problem.tau)
        by_topic: Dict[int, List[int]] = {}

        for v in range(workload.num_subscribers):
            interest = workload.interest(v).tolist()
            if not interest:
                continue
            topic_rates = {t: float(rates[t]) for t in interest}
            tau_v = min(tau, sum(topic_rates.values()))
            if tau_v <= 0:
                continue

            selected: List[int] = []
            selected_rate = 0.0
            candidates = set(interest)
            # Lines 5-11 of Algorithm 2: keep picking the argmax ratio
            # until the threshold is met.
            while selected_rate < tau_v - _EPS:
                remaining = tau_v - selected_rate
                best_t = -1
                best_key = (-1.0, -1.0, 0.0)
                for t in candidates:
                    ratio = benefit_cost_ratio(topic_rates[t], remaining)
                    # Tie-break: larger rate first, then smaller id --
                    # must match GreedySelectPairs exactly.
                    key = (ratio, topic_rates[t], -t)
                    if key > best_key:
                        best_key = key
                        best_t = t
                selected.append(best_t)
                selected_rate += topic_rates[best_t]
                candidates.discard(best_t)

            for t in selected:
                by_topic.setdefault(t, []).append(v)

        return PairSelection(by_topic)
