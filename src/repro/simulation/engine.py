"""Discrete-event replay of a placement (the deployment substrate).

The paper *assumes* a pub/sub engine that, given an allocation of
topic-subscriber pairs to VMs, ingests each topic's publication stream
on every VM hosting it and fans events out to the assigned subscribers.
This module builds that engine as a discrete-event simulation, so a
placement produced by the optimizer can be *executed* rather than just
priced:

* publishers emit events for every topic over a simulated horizon
  (deterministic spacing or Poisson arrivals);
* every event is ingested once per VM hosting the topic (incoming
  bytes metered per VM) and delivered to each locally assigned
  subscriber (outgoing bytes metered per VM, delivery counts per
  subscriber);
* the report audits that (a) metered bandwidth matches the analytic
  accounting of Equation (2) pro-rated to the horizon, and (b) every
  subscriber's *delivered event rate* meets ``tau_v`` -- i.e. the
  optimizer's satisfaction promise survives contact with actual
  traffic.

The simulation is intentionally payload-free (no message bodies are
materialized); with millions of events the metering is the point, not
the bytes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import MCSSProblem, Placement

__all__ = ["SimulationConfig", "VMMeter", "DeploymentReport", "simulate_placement"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one replay.

    ``horizon_fraction`` is the share of the billing period simulated
    (1.0 replays the full trace; the default 10% keeps multi-million
    event replays fast).  ``poisson`` switches publishers from evenly
    spaced events to Poisson arrivals -- metering totals then match the
    analytic expectation only on average, which the report's tolerance
    accounts for.
    """

    horizon_fraction: float = 0.1
    poisson: bool = False
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not 0 < self.horizon_fraction <= 1:
            raise ValueError("horizon_fraction must be in (0, 1]")


@dataclass
class VMMeter:
    """Per-VM traffic meter."""

    incoming_bytes: float = 0.0
    outgoing_bytes: float = 0.0
    events_ingested: int = 0
    events_delivered: int = 0

    @property
    def total_bytes(self) -> float:
        """Total metered transfer (in + out)."""
        return self.incoming_bytes + self.outgoing_bytes


@dataclass
class DeploymentReport:
    """Outcome of replaying a placement."""

    config: SimulationConfig
    horizon_events: int
    vm_meters: List[VMMeter]
    delivered_counts: Dict[int, int]
    delivered_rate_bytes: float
    analytic_rate_bytes: float
    satisfied: bool
    unsatisfied_subscribers: List[int] = field(default_factory=list)

    @property
    def total_metered_bytes(self) -> float:
        """Sum of all VM meters."""
        return sum(m.total_bytes for m in self.vm_meters)

    @property
    def metering_error(self) -> float:
        """Relative gap between metered and analytic bandwidth.

        Near zero for deterministic publishers; O(1/sqrt(events)) for
        Poisson ones.
        """
        if self.analytic_rate_bytes == 0:
            return 0.0
        return abs(self.total_metered_bytes - self.analytic_rate_bytes) / (
            self.analytic_rate_bytes
        )

    def summary(self) -> str:
        """One-line human summary."""
        status = "satisfied" if self.satisfied else (
            f"{len(self.unsatisfied_subscribers)} UNSATISFIED"
        )
        return (
            f"replayed {self.horizon_events} events over "
            f"{len(self.vm_meters)} VMs: {self.total_metered_bytes / 1e9:.2f} GB "
            f"metered ({self.metering_error * 100:.2f}% vs analytic), {status}"
        )


def simulate_placement(
    problem: MCSSProblem,
    placement: Placement,
    config: SimulationConfig = SimulationConfig(),
) -> DeploymentReport:
    """Replay a placement and audit satisfaction + metering.

    Satisfaction is judged on delivered *rates*: a subscriber is
    satisfied when her distinct delivered events, extrapolated from the
    horizon back to the full period, reach ``tau_v``.  For
    deterministic publishers this is exact; for Poisson it holds in
    expectation and the default tolerance absorbs the noise.
    """
    workload = problem.workload
    rates = workload.event_rates
    msg = workload.message_size_bytes
    rng = np.random.default_rng(config.seed)
    frac = config.horizon_fraction

    # Routing tables: topic -> [(vm, local subscriber count)], and the
    # distinct subscriber set per topic for delivery-rate accounting.
    hosts: Dict[int, List[Tuple[int, int]]] = {}
    distinct_subs: Dict[int, set] = {}
    for b, t, subs in placement.iter_assignments():
        hosts.setdefault(t, []).append((b, len(subs)))
        distinct_subs.setdefault(t, set()).update(subs)

    meters = [VMMeter() for _ in range(placement.num_vms)]
    delivered_counts: Dict[int, int] = {}

    # Event schedule: one heap of (time, topic) publication events.
    horizon = 1.0  # normalized horizon; spacing derived per topic
    schedule: List[Tuple[float, int]] = []
    events_per_topic: Dict[int, int] = {}
    for t in hosts:
        expected = float(rates[t]) * frac
        if config.poisson:
            count = int(rng.poisson(expected))
        else:
            # Deterministic: floor + probabilistic remainder keeps the
            # expectation exact even for sub-1 expected counts.
            count = int(expected)
            if rng.random() < expected - count:
                count += 1
        events_per_topic[t] = count
        if count == 0:
            continue
        if config.poisson:
            times = np.sort(rng.uniform(0.0, horizon, size=count))
        else:
            times = (np.arange(count) + 0.5) * (horizon / count)
        for time in times.tolist():
            schedule.append((time, t))
    heapq.heapify(schedule)

    total_events = 0
    while schedule:
        _time, t = heapq.heappop(schedule)
        total_events += 1
        topic_bytes = msg
        for b, local_subs in hosts[t]:
            meter = meters[b]
            meter.incoming_bytes += topic_bytes
            meter.events_ingested += 1
            meter.outgoing_bytes += topic_bytes * local_subs
            meter.events_delivered += local_subs

    # Distinct-topic delivery per subscriber (Equation (3)'s max_b: a
    # pair replicated on several VMs still counts once towards
    # satisfaction -- the client deduplicates).
    for t, subs in distinct_subs.items():
        count = events_per_topic.get(t, 0)
        if count == 0:
            continue
        for v in subs:
            delivered_counts[v] = delivered_counts.get(v, 0) + count

    # Satisfaction audit on extrapolated rates.  Each delivered topic
    # contributes at most one event of discretization error over a
    # partial horizon, so a subscriber gets an absolute slack of
    # (distinct topics + 1) / frac events; Poisson publishers add
    # sampling noise absorbed by a relative tolerance.
    topics_delivered: Dict[int, int] = {}
    for _t, subs in distinct_subs.items():
        for v in subs:
            topics_delivered[v] = topics_delivered.get(v, 0) + 1
    tau = float(problem.tau)
    unsatisfied: List[int] = []
    rel_tol = 0.25 if config.poisson else 0.0
    for v in range(workload.num_subscribers):
        interest = workload.interest(v)
        if interest.size == 0:
            continue
        tau_v = min(tau, float(rates[interest].sum()))
        got = delivered_counts.get(v, 0) / frac
        slack = (topics_delivered.get(v, 0) + 1) / frac
        if got < tau_v * (1.0 - rel_tol) - slack:
            unsatisfied.append(v)

    delivered_rate_bytes = sum(m.total_bytes for m in meters) / frac
    return DeploymentReport(
        config=config,
        horizon_events=total_events,
        vm_meters=meters,
        delivered_counts=delivered_counts,
        delivered_rate_bytes=delivered_rate_bytes,
        analytic_rate_bytes=placement.total_bytes * frac,
        satisfied=not unsatisfied,
        unsatisfied_subscribers=unsatisfied,
    )
