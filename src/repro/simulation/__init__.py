"""Deployment substrate: discrete-event replay of placements."""

from .engine import DeploymentReport, SimulationConfig, VMMeter, simulate_placement

__all__ = ["DeploymentReport", "SimulationConfig", "VMMeter", "simulate_placement"]
