"""Deterministic fault injection for the supervised fan-out.

A :class:`FaultPlan` names exactly which piece misbehaves on which
attempt, so every failure path of :func:`repro.resilience.supervise.
supervised_map` is *exercised* by the chaos suite rather than reasoned
about.  Plans are plain data and env-selectable (``MCSS_FAULT_PLAN``)
so CI can drive a real sharded solve through kill/hang/corrupt without
touching the solver code.

Spec syntax (semicolon-separated entries)::

    kind:piece:attempt[;kind:piece:attempt...]

where ``kind`` is ``kill`` (child exits without reporting), ``hang``
(child sleeps past any sane deadline), or ``corrupt`` (child flips a
byte of its result payload *after* digesting it); ``piece`` is the
0-based piece index; ``attempt`` is the 1-based attempt number or
``*`` for every attempt (the retry-exhaustion case).

Example: ``kill:0:1;corrupt:3:*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .knobs import KnobError, env_str

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec"]

FAULT_KINDS = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` hits ``piece`` on ``attempt``."""

    kind: str
    piece: int
    attempt: Optional[int]  # None = every attempt ("*")

    def matches(self, piece: int, attempt: int) -> bool:
        return self.piece == piece and self.attempt in (None, attempt)


class FaultPlan:
    """An immutable set of :class:`FaultSpec` entries."""

    def __init__(self, specs: Tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)

    @classmethod
    def parse(cls, spec: str, *, source: str = "fault plan") -> "FaultPlan":
        """Parse the ``kind:piece:attempt[;...]`` syntax.

        ``source`` names the origin in errors (e.g. the env variable).
        """
        specs = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) != 3:
                raise KnobError(
                    f"{source}: bad entry {entry!r} "
                    "(expected kind:piece:attempt)"
                )
            kind, piece_s, attempt_s = parts
            if kind not in FAULT_KINDS:
                raise KnobError(
                    f"{source}: unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )
            try:
                piece = int(piece_s)
                attempt = None if attempt_s == "*" else int(attempt_s)
            except ValueError:
                raise KnobError(
                    f"{source}: bad entry {entry!r} "
                    "(piece must be an integer, attempt an integer or '*')"
                ) from None
            if piece < 0 or (attempt is not None and attempt < 1):
                raise KnobError(
                    f"{source}: bad entry {entry!r} "
                    "(piece is 0-based >= 0, attempt is 1-based >= 1)"
                )
            specs.append(FaultSpec(kind, piece, attempt))
        return cls(tuple(specs))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``MCSS_FAULT_PLAN``, or None when unset."""
        spec = env_str("MCSS_FAULT_PLAN", "")
        if not spec.strip():
            return None
        return cls.parse(spec, source="MCSS_FAULT_PLAN")

    def fault_for(self, piece: int, attempt: int) -> Optional[str]:
        """The fault kind hitting (piece, attempt), or None."""
        for spec in self.specs:
            if spec.matches(piece, attempt):
                return spec.kind
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.specs!r})"
