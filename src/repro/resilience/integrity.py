"""Atomic file writes and content digests: the trace-integrity substrate.

Two failure modes killed hours-long out-of-core runs before this
module existed: a half-written ``.npz`` left behind by an interrupted
save (silently loadable-but-wrong or cryptically truncated), and a
corrupt member surfacing as a shape error deep inside the solver.  The
fix is mechanical and shared by every on-disk artifact in the repo:

* :func:`atomic_write` — tmp file in the destination directory +
  flush + ``fsync`` + ``os.replace`` + directory fsync, so readers see
  either the old file or the complete new one, never a prefix.
* :func:`member_digest` — zero-copy CRC32 over an array's bytes
  (works on ``np.memmap``; pages stream in lazily).
* :func:`write_npz_atomic` / :func:`verified_member` — the npz-level
  pairing: record ``digest_<member>`` alongside each payload member,
  verify on read, and raise :class:`TraceCorruptionError` *naming the
  bad member* instead of letting garbage flow downstream.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import zlib
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "TraceCorruptionError",
    "atomic_write",
    "member_digest",
    "verified_member",
    "write_npz_atomic",
]


class TraceCorruptionError(ValueError):
    """An on-disk artifact is truncated or failed its content digest.

    The message always names the offending member and file, so a
    corrupt multi-GB trace is diagnosable without a hex editor.
    """


def member_digest(arr) -> int:
    """CRC32 of an array's raw bytes, without copying large arrays.

    Accepts anything ``np.ascontiguousarray`` does (including 0-d
    scalars and ``np.memmap`` views); the memoryview cast keeps big
    members zero-copy so digesting a 100M-pair trace stays cheap.
    """
    a = np.ascontiguousarray(arr)
    if a.nbytes < (1 << 20):
        return zlib.crc32(a.tobytes())
    return zlib.crc32(memoryview(a).cast("B"))


@contextlib.contextmanager
def atomic_write(path, mode: str = "wb"):
    """Write ``path`` all-or-nothing via tmp file + fsync + rename.

    Yields an open file object; on clean exit the temp file is fsynced
    and atomically renamed over ``path`` (and the directory entry
    fsynced), on error it is removed and ``path`` is left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def write_npz_atomic(
    path,
    members: Mapping[str, np.ndarray],
    *,
    digest_members: Iterable[str] = (),
    compress: bool = False,
) -> None:
    """Atomically save an npz, recording ``digest_<m>`` for each named member."""
    out = dict(members)
    for name in digest_members:
        if name in members:
            out["digest_" + name] = np.uint32(member_digest(members[name]))
    writer = np.savez_compressed if compress else np.savez
    with atomic_write(path) as fh:
        writer(fh, **out)


def verified_member(
    data,
    name: str,
    path,
    *,
    verify: bool = True,
    require_digest: bool = False,
):
    """Fetch ``data[name]``, checking its recorded digest if present.

    ``data`` is an open ``np.load`` mapping.  Raises
    :class:`TraceCorruptionError` naming the member when it is missing,
    when its bytes do not match the recorded CRC, or (with
    ``require_digest``) when the digest member itself is absent.
    """
    try:
        arr = data[name]
    except KeyError:
        raise TraceCorruptionError(
            f"member {name!r} is missing from {os.fspath(path)!r} "
            "(truncated or interrupted write?)"
        ) from None
    if not verify:
        return arr
    digest_name = "digest_" + name
    if digest_name not in getattr(data, "files", data):
        if require_digest:
            raise TraceCorruptionError(
                f"member {digest_name!r} is missing from "
                f"{os.fspath(path)!r}; cannot verify {name!r}"
            )
        return arr
    want = int(np.uint32(data[digest_name]))
    got = member_digest(arr)
    if got != want:
        raise TraceCorruptionError(
            f"member {name!r} of {os.fspath(path)!r} is corrupt: "
            f"crc32 {got:#010x} != recorded {want:#010x}"
        )
    return arr
