"""Supervised fan-out: ``fork_map`` with a fault-tolerance envelope.

:func:`supervised_map` keeps :func:`repro.parallel.fork_map`'s
contract (module-level ``fn``, work inherited by forked children, one
result per item, order preserved) and adds the supervision a
long-running sharded solve needs:

* **dead children** are detected via exit codes, not hangs — a worker
  that dies without reporting is retried, never waited on forever;
* **per-piece wall-clock timeout** (``MCSS_PIECE_TIMEOUT``) kills hung
  workers;
* **result integrity** — each child CRC32s its pickled result before
  sending, so a corrupted payload is detected in the parent and
  treated as an infrastructure failure (retried), never unpickled into
  a silently wrong answer;
* **retries** with capped exponential backoff and *seeded* jitter
  (``MCSS_MAX_RETRIES``): the delay for (piece, attempt) comes from
  ``np.random.default_rng([seed, piece, attempt])``, so schedules are
  reproducible regardless of how failures interleave across pieces;
* **graceful degradation** — a piece that exhausts its retries runs
  serially in-process; because shard merges are order-independent the
  final result stays bit-exact with the all-serial path;
* a deterministic **fault-injection seam** (:class:`~repro.resilience.
  faults.FaultPlan`, env-selectable via ``MCSS_FAULT_PLAN``) so every
  one of these paths is exercised by the chaos suite.

Exceptions *raised by fn itself* are transported back and re-raised in
the parent immediately — a typed task error (bad input, corrupt trace)
is an answer, not an infrastructure failure, and retrying it would
only repeat it.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .faults import FaultPlan
from .knobs import env_float, env_int

__all__ = [
    "PieceFailedError",
    "SupervisedStats",
    "default_max_retries",
    "default_piece_timeout",
    "supervised_map",
]

# Exit code a "kill" fault dies with; any nonzero exit counts as dead.
_FAULT_KILL_EXIT = 43
# Supervision tick: upper bound on how stale deadline/exit checks get.
_TICK_S = 0.05

# Work table inherited by forked children (mirrors parallel._SHARED):
# holds fn/items/plan by reference so nothing is pickled per piece.
_SHARED: Dict[str, Any] = {}


def default_piece_timeout() -> float:
    """``MCSS_PIECE_TIMEOUT`` in seconds; 0 (the default) disables it."""
    return env_float("MCSS_PIECE_TIMEOUT", 0.0, minimum=0.0)


def default_max_retries() -> int:
    """``MCSS_MAX_RETRIES``: forked re-attempts per piece before degrading."""
    return env_int("MCSS_MAX_RETRIES", 2, minimum=0)


class PieceFailedError(RuntimeError):
    """A child raised an exception that could not be transported intact."""


@dataclass
class SupervisedStats:
    """Observability for one supervised_map call (chaos-suite hooks).

    Pass an instance via ``stats=`` to inspect what supervision did:
    per-piece attempt counts, failure tallies by kind, and which
    pieces fell back to in-process serial execution.
    """

    attempts: List[int] = field(default_factory=list)
    retries: int = 0
    deaths: int = 0
    timeouts: int = 0
    corruptions: int = 0
    degraded_pieces: List[int] = field(default_factory=list)
    mode: str = "serial"


def _backoff_delay(
    seed: int, piece: int, attempt: int, base: float, cap: float
) -> float:
    """Capped exponential backoff with seeded jitter in [0.5x, 1x]."""
    rng = np.random.default_rng([seed, piece, attempt])
    return min(cap, base * 2.0 ** (attempt - 1)) * (0.5 + 0.5 * rng.random())


def _child_main(piece: int, attempt: int, conn) -> None:
    """Run one piece in a forked child and report (digest ++ payload).

    The CRC is computed *before* any injected corruption flips payload
    bytes, which is exactly what a real bit-flip between compute and
    delivery looks like from the parent's side.
    """
    plan = _SHARED.get("plan")
    fault = plan.fault_for(piece, attempt) if plan is not None else None
    if fault == "kill":
        os._exit(_FAULT_KILL_EXIT)
    if fault == "hang":
        time.sleep(3600.0)
    try:
        result = _SHARED["fn"](_SHARED["items"][piece])
        payload = pickle.dumps(("ok", result), protocol=pickle.HIGHEST_PROTOCOL)
    except BaseException as exc:  # transported to the parent, re-raised there
        try:
            payload = pickle.dumps(("exc", exc), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            payload = pickle.dumps(
                ("exc_repr", repr(exc)), protocol=pickle.HIGHEST_PROTOCOL
            )
    digest = zlib.crc32(payload)
    if fault == "corrupt":
        payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
    try:
        conn.send_bytes(digest.to_bytes(4, "little") + payload)
        conn.close()
    except BaseException:
        os._exit(1)
    # _exit skips pytest/atexit teardown inherited from the parent.
    os._exit(0)


def _read_report(conn) -> Tuple[str, Any]:
    """Parse a child's report: ('ok', value) | ('exc', exc) | failures."""
    try:
        blob = conn.recv_bytes()
    except (EOFError, OSError):
        return ("dead", None)
    digest = int.from_bytes(blob[:4], "little")
    payload = blob[4:]
    if zlib.crc32(payload) != digest:
        return ("corrupt", None)
    kind, value = pickle.loads(payload)
    if kind == "exc_repr":
        return ("exc", PieceFailedError(value))
    return (kind, value)


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    *,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    backoff_base: float = 0.05,
    backoff_cap: float = 1.0,
    seed: int = 0,
    stats: Optional[SupervisedStats] = None,
) -> List[Any]:
    """Map ``fn`` over ``items`` with supervision, retry, and degrade.

    Drop-in for :func:`repro.parallel.fork_map`: same serial fallback
    (workers <= 1, a single item, or no fork start method — fault
    injection only applies to forked attempts), same inherit-not-
    pickle work passing, results in item order.  ``timeout`` <= 0
    disables the deadline.  A piece still failing after ``1 +
    max_retries`` forked attempts is recomputed serially in-process,
    so infrastructure faults can delay a solve but never change it.
    """
    # Local import: parallel imports resilience.knobs at module level,
    # so importing parallel here at module level would be a cycle.
    from ..parallel import default_workers

    items = list(items)
    workers = default_workers() if workers is None else int(workers)
    timeout = default_piece_timeout() if timeout is None else float(timeout)
    max_retries = (
        default_max_retries() if max_retries is None else int(max_retries)
    )
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    if stats is None:
        stats = SupervisedStats()
    stats.attempts = [0] * len(items)

    use_fork = (
        workers > 1
        and len(items) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not use_fork:
        stats.mode = "serial"
        return [fn(item) for item in items]

    stats.mode = "supervised"
    ctx = multiprocessing.get_context("fork")
    results: List[Any] = [None] * len(items)
    pending: List[Tuple[float, int]] = [(0.0, i) for i in range(len(items))]
    running: Dict[int, Tuple[Any, Any, Optional[float]]] = {}
    degraded: List[int] = []

    def reap(piece: int, *, kill: bool = False) -> None:
        proc, conn, _ = running.pop(piece)
        if kill and proc.exitcode is None:
            proc.kill()
        proc.join()
        conn.close()

    def record_failure(piece: int, kind: str) -> None:
        if kind == "dead":
            stats.deaths += 1
        elif kind == "timeout":
            stats.timeouts += 1
        elif kind == "corrupt":
            stats.corruptions += 1
        attempt = stats.attempts[piece]
        if attempt > max_retries:
            stats.degraded_pieces.append(piece)
            degraded.append(piece)
        else:
            stats.retries += 1
            delay = _backoff_delay(
                seed, piece, attempt, backoff_base, backoff_cap
            )
            pending.append((time.monotonic() + delay, piece))

    _SHARED["fn"] = fn
    _SHARED["items"] = items
    _SHARED["plan"] = fault_plan
    try:
        while pending or running:
            now = time.monotonic()
            for entry in sorted(pending):
                if len(running) >= workers:
                    break
                not_before, piece = entry
                if not_before > now:
                    continue
                pending.remove(entry)
                stats.attempts[piece] += 1
                recv_end, send_end = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(piece, stats.attempts[piece], send_end),
                    daemon=True,
                )
                proc.start()
                send_end.close()
                deadline = now + timeout if timeout > 0 else None
                running[piece] = (proc, recv_end, deadline)

            if not running:
                # Every pending piece is backing off; sleep to the earliest.
                time.sleep(
                    max(0.0, min(nb for nb, _ in pending) - time.monotonic())
                    + 1e-3
                )
                continue

            conns = [conn for _, conn, _ in running.values()]
            readable = set(
                multiprocessing.connection.wait(conns, timeout=_TICK_S) or ()
            )
            now = time.monotonic()
            for piece, (proc, conn, deadline) in list(running.items()):
                exited = proc.exitcode is not None
                if conn in readable or (exited and conn.poll(0)):
                    if exited and proc.exitcode != 0:
                        # Died mid-report: the payload may be a prefix and
                        # recv_bytes could block on it — discard instead.
                        reap(piece)
                        record_failure(piece, "dead")
                        continue
                    kind, value = _read_report(conn)
                    reap(piece)
                    if kind == "ok":
                        results[piece] = value
                    elif kind == "exc":
                        raise value
                    else:
                        record_failure(piece, kind)
                elif exited:
                    # Exited without a (complete) report. EOF detection
                    # alone is unreliable here: siblings forked while this
                    # pipe existed inherit its write end, so poll exit
                    # codes instead of waiting for EOF.
                    reap(piece)
                    record_failure(piece, "dead")
                elif deadline is not None and now >= deadline:
                    reap(piece, kill=True)
                    record_failure(piece, "timeout")
    finally:
        for piece in list(running):
            reap(piece, kill=True)
        _SHARED.clear()

    # Degraded pieces: supervision gave up on forking them; compute
    # in-process (exceptions propagate — this is the all-serial path).
    for piece in degraded:
        results[piece] = fn(items[piece])
    return results
