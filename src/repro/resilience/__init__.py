"""Fault tolerance for the out-of-core pipeline.

Four small substrates, threaded through the sharded solve end to end:

* :mod:`~repro.resilience.knobs` — validated ``MCSS_*`` env parsing
  with errors that name the variable.
* :mod:`~repro.resilience.supervise` — :func:`supervised_map`, the
  fault-tolerant envelope around ``parallel.fork_map`` (dead-child
  detection, per-piece timeout, digest-checked results, seeded-backoff
  retries, degrade-to-serial) plus the :class:`FaultPlan` injection
  seam the chaos suite drives.
* :mod:`~repro.resilience.integrity` — atomic writes and per-member
  content digests for every on-disk artifact.
* :mod:`~repro.resilience.checkpoint` — atomic checkpoint/restore so
  killed epoch runs resume bit-exactly.

See the "Failure model & recovery" section of docs/ARCHITECTURE.md.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    load_serving_state,
    save_checkpoint,
)
from .faults import FAULT_KINDS, FaultPlan, FaultSpec
from .integrity import (
    TraceCorruptionError,
    atomic_write,
    member_digest,
    verified_member,
    write_npz_atomic,
)
from .knobs import KnobError, env_float, env_int, env_str
from .supervise import (
    PieceFailedError,
    SupervisedStats,
    default_max_retries,
    default_piece_timeout,
    supervised_map,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "KnobError",
    "PieceFailedError",
    "SupervisedStats",
    "TraceCorruptionError",
    "atomic_write",
    "default_max_retries",
    "default_piece_timeout",
    "env_float",
    "env_int",
    "env_str",
    "load_checkpoint",
    "load_serving_state",
    "member_digest",
    "save_checkpoint",
    "supervised_map",
    "verified_member",
    "write_npz_atomic",
]
