"""Atomic checkpoint/restore for long churn/reprovision runs.

A checkpoint is one digested, atomically-written ``.npz`` carrying the
complete :meth:`IncrementalReprovisioner.snapshot` state (pair arrays,
fleet size, epoch counters, calibration ratio, the workload's CSR
arrays) plus, optionally, the :class:`ChurnModel`'s configuration and
bit-generator state as a JSON member.  Restoring replays *nothing*: a
killed 1000-epoch run resumes from the persisted arrays and the exact
RNG stream position, so the continuation is bit-identical to the run
that was never killed (pinned in tests/test_vectorized_equivalence.py).

Every array member carries a ``digest_<member>`` CRC32 (see
:mod:`repro.resilience.integrity`); a corrupt or truncated checkpoint
raises :class:`TraceCorruptionError` naming the bad member rather than
resuming from garbage.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

import numpy as np

from .integrity import verified_member, write_npz_atomic

__all__ = [
    "CHECKPOINT_VERSION",
    "load_checkpoint",
    "load_serving_state",
    "save_checkpoint",
]

CHECKPOINT_VERSION = 1

_ARRAY_MEMBERS = (
    "pair_subscribers",
    "pair_topics",
    "pair_vms",
    "used_bytes",
    "event_rates",
    "interest_indptr",
    "interest_topics",
    "churn_state",
    "serving_state",
)


def save_checkpoint(path, reprovisioner, churn_model=None, serving_state=None) -> str:
    """Atomically persist a reprovisioner (and optional churn model).

    ``serving_state`` is an optional JSON-able dict of serving-layer
    counters (see :mod:`repro.serving.service`); like ``churn_state``
    it rides along as a digested JSON member, so old checkpoints (which
    simply lack the member) keep loading and old readers skip it.
    """
    path = str(path)
    snap = reprovisioner.snapshot()
    workload = snap["workload"]
    members = {
        "checkpoint_version": np.int64(CHECKPOINT_VERSION),
        "pair_subscribers": snap["pair_subscribers"],
        "pair_topics": snap["pair_topics"],
        "pair_vms": snap["pair_vms"],
        "used_bytes": snap["used_bytes"],
        "num_vms": np.int64(snap["num_vms"]),
        "epoch": np.int64(snap["epoch"]),
        "since_fresh": np.int64(snap["since_fresh"]),
        "lb_ratio": np.float64(snap["lb_ratio"]),
        "tau": np.float64(snap["tau"]),
        "rebuild_threshold": np.float64(snap["rebuild_threshold"]),
        "fresh_solve_every": np.int64(snap["fresh_solve_every"]),
        "event_rates": np.asarray(workload.event_rates, dtype=np.float64),
        "interest_indptr": np.asarray(workload.interest_indptr, dtype=np.int64),
        "interest_topics": np.asarray(workload.interest_topics, dtype=np.int64),
        "message_size_bytes": np.float64(workload.message_size_bytes),
    }
    if churn_model is not None:
        config = churn_model.config
        state = {
            "rng": churn_model.rng_state(),
            "config": {
                "unsubscribe_fraction": config.unsubscribe_fraction,
                "subscribe_fraction": config.subscribe_fraction,
                "rate_drift_sigma": config.rate_drift_sigma,
            },
        }
        members["churn_state"] = np.frombuffer(
            json.dumps(state).encode("utf-8"), dtype=np.uint8
        )
    if serving_state is not None:
        members["serving_state"] = np.frombuffer(
            json.dumps(serving_state).encode("utf-8"), dtype=np.uint8
        )
    write_npz_atomic(path, members, digest_members=_ARRAY_MEMBERS)
    return path


def load_serving_state(path) -> Optional[dict]:
    """The serving-layer counters member, or ``None`` when absent."""
    path = str(path)
    with np.load(path, allow_pickle=False) as data:
        if "serving_state" not in data.files:
            return None
        blob = bytes(verified_member(data, "serving_state", path))
    return json.loads(blob.decode("utf-8"))


def load_checkpoint(path, plan, solver=None) -> Tuple[object, Optional[object]]:
    """Restore ``(reprovisioner, churn_model_or_None)`` from a checkpoint.

    ``plan`` (the :class:`ProvisioningPlan`) is not serialized — VM
    pricing/capacity is configuration, not run state — so the caller
    supplies the same plan the original run used.
    """
    # Function-level imports: this module sits below repro.dynamic in
    # the import graph (selection.sharded pulls in repro.resilience).
    from ..core import Workload
    from ..dynamic import ChurnConfig, ChurnModel, IncrementalReprovisioner

    path = str(path)
    churn_blob = None
    with np.load(path, allow_pickle=False) as data:
        version = int(data["checkpoint_version"])
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )

        def member(name, require_digest=True):
            return verified_member(
                data, name, path, require_digest=require_digest
            )

        workload = Workload.from_csr(
            np.array(member("event_rates")),
            np.array(member("interest_indptr")),
            np.array(member("interest_topics")),
            message_size_bytes=float(data["message_size_bytes"]),
        )
        snap = {
            "pair_subscribers": np.array(member("pair_subscribers")),
            "pair_topics": np.array(member("pair_topics")),
            "pair_vms": np.array(member("pair_vms")),
            "used_bytes": np.array(member("used_bytes")),
            "num_vms": int(data["num_vms"]),
            "epoch": int(data["epoch"]),
            "since_fresh": int(data["since_fresh"]),
            "lb_ratio": float(data["lb_ratio"]),
            "tau": float(data["tau"]),
            "rebuild_threshold": float(data["rebuild_threshold"]),
            "fresh_solve_every": int(data["fresh_solve_every"]),
            "workload": workload,
        }
        if "churn_state" in data.files:
            churn_blob = bytes(member("churn_state"))

    reprovisioner = IncrementalReprovisioner.restore(snap, plan, solver=solver)
    churn_model = None
    if churn_blob is not None:
        state = json.loads(churn_blob.decode("utf-8"))
        churn_model = ChurnModel(
            workload, ChurnConfig(**state["config"]), seed=0
        )
        churn_model.set_rng_state(state["rng"])
    return reprovisioner, churn_model
