"""Validated `MCSS_*` environment-knob parsing.

Every env knob in the repo is read through :func:`env_int` /
:func:`env_float` / :func:`env_str` so a garbage value like
``MCSS_SHARD_WORKERS=two`` fails with an error *naming the variable*
instead of a bare ``ValueError: invalid literal for int()`` from deep
inside a fan-out.  The registry itself lives in docs/BENCHMARKS.md and
is cross-checked both ways by repolint's EK01 rule, which recognizes
these helpers as knob reads.

Deliberately stdlib-only: this module sits below ``repro.parallel`` in
the import graph, so it must not import numpy-adjacent repro modules.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["KnobError", "env_float", "env_int", "env_str"]


class KnobError(ValueError):
    """An ``MCSS_*`` environment variable holds an unusable value.

    Subclasses :class:`ValueError` so existing ``pytest.raises(ValueError)``
    call sites (and callers catching broad config errors) keep working.
    """


def _parse(name: str, raw: str, kind, kind_name: str):
    try:
        return kind(raw)
    except ValueError:
        raise KnobError(
            f"environment variable {name}={raw!r} is not a valid {kind_name}"
        ) from None


def _check_minimum(name: str, value, minimum) -> None:
    if minimum is not None and value < minimum:
        raise KnobError(
            f"environment variable {name}={value!r} must be >= {minimum}"
        )


def env_int(name: str, default: int, *, minimum: Optional[int] = None) -> int:
    """Read an integer knob, with a variable-naming error on garbage."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    value = _parse(name, raw, int, "integer")
    _check_minimum(name, value, minimum)
    return value


def env_float(
    name: str, default: float, *, minimum: Optional[float] = None
) -> float:
    """Read a float knob, with a variable-naming error on garbage."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    value = _parse(name, raw, float, "number")
    _check_minimum(name, value, minimum)
    return value


def env_str(name: str, default: str) -> str:
    """Read a string knob (exists for symmetry and EK01 registration)."""
    raw = os.environ.get(name)
    return default if raw is None else raw
