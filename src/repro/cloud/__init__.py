"""Simulated IaaS provider: VM lifecycle, metering, invoices."""

from .deployment import CloudDeployment, deploy_and_bill
from .provider import Invoice, InvoiceLine, SimulatedCloud, VMHandle

__all__ = [
    "CloudDeployment",
    "deploy_and_bill",
    "Invoice",
    "InvoiceLine",
    "SimulatedCloud",
    "VMHandle",
]
