"""Deploying an MCSS solution onto the simulated cloud.

Ties the three substrates together: take a placement from the
optimizer, rent its fleet from :class:`~repro.cloud.provider.SimulatedCloud`,
replay the trace with the deployment simulator, meter the traffic onto
the rented VMs, and collect the invoice.  The invoice total should --
and the tests assert it does -- match the analytic objective
``C1(|B|) + C2(sum bw_b)`` the optimizer minimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import MCSSProblem, Placement
from ..simulation import DeploymentReport, SimulationConfig, simulate_placement
from .provider import Invoice, SimulatedCloud, VMHandle

__all__ = ["CloudDeployment", "deploy_and_bill"]


@dataclass(frozen=True)
class CloudDeployment:
    """A placement running on the simulated provider."""

    problem: MCSSProblem
    placement: Placement
    cloud: SimulatedCloud
    handles: List[VMHandle]
    report: DeploymentReport
    invoice: Invoice

    @property
    def analytic_total_usd(self) -> float:
        """The objective value the optimizer computed for this fleet."""
        return self.problem.cost_of(self.placement).total_usd

    @property
    def billing_gap(self) -> float:
        """Relative gap between the invoice and the analytic objective.

        Small but non-zero: the invoice bills *metered* bytes (subject
        to the replay's horizon extrapolation) while the objective uses
        analytic rates.
        """
        analytic = self.analytic_total_usd
        if analytic == 0:
            return 0.0
        return abs(self.invoice.total_usd - analytic) / analytic


def deploy_and_bill(
    problem: MCSSProblem,
    placement: Placement,
    config: SimulationConfig = SimulationConfig(),
) -> CloudDeployment:
    """Rent the fleet, replay the trace, return the itemized bill.

    The full billing period is charged for every VM (the optimizer
    provisions for the whole period); transfer is the replay's metered
    traffic extrapolated to the period.
    """
    cloud = SimulatedCloud(problem.plan)
    handles = [cloud.launch_vm() for _ in range(placement.num_vms)]

    report = simulate_placement(problem, placement, config)
    scale = 1.0 / config.horizon_fraction
    for handle, meter in zip(handles, report.vm_meters):
        cloud.record_transfer(handle.vm_id, meter.total_bytes * scale)

    cloud.advance(problem.plan.period_hours)
    for handle in handles:
        cloud.terminate_vm(handle.vm_id)

    return CloudDeployment(
        problem=problem,
        placement=placement,
        cloud=cloud,
        handles=handles,
        report=report,
        invoice=cloud.invoice(),
    )
