"""A simulated IaaS provider with EC2-style billing.

The paper prices deployments *analytically* (``C1 + C2`` over the
trace period).  This substrate closes the loop operationally: VMs are
launched against an instance catalog, data transfer is metered as it
happens, and an itemized invoice is produced at the end of the billing
cycle.  The test suite asserts the invoice of a deployed-and-replayed
placement equals the analytic objective, which is exactly the claim
that makes the optimizer's output meaningful as a *bill estimate*.

Billing rules mirror the paper's reading of EC2 2014 pricing:

* VM hours are billed per started hour (ceil), On-Demand;
* transfer is billed per byte against the plan's ``C2`` at cycle end
  (the paper charges in and out at the same rate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..pricing import InstanceType, PricingPlan

__all__ = ["VMHandle", "InvoiceLine", "Invoice", "SimulatedCloud"]


class CloudError(RuntimeError):
    """Raised on invalid provider operations (double-terminate etc.)."""


@dataclass
class VMHandle:
    """One rented VM."""

    vm_id: int
    instance: InstanceType
    launched_at: float
    terminated_at: Optional[float] = None
    transferred_bytes: float = 0.0

    @property
    def running(self) -> bool:
        """Whether the VM is still up."""
        return self.terminated_at is None

    def hours_billed(self, now: float) -> float:
        """Billable hours: per started hour, like 2014 EC2 On-Demand."""
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, math.ceil(end - self.launched_at))


@dataclass(frozen=True)
class InvoiceLine:
    """One line of an invoice."""

    description: str
    amount_usd: float


@dataclass(frozen=True)
class Invoice:
    """An itemized bill for a billing cycle."""

    lines: List[InvoiceLine]

    @property
    def total_usd(self) -> float:
        """Grand total."""
        return sum(line.amount_usd for line in self.lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = "\n".join(
            f"  {line.description:<50} ${line.amount_usd:>10,.2f}"
            for line in self.lines
        )
        return f"{body}\n  {'TOTAL':<50} ${self.total_usd:>10,.2f}"


class SimulatedCloud:
    """An in-process IaaS provider.

    Time is logical (hours since epoch 0) and advanced by the caller --
    deployments driven by the optimizer bill whole periods at once,
    while the dynamic reprovisioner advances time step by step.
    """

    def __init__(self, plan: PricingPlan) -> None:
        self.plan = plan
        self.now_hours = 0.0
        self._vms: Dict[int, VMHandle] = {}
        self._next_id = 0
        # Effective hourly rate honouring any vm_cost override (scaled
        # plans bill "fractional VMs" at a proportionally scaled rate).
        self._hourly_usd = (plan.c1(1) - plan.c1(0)) / plan.period_hours

    # ------------------------------------------------------------------
    def advance(self, hours: float) -> None:
        """Advance the logical clock."""
        if hours < 0:
            raise ValueError("time only moves forward")
        self.now_hours += hours

    def launch_vm(self) -> VMHandle:
        """Rent one VM of the plan's instance type."""
        handle = VMHandle(
            vm_id=self._next_id,
            instance=self.plan.instance,
            launched_at=self.now_hours,
        )
        self._vms[handle.vm_id] = handle
        self._next_id += 1
        return handle

    def terminate_vm(self, vm_id: int) -> None:
        """Stop billing a VM."""
        handle = self._vms.get(vm_id)
        if handle is None:
            raise CloudError(f"unknown VM {vm_id}")
        if not handle.running:
            raise CloudError(f"VM {vm_id} already terminated")
        handle.terminated_at = self.now_hours

    def record_transfer(self, vm_id: int, num_bytes: float) -> None:
        """Meter data transfer attributed to a VM."""
        if num_bytes < 0:
            raise ValueError("transfer must be non-negative")
        handle = self._vms.get(vm_id)
        if handle is None:
            raise CloudError(f"unknown VM {vm_id}")
        handle.transferred_bytes += num_bytes

    # ------------------------------------------------------------------
    @property
    def vms(self) -> List[VMHandle]:
        """All VMs ever launched (running and terminated)."""
        return list(self._vms.values())

    @property
    def running_vms(self) -> List[VMHandle]:
        """VMs currently billing."""
        return [h for h in self._vms.values() if h.running]

    def invoice(self) -> Invoice:
        """Produce the itemized bill up to the current logical time."""
        lines: List[InvoiceLine] = []
        hourly = self._hourly_usd
        total_hours = 0.0
        for handle in self._vms.values():
            total_hours += handle.hours_billed(self.now_hours)
        if total_hours:
            lines.append(
                InvoiceLine(
                    f"{self.plan.instance.name} x {len(self._vms)} VMs, "
                    f"{total_hours:.0f} VM-hours @ ${hourly:.6g}/h",
                    total_hours * hourly,
                )
            )
        total_bytes = sum(h.transferred_bytes for h in self._vms.values())
        if total_bytes:
            lines.append(
                InvoiceLine(
                    f"data transfer, {total_bytes / 1e9:,.2f} GB",
                    self.plan.c2(total_bytes),
                )
            )
        return Invoice(lines=lines)
