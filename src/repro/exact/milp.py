"""Exact MCSS via mixed-integer programming (scipy / HiGHS).

Section II-C gives MCSS as an integer program; the paper immediately
declares it unsolvable at pub/sub scale ("we are not aware of any IP
solvers with the ability to scale to millions of variables") and builds
the two-stage heuristic instead.  For *small* instances, however, the
IP is perfectly tractable, and an exact reference answers two questions
the paper leaves implicit:

* how sub-optimal is the two-stage heuristic really (Section III-C
  says "insignificant for practical workloads" -- our tests check it on
  hundreds of fuzzed instances);
* the NP-hardness reduction (Section II-D) can be *executed*: Partition
  instances map to DCSS instances and the solver's verdicts must agree.

Formulation (all variables binary)::

    minimize   c1 * sum_b y_b + c2 * (sum_pb ev_p x_pb + sum_tb ev_t z_tb)
    s.t.       x_pb <= z_{t(p),b}           pair needs its topic's ingest
               z_tb <= y_b                  ingest only on used VMs
               sum_p ev_p x_pb + sum_t ev_t z_tb <= BC_b   capacity
               sum_{t in Tv} ev_t s_tv >= tau_v            satisfaction
               s_tv <= sum_b x_tvb                         Eq. (3) max_b
               y_{b+1} <= y_b                              symmetry break

Requires linear ``C1``/``C2`` (the paper's model); raises otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core import MCSSProblem, Placement, SolutionCost
from ..pricing.costs import FreeBandwidthCost, LinearBandwidthCost, LinearVMCost

__all__ = ["ExactSolution", "solve_exact", "solve_dcss"]

_MAX_VARIABLES = 200_000


class ExactSolverError(RuntimeError):
    """Raised when the MILP cannot be built or solved."""


@dataclass(frozen=True)
class ExactSolution:
    """Result of an exact MCSS solve."""

    cost: SolutionCost
    placement: Placement
    optimal: bool
    status_message: str


def _linear_unit_costs(problem: MCSSProblem) -> Tuple[float, float]:
    """Extract per-VM and per-byte prices; reject non-linear plans."""
    c1 = problem.plan.c1
    c2 = problem.plan.c2
    if not isinstance(c1, LinearVMCost):
        raise ExactSolverError("exact solver requires a LinearVMCost C1")
    if isinstance(c2, LinearBandwidthCost):
        per_byte = c2.usd_per_gb / 1e9
    elif isinstance(c2, FreeBandwidthCost):
        per_byte = 0.0
    else:
        raise ExactSolverError("exact solver requires a linear (or free) C2")
    return c1.price_per_vm, per_byte


def solve_exact(
    problem: MCSSProblem,
    max_vms: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> ExactSolution:
    """Solve MCSS to optimality with at most ``max_vms`` VMs.

    ``max_vms`` defaults to the fleet an all-pairs CBP-style packing
    would need (a safe upper bound: ceil(2 * total rate / BC)).  The
    variable count is capped at 200k; larger instances raise, matching
    the paper's observation that the IP does not scale.
    """
    workload = problem.workload
    rates = workload.event_rates
    msg = workload.message_size_bytes
    tau = float(problem.tau)

    pairs: List[Tuple[int, int]] = list(workload.iter_pairs())
    num_pairs = len(pairs)
    topics = sorted({t for t, _ in pairs})
    topic_pos = {t: i for i, t in enumerate(topics)}
    num_topics = len(topics)

    if max_vms is None:
        total = 2.0 * sum(float(rates[t]) for t, _ in pairs) * msg
        max_vms = max(1, int(math.ceil(total / problem.capacity_bytes)))
    if max_vms <= 0:
        raise ExactSolverError("max_vms must be positive")

    num_b = max_vms
    n_x = num_pairs * num_b
    n_z = num_topics * num_b
    n_y = num_b
    n_s = num_pairs
    n_vars = n_x + n_z + n_y + n_s
    if n_vars > _MAX_VARIABLES:
        raise ExactSolverError(
            f"instance needs {n_vars} variables (> {_MAX_VARIABLES}); "
            "the exact solver is for small instances only"
        )

    def xi(p: int, b: int) -> int:
        return p * num_b + b

    def zi(t: int, b: int) -> int:
        return n_x + topic_pos[t] * num_b + b

    def yi(b: int) -> int:
        return n_x + n_z + b

    def si(p: int) -> int:
        return n_x + n_z + n_y + p

    vm_price, per_byte = _linear_unit_costs(problem)
    per_event = per_byte * msg  # $ per delivered/ingested event-rate unit

    c = np.zeros(n_vars)
    for p, (t, _v) in enumerate(pairs):
        for b in range(num_b):
            c[xi(p, b)] = per_event * float(rates[t])
    for t in topics:
        for b in range(num_b):
            c[zi(t, b)] = per_event * float(rates[t])
    for b in range(num_b):
        c[yi(b)] = vm_price

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lo: List[float] = []
    hi: List[float] = []
    row = 0

    def add(entries: List[Tuple[int, float]], lower: float, upper: float) -> None:
        nonlocal row
        for col, val in entries:
            rows.append(row)
            cols.append(col)
            vals.append(val)
        lo.append(lower)
        hi.append(upper)
        row += 1

    inf = float("inf")
    # x_pb <= z_tb
    for p, (t, _v) in enumerate(pairs):
        for b in range(num_b):
            add([(xi(p, b), 1.0), (zi(t, b), -1.0)], -inf, 0.0)
    # z_tb <= y_b
    for t in topics:
        for b in range(num_b):
            add([(zi(t, b), 1.0), (yi(b), -1.0)], -inf, 0.0)
    # capacity (in event-rate units)
    bc_events = problem.capacity_bytes / msg
    for b in range(num_b):
        entries = [(xi(p, b), float(rates[t])) for p, (t, _v) in enumerate(pairs)]
        entries += [(zi(t, b), float(rates[t])) for t in topics]
        add(entries, -inf, bc_events)
    # satisfaction per subscriber
    pairs_of_v: Dict[int, List[int]] = {}
    for p, (_t, v) in enumerate(pairs):
        pairs_of_v.setdefault(v, []).append(p)
    for v, plist in pairs_of_v.items():
        rate_sum = sum(float(rates[pairs[p][0]]) for p in plist)
        tau_v = min(tau, rate_sum)
        if tau_v <= 0:
            continue
        add(
            [(si(p), float(rates[pairs[p][0]])) for p in plist],
            tau_v * (1.0 - 1e-9),
            inf,
        )
    # s_p <= sum_b x_pb
    for p in range(num_pairs):
        entries = [(si(p), 1.0)] + [(xi(p, b), -1.0) for b in range(num_b)]
        add(entries, -inf, 0.0)
    # symmetry: y_{b+1} <= y_b
    for b in range(num_b - 1):
        add([(yi(b + 1), 1.0), (yi(b), -1.0)], -inf, 0.0)

    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    constraint = LinearConstraint(matrix, lo, hi)
    options: Dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = time_limit

    result = milp(
        c,
        constraints=constraint,
        integrality=np.ones(n_vars),
        bounds=Bounds(0.0, 1.0),
        options=options or None,
    )
    if result.x is None:
        raise ExactSolverError(f"MILP failed: {result.message}")

    x = np.round(result.x).astype(int)
    placement = problem.empty_placement()
    vm_map: Dict[int, int] = {}
    for b in range(num_b):
        by_topic: Dict[int, List[int]] = {}
        for p, (t, v) in enumerate(pairs):
            if x[xi(p, b)]:
                by_topic.setdefault(t, []).append(v)
        if not by_topic:
            continue
        idx = placement.new_vm()
        vm_map[b] = idx
        for t, subs in by_topic.items():
            placement.assign(idx, t, subs)

    return ExactSolution(
        cost=problem.cost_of(placement),
        placement=placement,
        optimal=bool(result.status == 0),
        status_message=str(result.message),
    )


def solve_dcss(
    problem: MCSSProblem,
    cost_threshold: float,
    max_vms: Optional[int] = None,
) -> bool:
    """The decision problem DCSS: can total cost <= ``cost_threshold``?

    Solved by optimizing exactly and comparing (DCSS and MCSS are
    polynomially equivalent for our purposes).
    """
    solution = solve_exact(problem, max_vms=max_vms)
    return solution.cost.total_usd <= cost_threshold * (1.0 + 1e-9)
