"""Exact solvers and the NP-hardness reduction (Sections II-C, II-D).

* :func:`solve_exact` -- MILP (scipy/HiGHS) for small instances;
* :func:`solve_bruteforce` -- exhaustive search, the trust anchor;
* :func:`solve_dcss` -- the decision problem;
* :mod:`repro.exact.reduction` -- the executable Partition reduction.
"""

from .bruteforce import BruteForceSolution, solve_bruteforce
from .milp import ExactSolution, solve_dcss, solve_exact
from .reduction import (
    ReductionOutcome,
    dcss_answer,
    partition_has_solution,
    partition_to_mcss,
    verify_reduction,
)

__all__ = [
    "BruteForceSolution",
    "solve_bruteforce",
    "ExactSolution",
    "solve_dcss",
    "solve_exact",
    "ReductionOutcome",
    "dcss_answer",
    "partition_has_solution",
    "partition_to_mcss",
    "verify_reduction",
]
