"""Brute-force MCSS for *tiny* instances.

Enumerates every assignment of every pair to ``{unselected, VM 1, ...,
VM max_vms}`` and keeps the cheapest feasible one.  Exponential --
``(max_vms + 1) ** num_pairs`` candidates -- and deliberately so: this
is the trust anchor the MILP solver is cross-checked against in the
test suite.  Guarded to ~2 million candidate evaluations.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import MCSSProblem, Placement, SolutionCost

__all__ = ["BruteForceSolution", "solve_bruteforce"]

_MAX_CANDIDATES = 2_000_000


@dataclass(frozen=True)
class BruteForceSolution:
    """Result of an exhaustive MCSS search."""

    cost: SolutionCost
    placement: Placement


def solve_bruteforce(problem: MCSSProblem, max_vms: int) -> BruteForceSolution:
    """Exhaustively find the optimal placement using at most ``max_vms``.

    Raises ``ValueError`` when the search space exceeds the guard or
    when no feasible assignment exists within ``max_vms`` VMs.
    """
    workload = problem.workload
    rates = workload.event_rates
    msg = workload.message_size_bytes
    tau = float(problem.tau)
    capacity = problem.capacity_bytes

    pairs: List[Tuple[int, int]] = list(workload.iter_pairs())
    num_pairs = len(pairs)
    candidates = (max_vms + 1) ** num_pairs
    if candidates > _MAX_CANDIDATES:
        raise ValueError(
            f"{candidates} candidates exceed the brute-force guard "
            f"({_MAX_CANDIDATES}); use the MILP solver"
        )

    thresholds: Dict[int, float] = {}
    for v in range(workload.num_subscribers):
        interest = workload.interest(v)
        if interest.size:
            thresholds[v] = min(tau, float(rates[interest].sum()))

    pair_rates = [float(rates[t]) for t, _v in pairs]
    best_cost: Optional[SolutionCost] = None
    best_assignment: Optional[Tuple[int, ...]] = None

    for assignment in itertools.product(range(max_vms + 1), repeat=num_pairs):
        # Per-VM load (events): pairs + distinct-topic ingest.
        out_ev = [0.0] * max_vms
        topics_on: List[set] = [set() for _ in range(max_vms)]
        delivered: Dict[int, float] = {}
        seen_tv: set = set()
        for p, slot in enumerate(assignment):
            if slot == 0:
                continue
            b = slot - 1
            t, v = pairs[p]
            out_ev[b] += pair_rates[p]
            topics_on[b].add(t)
            if (t, v) not in seen_tv:
                seen_tv.add((t, v))
                delivered[v] = delivered.get(v, 0.0) + pair_rates[p]

        feasible = True
        for v, tau_v in thresholds.items():
            if delivered.get(v, 0.0) < tau_v * (1.0 - 1e-9):
                feasible = False
                break
        if not feasible:
            continue
        total_bytes = 0.0
        used_vms = 0
        for b in range(max_vms):
            if not topics_on[b]:
                continue
            load = (out_ev[b] + sum(float(rates[t]) for t in topics_on[b])) * msg
            if load > capacity * (1.0 + 1e-9):
                feasible = False
                break
            total_bytes += load
            used_vms += 1
        if not feasible:
            continue

        cost = problem.cost_components(used_vms, total_bytes)
        if best_cost is None or cost.total_usd < best_cost.total_usd - 1e-12:
            best_cost = cost
            best_assignment = assignment

    if best_assignment is None:
        raise ValueError(f"no feasible assignment within {max_vms} VMs")

    placement = problem.empty_placement()
    vm_index: Dict[int, int] = {}
    grouped: Dict[Tuple[int, int], List[int]] = {}
    for p, slot in enumerate(best_assignment):
        if slot == 0:
            continue
        t, v = pairs[p]
        grouped.setdefault((slot - 1, t), []).append(v)
    for (b, t), subs in sorted(grouped.items()):
        if b not in vm_index:
            vm_index[b] = placement.new_vm()
        placement.assign(vm_index[b], t, subs)

    assert best_cost is not None
    return BruteForceSolution(cost=problem.cost_of(placement), placement=placement)
