"""The Partition -> DCSS reduction of Theorem II.2, executable.

Given a multiset ``S = {x_1, ..., x_n}`` of positive integers, the
paper builds a DCSS instance with:

* one topic ``t_i`` with ``ev_{t_i} = x_i`` and one dedicated
  subscriber ``v_i`` per integer -- so serving ``(t_i, v_i)`` costs
  ``2 x_i`` (one incoming + one outgoing copy);
* ``BC = sum(S)`` and ``tau = max(S)`` -- so ``tau_{v_i} = x_i`` and
  every pair is forced into any feasible solution;
* ``C1(x) = x`` and ``C2 = 0`` -- the objective counts VMs;
* threshold ``CT = 2``.

Total forced load is ``2 sum(S) = 2 BC``, so two VMs suffice exactly
when the topics split into two halves of ``sum(S)/2`` each -- i.e. when
``S`` partitions.  :func:`verify_reduction` runs both sides (a subset-
sum DP for Partition, the exact MCSS solver for DCSS) and reports
whether they agree; the test suite sweeps it over many multisets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core import MCSSProblem, Workload
from ..pricing import FreeBandwidthCost, LinearVMCost, PricingPlan, get_instance
from .milp import solve_exact

__all__ = [
    "partition_to_mcss",
    "partition_has_solution",
    "dcss_answer",
    "ReductionOutcome",
    "verify_reduction",
]


def partition_to_mcss(values: Sequence[int]) -> MCSSProblem:
    """Build the reduced MCSS instance for a Partition multiset.

    Raises ``ValueError`` for empty input, non-positive integers, or a
    multiset whose largest element exceeds half the sum (such instances
    are trivially non-partitionable *and* produce an MCSS instance
    whose most expensive pair cannot fit a VM -- the constructor
    rejects it; callers should use :func:`dcss_answer`, which maps this
    to a "no").
    """
    vals = [int(x) for x in values]
    if not vals:
        raise ValueError("partition multiset must be non-empty")
    if any(x <= 0 for x in vals):
        raise ValueError("partition values must be positive integers")

    workload = Workload(
        event_rates=[float(x) for x in vals],
        interests=[[i] for i in range(len(vals))],
        message_size_bytes=1.0,
    )
    plan = PricingPlan(
        instance=get_instance("c3.large"),  # unused: capacity is overridden
        period_hours=1.0,
        bandwidth_cost=FreeBandwidthCost(),
        vm_cost=LinearVMCost(1.0),
        capacity_bytes_override=float(sum(vals)),
    )
    return MCSSProblem(workload=workload, tau=float(max(vals)), plan=plan)


def partition_has_solution(values: Sequence[int]) -> bool:
    """Decide Partition directly (subset-sum DP) -- the ground truth."""
    vals = [int(x) for x in values]
    if any(x <= 0 for x in vals):
        raise ValueError("partition values must be positive integers")
    total = sum(vals)
    if total % 2:
        return False
    target = total // 2
    reachable = 1  # bitset: bit k set <=> subset sum k reachable
    for x in vals:
        reachable |= reachable << x
    return bool((reachable >> target) & 1)


def dcss_answer(values: Sequence[int], cost_threshold: float = 2.0) -> bool:
    """Answer the reduced DCSS instance: total cost (= #VMs) <= CT?

    A multiset whose largest element exceeds half the sum yields an
    unconstructible MCSS instance (a single pair overflows ``BC``);
    the decision answer is then "no".
    """
    try:
        problem = partition_to_mcss(values)
    except ValueError:
        return False
    # One-VM-per-pair is always feasible for a constructible instance
    # (2 x_i <= BC), so optimizing with |S| VMs available finds the
    # true minimum VM count, which C1(x) = x turns into the cost.
    solution = solve_exact(problem, max_vms=max(2, len(values)))
    return solution.cost.total_usd <= cost_threshold + 1e-9


@dataclass(frozen=True)
class ReductionOutcome:
    """Both sides of the reduction for one multiset."""

    values: tuple
    partition_answer: bool
    dcss_answer: bool

    @property
    def agree(self) -> bool:
        """Theorem II.2 demands these always match."""
        return self.partition_answer == self.dcss_answer


def verify_reduction(values: Sequence[int]) -> ReductionOutcome:
    """Run both deciders on one multiset and report agreement."""
    return ReductionOutcome(
        values=tuple(int(x) for x in values),
        partition_answer=partition_has_solution(values),
        dcss_answer=dcss_answer(values),
    )
