"""Extra Stage-2 baselines beyond the paper's FFBP.

These are the classic bin-packing heuristics the scheduling literature
the paper cites ([11], [12]) would reach for.  They are not part of the
paper's evaluation but round out the ablation story: they show that
*generic* packing -- however good at minimizing VM count -- cannot
recover the incoming-bandwidth savings of topic grouping, because they
are "oblivious to internal semantics of the application" (Section V).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import MCSSProblem, PairSelection, Placement
from .base import PackingAlgorithm, register_packer
from .first_fit import iter_pairs_subscriber_major

__all__ = ["BestFitBinPacking", "FirstFitDecreasingBinPacking"]


@register_packer("bfbp")
class BestFitBinPacking(PackingAlgorithm):
    """Best-fit over individual pairs: tightest feasible VM wins.

    Classic best-fit minimizes leftover slack per placement, which
    tends to minimize VM count, but interleaves topics just like FFBP
    and pays the same ingest duplication.
    """

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        workload = problem.workload
        msg_bytes = workload.message_size_bytes
        rates = workload.event_rates

        for t, v in iter_pairs_subscriber_major(selection):
            topic_bytes = float(rates[t]) * msg_bytes
            best_idx = -1
            best_slack = float("inf")
            for b, vm in enumerate(placement.vms):
                delta = vm.addition_cost_bytes(topic_bytes, 1, not vm.hosts_topic(t))
                slack = vm.free_bytes - delta
                if slack >= -1e-9 and slack < best_slack:
                    best_slack = slack
                    best_idx = b
            if best_idx < 0:
                best_idx = placement.new_vm()
            placement.assign(best_idx, t, [v])

        return placement


@register_packer("ffdbp")
class FirstFitDecreasingBinPacking(PackingAlgorithm):
    """First-fit-decreasing over individual pairs.

    Pairs are sorted by event rate (descending) before first-fit.  FFD
    is the textbook improvement over FF for bin packing (11/9 OPT + 1);
    it narrows the VM-count gap to CBP but still splits topics.
    """

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        workload = problem.workload
        msg_bytes = workload.message_size_bytes
        rates = workload.event_rates

        pairs: List[Tuple[int, int]] = list(iter_pairs_subscriber_major(selection))
        pairs.sort(key=lambda tv: (-float(rates[tv[0]]), tv[0], tv[1]))

        for t, v in pairs:
            topic_bytes = float(rates[t]) * msg_bytes
            placed = False
            for b, vm in enumerate(placement.vms):
                if vm.fits(topic_bytes, 1, not vm.hosts_topic(t)):
                    placement.assign(b, t, [v])
                    placed = True
                    break
            if not placed:
                b = placement.new_vm()
                placement.assign(b, t, [v])

        return placement
