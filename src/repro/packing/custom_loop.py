"""LoopCustomBinPacking (``"cbp-loop"``) -- the retained CBP referee.

This is the pre-vectorization :class:`CustomBinPacking` implementation,
retained **verbatim** as an executable specification: one Python-level
allocation pass per topic, list slicing per VM, a lazy max-heap over VM
free capacity, and a per-VM loop inside the cost-based decision
(Algorithm 7).  The vectorized packer in :mod:`repro.packing.custom`
must produce *identical* placements -- per-VM topic-to-subscriber
assignments, VM order, and total cost -- and
``tests/test_vectorized_equivalence.py`` pins that on randomized
workloads across every ladder rung.

Do not optimize this module; its slowness is its job.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Tuple

from ..core import MCSSProblem, PairSelection, Placement
from ..pricing import PricingPlan
from .base import PackingAlgorithm, register_packer
from .custom import CBPOptions, _pairs_per_fresh_vm

__all__ = ["LoopCustomBinPacking", "cheaper_to_distribute_loop"]


def cheaper_to_distribute_loop(
    placement: Placement,
    plan: PricingPlan,
    topic: int,
    topic_bytes: float,
    count: int,
) -> bool:
    """Algorithm 7 with the original per-VM Python loop (the referee).

    Semantics are documented on the vectorized
    :func:`repro.packing.custom.cheaper_to_distribute`; both must
    return the same verdict on every input.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    capacity = placement.capacity_bytes
    per_fresh = _pairs_per_fresh_vm(capacity, topic_bytes)
    if per_fresh == 0:
        # A single pair does not fit even in an empty VM; the problem
        # constructor rejects such instances, so this is defensive.
        raise ValueError("topic does not fit in an empty VM")

    cur_bytes = placement.total_bytes
    cur_vms = placement.num_vms

    # Option "fresh": new VMs only.
    fresh_vms = math.ceil(count / per_fresh)
    fresh_bytes = cur_bytes + (count + fresh_vms) * topic_bytes
    fresh_cost = plan.c1(cur_vms + fresh_vms) + plan.c2(fresh_bytes)

    # Option "distribute": existing fleet most-free-first, then new VMs.
    room: List[Tuple[float, bool]] = []  # (free bytes, hosts topic)
    for vm in placement.vms:
        room.append((vm.free_bytes, vm.hosts_topic(topic)))
    room.sort(key=lambda fh: fh[0], reverse=True)

    left = count
    dist_bytes = cur_bytes
    for free, hosts in room:
        if left == 0:
            break
        budget = free + 1e-9 - (0.0 if hosts else topic_bytes)
        fit = int(budget // topic_bytes) if budget >= topic_bytes else 0
        if fit <= 0:
            continue
        take = min(left, fit)
        dist_bytes += (take + (0 if hosts else 1)) * topic_bytes
        left -= take
    extra_vms = math.ceil(left / per_fresh) if left else 0
    if left:
        dist_bytes += (left + extra_vms) * topic_bytes
    dist_cost = plan.c1(cur_vms + extra_vms) + plan.c2(dist_bytes)

    return dist_cost < fresh_cost


class _FreeCapacityHeap:
    """Max-heap over VM free capacity with lazy invalidation.

    Entries carry the free capacity they were pushed with; a popped
    entry whose capacity is stale (the VM received pairs since) is
    refreshed and re-pushed.
    """

    def __init__(self, placement: Placement, skip: Optional[int] = None) -> None:
        self._placement = placement
        self._heap: List[Tuple[float, int]] = [
            (-vm.free_bytes, idx)
            for idx, vm in enumerate(placement.vms)
            if idx != skip
        ]
        heapq.heapify(self._heap)

    def pop_most_free(self) -> Optional[int]:
        """Index of the VM with the most free capacity, or ``None``."""
        heap = self._heap
        while heap:
            neg_free, idx = heapq.heappop(heap)
            actual = self._placement.vms[idx].free_bytes
            if actual < -neg_free - 1e-6:
                heapq.heappush(heap, (-actual, idx))
                continue
            return idx
        return None


@register_packer("cbp-loop")
class LoopCustomBinPacking(PackingAlgorithm):
    """Topic-grouped bin packing, per-subscriber-list loop edition."""

    def __init__(self, options: CBPOptions = CBPOptions()) -> None:
        self.options = options

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        workload = problem.workload
        msg_bytes = workload.message_size_bytes
        rates = workload.event_rates
        opts = self.options

        topics = list(selection.topics)
        if opts.expensive_topic_first:
            # Line 3: non-increasing aggregate selected rate; break ties
            # by per-event rate, then id, for determinism.
            topics.sort(
                key=lambda t: (
                    -float(rates[t]) * selection.pair_count(t),
                    -float(rates[t]),
                    t,
                )
            )

        if not topics:
            return placement

        current = placement.new_vm()
        for t in topics:
            subscribers = selection.subscribers_of(t).tolist()
            topic_bytes = float(rates[t]) * msg_bytes
            current = self._allocate_topic(
                problem, placement, current, t, topic_bytes, subscribers
            )
        return placement

    # ------------------------------------------------------------------
    def _allocate_topic(
        self,
        problem: MCSSProblem,
        placement: Placement,
        current: int,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> int:
        """Place all pairs of one topic; returns the new "current" VM."""
        opts = self.options
        vms = placement.vms
        count = len(subscribers)

        # Fast path: the whole group fits on the current VM.
        cur_vm = vms[current]
        if cur_vm.fits(topic_bytes, count, not cur_vm.hosts_topic(topic)):
            placement.assign(current, topic, subscribers)
            return current

        distribute = True
        if opts.cost_based_decision:
            distribute = cheaper_to_distribute_loop(
                placement, problem.plan, topic, topic_bytes, count
            )

        remaining = subscribers
        if distribute:
            remaining = self._spill_to_existing(
                placement, current, topic, topic_bytes, remaining
            )
        if remaining:
            current = self._deploy_fresh(placement, topic, topic_bytes, remaining)
        return current

    def _spill_to_existing(
        self,
        placement: Placement,
        current: int,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> List[int]:
        """Fill existing VMs (current first); return unplaced subscribers."""
        remaining = self._fill_vm(placement, current, topic, topic_bytes, subscribers)
        if not remaining:
            return []

        if self.options.most_free_vm_first:
            heap = _FreeCapacityHeap(placement, skip=current)
            while remaining:
                idx = heap.pop_most_free()
                if idx is None:
                    break
                before = len(remaining)
                remaining = self._fill_vm(
                    placement, idx, topic, topic_bytes, remaining
                )
                if len(remaining) == before:
                    # Most-free VM cannot take even one pair: no VM can.
                    break
        else:
            for idx in range(placement.num_vms):
                if idx == current:
                    continue
                if not remaining:
                    break
                remaining = self._fill_vm(
                    placement, idx, topic, topic_bytes, remaining
                )
        return remaining

    @staticmethod
    def _fill_vm(
        placement: Placement,
        vm_index: int,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> List[int]:
        """Assign as many pairs as fit on one VM; return the leftovers."""
        vm = placement.vms[vm_index]
        fit = vm.max_new_pairs(topic_bytes, vm.hosts_topic(topic))
        if fit <= 0:
            return subscribers
        take = min(fit, len(subscribers))
        placement.assign(vm_index, topic, subscribers[:take])
        return subscribers[take:]

    @staticmethod
    def _deploy_fresh(
        placement: Placement,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> int:
        """Lines 15-20: deploy new VMs until every pair is placed."""
        remaining = subscribers
        last = -1
        while remaining:
            last = placement.new_vm()
            vm = placement.vms[last]
            fit = vm.max_new_pairs(topic_bytes, already_hosted=False)
            if fit <= 0:  # pragma: no cover - excluded by problem checks
                raise ValueError("topic does not fit in an empty VM")
            take = min(fit, len(remaining))
            placement.assign(last, topic, remaining[:take])
            remaining = remaining[take:]
        return last
