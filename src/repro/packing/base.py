"""Common interface for Stage-2 VM-allocation algorithms.

Stage 2 (Section III-B) packs the selected topic-subscriber pairs onto
VMs of capacity ``BC``, trading off the number of VMs against the
incoming-bandwidth duplication caused by splitting one topic's pairs
over several machines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Type

from ..core import MCSSProblem, PairSelection, Placement

__all__ = [
    "PackingAlgorithm",
    "register_packer",
    "get_packer",
    "get_referee",
    "available_packers",
    "LOOP_REFEREES",
]

#: Vectorized packer name -> its retained loop-referee name.  The
#: referees are executable specifications: the randomized equivalence
#: suite pins each vectorized packer to identical placements.
LOOP_REFEREES: Dict[str, str] = {"cbp": "cbp-loop", "ffbp": "ffbp-loop"}


class PackingAlgorithm(ABC):
    """A Stage-2 algorithm: allocate selected pairs to a VM fleet."""

    #: Short name used in experiment tables and the CLI.
    name: str = "abstract"

    @abstractmethod
    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        """Return a capacity-feasible placement covering every pair."""

    def pack_traced(self, problem: MCSSProblem, selection: PairSelection):
        """Cold pack plus a warm-start handle for later :meth:`pack_from`.

        Returns ``(placement, warm_start)``.  The default packs cold
        and returns ``None`` for the handle -- packers that support
        warm starts (:class:`repro.packing.CustomBinPacking`) override
        both traced entry points.  The placement is always bit-exact
        with :meth:`pack`.
        """
        return self.pack(problem, selection), None

    def pack_from(
        self,
        problem: MCSSProblem,
        selection: PairSelection,
        warm_start,
        emit_trace: bool = True,
    ):
        """Pack seeded from a prior traced pack of the same selection.

        Returns ``(placement, warm_start)`` like :meth:`pack_traced`.
        The seed is advisory: the result must be bit-exact with a cold
        :meth:`pack`, so the default simply ignores it (and returns no
        handle).  Accepts ``None`` (or a handle with no trace)
        everywhere, which is the caller-friendly "no base yet"
        spelling; ``emit_trace=False`` skips recording a handle for
        terminal sweeps.
        """
        del warm_start, emit_trace
        return self.pack(problem, selection), None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[[], PackingAlgorithm]] = {}


def register_packer(name: str) -> Callable[[Type[PackingAlgorithm]], Type[PackingAlgorithm]]:
    """Class decorator registering a packer under ``name``."""

    def decorate(cls: Type[PackingAlgorithm]) -> Type[PackingAlgorithm]:
        if name in _REGISTRY:
            raise ValueError(f"packer {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_packer(name: str, **kwargs) -> PackingAlgorithm:
    """Instantiate a registered packer by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown packer {name!r}; known: {known}") from None
    return factory(**kwargs)


def diff_placements(fast, loop) -> "str | None":
    """Explain how two placements differ, or ``None`` if identical.

    Identity is the pinning contract between a vectorized packer and
    its loop referee: same VM count, same assignment-group insertion
    order, same per-(vm, topic) subscriber lists, same total byte
    rate.  Shared by the equivalence test suite and the profiling
    script so the two gates cannot drift apart.
    """
    if fast.num_vms != loop.num_vms:
        return f"fleet sizes differ: {fast.num_vms} != {loop.num_vms}"
    fast_groups = {(b, t): subs for b, t, subs in fast.iter_assignments()}
    loop_groups = {(b, t): subs for b, t, subs in loop.iter_assignments()}
    if list(fast_groups) != list(loop_groups):
        return "assignment-group order differs"
    if fast_groups != loop_groups:
        return "per-VM subscriber assignments differ"
    scale = max(1.0, abs(loop.total_bytes))
    if abs(fast.total_bytes - loop.total_bytes) > 1e-9 * scale:
        return (
            f"total bytes differ: {fast.total_bytes!r} != {loop.total_bytes!r}"
        )
    return None


def get_referee(name: str, **kwargs) -> PackingAlgorithm:
    """Instantiate the loop referee of a vectorized packer."""
    try:
        referee = LOOP_REFEREES[name]
    except KeyError:
        known = ", ".join(sorted(LOOP_REFEREES))
        raise KeyError(f"no loop referee for {name!r}; known: {known}") from None
    return get_packer(referee, **kwargs)


def available_packers() -> List[str]:
    """Names of all registered Stage-2 algorithms."""
    return sorted(_REGISTRY)
