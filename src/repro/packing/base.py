"""Common interface for Stage-2 VM-allocation algorithms.

Stage 2 (Section III-B) packs the selected topic-subscriber pairs onto
VMs of capacity ``BC``, trading off the number of VMs against the
incoming-bandwidth duplication caused by splitting one topic's pairs
over several machines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Type

from ..core import MCSSProblem, PairSelection, Placement

__all__ = ["PackingAlgorithm", "register_packer", "get_packer", "available_packers"]


class PackingAlgorithm(ABC):
    """A Stage-2 algorithm: allocate selected pairs to a VM fleet."""

    #: Short name used in experiment tables and the CLI.
    name: str = "abstract"

    @abstractmethod
    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        """Return a capacity-feasible placement covering every pair."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[[], PackingAlgorithm]] = {}


def register_packer(name: str) -> Callable[[Type[PackingAlgorithm]], Type[PackingAlgorithm]]:
    """Class decorator registering a packer under ``name``."""

    def decorate(cls: Type[PackingAlgorithm]) -> Type[PackingAlgorithm]:
        if name in _REGISTRY:
            raise ValueError(f"packer {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_packer(name: str, **kwargs) -> PackingAlgorithm:
    """Instantiate a registered packer by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown packer {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_packers() -> List[str]:
    """Names of all registered Stage-2 algorithms."""
    return sorted(_REGISTRY)
