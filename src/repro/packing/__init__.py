"""Stage 2 of the MCSS heuristic: pair-to-VM allocation.

Algorithms (Section III-B / Appendix B of the paper):

* :class:`FFBinPacking` (``"ffbp"``) -- Algorithm 3, the baseline;
* :class:`CustomBinPacking` (``"cbp"``) -- Algorithm 4 with the
  optimization ladder controlled by :class:`CBPOptions`, vectorized
  over the selection's CSR arrays;
* :class:`LoopCustomBinPacking` (``"cbp-loop"``) and
  :class:`LoopFFBinPacking` (``"ffbp-loop"``) -- the retained
  pre-vectorization implementations, kept as executable referees
  (see :data:`LOOP_REFEREES`);
* :class:`BestFitBinPacking` (``"bfbp"``) and
  :class:`FirstFitDecreasingBinPacking` (``"ffdbp"``) -- extra generic
  baselines for the ablation study.

Warm starts: ``pack_traced`` / ``pack_from`` on every packer let one
traced pack seed another over the same selection (bit-exact with a
cold pack by construction); :class:`CustomBinPacking` implements real
reuse across the ladder rungs via :mod:`repro.packing.warmstart`.
"""

from .base import (
    LOOP_REFEREES,
    PackingAlgorithm,
    available_packers,
    diff_placements,
    get_packer,
    get_referee,
    register_packer,
)
from .baselines import BestFitBinPacking, FirstFitDecreasingBinPacking
from .custom import CBPOptions, CustomBinPacking, cheaper_to_distribute
from .custom_loop import LoopCustomBinPacking, cheaper_to_distribute_loop
from .first_fit import FFBinPacking, LoopFFBinPacking, iter_pairs_subscriber_major
from .warmstart import PackTrace, WarmStart

__all__ = [
    "PackingAlgorithm",
    "available_packers",
    "get_packer",
    "diff_placements",
    "get_referee",
    "register_packer",
    "LOOP_REFEREES",
    "BestFitBinPacking",
    "FirstFitDecreasingBinPacking",
    "CBPOptions",
    "CustomBinPacking",
    "cheaper_to_distribute",
    "LoopCustomBinPacking",
    "cheaper_to_distribute_loop",
    "FFBinPacking",
    "LoopFFBinPacking",
    "iter_pairs_subscriber_major",
    "PackTrace",
    "WarmStart",
]
