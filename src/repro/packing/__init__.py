"""Stage 2 of the MCSS heuristic: pair-to-VM allocation.

Algorithms (Section III-B / Appendix B of the paper):

* :class:`FFBinPacking` (``"ffbp"``) -- Algorithm 3, the baseline;
* :class:`CustomBinPacking` (``"cbp"``) -- Algorithm 4 with the
  optimization ladder controlled by :class:`CBPOptions`;
* :class:`BestFitBinPacking` (``"bfbp"``) and
  :class:`FirstFitDecreasingBinPacking` (``"ffdbp"``) -- extra generic
  baselines for the ablation study.
"""

from .base import PackingAlgorithm, available_packers, get_packer, register_packer
from .baselines import BestFitBinPacking, FirstFitDecreasingBinPacking
from .custom import CBPOptions, CustomBinPacking, cheaper_to_distribute
from .first_fit import FFBinPacking, iter_pairs_subscriber_major

__all__ = [
    "PackingAlgorithm",
    "available_packers",
    "get_packer",
    "register_packer",
    "BestFitBinPacking",
    "FirstFitDecreasingBinPacking",
    "CBPOptions",
    "CustomBinPacking",
    "cheaper_to_distribute",
    "FFBinPacking",
    "iter_pairs_subscriber_major",
]
