"""CustomBinPacking (CBP) -- Algorithm 4 with the optimization ladder.

CBP processes the selection *one topic at a time* (optimization (b),
"grouping of pairs by topics"), which both speeds packing up -- the
unit of work drops from a pair to a topic -- and concentrates each
topic on few VMs, saving the duplicated incoming copies FFBP pays.

Three further optimizations from Section III-B/IV-D are independent
switches on :class:`CBPOptions`:

* ``expensive_topic_first`` (optimization (c)): allocate topics in
  non-increasing order of their aggregate selected rate
  ``ev_t * |pairs of t|`` (Algorithm 4, line 3) -- the topics that cost
  the most when split go first, while VMs are still empty;
* ``most_free_vm_first`` (optimization (d)): when spilling a topic onto
  already-deployed VMs, fill the VM with the most free capacity first
  (lines 9 and 14) instead of first-fit order;
* ``cost_based_decision`` (optimization (e)): before spilling onto
  existing VMs, ask :func:`cheaper_to_distribute` (Algorithm 7) whether
  fresh VMs would be cheaper under the pricing plan, and follow its
  verdict.

The ladder presets used by Figures 2-3 are exposed as
:meth:`CBPOptions.ladder`.

Fidelity notes
--------------
Algorithm 4's pseudocode has two well-known transcription glitches: the
inner ``while ev_t <= BC - bw_b`` loops never test ``P`` for emptiness,
and capacity checks ignore the one-off incoming copy a VM pays when it
starts hosting a topic.  We implement the evident intent (fill a VM
with as many pairs as *actually* fit, move on while pairs remain) with
honest capacity accounting, so every produced placement passes
:func:`repro.core.validate_placement`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core import MCSSProblem, PairSelection, Placement
from ..pricing import PricingPlan
from .base import PackingAlgorithm, register_packer

__all__ = ["CBPOptions", "CustomBinPacking", "cheaper_to_distribute"]


@dataclass(frozen=True)
class CBPOptions:
    """Switches for CBP's optimization ladder ((c), (d), (e))."""

    expensive_topic_first: bool = True
    most_free_vm_first: bool = True
    cost_based_decision: bool = True

    @classmethod
    def ladder(cls, rung: str) -> "CBPOptions":
        """Preset for a rung of Figures 2-3.

        ``"b"`` = grouping only, ``"c"`` = + expensive-topic-first,
        ``"d"`` = + most-free-VM-first, ``"e"`` = + cost-based decision
        (the full CBP).  Rung "a" is plain FFBP and therefore not a
        CBP option set.
        """
        presets = {
            "b": cls(False, False, False),
            "c": cls(True, False, False),
            "d": cls(True, True, False),
            "e": cls(True, True, True),
        }
        try:
            return presets[rung]
        except KeyError:
            raise ValueError(
                f"unknown ladder rung {rung!r}; expected one of b, c, d, e"
            ) from None


def _pairs_per_fresh_vm(capacity_bytes: float, topic_bytes: float) -> int:
    """How many pairs of one topic fit on a fresh VM (incl. its ingest)."""
    fit = int((capacity_bytes + 1e-9 - topic_bytes) // topic_bytes)
    return max(fit, 0)


def cheaper_to_distribute(
    placement: Placement,
    plan: PricingPlan,
    topic: int,
    topic_bytes: float,
    count: int,
) -> bool:
    """Algorithm 7: is spilling ``count`` pairs of ``topic`` onto the
    existing fleet cheaper than deploying fresh VMs for them?

    Both options are *simulated* against the current placement (nothing
    is mutated) and priced with the plan's ``C1``/``C2``:

    * **fresh**: pack all pairs onto new VMs only -- pays VM rent but
      the minimum possible ingest duplication;
    * **distribute**: greedily fill existing VMs most-free-first, then
      overflow to new VMs -- saves rent but pays one extra incoming
      copy per additional VM that starts hosting the topic.

    Deviation: Algorithm 7 sizes fresh VMs as ``ceil(|P| ev_t / BC)``,
    ignoring that each fresh VM also ingests the topic; we use the
    honest per-VM pair capacity so the simulated fleets are feasible.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    capacity = placement.capacity_bytes
    per_fresh = _pairs_per_fresh_vm(capacity, topic_bytes)
    if per_fresh == 0:
        # A single pair does not fit even in an empty VM; the problem
        # constructor rejects such instances, so this is defensive.
        raise ValueError("topic does not fit in an empty VM")

    cur_bytes = placement.total_bytes
    cur_vms = placement.num_vms

    # Option "fresh": new VMs only.
    fresh_vms = math.ceil(count / per_fresh)
    fresh_bytes = cur_bytes + (count + fresh_vms) * topic_bytes
    fresh_cost = plan.c1(cur_vms + fresh_vms) + plan.c2(fresh_bytes)

    # Option "distribute": existing fleet most-free-first, then new VMs.
    room: List[Tuple[float, bool]] = []  # (free bytes, hosts topic)
    for vm in placement.vms:
        room.append((vm.free_bytes, vm.hosts_topic(topic)))
    room.sort(key=lambda fh: fh[0], reverse=True)

    left = count
    dist_bytes = cur_bytes
    for free, hosts in room:
        if left == 0:
            break
        budget = free + 1e-9 - (0.0 if hosts else topic_bytes)
        fit = int(budget // topic_bytes) if budget >= topic_bytes else 0
        if fit <= 0:
            continue
        take = min(left, fit)
        dist_bytes += (take + (0 if hosts else 1)) * topic_bytes
        left -= take
    extra_vms = math.ceil(left / per_fresh) if left else 0
    if left:
        dist_bytes += (left + extra_vms) * topic_bytes
    dist_cost = plan.c1(cur_vms + extra_vms) + plan.c2(dist_bytes)

    return dist_cost < fresh_cost


class _FreeCapacityHeap:
    """Max-heap over VM free capacity with lazy invalidation.

    Entries carry the free capacity they were pushed with; a popped
    entry whose capacity is stale (the VM received pairs since) is
    refreshed and re-pushed.
    """

    def __init__(self, placement: Placement, skip: Optional[int] = None) -> None:
        self._placement = placement
        self._heap: List[Tuple[float, int]] = [
            (-vm.free_bytes, idx)
            for idx, vm in enumerate(placement.vms)
            if idx != skip
        ]
        heapq.heapify(self._heap)

    def pop_most_free(self) -> Optional[int]:
        """Index of the VM with the most free capacity, or ``None``."""
        heap = self._heap
        while heap:
            neg_free, idx = heapq.heappop(heap)
            actual = self._placement.vms[idx].free_bytes
            if actual < -neg_free - 1e-6:
                heapq.heappush(heap, (-actual, idx))
                continue
            return idx
        return None


@register_packer("cbp")
class CustomBinPacking(PackingAlgorithm):
    """Topic-grouped bin packing with the paper's optimizations."""

    def __init__(self, options: CBPOptions = CBPOptions()) -> None:
        self.options = options

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        workload = problem.workload
        msg_bytes = workload.message_size_bytes
        rates = workload.event_rates
        opts = self.options

        topics = list(selection.topics)
        if opts.expensive_topic_first:
            # Line 3: non-increasing aggregate selected rate; break ties
            # by per-event rate, then id, for determinism.
            topics.sort(
                key=lambda t: (
                    -float(rates[t]) * selection.pair_count(t),
                    -float(rates[t]),
                    t,
                )
            )

        if not topics:
            return placement

        current = placement.new_vm()
        for t in topics:
            subscribers = selection.subscribers_of(t).tolist()
            topic_bytes = float(rates[t]) * msg_bytes
            current = self._allocate_topic(
                problem, placement, current, t, topic_bytes, subscribers
            )
        return placement

    # ------------------------------------------------------------------
    def _allocate_topic(
        self,
        problem: MCSSProblem,
        placement: Placement,
        current: int,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> int:
        """Place all pairs of one topic; returns the new "current" VM."""
        opts = self.options
        vms = placement.vms
        count = len(subscribers)

        # Fast path: the whole group fits on the current VM.
        cur_vm = vms[current]
        if cur_vm.fits(topic_bytes, count, not cur_vm.hosts_topic(topic)):
            placement.assign(current, topic, subscribers)
            return current

        distribute = True
        if opts.cost_based_decision:
            distribute = cheaper_to_distribute(
                placement, problem.plan, topic, topic_bytes, count
            )

        remaining = subscribers
        if distribute:
            remaining = self._spill_to_existing(
                placement, current, topic, topic_bytes, remaining
            )
        if remaining:
            current = self._deploy_fresh(placement, topic, topic_bytes, remaining)
        return current

    def _spill_to_existing(
        self,
        placement: Placement,
        current: int,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> List[int]:
        """Fill existing VMs (current first); return unplaced subscribers."""
        remaining = self._fill_vm(placement, current, topic, topic_bytes, subscribers)
        if not remaining:
            return []

        if self.options.most_free_vm_first:
            heap = _FreeCapacityHeap(placement, skip=current)
            while remaining:
                idx = heap.pop_most_free()
                if idx is None:
                    break
                before = len(remaining)
                remaining = self._fill_vm(
                    placement, idx, topic, topic_bytes, remaining
                )
                if len(remaining) == before:
                    # Most-free VM cannot take even one pair: no VM can.
                    break
        else:
            for idx in range(placement.num_vms):
                if idx == current:
                    continue
                if not remaining:
                    break
                remaining = self._fill_vm(
                    placement, idx, topic, topic_bytes, remaining
                )
        return remaining

    @staticmethod
    def _fill_vm(
        placement: Placement,
        vm_index: int,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> List[int]:
        """Assign as many pairs as fit on one VM; return the leftovers."""
        vm = placement.vms[vm_index]
        fit = vm.max_new_pairs(topic_bytes, vm.hosts_topic(topic))
        if fit <= 0:
            return subscribers
        take = min(fit, len(subscribers))
        placement.assign(vm_index, topic, subscribers[:take])
        return subscribers[take:]

    @staticmethod
    def _deploy_fresh(
        placement: Placement,
        topic: int,
        topic_bytes: float,
        subscribers: List[int],
    ) -> int:
        """Lines 15-20: deploy new VMs until every pair is placed."""
        remaining = subscribers
        last = -1
        while remaining:
            last = placement.new_vm()
            vm = placement.vms[last]
            fit = vm.max_new_pairs(topic_bytes, already_hosted=False)
            if fit <= 0:  # pragma: no cover - excluded by problem checks
                raise ValueError("topic does not fit in an empty VM")
            take = min(fit, len(remaining))
            placement.assign(last, topic, remaining[:take])
            remaining = remaining[take:]
        return last
