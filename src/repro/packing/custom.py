"""CustomBinPacking (CBP) -- Algorithm 4 with the optimization ladder.

CBP processes the selection *one topic at a time* (optimization (b),
"grouping of pairs by topics"), which both speeds packing up -- the
unit of work drops from a pair to a topic -- and concentrates each
topic on few VMs, saving the duplicated incoming copies FFBP pays.

Three further optimizations from Section III-B/IV-D are independent
switches on :class:`CBPOptions`:

* ``expensive_topic_first`` (optimization (c)): allocate topics in
  non-increasing order of their aggregate selected rate
  ``ev_t * |pairs of t|`` (Algorithm 4, line 3) -- the topics that cost
  the most when split go first, while VMs are still empty;
* ``most_free_vm_first`` (optimization (d)): when spilling a topic onto
  already-deployed VMs, fill the VM with the most free capacity first
  (lines 9 and 14) instead of first-fit order;
* ``cost_based_decision`` (optimization (e)): before spilling onto
  existing VMs, ask :func:`cheaper_to_distribute` (Algorithm 7) whether
  fresh VMs would be cheaper under the pricing plan, and follow its
  verdict.

The ladder presets used by Figures 2-3 are exposed as
:meth:`CBPOptions.ladder`.

Vectorized hot path
-------------------
This implementation is whole-array over the selection's CSR triple
(:meth:`repro.core.pairs.PairSelection.csr_arrays`): the per-topic
subscriber groups stay flat NumPy slices end to end, handed to
:meth:`repro.core.placement.Placement.assign_range` without ever
materializing a Python list.  Per spilled topic, the most-free-first
scan is one stable ``argsort`` over the placement's free-bytes array
plus a ``cumsum``/``searchsorted`` to find how many VMs the group
needs; the cost-based decision (Algorithm 7) is the same sort +
cumsum instead of a per-VM Python loop; and the fresh-VM tail deploys
``ceil(count / per_fresh)`` VMs up front and assigns them as
consecutive slices.  Fleets below :data:`_SMALL_FLEET` VMs use scalar
kernels with identical semantics (NumPy's per-call overhead loses to
a Python scan over a few dozen VMs).  The retained pre-vectorization
implementation
(:class:`repro.packing.custom_loop.LoopCustomBinPacking`,
``"cbp-loop"``) is the executable referee: both produce bit-identical
placements, pinned by ``tests/test_vectorized_equivalence.py``.

Fidelity notes
--------------
Algorithm 4's pseudocode has two well-known transcription glitches: the
inner ``while ev_t <= BC - bw_b`` loops never test ``P`` for emptiness,
and capacity checks ignore the one-off incoming copy a VM pays when it
starts hosting a topic.  We implement the evident intent (fill a VM
with as many pairs as *actually* fit, move on while pairs remain) with
honest capacity accounting, so every produced placement passes
:func:`repro.core.validate_placement`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

import numpy as np

from ..core import MCSSProblem, PairSelection, Placement
from ..pricing import PricingPlan
from .base import PackingAlgorithm, register_packer
from .warmstart import (
    EV_ASSIGN,
    EV_NEWVMS,
    KIND_FIT,
    KIND_MULTI,
    KIND_SPILL,
    PackTrace,
    WarmStart,
    classify_events,
    replay_events,
    same_event_run,
    start_recording,
    stop_recording,
)

__all__ = ["CBPOptions", "CustomBinPacking", "cheaper_to_distribute"]


@dataclass(frozen=True)
class CBPOptions:
    """Switches for CBP's optimization ladder ((c), (d), (e))."""

    expensive_topic_first: bool = True
    most_free_vm_first: bool = True
    cost_based_decision: bool = True

    @classmethod
    def ladder(cls, rung: str) -> "CBPOptions":
        """Preset for a rung of Figures 2-3.

        ``"b"`` = grouping only, ``"c"`` = + expensive-topic-first,
        ``"d"`` = + most-free-VM-first, ``"e"`` = + cost-based decision
        (the full CBP).  Rung "a" is plain FFBP and therefore not a
        CBP option set.
        """
        presets = {
            "b": cls(False, False, False),
            "c": cls(True, False, False),
            "d": cls(True, True, False),
            "e": cls(True, True, True),
        }
        try:
            return presets[rung]
        except KeyError:
            raise ValueError(
                f"unknown ladder rung {rung!r}; expected one of b, c, d, e"
            ) from None


def _pairs_per_fresh_vm(capacity_bytes: float, topic_bytes: float) -> int:
    """How many pairs of one topic fit on a fresh VM (incl. its ingest)."""
    fit = int((capacity_bytes + 1e-9 - topic_bytes) // topic_bytes)
    return max(fit, 0)


#: Fleet size below which the per-VM scans run as scalar Python loops
#: instead of whole-array passes.  NumPy's fixed per-call overhead
#: (~2-3 us per kernel launch) dominates sorts/cumsums over a few
#: dozen VMs, so tiny fleets -- the regime of the CI 2k-user smoke --
#: are faster scalar; both branches implement identical semantics and
#: the equivalence suite exercises each (see
#: ``tests/test_vectorized_equivalence.py``).
_SMALL_FLEET = 64


#: pack_from position handling (see CustomBinPacking._position_modes):
#: 0 = replay from the base trace, 1 = run the real allocation and
#: compare, 2 = evaluate the Algorithm-7 verdict first.
_MODE_EXEC = 1
_MODE_EVAL = 2


def _confirm_fit(
    kind: int, n_ev: int, topic_bytes: float, count: int, entry_free: float
) -> int:
    """Demote a FIT classification the event shape cannot prove.

    A single assign-to-current event is *usually* the fast path, but a
    spill whose current-VM fill absorbed the whole group produces the
    identical event -- reachable when ``fits()`` (multiply-compare) and
    ``max_new_pairs()`` (subtract-floor-divide) disagree at a float
    boundary, which integer-valued rates exclude but user workloads do
    not.  Re-running the fast-path inequality exactly (each topic is
    packed at one position, so no VM hosts it on entry and the
    new-topic ingest copy is always charged) keeps the trace's FIT =
    "consulted no options" invariant unconditional.
    """
    if kind == KIND_FIT and n_ev == 1:
        if not topic_bytes * (count + 1) <= entry_free + 1e-9:
            return KIND_SPILL  # overflow absorbed by current: no-taker spill
    return kind


class _TraceColumns:
    """Per-position trace columns under construction (see PackTrace).

    Plain Python lists, appended strictly in position order by every
    writer (replay runs extend with base slices, executed positions and
    the cold tail append) -- list appends beat NumPy scalar writes on
    the per-topic hot path, and :meth:`finish` freezes them into the
    arrays :class:`PackTrace` serves.
    """

    __slots__ = ("kinds", "distribute", "current_after", "event_ptr")

    def __init__(self) -> None:
        self.kinds: list = []
        self.distribute: list = []
        self.current_after: list = []
        self.event_ptr: list = []

    def adopt(self, base: PackTrace, p0: int, p1: int) -> None:
        """Copy the base trace's columns for replayed positions [p0, p1)."""
        self.kinds.extend(base.kinds[p0:p1].tolist())
        self.distribute.extend(base.distribute[p0:p1].tolist())
        self.current_after.extend(base.current_after[p0:p1].tolist())
        self.event_ptr.extend(base.event_ptr[p0:p1].tolist())

    def finish(
        self,
        packer: "CustomBinPacking",
        problem: MCSSProblem,
        topics: np.ndarray,
        indptr: np.ndarray,
        flat_subs: np.ndarray,
        order: np.ndarray,
        events: list,
    ) -> PackTrace:
        """Freeze the columns into an immutable :class:`PackTrace`."""
        self.event_ptr.append(len(events))
        return PackTrace(
            options=packer.options,
            problem=problem,
            sel_topics=topics,
            sel_indptr=indptr,
            sel_flat=flat_subs,
            order=order,
            kinds=np.array(self.kinds, dtype=np.int8),
            distribute=np.array(self.distribute, dtype=bool),
            current_after=np.array(self.current_after, dtype=np.int64),
            events=events,
            event_ptr=np.array(self.event_ptr, dtype=np.int64),
        )


def _fleet_fits(
    placement: Placement, topic: int, topic_bytes: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-VM pair budgets for one topic, as whole-array arithmetic.

    Returns ``(fit, hosts)``: how many further pairs of ``topic`` each
    deployed VM can accept (charging the one-off incoming copy to VMs
    not yet hosting it), and the hosts-topic mask.  Mirrors
    :meth:`VirtualMachine.max_new_pairs` element for element.
    """
    free = placement.free_bytes_array()
    hosts = placement.hosts_mask(topic)
    budget = free + 1e-9 - np.where(hosts, 0.0, topic_bytes)
    with np.errstate(invalid="ignore"):
        fit = np.floor_divide(budget, topic_bytes).astype(np.int64)
    fit[budget < topic_bytes] = 0
    return fit, hosts


def cheaper_to_distribute(
    placement: Placement,
    plan: PricingPlan,
    topic: int,
    topic_bytes: float,
    count: int,
) -> bool:
    """Algorithm 7: is spilling ``count`` pairs of ``topic`` onto the
    existing fleet cheaper than deploying fresh VMs for them?

    Both options are *simulated* against the current placement (nothing
    is mutated) and priced with the plan's ``C1``/``C2``:

    * **fresh**: pack all pairs onto new VMs only -- pays VM rent but
      the minimum possible ingest duplication;
    * **distribute**: greedily fill existing VMs most-free-first, then
      overflow to new VMs -- saves rent but pays one extra incoming
      copy per additional VM that starts hosting the topic.

    The sorted free-capacity scan is vectorized: one stable descending
    ``argsort`` over the free-bytes array, a ``cumsum`` of the per-VM
    pair budgets, and one ``searchsorted`` to find how many VMs the
    group consumes -- no per-VM Python loop.  The loop referee is
    :func:`repro.packing.custom_loop.cheaper_to_distribute_loop`.

    Deviation: Algorithm 7 sizes fresh VMs as ``ceil(|P| ev_t / BC)``,
    ignoring that each fresh VM also ingests the topic; we use the
    honest per-VM pair capacity so the simulated fleets are feasible.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    capacity = placement.capacity_bytes
    per_fresh = _pairs_per_fresh_vm(capacity, topic_bytes)
    if per_fresh == 0:
        # A single pair does not fit even in an empty VM; the problem
        # constructor rejects such instances, so this is defensive.
        raise ValueError("topic does not fit in an empty VM")

    cur_bytes = placement.total_bytes
    cur_vms = placement.num_vms

    # Option "fresh": new VMs only.
    fresh_vms = math.ceil(count / per_fresh)
    fresh_bytes = cur_bytes + (count + fresh_vms) * topic_bytes
    fresh_cost = plan.c1(cur_vms + fresh_vms) + plan.c2(fresh_bytes)

    # Option "distribute": existing fleet most-free-first, then new VMs.
    left = count
    dist_bytes = cur_bytes
    if cur_vms <= _SMALL_FLEET:
        # Scalar kernel: a handful of VMs is cheaper to scan in Python
        # than to launch a half-dozen NumPy kernels over.
        room = []
        # repolint: allow(VL01): scalar Algorithm-7 kernel, fleet <= _SMALL_FLEET VMs
        for i in range(cur_vms):
            vm = placement.vm(i)
            room.append((vm.free_bytes, vm.hosts_topic(topic)))
        room.sort(key=lambda fh: fh[0], reverse=True)
        # repolint: allow(VL01): scalar Algorithm-7 kernel, fleet <= _SMALL_FLEET VMs
        for free, hosts in room:
            if left == 0:
                break
            budget = free + 1e-9 - (0.0 if hosts else topic_bytes)
            fit = int(budget // topic_bytes) if budget >= topic_bytes else 0
            if fit <= 0:
                continue
            take = min(left, fit)
            dist_bytes += (take + (0 if hosts else 1)) * topic_bytes
            left -= take
    else:
        # Whole-array kernel: one stable descending argsort over the
        # free-bytes array, a cumsum of per-VM budgets, and one
        # searchsorted for the covering prefix.
        fit, hosts = _fleet_fits(placement, topic, topic_bytes)
        order = np.argsort(-placement.free_bytes_array(), kind="stable")
        fit_sorted = fit[order]
        takers = fit_sorted > 0
        fits = fit_sorted[takers]
        new_host = ~hosts[order][takers]
        cum = np.cumsum(fits)
        if cum.size and int(cum[-1]) >= count:
            used = int(np.searchsorted(cum, count)) + 1
            placed = count
            new_ingests = int(np.count_nonzero(new_host[:used]))
            left = 0
        else:
            placed = int(cum[-1]) if cum.size else 0
            new_ingests = int(np.count_nonzero(new_host))
            left = count - placed
        dist_bytes += (placed + new_ingests) * topic_bytes
    extra_vms = math.ceil(left / per_fresh) if left else 0
    if left:
        dist_bytes += (left + extra_vms) * topic_bytes
    dist_cost = plan.c1(cur_vms + extra_vms) + plan.c2(dist_bytes)

    return dist_cost < fresh_cost


@register_packer("cbp")
class CustomBinPacking(PackingAlgorithm):
    """Topic-grouped bin packing with the paper's optimizations."""

    def __init__(self, options: CBPOptions = CBPOptions()) -> None:
        self.options = options

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        topic_bytes_all = problem.topic_bytes_array()

        topics, indptr, flat_subs = selection.csr_arrays()
        if topics.size == 0:
            return placement
        order = self._topic_order(problem, topics, indptr)

        current = placement.new_vm()
        # repolint: allow(VL01): per-topic CBP main loop -- inherent current-VM dependence (ROADMAP item 5)
        for g in order.tolist():
            t = int(topics[g])
            subs = flat_subs[indptr[g]:indptr[g + 1]]
            current = self._allocate_topic(
                problem, placement, current, t, float(topic_bytes_all[t]), subs
            )
        return placement

    def _topic_order(
        self, problem: MCSSProblem, topics: np.ndarray, indptr: np.ndarray
    ) -> np.ndarray:
        """Positions -> selection CSR groups, in this rung's pack order."""
        if not self.options.expensive_topic_first:
            return np.arange(topics.size)
        # Line 3: non-increasing aggregate selected rate; break ties
        # by per-event rate, then id, for determinism.  lexsort keys
        # are listed least-significant first.
        counts = np.diff(indptr)
        sel_rates = problem.workload.event_rates[topics]
        return np.lexsort((topics, -sel_rates, -sel_rates * counts))

    # ------------------------------------------------------------------
    # Traced / warm-started packing (see repro.packing.warmstart)
    # ------------------------------------------------------------------
    def pack_traced(
        self, problem: MCSSProblem, selection: PairSelection
    ) -> Tuple[Placement, WarmStart]:
        """Cold pack that also records a reusable :class:`WarmStart`.

        The placement is bit-identical to :meth:`pack`'s (recording
        only logs the mutations; every decision is unchanged); the
        handle seeds :meth:`pack_from` for other rungs over the same
        selection.
        """
        topics, indptr, flat_subs = selection.csr_arrays()
        placement = problem.empty_placement()
        events = start_recording(placement)
        n = int(topics.size)
        order = (
            self._topic_order(problem, topics, indptr)
            if n
            else np.empty(0, dtype=np.int64)
        )
        rec = _TraceColumns()
        if n:
            current = placement.new_vm()
            self._run_traced(
                problem, placement, current, topics, indptr, flat_subs, order, 0, rec
            )
        stop_recording(placement)
        trace = rec.finish(self, problem, topics, indptr, flat_subs, order, events)
        return placement, WarmStart(placement=placement, trace=trace)

    def pack_from(
        self,
        problem: MCSSProblem,
        selection: PairSelection,
        warm_start: Optional[WarmStart],
        emit_trace: bool = True,
    ) -> Tuple[Placement, Optional[WarmStart]]:
        """Pack seeded from a prior traced pack of the *same* instance.

        Bit-exact with :meth:`pack` by construction: topic positions
        are replayed from the base trace only while provably
        option-independent given identical state (see
        :meth:`_position_modes`), option-sensitive positions run the
        real allocation and must reproduce the base's exact mutations
        for replay to resume, and the first genuine divergence switches
        to a cold pack of the remainder.  The returned handle allows
        chaining; any rung may seed any other (the ladder traces (c)
        and seeds (d)/(e) from it, since those three share the
        expensive-first topic order where provable reuse lives).  Pass
        ``emit_trace=False`` for a terminal rung to skip recording
        (the handle is then ``None``).

        Raises ``ValueError`` if the trace was recorded over a
        different selection or problem; ``warm_start=None`` (or a
        handle without a trace, e.g. from a packer that does not
        support warm starts) falls back to a cold pack.
        """
        if warm_start is None or warm_start.trace is None:
            if emit_trace:
                return self.pack_traced(problem, selection)
            return self.pack(problem, selection), None
        base = warm_start.trace
        topics, indptr, flat_subs = selection.csr_arrays()
        if not base.matches_selection(topics, indptr, flat_subs):
            raise ValueError(
                "warm start was traced over a different selection; "
                "pack cold (or re-trace) instead"
            )
        if not base.matches_problem(problem):
            raise ValueError(
                "warm start was traced over a different problem "
                "(workload rates, message size, or pricing plan); "
                "pack cold (or re-trace) instead"
            )
        n = int(topics.size)
        if n == 0:
            if emit_trace:
                return self.pack_traced(problem, selection)
            return self.pack(problem, selection), None

        if self.options.expensive_topic_first == base.options.expensive_topic_first:
            # Same ordering rule over the same selection and rates:
            # the orders are identical by determinism, no need to
            # recompute (or compare) the lexsort.
            order = base.order
            order_sync = n
        else:
            order = self._topic_order(problem, topics, indptr)
            mismatched = order != base.order
            order_sync = int(np.argmax(mismatched)) if mismatched.any() else n

        mode = self._position_modes(base, order_sync)
        stops = np.flatnonzero(mode).tolist()

        if order_sync == n and not stops and warm_start.placement is not None:
            # Full-replay fast path: no position consults a differing
            # option, so the cold pack IS the base pack -- snapshot it.
            clone = warm_start.placement.copy()
            if not emit_trace:
                return clone, None
            trace = replace(base, options=self.options)
            return clone, WarmStart(placement=clone, trace=trace)

        topic_bytes_all = problem.topic_bytes_array()
        placement = problem.empty_placement()
        events = start_recording(placement)
        base_events = base.events
        eptr_b = base.event_ptr
        cur_after_b = base.current_after
        rec = _TraceColumns() if emit_trace else None
        verdicts: list = []
        current = placement.new_vm()  # mirrors the base preamble

        def replay_run(p0: int, p1: int) -> None:
            """Adopt positions [p0, p1) verbatim from the base.

            Sound only while in sync: every event run so far was
            identical, so ``len(events) == eptr_b[p0]`` and the copied
            event-pointer column stays consistent.
            """
            lo, hi = int(eptr_b[p0]), int(eptr_b[p1])
            if emit_trace:
                events.extend(base_events[lo:hi])
                rec.adopt(base, p0, p1)
            replay_events(placement, base_events, lo, hi)

        pos = 0
        stop_i = 0
        # repolint: allow(VL01): warm-start replay -- one step per replay run, not per pair
        while pos < order_sync:
            run_end = stops[stop_i] if stop_i < len(stops) else order_sync
            if run_end > pos:
                replay_run(pos, run_end)
                current = int(cur_after_b[run_end - 1])
                pos = run_end
            if pos >= order_sync:
                break
            stop_i += 1
            g = int(order[pos])
            t = int(topics[g])
            topic_bytes = float(topic_bytes_all[t])
            subs = flat_subs[indptr[g]:indptr[g + 1]]
            if mode[pos] == _MODE_EVAL:
                # Only this rung runs Algorithm 7 here; a True verdict
                # makes it behave exactly like the (always-distribute)
                # base, so the base's spill/deploy events still apply.
                if cheaper_to_distribute(
                    placement, problem.plan, t, topic_bytes, int(subs.size)
                ):
                    replay_run(pos, pos + 1)
                    current = int(cur_after_b[pos])
                    pos += 1
                    continue
            # Option-sensitive position: run the real allocation and
            # keep replaying only if it reproduced the base exactly.
            start_ev = len(events)
            entry_current = current
            entry_free = placement.vm(current).free_bytes
            del verdicts[:]
            current = self._allocate_topic(
                problem, placement, current, t, topic_bytes, subs,
                verdicts.append,
            )
            if emit_trace:
                kind = _confirm_fit(
                    classify_events(events, start_ev, entry_current),
                    len(events) - start_ev, topic_bytes, int(subs.size),
                    entry_free,
                )
                rec.event_ptr.append(start_ev)
                rec.kinds.append(kind)
                rec.distribute.append(verdicts[0] if verdicts else True)
                rec.current_after.append(current)
            lo, hi = int(eptr_b[pos]), int(eptr_b[pos + 1])
            pos += 1
            if current != int(cur_after_b[pos - 1]) or not same_event_run(
                events, start_ev, base_events, lo, hi
            ):
                break  # genuinely diverged: the rest packs cold

        if pos < n:
            if emit_trace:
                self._run_traced(
                    problem, placement, current, topics, indptr, flat_subs,
                    order, pos, rec,
                )
            else:
                stop_recording(placement)  # no more event comparisons
                # repolint: allow(VL01): per-topic cold pack of the post-divergence remainder
                for g in order[pos:].tolist():
                    t = int(topics[g])
                    subs = flat_subs[indptr[g]:indptr[g + 1]]
                    current = self._allocate_topic(
                        problem, placement, current, t,
                        float(topic_bytes_all[t]), subs,
                    )
        stop_recording(placement)
        if not emit_trace:
            return placement, None
        trace = rec.finish(self, problem, topics, indptr, flat_subs, order, events)
        return placement, WarmStart(placement=placement, trace=trace)

    def _position_modes(self, base: PackTrace, order_sync: int) -> np.ndarray:
        """Replay / evaluate / execute classification per synced position.

        ``0`` (replay): given identical placement state, the base's
        decisions provably carry over --

        * FIT positions consult no options at all;
        * equal option subsets decide identically on equal state (the
          Algorithm-7 verdict is a pure function of the placement, and
          the spill/deploy procedures are deterministic);
        * a SPILL position placed nothing beyond the current VM, and
          "no other VM can take a pair" holds under first-fit iff it
          holds under most-free-first, so a ``most_free_vm_first``
          difference is moot there (and a ``False`` verdict skips the
          spill entirely, making the deploy option-free).

        ``2`` (:data:`_MODE_EVAL`): only this rung runs the cost
        decision; the verdict must be computed against the live state
        -- exactly what the cold pack would do -- after which a True
        verdict reduces to the always-distribute base.

        ``1`` (:data:`_MODE_EXEC`): the differing options could
        genuinely decide differently (most-free vs first-fit order on
        a multi-VM spill; a base ``False`` verdict this rung would not
        take), so the real allocation must run and prove it matched.
        """
        kinds = base.kinds[:order_sync]
        dist = base.distribute[:order_sync]
        diff_cost = (
            self.options.cost_based_decision != base.options.cost_based_decision
        )
        diff_free = (
            self.options.most_free_vm_first != base.options.most_free_vm_first
        )
        mode = np.zeros(order_sync, dtype=np.int8)
        nonfit = kinds != KIND_FIT
        if diff_cost and self.options.cost_based_decision:
            mode[nonfit] = _MODE_EVAL
            if diff_free:
                mode[nonfit & (kinds == KIND_MULTI)] = _MODE_EXEC
        elif diff_cost:
            mode[nonfit & ~dist] = _MODE_EXEC
            if diff_free:
                mode[nonfit & dist & (kinds == KIND_MULTI)] = _MODE_EXEC
        elif diff_free:
            mode[(kinds == KIND_MULTI) & dist] = _MODE_EXEC
        return mode

    def _run_traced(
        self,
        problem: MCSSProblem,
        placement: Placement,
        current: int,
        topics: np.ndarray,
        indptr: np.ndarray,
        flat_subs: np.ndarray,
        order: np.ndarray,
        start: int,
        rec: "_TraceColumns",
    ) -> int:
        """The cold per-topic loop, recording the trace as it goes.

        The placement must be recording (see
        :func:`repro.packing.warmstart.start_recording`).  Identical
        allocation decisions to :meth:`pack`'s plain loop -- the only
        extra work per position is the trace-column bookkeeping, kept
        lean because the traced pack is the warm ladder's overhead.
        """
        topic_bytes_all = problem.topic_bytes_array()
        events = placement._event_log
        add_kind, add_dist = rec.kinds.append, rec.distribute.append
        add_cur, add_eptr = rec.current_after.append, rec.event_ptr.append
        track_verdicts = self.options.cost_based_decision
        verdicts: list = []
        verdict_cb = verdicts.append if track_verdicts else None
        allocate = self._allocate_topic
        ev_len = len(events)
        # repolint: allow(VL01): per-topic CBP iteration -- inherent current-VM dependence (ROADMAP item 5)
        for g in order[start:].tolist():
            t = int(topics[g])
            subs = flat_subs[indptr[g]:indptr[g + 1]]
            start_ev = ev_len
            add_eptr(start_ev)
            entry_current = current
            entry_free = placement.vm(current).free_bytes
            topic_bytes = float(topic_bytes_all[t])
            if track_verdicts:
                del verdicts[:]
            current = allocate(
                problem, placement, current, t, topic_bytes, subs,
                verdict_cb,
            )
            ev_len = len(events)
            n_ev = ev_len - start_ev
            if n_ev == 1:  # inline the overwhelmingly common fast path
                ev = events[start_ev]
                kind = (
                    KIND_FIT
                    if ev[0] == EV_ASSIGN and ev[1] == entry_current
                    else (KIND_SPILL if ev[0] == EV_NEWVMS else KIND_MULTI)
                )
                kind = _confirm_fit(
                    kind, n_ev, topic_bytes, int(subs.size), entry_free
                )
            elif n_ev == 0:
                kind = KIND_FIT
            else:
                kind = classify_events(events, start_ev, entry_current)
            add_kind(kind)
            add_dist(verdicts[0] if verdicts else True)
            add_cur(current)
        return current

    # ------------------------------------------------------------------
    def _allocate_topic(
        self,
        problem: MCSSProblem,
        placement: Placement,
        current: int,
        topic: int,
        topic_bytes: float,
        subscribers: np.ndarray,
        verdict_cb: Optional[Callable[[bool], None]] = None,
    ) -> int:
        """Place all pairs of one topic; returns the new "current" VM.

        ``verdict_cb``, when given, observes the Algorithm-7 verdict if
        one is consulted -- the traced packers record it so warm starts
        can tell a "deploy fresh by verdict" position from a "spill
        found no takers" one (their event streams look alike).
        """
        opts = self.options

        # Fast path: the whole group fits on the current VM.
        cur_vm = placement.vm(current)
        if cur_vm.fits(topic_bytes, int(subscribers.size), not cur_vm.hosts_topic(topic)):
            placement.assign_range(current, topic, subscribers)
            return current

        distribute = True
        if opts.cost_based_decision:
            distribute = cheaper_to_distribute(
                placement, problem.plan, topic, topic_bytes, int(subscribers.size)
            )
            if verdict_cb is not None:
                verdict_cb(distribute)

        remaining = subscribers
        if distribute:
            remaining = self._spill_to_existing(
                placement, current, topic, topic_bytes, remaining
            )
        if remaining.size:
            current = self._deploy_fresh(placement, topic, topic_bytes, remaining)
        return current

    def _spill_to_existing(
        self,
        placement: Placement,
        current: int,
        topic: int,
        topic_bytes: float,
        subscribers: np.ndarray,
    ) -> np.ndarray:
        """Fill existing VMs (current first); return unplaced subscribers.

        One whole-array pass: per-VM budgets from the free-bytes array,
        visiting order by stable descending argsort (optimization (d))
        or deployment order, then a ``cumsum``/``searchsorted`` to
        find the covering prefix -- one ``assign_range`` slice per VM
        actually used, zero per-subscriber work.
        """
        remaining = self._fill_vm(placement, current, topic, topic_bytes, subscribers)
        num_vms = placement.num_vms
        if remaining.size == 0 or num_vms <= 1:
            return remaining

        if num_vms <= _SMALL_FLEET:
            # Scalar kernel for tiny fleets (see _SMALL_FLEET): same
            # visiting order and stop conditions, per-VM Python scan.
            if self.options.most_free_vm_first:
                order_small = sorted(
                    (i for i in range(num_vms) if i != current),
                    key=lambda i: -placement.vm(i).free_bytes,
                )
                # repolint: allow(VL01): scalar kernel, fleet <= _SMALL_FLEET VMs
                for vm_index in order_small:
                    before = remaining.size
                    remaining = self._fill_vm(
                        placement, vm_index, topic, topic_bytes, remaining
                    )
                    if remaining.size in (0, before):
                        # Done -- or the most-free VM cannot take even
                        # one pair, in which case no VM can.
                        break
            else:
                # repolint: allow(VL01): scalar kernel, fleet <= _SMALL_FLEET VMs
                for vm_index in range(num_vms):
                    if vm_index == current:
                        continue
                    remaining = self._fill_vm(
                        placement, vm_index, topic, topic_bytes, remaining
                    )
                    if remaining.size == 0:
                        break
            return remaining

        fit, _ = _fleet_fits(placement, topic, topic_bytes)
        if self.options.most_free_vm_first:
            # Lines 9/14: most-free first, ties by VM index -- the exact
            # pop order of the referee's lazy max-heap.  The scan stops
            # at the first VM that cannot take a single pair: if the
            # most-free VM is full for this topic, so is every one after.
            order = np.argsort(-placement.free_bytes_array(), kind="stable")
            order = order[order != current]
            fit_sorted = fit[order]
            blocked = np.flatnonzero(fit_sorted <= 0)
            if blocked.size:
                order = order[: blocked[0]]
                fit_sorted = fit_sorted[: blocked[0]]
        else:
            # First-fit deployment order, skipping only non-takers.
            order = np.arange(placement.num_vms, dtype=np.int64)
            order = order[(order != current) & (fit > 0)]
            fit_sorted = fit[order]

        if order.size == 0:
            return remaining
        cum = np.cumsum(fit_sorted)
        cover = int(np.searchsorted(cum, remaining.size))
        used = min(cover + 1, int(order.size))
        takes = fit_sorted[:used].copy()
        if cover < order.size:
            takes[cover] = remaining.size - (int(cum[cover - 1]) if cover else 0)
            placed = int(remaining.size)
        else:
            placed = int(cum[-1])
        start = 0
        # repolint: allow(VL01): one batch assign_range per receiving VM -- O(VMs touched), not O(pairs)
        for vm_index, take in zip(order[:used].tolist(), takes.tolist()):
            placement.assign_range(vm_index, topic, remaining[start:start + take])
            start += take
        return remaining[placed:]

    @staticmethod
    def _fill_vm(
        placement: Placement,
        vm_index: int,
        topic: int,
        topic_bytes: float,
        subscribers: np.ndarray,
    ) -> np.ndarray:
        """Assign as many pairs as fit on one VM; return the leftovers."""
        vm = placement.vm(vm_index)
        fit = vm.max_new_pairs(topic_bytes, vm.hosts_topic(topic))
        if fit <= 0:
            return subscribers
        take = min(fit, int(subscribers.size))
        placement.assign_range(vm_index, topic, subscribers[:take])
        return subscribers[take:]

    @staticmethod
    def _deploy_fresh(
        placement: Placement,
        topic: int,
        topic_bytes: float,
        subscribers: np.ndarray,
    ) -> int:
        """Lines 15-20: deploy all needed fresh VMs in one batch.

        Every fresh VM takes the same ``per_fresh`` pairs (honest
        capacity, including its own ingest copy), so the VM count is
        ``ceil(count / per_fresh)`` up front and the group is assigned
        as consecutive slices -- no while-loop over leftovers.
        """
        per_fresh = _pairs_per_fresh_vm(placement.capacity_bytes, topic_bytes)
        if per_fresh <= 0:  # pragma: no cover - excluded by problem checks
            raise ValueError("topic does not fit in an empty VM")
        count = int(subscribers.size)
        num_new = -(-count // per_fresh)
        first = placement.new_vms(num_new)
        # repolint: allow(VL01): one batch assign_range per fresh VM -- O(new VMs), not O(pairs)
        for i in range(num_new):
            placement.assign_range(
                first + i, topic, subscribers[i * per_fresh:(i + 1) * per_fresh]
            )
        return first + num_new - 1
