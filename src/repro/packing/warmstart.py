"""Warm-started Stage-2 packing: reuse one traced CBP pack across rungs.

The cost-optimization ladder (Figures 2-3) packs the *same* Stage-1
selection four times, once per CBP rung (b)-(e).  The rungs differ only
in three decision procedures -- topic ordering, spill-target ordering,
and the Algorithm-7 cost verdict -- so most of a pack's per-topic work
(the fast-path "fits the current VM" assignments, the fresh-VM
deployments, the no-taker spills) is literally identical across rungs.
This module is the bookkeeping that lets :class:`CustomBinPacking`
prove which prefix of a new pack coincides with a previously traced
one and *replay* it instead of re-deciding it.

The contract is **bit-exactness**: a warm-started pack must equal the
cold pack of the same rung, placement for placement (the
:func:`repro.packing.diff_placements` identity plus cost).  That is
achieved by construction, never by assumption:

* a traced pack records, per topic position, the *decision kind*
  (:data:`KIND_FIT` / :data:`KIND_SPILL` / :data:`KIND_MULTI`), the
  Algorithm-7 verdict where consulted, and the exact mutation events
  (VM deployments and batch assignments) it performed;
* a warm pack walks its own topic order against the base trace and
  **replays** a position only while the decision procedures that ran
  there are provably option-independent given identical placement
  state (a FIT position consults no options at all; a SPILL position's
  "no other VM can take a pair" outcome is the same under first-fit
  and most-free-first visiting; equal option subsets decide
  identically on equal state);
* at the first position where the differing options *could* decide
  differently, the warm pack runs the real allocation and compares its
  own mutation events against the base's -- equal events mean the
  states are still identical and replay resumes; unequal events mean
  the packs have genuinely diverged, and the remainder runs cold.

The trace also pins the selection identity (the CSR triple it was
computed over), so a warm start can never be silently applied to a
different selection.

``Placement.copy()`` enters in the degenerate best case: when *every*
position is provably replayable (e.g. warm-starting with the same
options), the warm pack is just a snapshot of the base placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from ..core import Placement

__all__ = [
    "EV_NEWVMS",
    "EV_ASSIGN",
    "KIND_FIT",
    "KIND_SPILL",
    "KIND_MULTI",
    "PackTrace",
    "WarmStart",
]

#: Event stream opcodes (first element of each event tuple).
EV_NEWVMS = 0  # (EV_NEWVMS, count)
EV_ASSIGN = 1  # (EV_ASSIGN, vm_index, topic, subscribers_array)

#: Decision kinds, one per topic position of a traced pack.
KIND_FIT = 0  #: whole group fit the current VM -- option-independent.
KIND_SPILL = 1  #: group overflowed; no VM other than current took pairs.
KIND_MULTI = 2  #: spill assigned pairs to at least one non-current VM.


@dataclass(frozen=True)
class PackTrace:
    """Everything one traced CBP pack decided and did, per topic.

    ``order[i]`` is the selection CSR group packed at position ``i``;
    ``events[event_ptr[i]:event_ptr[i+1]]`` are the placement
    mutations that position performed (the preamble before
    ``event_ptr[0]`` is the initial VM deployment).  ``kinds``,
    ``distribute`` (the Algorithm-7 verdicts; ``True`` where the
    verdict was not consulted) and ``current_after`` record the
    decisions a warm start needs to prove prefix identity.
    """

    options: Any  # CBPOptions; typed loosely to avoid an import cycle
    problem: Any  # MCSSProblem the trace was recorded against
    sel_topics: np.ndarray
    sel_indptr: np.ndarray
    sel_flat: np.ndarray
    order: np.ndarray
    kinds: np.ndarray
    distribute: np.ndarray
    current_after: np.ndarray
    events: List[tuple] = field(repr=False)
    event_ptr: np.ndarray = field(repr=False)

    @property
    def num_positions(self) -> int:
        """Number of topic groups the traced pack processed."""
        return int(self.order.size)

    def matches_selection(
        self, topics: np.ndarray, indptr: np.ndarray, flat: np.ndarray
    ) -> bool:
        """Was this trace computed over exactly this CSR selection?

        Identity (``is``) short-circuits the common shared-selection
        case; otherwise the arrays are compared by content, so an
        equal selection rebuilt elsewhere still warm-starts.
        """
        if (
            self.sel_topics is topics
            and self.sel_indptr is indptr
            and self.sel_flat is flat
        ):
            return True
        return (
            np.array_equal(self.sel_topics, topics)
            and np.array_equal(self.sel_indptr, indptr)
            and np.array_equal(self.sel_flat, flat)
        )

    def matches_problem(self, problem: Any) -> bool:
        """Was this trace recorded against (an equivalent of) ``problem``?

        Packing reads the per-topic byte rates, the VM capacity, and
        (for Algorithm 7) the pricing plan -- never ``tau`` -- so those
        are what pin replay soundness.  Object identity short-circuits
        the shared-problem case the ladder runs.
        """
        mine = self.problem
        if mine is problem:
            return True
        same_workload = mine.workload is problem.workload or (
            mine.workload.message_size_bytes == problem.workload.message_size_bytes
            and np.array_equal(
                mine.workload.event_rates, problem.workload.event_rates
            )
        )
        return same_workload and (
            mine.plan is problem.plan or mine.plan == problem.plan
        )


@dataclass(frozen=True)
class WarmStart:
    """Handle returned by a traced pack, consumed by ``pack_from``.

    ``placement`` references the traced pack's result (do not mutate it
    while the handle is live -- the full-replay fast path snapshots it
    via :meth:`Placement.copy`); ``trace`` is ``None`` for packers that
    do not support warm starts, in which case ``pack_from`` falls back
    to a cold pack.
    """

    placement: Optional[Placement]
    trace: Optional[PackTrace]


def same_event_run(
    events: List[tuple], start: int, base_events: List[tuple], lo: int, hi: int
) -> bool:
    """Do ``events[start:]`` equal ``base_events[lo:hi]`` exactly?

    Subscriber arrays are compared by *count only*, which is sufficient
    for the warm-start protocol: both runs process the same topic
    position over the same selection group slice, consuming it as a
    sequential partition (every assignment takes the next contiguous
    chunk).  Equal (opcode, vm, count) sequences therefore force the
    chunks to be the identical slices -- and the interleaved deployment
    events pin the fleet evolution -- so content equality follows
    without touching the arrays.
    """
    if len(events) - start != hi - lo:
        return False
    for ev, base in zip(events[start:], base_events[lo:hi]):
        if ev[0] != base[0] or ev[1] != base[1]:
            return False
        if ev[0] == EV_ASSIGN and ev[3].size != base[3].size:
            return False
    return True


def classify_events(
    events: List[tuple], start: int, entry_current: int
) -> int:
    """Decision kind of one position, derived from its mutation events.

    Assignments beyond the entry "current" VM *before* any deployment
    are spill placements onto the existing fleet (:data:`KIND_MULTI`);
    a deployment without them is :data:`KIND_SPILL`; a bare
    current-VM assignment (or no mutation at all) is the fast path
    (:data:`KIND_FIT`).  Assignments after the first deployment target
    fresh VMs and are option-independent, so they never affect the
    kind.
    """
    n_ev = len(events) - start
    if n_ev == 0:  # empty group: nothing moved, trivially the fast path
        return KIND_FIT
    if n_ev == 1:  # the overwhelmingly common case, decided without a loop
        ev = events[start]
        if ev[0] == EV_ASSIGN and ev[1] == entry_current:
            return KIND_FIT
        return KIND_SPILL if ev[0] == EV_NEWVMS else KIND_MULTI
    multi = False
    for ev in events[start:]:
        if ev[0] == EV_NEWVMS:
            return KIND_MULTI if multi else KIND_SPILL
        if ev[1] != entry_current:
            multi = True
    return KIND_MULTI if multi else KIND_FIT


def replay_events(
    placement: Placement, base_events: List[tuple], lo: int, hi: int
) -> None:
    """Apply one recorded event run to a live placement.

    Recording (if on) is paused for the duration: replaying callers
    adopt the base's event tuples wholesale when they keep a log, so
    logging each mutation again would only duplicate them.
    """
    log = placement._event_log
    placement._event_log = None
    try:
        newvms = placement.new_vms
        assign = placement.assign_range
        for ev in base_events[lo:hi]:
            if ev[0] == EV_NEWVMS:
                newvms(ev[1])
            else:
                assign(ev[1], ev[2], ev[3])
    finally:
        placement._event_log = log


def start_recording(placement: Placement) -> List[tuple]:
    """Begin logging the placement's mutations; returns the live log.

    Recording is implemented by :class:`Placement` itself (one ``None``
    check per mutation -- no subclass dispatch on the hot path); the
    traced packers turn it on for the packing run and off before
    handing the placement out, so a traced pack's result is
    indistinguishable from a cold one.
    """
    events: List[tuple] = []
    placement._event_log = events
    return events


def stop_recording(placement: Placement) -> None:
    """Stop logging the placement's mutations (idempotent)."""
    placement._event_log = None
