"""FFBinPacking (FFBP) -- Algorithm 3, the Stage-2 baseline.

Each topic-subscriber pair is considered individually, in the order the
pairs naturally arrive (subscriber-major: all of ``v0``'s pairs, then
``v1``'s, ...).  A pair goes to the *first* already-deployed VM with
enough free capacity; if none fits, a new VM is deployed.  Because
consecutive pairs usually belong to different topics, FFBP scatters
each topic over many VMs and pays one incoming copy of the topic's
event stream per VM touched -- the bandwidth overhead
CustomBinPacking's grouping optimization removes.

Deviation from the pseudocode: Algorithm 3 checks ``ev_t <= BC - bw_b``
when placing a pair, which under-counts by the extra *incoming* copy
needed when the VM does not host the topic yet and could overflow the
VM by up to ``ev_t``.  We check the true delta ``ev_t * (1 + [t new on
b])`` so every placement this library produces is capacity-feasible.

Complexity: O(|S| * |B|) -- each pair may scan the whole fleet.  This
is the quadratic behaviour Figures 6-7 of the paper show; we keep it
(only bounded by the honest capacity check) rather than index the
fleet, because FFBP *is* the paper's slow baseline.  What *was*
modernized is everything around the scan: pair arrival order is
derived from the selection's flat CSR arrays with one ``np.lexsort``
(no per-subscriber dict inversion), and each placed pair goes through
the placement's batch assign path.  The pre-vectorization edition is
retained verbatim as :class:`LoopFFBinPacking` (``"ffbp-loop"``), and
the randomized equivalence suite pins both to identical placements.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..core import MCSSProblem, PairSelection, Placement
from .base import PackingAlgorithm, register_packer

__all__ = ["FFBinPacking", "LoopFFBinPacking", "iter_pairs_subscriber_major"]


def pairs_subscriber_major(selection: PairSelection) -> Tuple[np.ndarray, np.ndarray]:
    """The selection's pairs as flat arrays in "arrival" order.

    Subscriber-major, with each subscriber's topics ordered by the
    topic's first appearance in the selection (the insertion order a
    pub/sub front-end registering the grouped selection would see);
    this deliberately interleaves topics -- the adversarial case for
    first-fit.  One ``np.lexsort`` over the CSR pair arrays.
    """
    topics, indptr, subs = selection.csr_arrays()
    flat_topics, flat_subs = selection.pair_arrays()
    if flat_topics.size == 0:
        return flat_topics, flat_subs
    group_rank = np.repeat(np.arange(topics.size, dtype=np.int64), np.diff(indptr))
    order = np.lexsort((group_rank, flat_subs))
    return flat_topics[order], flat_subs[order]


def iter_pairs_subscriber_major(selection: PairSelection) -> Iterator[Tuple[int, int]]:
    """Yield pairs in subscriber-major order (the "arrival" order)."""
    topics, subs = pairs_subscriber_major(selection)
    yield from zip(topics.tolist(), subs.tolist())


@register_packer("ffbp")
class FFBinPacking(PackingAlgorithm):
    """First-fit bin packing over individual pairs (Algorithm 3)."""

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        topic_bytes_all = problem.topic_bytes_array()

        # repolint: allow(VL01): FFBP is the paper's quadratic baseline by design (module docstring)
        for t, v in iter_pairs_subscriber_major(selection):
            topic_bytes = float(topic_bytes_all[t])
            placed = False
            # Lines 3-6: first already-deployed VM with room.
            # repolint: allow(VL01): per-pair first-fit fleet scan -- the baseline's defining behaviour
            for b in range(placement.num_vms):
                vm = placement.vm(b)
                if vm.fits(topic_bytes, 1, not vm.hosts_topic(t)):
                    placement.assign(b, t, [v])
                    placed = True
                    break
            if not placed:
                # Lines 8-11: deploy a new VM.  Problem feasibility
                # guarantees a single pair always fits in an empty VM.
                b = placement.new_vm()
                placement.assign(b, t, [v])

        return placement


@register_packer("ffbp-loop")
class LoopFFBinPacking(PackingAlgorithm):
    """The retained pre-vectorization FFBP (the ``"ffbp-loop"`` referee).

    Identical algorithm, but pair arrival order is rebuilt through the
    original per-subscriber dict inversion and the fleet is scanned
    through the tuple-materializing ``placement.vms`` view -- kept
    verbatim as the executable specification the equivalence suite
    compares :class:`FFBinPacking` against.
    """

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        workload = problem.workload
        msg_bytes = workload.message_size_bytes
        rates = workload.event_rates

        by_subscriber: Dict[int, List[int]] = selection.topics_by_subscriber()
        for v in sorted(by_subscriber):
            for t in by_subscriber[v]:
                topic_bytes = float(rates[t]) * msg_bytes
                placed = False
                for b, vm in enumerate(placement.vms):
                    if vm.fits(topic_bytes, 1, not vm.hosts_topic(t)):
                        placement.assign(b, t, [v])
                        placed = True
                        break
                if not placed:
                    b = placement.new_vm()
                    placement.assign(b, t, [v])

        return placement
