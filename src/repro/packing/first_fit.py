"""FFBinPacking (FFBP) -- Algorithm 3, the Stage-2 baseline.

Each topic-subscriber pair is considered individually, in the order the
pairs naturally arrive (subscriber-major: all of ``v0``'s pairs, then
``v1``'s, ...).  A pair goes to the *first* already-deployed VM with
enough free capacity; if none fits, a new VM is deployed.  Because
consecutive pairs usually belong to different topics, FFBP scatters
each topic over many VMs and pays one incoming copy of the topic's
event stream per VM touched -- the bandwidth overhead
CustomBinPacking's grouping optimization removes.

Deviation from the pseudocode: Algorithm 3 checks ``ev_t <= BC - bw_b``
when placing a pair, which under-counts by the extra *incoming* copy
needed when the VM does not host the topic yet and could overflow the
VM by up to ``ev_t``.  We check the true delta ``ev_t * (1 + [t new on
b])`` so every placement this library produces is capacity-feasible.

Complexity: O(|S| * |B|) -- each pair may scan the whole fleet.  This
is the quadratic behaviour Figures 6-7 of the paper show; we keep it
(only bounded by the honest capacity check) rather than index the
fleet, because FFBP *is* the paper's slow baseline.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..core import MCSSProblem, PairSelection, Placement
from .base import PackingAlgorithm, register_packer

__all__ = ["FFBinPacking", "iter_pairs_subscriber_major"]


def iter_pairs_subscriber_major(selection: PairSelection) -> Iterator[Tuple[int, int]]:
    """Yield pairs in subscriber-major order (the "arrival" order).

    This is the order a pub/sub front-end would see subscriptions in,
    and deliberately interleaves topics -- the adversarial case for
    first-fit.
    """
    by_subscriber = selection.topics_by_subscriber()
    for v in sorted(by_subscriber):
        for t in by_subscriber[v]:
            yield t, v


@register_packer("ffbp")
class FFBinPacking(PackingAlgorithm):
    """First-fit bin packing over individual pairs (Algorithm 3)."""

    def pack(self, problem: MCSSProblem, selection: PairSelection) -> Placement:
        placement = problem.empty_placement()
        workload = problem.workload
        msg_bytes = workload.message_size_bytes
        rates = workload.event_rates

        for t, v in iter_pairs_subscriber_major(selection):
            topic_bytes = float(rates[t]) * msg_bytes
            placed = False
            # Lines 3-6: first already-deployed VM with room.
            for b, vm in enumerate(placement.vms):
                if vm.fits(topic_bytes, 1, not vm.hosts_topic(t)):
                    placement.assign(b, t, [v])
                    placed = True
                    break
            if not placed:
                # Lines 8-11: deploy a new VM.  Problem feasibility
                # guarantees a single pair always fits in an empty VM.
                b = placement.new_vm()
                placement.assign(b, t, [v])

        return placement
