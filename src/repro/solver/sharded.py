"""Topic-sharded validation for the out-of-core pipeline.

Stage 2 (CBP) is inherently sequential -- every placement decision
conditions on the bins left by the previous one -- so the sharded
pipeline parallelizes *around* it: Stage 1 shards subscribers
(:mod:`repro.selection.sharded`), Stage 2 packs once, and the final
audit shards *topics* here.

:func:`sharded_validate` splits the placement's (vm, topic) assignment
groups into contiguous topic ranges, runs the same partial reduction
:func:`repro.core.validation.validate_placement` uses internally
(:func:`~repro.core.validation._reduce_assignments`) on each shard --
optionally across forked, supervised workers (see
:func:`repro.resilience.supervise.supervised_map`) -- and sums the
per-VM byte vectors
and per-subscriber delivered-rate vectors before handing them to the
shared verdict.  The partition is by *topic*, which is what makes the
partial reductions additive: capacity terms are per-group independent,
and the delivered-rate dedup only ever merges (t, v) pairs sharing a
topic, so no duplicate can straddle two shards.  Sums of the disjoint
partials equal the whole-array reduction exactly for integer-valued
event rates (every bundled generator) and to float tolerance
otherwise -- the same contract the vectorized validator already has
with the loop referee.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core import MCSSProblem, Placement, ValidationReport
from ..core.validation import _reduce_assignments, _verdict
from ..parallel import default_workers, shard_bounds
from ..resilience.supervise import supervised_map

__all__ = ["sharded_validate"]


def _reduce_shard(
    args: Tuple[MCSSProblem, Placement, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[str]]:
    problem, placement, entries = args
    return _reduce_assignments(problem, placement, entries)


def sharded_validate(
    problem: MCSSProblem,
    placement: Placement,
    *,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
) -> ValidationReport:
    """Audit a placement with the reduction fanned out over topic shards.

    ``shards`` defaults to ``workers`` (which defaults to
    ``MCSS_SHARD_WORKERS``); with one shard this is exactly
    :func:`~repro.core.validation.validate_placement`.  Verdict fields
    (``ok`` flags, overloaded VMs, unsatisfied subscribers) match the
    unsharded validator; duplicate-subscriber diagnostics may list in
    shard order rather than global group order.
    """
    workers = default_workers() if workers is None else int(workers)
    shards = max(1, workers) if shards is None else int(shards)
    if shards <= 1:
        return _verdict(problem, placement, *_reduce_assignments(problem, placement))

    _, topic_arr, _, _ = placement.assignment_arrays()
    num_topics = problem.workload.num_topics
    shard_size = -(-num_topics // shards)  # ceil; partition never splits a topic
    parts = supervised_map(
        _reduce_shard,
        [
            (problem, placement, np.flatnonzero((topic_arr >= lo) & (topic_arr < hi)))
            for lo, hi in shard_bounds(num_topics, shard_size)
        ],
        workers,
    )
    out_bytes = sum(p[0] for p in parts)
    in_bytes = sum(p[1] for p in parts)
    delivered = sum(p[2] for p in parts)
    duplicate_msgs = [m for p in parts for m in p[3]]
    return _verdict(
        problem, placement, out_bytes, in_bytes, delivered, duplicate_msgs
    )
