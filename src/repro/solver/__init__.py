"""The two-stage MCSS solver pipeline (Section III)."""

from .pipeline import MCSSSolution, MCSSSolver

__all__ = ["MCSSSolution", "MCSSSolver"]
