"""The two-stage MCSS solver pipeline (Section III)."""

from .pipeline import MCSSSolution, MCSSSolver
from .sharded import sharded_validate

__all__ = ["MCSSSolution", "MCSSSolver", "sharded_validate"]
