"""The two-stage MCSS solver (Section III).

:class:`MCSSSolver` composes a Stage-1 selection algorithm with a
Stage-2 packing algorithm, times both stages separately (Figures 4-7
report them separately), validates the result, and returns a
:class:`MCSSSolution` carrying everything the experiment harness needs.

The paper's named configurations are available as presets:

>>> solution = MCSSSolver.paper().solve(problem)       # GSP + full CBP
>>> baseline = MCSSSolver.naive().solve(problem)       # RSP + FFBP
>>> rung_c = MCSSSolver.ladder("c").solve(problem)     # GSP + CBP(b,c)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core import (
    MCSSProblem,
    PairSelection,
    Placement,
    SolutionCost,
    ValidationReport,
    validate_placement,
)
from ..packing import (
    CBPOptions,
    CustomBinPacking,
    FFBinPacking,
    LoopCustomBinPacking,
    PackingAlgorithm,
    WarmStart,
    get_packer,
)
from ..selection import GreedySelectPairs, RandomSelectPairs, SelectionAlgorithm, get_selector

__all__ = ["MCSSSolution", "MCSSSolver"]


@dataclass(frozen=True)
class MCSSSolution:
    """Everything one solver run produced."""

    problem: MCSSProblem
    selection: PairSelection
    placement: Placement
    cost: SolutionCost
    selection_seconds: float
    packing_seconds: float
    selector_name: str
    packer_name: str
    validation: ValidationReport
    #: Warm-start handle for re-packing this selection under other
    #: packer options (set only when the solve was asked to emit one;
    #: see :meth:`MCSSSolver.solve_with_selection`).
    warm_start: Optional[WarmStart] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end solve time (Stage 1 + Stage 2)."""
        return self.selection_seconds + self.packing_seconds

    def summary(self) -> str:
        """One-line result for logs and the CLI."""
        return (
            f"{self.selector_name}+{self.packer_name}: {self.cost} "
            f"[stage1 {self.selection_seconds:.2f}s, "
            f"stage2 {self.packing_seconds:.2f}s]"
        )


class MCSSSolver:
    """A (selection, packing) pipeline for MCSS."""

    def __init__(
        self,
        selector: SelectionAlgorithm,
        packer: PackingAlgorithm,
        validate: bool = True,
    ) -> None:
        self.selector = selector
        self.packer = packer
        self.validate = validate

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "MCSSSolver":
        """The paper's full solution: GSP + CBP with all optimizations."""
        return cls(GreedySelectPairs(), CustomBinPacking(CBPOptions.ladder("e")))

    @classmethod
    def naive(cls, seed: Optional[int] = None) -> "MCSSSolver":
        """The paper's naive baseline: RSP + FFBP."""
        return cls(RandomSelectPairs(seed=seed), FFBinPacking())

    @classmethod
    def ladder(cls, rung: str) -> "MCSSSolver":
        """One rung of Figures 2-3's optimization ladder.

        ``"a"`` = GSP + FFBP; ``"b"``..``"e"`` = GSP + CBP with the
        matching :meth:`CBPOptions.ladder` preset.
        """
        if rung == "a":
            return cls(GreedySelectPairs(), FFBinPacking())
        return cls(GreedySelectPairs(), CustomBinPacking(CBPOptions.ladder(rung)))

    @classmethod
    def loop_referee(cls) -> "MCSSSolver":
        """GSP + the retained ``cbp-loop`` packing referee.

        Same selection as :meth:`paper`, but Stage 2 runs the verbatim
        pre-vectorization CBP -- the configuration the equivalence
        suite and ``scripts/profile_solver.py`` compare against.
        """
        return cls(GreedySelectPairs(), LoopCustomBinPacking(CBPOptions.ladder("e")))

    @classmethod
    def from_names(cls, selector: str, packer: str, **kwargs) -> "MCSSSolver":
        """Build from registry names (CLI entry point)."""
        return cls(get_selector(selector), get_packer(packer), **kwargs)

    # ------------------------------------------------------------------
    def solve(self, problem: MCSSProblem) -> MCSSSolution:
        """Run both stages and audit the result.

        Raises ``ValueError`` if validation is enabled and the produced
        placement violates capacity or satisfaction -- a solver bug, by
        construction, so it must never pass silently.
        """
        t0 = time.perf_counter()
        selection = self.selector.select(problem)
        t1 = time.perf_counter()
        return self.solve_with_selection(
            problem, selection, selection_seconds=t1 - t0
        )

    def solve_sharded(
        self,
        problem: MCSSProblem,
        shard_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> MCSSSolution:
        """Out-of-core solve: sharded Stage 1, sharded validation.

        Identical result to :meth:`solve` (bit-exact for the bundled
        integer-rate generators; see :mod:`repro.selection.sharded`),
        but Stage 1 runs :class:`~repro.selection.sharded.
        ShardedGreedySelectPairs` over subscriber shards and the final
        audit runs :func:`~repro.solver.sharded.sharded_validate` over
        topic shards, both optionally fanned out across forked workers.
        Stage 2 packing stays sequential -- CBP's bin state is a chain
        of dependent decisions, so the paper's Stage-2 cost is paid
        once, whole -- but it only ever touches selection-sized arrays,
        which is what lets a 100M-pair problem pack in a small RAM
        budget when the workload itself is mmap-backed.

        ``shard_size`` / ``workers`` default to the ``MCSS_SHARD_SIZE``
        / ``MCSS_SHARD_WORKERS`` environment knobs.  The configured
        ``self.selector`` is ignored for Stage 1 (this method *is* the
        GSP path); the configured packer and ``validate`` flag apply
        unchanged.
        """
        from ..selection.sharded import ShardedGreedySelectPairs
        from .sharded import sharded_validate

        selector = ShardedGreedySelectPairs(shard_size=shard_size, workers=workers)
        t0 = time.perf_counter()
        selection = selector.select(problem)
        t1 = time.perf_counter()
        placement = self.packer.pack(problem, selection)
        t2 = time.perf_counter()

        report = sharded_validate(problem, placement, workers=workers)
        if self.validate:
            report.raise_if_invalid()

        return MCSSSolution(
            problem=problem,
            selection=selection,
            placement=placement,
            cost=problem.cost_of(placement),
            selection_seconds=t1 - t0,
            packing_seconds=t2 - t1,
            selector_name=selector.name,
            packer_name=self.packer.name,
            validation=report,
        )

    def solve_with_selection(
        self,
        problem: MCSSProblem,
        selection: PairSelection,
        selection_seconds: float = 0.0,
        warm_start: Optional[WarmStart] = None,
        emit_warm_start: bool = False,
    ) -> MCSSSolution:
        """Run Stage 2 (and validation) on a precomputed Stage-1 selection.

        Stage-1 selections depend only on the workload and ``tau`` --
        never on the packer -- so sweeps over packing variants (the
        cost-optimization ladder of Figures 2-3, ablation benches) can
        select once per ``tau`` and pack many times.  The caller is
        responsible for passing a selection produced for *this* problem
        (validation will reject an insufficient one).
        ``selection_seconds`` is recorded in the returned solution so
        shared-selection sweeps still report a Stage-1 time.

        ``warm_start`` seeds Stage 2 from a prior traced pack of the
        same (problem, selection) -- bit-exact with a cold pack, see
        :meth:`repro.packing.PackingAlgorithm.pack_from` -- and
        ``emit_warm_start=True`` asks for a handle back on
        ``solution.warm_start``, so packer sweeps can chain.  Packers
        without warm-start support accept both and pack cold.
        """
        t1 = time.perf_counter()
        if warm_start is not None:
            placement, handle = self.packer.pack_from(
                problem, selection, warm_start, emit_trace=emit_warm_start
            )
        elif emit_warm_start:
            placement, handle = self.packer.pack_traced(problem, selection)
        else:
            placement, handle = self.packer.pack(problem, selection), None
        t2 = time.perf_counter()

        report = validate_placement(problem, placement)
        if self.validate:
            report.raise_if_invalid()

        return MCSSSolution(
            problem=problem,
            selection=selection,
            placement=placement,
            cost=problem.cost_of(placement),
            selection_seconds=selection_seconds,
            packing_seconds=t2 - t1,
            selector_name=self.selector.name,
            packer_name=self.packer.name,
            validation=report,
            warm_start=handle if emit_warm_start else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MCSSSolver({self.selector.name} + {self.packer.name})"
