#!/usr/bin/env python
"""Profile the MCSS solver's stage1 / stage2 / validate hot paths.

Times the vectorized implementations against the retained loop
referees on one synthetic Zipf workload and prints the timing table
used to verify this PR's acceptance criterion: vectorized ``select`` +
``validate_placement`` must be >= 10x faster than the loop
implementations at 100k subscribers.

Usage::

    PYTHONPATH=src python scripts/profile_solver.py [num_users] [tau]

    num_users  defaults to $MCSS_PROFILE_USERS or 100000
    tau        defaults to 100

Pass a smaller ``num_users`` (e.g. 2000, as the CI smoke job does) for
a quick run; the speedup factors are printed either way.
"""

from __future__ import annotations

import os
import sys
import time

from repro.core import MCSSProblem, validate_placement, validate_placement_loop
from repro.packing import CBPOptions, CustomBinPacking
from repro.pricing import (
    LinearBandwidthCost,
    LinearVMCost,
    PricingPlan,
    get_instance,
)
from repro.selection import GreedySelectPairs, LoopGreedySelectPairs
from repro.workloads import zipf_workload


def _timed(fn, repeats: int = 3):
    """Run ``fn`` once for the result, then time ``repeats`` runs (best-of).

    The first (untimed) call doubles as a warm-up so both the
    vectorized and the loop implementations measure steady state --
    lazily cached workload views (interest materialization, sorted
    orders, rate sums) are shared and warm for both sides, which is
    the regime the experiment ladder runs in (one workload, many
    select/validate calls across taus and rungs).
    """
    out = fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def main(argv) -> int:
    num_users = int(argv[1]) if len(argv) > 1 else int(
        os.environ.get("MCSS_PROFILE_USERS", "100000")
    )
    tau = float(argv[2]) if len(argv) > 2 else 100.0
    num_topics = max(100, num_users // 50)

    print(f"building zipf workload: {num_users} subscribers, {num_topics} topics ...")
    t0 = time.perf_counter()
    workload = zipf_workload(num_topics, num_users, mean_interest=8.0, seed=7)
    print(f"  built in {time.perf_counter() - t0:.2f}s: {workload!r}")

    # Generous per-VM capacity so stage 2 stays out of the way of the
    # stage1/validate comparison but still packs onto multiple VMs.
    capacity = (
        max(2.5 * float(workload.event_rates.max()), float(workload.event_rates.sum()) / 8.0)
        * workload.message_size_bytes
    )
    plan = PricingPlan(
        instance=get_instance("c3.large"),
        period_hours=1.0,
        bandwidth_cost=LinearBandwidthCost(0.12),
        vm_cost=LinearVMCost(10.0),
        capacity_bytes_override=float(capacity),
    )
    problem = MCSSProblem(workload, tau, plan)

    rows = []

    selection, fast_sel_s = _timed(lambda: GreedySelectPairs().select(problem))
    loop_selection, loop_sel_s = _timed(lambda: LoopGreedySelectPairs().select(problem))
    assert selection == loop_selection, "vectorized GSP diverged from loop GSP"
    rows.append(("stage1 select (GSP)", fast_sel_s, loop_sel_s))

    placement, pack_s = _timed(
        lambda: CustomBinPacking(CBPOptions.ladder("e")).pack(problem, selection),
        repeats=1,
    )
    rows.append(("stage2 pack (CBP e)", pack_s, None))

    report, fast_val_s = _timed(lambda: validate_placement(problem, placement))
    loop_report, loop_val_s = _timed(lambda: validate_placement_loop(problem, placement))
    assert report.ok == loop_report.ok, "validator verdicts diverged"
    assert report.ok, f"solver produced an invalid placement: {report}"
    rows.append(("validate_placement", fast_val_s, loop_val_s))

    print()
    print(f"{'phase':<22} {'vectorized':>12} {'loop':>12} {'speedup':>9}")
    print("-" * 58)
    total_fast = total_loop = 0.0
    for name, fast_s, loop_s in rows:
        if loop_s is None:
            print(f"{name:<22} {fast_s:>11.3f}s {'-':>12} {'-':>9}")
            continue
        total_fast += fast_s
        total_loop += loop_s
        print(f"{name:<22} {fast_s:>11.3f}s {loop_s:>11.3f}s {loop_s / fast_s:>8.1f}x")
    print("-" * 58)
    combined = total_loop / total_fast if total_fast else float("inf")
    print(
        f"{'select + validate':<22} {total_fast:>11.3f}s {total_loop:>11.3f}s "
        f"{combined:>8.1f}x"
    )
    print()
    print(f"placement: {placement!r}, cost {problem.cost_of(placement)}")
    # MCSS_PROFILE_TARGET=0 relaxes only the speedup bar (CI smoke at
    # tiny scales); the equivalence/validity assertions above always
    # hold the exit code hostage.
    target = float(os.environ.get("MCSS_PROFILE_TARGET", "10"))
    verdict = "PASS" if combined >= target else "BELOW TARGET"
    print(f"acceptance (>= {target:.0f}x select+validate): {verdict}")
    return 0 if combined >= target else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
