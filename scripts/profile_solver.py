#!/usr/bin/env python
"""Profile the MCSS solver's hot paths: construction, stage1/2, validate.

Times the vectorized implementations against the retained loop
referees and prints the timing table used to verify the acceptance
criteria:

* vectorized ``select`` + ``validate_placement`` must be >= 10x faster
  than the loop implementations at 100k subscribers
  (``MCSS_PROFILE_TARGET``),
* vectorized stage-2 ``pack`` (CBP rung e) must be >= 5x faster than
  the retained ``cbp-loop`` referee (``MCSS_PACK_TARGET``), with both
  packers producing identical placements, and
* vectorized social-graph *workload construction* (CSR
  ``build_social_graph`` + ``generate_social_workload`` on a
  Twitter-shaped draw) must be >= 10x faster than the retained
  ``build_social_graph_loop`` + ``generate_social_workload_loop``
  referees (``MCSS_GEN_TARGET``), and
* the vectorized *dynamic epoch step* (churn -> incremental
  reprovision, run with ``fresh_solve_every=1`` so the work and the
  placements match the referee epoch for epoch) must be >= 10x faster
  than the retained ``reprovision-loop`` + ``churn-loop`` referees
  (``MCSS_EPOCH_TARGET``), with identical per-epoch placements, and
* the *warm-started cost ladder* (rung (c) packed once with a recorded
  trace, rungs (d)/(e) seeded from it via ``pack_from``; the chain
  ``run_cost_ladder(warm_start=True)`` runs) must produce placements
  bit-identical to four cold packs and stay within
  ``MCSS_LADDER_TARGET`` of the cold ladder's pack time.  The target
  defaults to 0.9: the identity is the hard guarantee, while the
  speedup is workload-dependent -- seeding pays when rungs coincide
  (real traces at loose taus) and costs a few percent of bounded
  overhead when they diverge, as the zipf profile workload makes them
  do from the first expensive topics on (see docs/BENCHMARKS.md).

Each run also appends one trajectory entry to ``BENCH_stage2.json`` at
the repo root (a JSON list, one dict per run) so successive PRs can
track the construction and packing times at a glance; the CI
bench-smoke job uploads that file as a workflow artifact.

The sharded solve path (``MCSSSolver.solve_sharded``: sharded Stage 1
+ topic-sharded validation) is asserted bit-identical to the in-RAM
solve -- including under forced multi-shard configurations, forked
workers, and an mmap-backed reload of the same workload -- and timed
against ``MCSS_SHARD_TARGET`` (a 0.9 parity band, same rationale as
the ladder's).

Usage::

    PYTHONPATH=src python scripts/profile_solver.py [num_users] [tau]
    PYTHONPATH=src python scripts/profile_solver.py --out-of-core [num_users]
    PYTHONPATH=src python scripts/profile_solver.py --serve [num_users]

    num_users  defaults to $MCSS_PROFILE_USERS or 100000
    tau        defaults to 100

``--out-of-core`` (default 10M users) is the weekly slow rung: chunked
generation straight to a versioned ``.npz``, mmap-backed reload, and a
sharded solve, with the ``tracemalloc`` peak recorded -- no loop
referees, see docs/BENCHMARKS.md.

``--serve`` (default 1M users) is the serving rung: the micro-epoch
serving layer under ``MCSS_SERVE_EPOCHS`` epochs of steady churn, with
exact p50/p95/p99 micro-epoch latency and throughput recorded as a
``"mode": "serving"`` trajectory entry plus ``serve_metrics.json``,
gated by ``MCSS_SERVE_TARGET`` (p99 seconds; 0 disables).

Pass a smaller ``num_users`` (e.g. 2000, as the CI smoke job does) for
a quick run; the speedup factors are printed either way.  Set
``MCSS_PROFILE_TARGET=0`` / ``MCSS_PACK_TARGET=1`` /
``MCSS_GEN_TARGET=1`` / ``MCSS_EPOCH_TARGET=1`` /
``MCSS_LADDER_TARGET=0.9`` to relax the speedup bars at tiny scales
(equivalence and validity are always enforced).  Every recorded
``BENCH_stage2.json`` field and each environment knob is documented in
``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.core import MCSSProblem, validate_placement, validate_placement_loop
from repro.packing import (
    CBPOptions,
    CustomBinPacking,
    LoopCustomBinPacking,
    diff_placements,
)
from repro.parallel import default_shard_size, default_workers
from repro.pricing import (
    LinearBandwidthCost,
    LinearVMCost,
    PricingPlan,
    get_instance,
)
from repro.selection import (
    GreedySelectPairs,
    LoopGreedySelectPairs,
    ShardedGreedySelectPairs,
)
from repro.solver import MCSSSolver, sharded_validate
from repro.workloads import (
    build_social_graph,
    build_social_graph_loop,
    generate_social_workload,
    generate_social_workload_loop,
    glitched_following_counts,
    load_workload,
    save_workload,
    save_zipf_workload_chunked,
    truncated_power_law,
    zipf_workload,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_stage2.json"
SERVE_METRICS_PATH = BENCH_PATH.parent / "serve_metrics.json"


def _timed(fn, repeats: int = 3):
    """Run ``fn`` once for the result, then time ``repeats`` runs (best-of).

    The first (untimed) call doubles as a warm-up so both the
    vectorized and the loop implementations measure steady state --
    lazily cached workload views (interest materialization, sorted
    orders, rate sums) are shared and warm for both sides, which is
    the regime the experiment ladder runs in (one workload, many
    select/validate calls across taus and rungs).
    """
    out = fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _bench_piece(seconds: float) -> float:
    """One fan-out piece of pure wall-clock work (module-level for fork)."""
    time.sleep(seconds)
    return seconds


def _time_supervised() -> float:
    """Happy-path overhead ratio: supervised_map / raw fork_map.

    Sleep-based pieces make the work term identical on both sides, so
    the best-of ratio isolates the supervision machinery itself
    (per-piece processes + pipes + exit polling vs one pool).  Paired
    rounds with alternating order, as everywhere else in this script.
    Where fork is unavailable both paths run the same serial loop and
    the ratio is trivially ~1.
    """
    from repro.parallel import fork_map
    from repro.resilience import supervised_map

    pieces = [0.15] * 4
    sup = lambda: supervised_map(_bench_piece, pieces, workers=2)  # noqa: E731
    raw = lambda: fork_map(_bench_piece, pieces, workers=2)  # noqa: E731
    assert sup() == raw() == pieces  # warm-up both paths, same results
    sup_s = raw_s = float("inf")
    for i in range(3):
        first, second = (sup, raw) if i % 2 == 0 else (raw, sup)
        for fn in (first, second):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            if fn is sup:
                sup_s = min(sup_s, elapsed)
            else:
                raw_s = min(raw_s, elapsed)
    return sup_s / raw_s if raw_s else float("inf")


def _time_construction(num_users: int):
    """Time Twitter-shaped social workload construction vs the referee.

    Pre-draws the per-user inputs (declared followings, popularity
    weights) once, then times graph build + compaction end to end on
    both paths with fresh same-seeded generators per call.  The two
    paths use distribution-identical but stream-different draws, so
    only the trace *scale* is asserted here; the distributions are
    pinned by the randomized equivalence suite.
    """
    import numpy as np

    rng = np.random.default_rng(11)
    following = glitched_following_counts(
        rng, num_users, alpha=1.7, max_following=max(100, min(10_000, num_users // 2))
    )
    weights = truncated_power_law(rng, num_users, 1.9, 1.0, 1e6).astype(np.float64)

    def rate_model(followers, r):
        mu = (
            np.log(np.maximum(1.5 * np.power(1.0 + followers, 0.6), 1e-9))
            - 1.5**2 / 2.0
        )
        return np.floor(np.exp(mu + 1.5 * r.standard_normal(followers.size))).astype(
            np.int64
        )

    def fast():
        graph = build_social_graph(
            num_users, np.random.default_rng(23), following, weights, rate_model
        )
        return generate_social_workload(graph)

    def loop():
        graph = build_social_graph_loop(
            num_users, np.random.default_rng(23), following, weights, rate_model
        )
        return generate_social_workload_loop(graph)

    workload, fast_s = _timed(fast)
    # The loop referee costs seconds per call at 100k users: one timed
    # run after the warm-up keeps the profile tolerable.
    loop_workload, loop_s = _timed(loop, repeats=1)
    # Streams differ between the paths, so the populations match only
    # statistically -- but any construction bug that drops or inflates
    # whole user classes shows up as a scale mismatch here.
    subs_gap = abs(workload.num_subscribers - loop_workload.num_subscribers)
    assert subs_gap < 0.05 * max(loop_workload.num_subscribers, 1), (
        "construction paths disagree on the subscriber population: "
        f"{workload.num_subscribers} vs {loop_workload.num_subscribers}"
    )
    pairs_gap = abs(workload.num_pairs - loop_workload.num_pairs)
    assert pairs_gap < 0.1 * max(loop_workload.num_pairs, 1), (
        "construction paths disagree on the trace scale: "
        f"{workload.num_pairs} vs {loop_workload.num_pairs} pairs"
    )
    return workload, fast_s, loop_s


def _time_epochs(problem, epochs: int = 2):
    """Time the dynamic epoch step: vectorized vs the loop referees.

    Both reprovisioners consume the same pre-drawn churn deltas (the
    vectorized ``ChurnModel``; its streams are bit-identical to
    ``churn-loop`` on shared seeds, which the equivalence suite pins).
    The vectorized reprovisioner runs with ``fresh_solve_every=1`` so
    its per-epoch work -- and, asserted here, its placements -- match
    the referee exactly; a second gated pass with the default cadence
    reports the steady-state epoch time users actually see.  Epochs
    are not repeatable (state advances), so each side is timed once
    per epoch and averaged.
    """
    from repro.dynamic import (
        ChurnConfig,
        ChurnModel,
        IncrementalReprovisioner,
        LoopIncrementalReprovisioner,
    )

    config = ChurnConfig(
        unsubscribe_fraction=0.02, subscribe_fraction=0.02, rate_drift_sigma=0.05
    )
    model = ChurnModel(problem.workload, config, seed=17)
    deltas = [model.step() for _ in range(epochs)]

    vec = IncrementalReprovisioner(problem, fresh_solve_every=1)
    loop = LoopIncrementalReprovisioner(problem)
    vec_s = loop_s = 0.0
    for delta in deltas:
        t0 = time.perf_counter()
        vec.step(delta)
        vec_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        loop.step(delta)
        loop_s += time.perf_counter() - t0
        mismatch = diff_placements(vec.placement(), loop.placement())
        assert mismatch is None, f"epoch placements diverged: {mismatch}"

    gated = IncrementalReprovisioner(problem)  # default gated cadence
    t0 = time.perf_counter()
    for delta in deltas:
        gated.step(delta)
    gated_s = (time.perf_counter() - t0) / epochs
    return vec_s / epochs, loop_s / epochs, gated_s


def _time_ladder(problem, selection, rounds: int = 7):
    """Time the four-rung CBP pack ladder, cold vs warm-started.

    The warm side mirrors ``run_cost_ladder(warm_start=True)``: rung
    (b) packs cold (its selection-order packing shares no prefix with
    the expensive-first rungs), rung (c) packs cold with a recorded
    trace, and rungs (d)/(e) are seeded from it through ``pack_from``.
    Every warm placement is asserted bit-identical to its cold
    counterpart (``diff_placements``) before any timing -- the
    warm-start acceptance contract.  Timing runs as paired rounds
    (cold and warm back-to-back, order alternating, best-of) so both
    sides see the same allocator and cache state.
    """
    rungs = ("b", "c", "d", "e")
    packers = {r: CustomBinPacking(CBPOptions.ladder(r)) for r in rungs}

    def cold():
        return [packers[r].pack(problem, selection) for r in rungs]

    def warm():
        placements = [packers["b"].pack(problem, selection)]
        traced, handle = packers["c"].pack_traced(problem, selection)
        placements.append(traced)
        for r in ("d", "e"):
            placement, _ = packers[r].pack_from(
                problem, selection, handle, emit_trace=False
            )
            placements.append(placement)
        return placements

    for rung, cold_p, warm_p in zip(rungs, cold(), warm()):
        mismatch = diff_placements(warm_p, cold_p)
        assert mismatch is None, f"warm rung ({rung}) diverged from cold: {mismatch}"

    cold_s = warm_s = float("inf")
    for i in range(rounds):
        first, second = (cold, warm) if i % 2 == 0 else (warm, cold)
        for fn in (first, second):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            if fn is cold:
                cold_s = min(cold_s, elapsed)
            else:
                warm_s = min(warm_s, elapsed)
    return cold_s, warm_s


def _sharded_equivalence(problem, selection, placement) -> None:
    """Assert the sharded paths reproduce the in-RAM solve bit-exactly.

    Untimed by design: the default shard configuration runs one shard
    at profiling scale, so the *timed* sharded leg measures overhead,
    while the interesting machinery (multi-shard merge, forked workers,
    mmap-backed reload) is exercised here under forced configurations.
    ``MCSS_MMAP=0`` skips only the disk round-trip leg.
    """
    workload = problem.workload
    forced = max(1, -(-workload.num_subscribers // 4))
    sharded_sel = ShardedGreedySelectPairs(shard_size=forced, workers=2).select(problem)
    assert sharded_sel == selection, "forced multi-shard GSP diverged from whole-array GSP"

    base = validate_placement(problem, placement)
    sharded_rep = sharded_validate(problem, placement, shards=3, workers=2)
    assert (
        sharded_rep.capacity_ok,
        sharded_rep.satisfaction_ok,
        sharded_rep.accounting_ok,
    ) == (base.capacity_ok, base.satisfaction_ok, base.accounting_ok), (
        f"topic-sharded validation verdict diverged: {sharded_rep} vs {base}"
    )

    if os.environ.get("MCSS_MMAP", "1") != "0":
        scratch = tempfile.mkdtemp(prefix="mcss-profile-mmap-")
        try:
            path = save_workload(workload, os.path.join(scratch, "profile"))
            mapped = load_workload(path, mmap=True)
            mmap_problem = MCSSProblem(mapped, problem.tau, problem.plan)
            mmap_sel = ShardedGreedySelectPairs(shard_size=forced, workers=2).select(
                mmap_problem
            )
            assert mmap_sel == selection, (
                "mmap-backed sharded GSP diverged from the in-RAM solve"
            )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)


def _out_of_core(num_users: int) -> int:
    """The weekly 10M-user rung: chunked generation -> mmap -> sharded solve.

    No loop referees at this scale (they are Python-loop-bounded); the
    acceptance claim is the *memory envelope*: ``tracemalloc`` peak --
    Python-heap allocations only, mmap pages are the kernel's -- stays
    under the 3 GB bound while a >= 100M-pair instance is generated to
    a versioned ``.npz``, re-opened mmap-backed, and solved end to end.
    Appends a ``"mode": "out-of-core"`` entry to ``BENCH_stage2.json``.
    """
    num_topics = max(100, num_users // 50)
    tau = 100.0
    scratch = tempfile.mkdtemp(prefix="mcss-ooc-")
    tracemalloc.start()
    try:
        print(
            f"generating {num_users}-subscriber zipf workload chunk-by-chunk "
            f"({num_topics} topics) ..."
        )
        t0 = time.perf_counter()
        path = save_zipf_workload_chunked(
            os.path.join(scratch, "trace"),
            num_topics,
            num_users,
            mean_interest=12.0,
            seed=7,
        )
        gen_s = time.perf_counter() - t0
        size_mb = os.path.getsize(path) / 1e6
        print(f"  wrote {path} ({size_mb:.0f} MB) in {gen_s:.1f}s")

        t0 = time.perf_counter()
        workload = load_workload(path, mmap=True)
        load_s = time.perf_counter() - t0
        print(f"  mmap-opened in {load_s:.3f}s: {workload!r}")

        capacity = (
            max(
                2.5 * float(workload.event_rates.max()),
                float(workload.event_rates.sum()) / 8.0,
            )
            * workload.message_size_bytes
        )
        plan = PricingPlan(
            instance=get_instance("c3.large"),
            period_hours=1.0,
            bandwidth_cost=LinearBandwidthCost(0.12),
            vm_cost=LinearVMCost(10.0),
            capacity_bytes_override=float(capacity),
        )
        problem = MCSSProblem(workload, tau, plan)

        print(
            f"solving sharded (shard_size={default_shard_size()}, "
            f"workers={default_workers()}) ..."
        )
        t0 = time.perf_counter()
        solution = MCSSSolver.paper().solve_sharded(problem)
        solve_s = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
        num_pairs = int(workload.num_pairs)
    finally:
        tracemalloc.stop()
        shutil.rmtree(scratch, ignore_errors=True)

    select_s = solution.selection_seconds
    pack_s = solution.packing_seconds
    validate_s = max(0.0, solve_s - select_s - pack_s)
    print(
        f"  solved in {solve_s:.1f}s (select {select_s:.1f}s, pack {pack_s:.1f}s, "
        f"validate {validate_s:.1f}s): {solution.cost}"
    )
    print(f"  peak traced memory: {peak / 1e9:.2f} GB ({num_pairs} pairs)")

    _append_bench_entry(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "mode": "out-of-core",
            "num_users": num_users,
            "num_topics": num_topics,
            "tau": tau,
            "num_pairs": num_pairs,
            "gen_s": round(gen_s, 3),
            "load_s": round(load_s, 6),
            "select_s": round(select_s, 3),
            "pack_s": round(pack_s, 3),
            "validate_s": round(validate_s, 3),
            "solve_s": round(solve_s, 3),
            "peak_traced_bytes": int(peak),
            "shard_size": default_shard_size(),
            "workers": default_workers(),
            "num_vms": solution.placement.num_vms,
            "total_cost_usd": round(solution.cost.total_usd, 4),
        }
    )
    print(f"appended out-of-core trajectory entry to {BENCH_PATH.name}")
    return 0


def _serve(num_users: int) -> int:
    """The serving rung: micro-epoch churn under SLO metering.

    Builds a zipf workload, stands up a
    :class:`~repro.serving.MicroEpochService` around it, and serves
    ``MCSS_SERVE_EPOCHS`` micro-epochs of subscribe/unsubscribe churn
    (no rate drift: the steady-churn regime where the incremental
    group index amortizes the per-epoch sorts away).  Records exact
    p50/p95/p99 micro-epoch latency and throughput as a
    ``"mode": "serving"`` entry in ``BENCH_stage2.json``, writes the
    full metrics snapshot to ``serve_metrics.json`` (the CI artifact),
    and asserts the 3 GB traced-memory bound.  ``MCSS_SERVE_TARGET``
    gates the exit code on the p99 bound (seconds; 0 disables).

    The broker-runtime traffic replay runs only below 250k subscribers:
    :class:`~repro.broker.cluster.BrokerCluster` materializes per-pair
    Python state, which at 1M subscribers (~8M pairs) would threaten
    the traced-memory bound without changing the serving verdict.
    """
    from repro.dynamic import ChurnConfig
    from repro.experiments.serve import run_serving_experiment
    from repro.resilience.knobs import env_float, env_int
    from repro.serving import ServingConfig

    num_topics = max(100, num_users // 50)
    tau = 100.0
    micro_epochs = env_int("MCSS_SERVE_EPOCHS", 8, minimum=1)
    p99_target = env_float("MCSS_SERVE_TARGET", 0.0, minimum=0.0)

    tracemalloc.start()
    try:
        print(
            f"building zipf workload: {num_users} subscribers, "
            f"{num_topics} topics ..."
        )
        t0 = time.perf_counter()
        workload = zipf_workload(num_topics, num_users, mean_interest=8.0, seed=7)
        print(f"  built in {time.perf_counter() - t0:.2f}s: {workload!r}")
        capacity = (
            max(
                2.5 * float(workload.event_rates.max()),
                float(workload.event_rates.sum()) / 8.0,
            )
            * workload.message_size_bytes
        )
        plan = PricingPlan(
            instance=get_instance("c3.large"),
            period_hours=1.0,
            bandwidth_cost=LinearBandwidthCost(0.12),
            vm_cost=LinearVMCost(10.0),
            capacity_bytes_override=float(capacity),
        )

        print(f"serving {micro_epochs} micro-epochs of steady churn ...")
        t0 = time.perf_counter()
        result = run_serving_experiment(
            workload,
            plan,
            tau,
            micro_epochs,
            churn_config=ChurnConfig(
                unsubscribe_fraction=0.01,
                subscribe_fraction=0.01,
                rate_drift_sigma=0.0,
            ),
            seed=11,
            serving_config=ServingConfig(
                traffic_every=micro_epochs if num_users <= 250_000 else 0,
            ),
        )
        serve_s = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()

    print(result.render())
    print(f"  served in {serve_s:.1f}s wall (includes the epoch-0 solve)")
    print(f"  peak traced memory: {peak / 1e9:.2f} GB")
    assert peak < 3e9, (
        f"serving rung exceeded the 3 GB traced-memory bound: {peak} B"
    )

    metrics = dict(result.metrics)
    metrics["peak_traced_bytes"] = float(peak)
    SERVE_METRICS_PATH.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n"
    )
    print(f"metrics snapshot written to {SERVE_METRICS_PATH.name}")

    last = result.reports[-1].report if result.reports else None
    _append_bench_entry(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "mode": "serving",
            "num_users": num_users,
            "num_topics": num_topics,
            "tau": tau,
            "micro_epochs": int(metrics["serve.micro_epochs"]),
            "ops_total": int(metrics["serve.ops"]),
            "moves_total": int(metrics["serve.moves"]),
            "epoch_p50_s": round(metrics["serve.epoch_latency.p50_s"], 6),
            "epoch_p95_s": round(metrics["serve.epoch_latency.p95_s"], 6),
            "epoch_p99_s": round(metrics["serve.epoch_latency.p99_s"], 6),
            "epoch_mean_s": round(metrics["serve.epoch_latency.mean_s"], 6),
            "ops_per_s": round(metrics["serve.ops_per_s"], 1),
            "moves_per_s": round(metrics["serve.moves_per_s"], 1),
            "queue_depth": int(metrics["serve.queue_depth"]),
            "cost_drift": round(metrics["serve.drift"], 6),
            "num_vms": int(metrics["serve.num_vms"]),
            "total_cost_usd": round(metrics["serve.cost_usd"], 4),
            "serve_wall_s": round(serve_s, 3),
            "peak_traced_bytes": int(peak),
            "rebuilds": int(metrics["serve.rebuilds"]),
            "final_epoch_rebuilt": bool(last.rebuilt) if last else False,
        }
    )
    print(f"appended serving trajectory entry to {BENCH_PATH.name}")

    if p99_target > 0:
        p99 = metrics["serve.epoch_latency.p99_s"]
        ok = p99 <= p99_target
        verdict = "PASS" if ok else "BELOW TARGET"
        print(
            f"acceptance (micro-epoch p99 <= {p99_target:.3f}s: "
            f"{p99:.3f}s): {verdict}"
        )
        return 0 if ok else 1
    print("acceptance: MCSS_SERVE_TARGET unset or 0 -- p99 gate disabled")
    return 0


def _append_bench_entry(entry: dict) -> None:
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(entry)
    BENCH_PATH.write_text(json.dumps(history, indent=2) + "\n")


def main(argv) -> int:
    if len(argv) > 1 and argv[1] == "--out-of-core":
        return _out_of_core(int(argv[2]) if len(argv) > 2 else 10_000_000)
    if len(argv) > 1 and argv[1] == "--serve":
        return _serve(int(argv[2]) if len(argv) > 2 else 1_000_000)
    num_users = int(argv[1]) if len(argv) > 1 else int(
        os.environ.get("MCSS_PROFILE_USERS", "100000")
    )
    tau = float(argv[2]) if len(argv) > 2 else 100.0
    num_topics = max(100, num_users // 50)

    print(f"timing social workload construction at {num_users} users ...")
    gen_workload, gen_fast_s, gen_loop_s = _time_construction(num_users)
    gen_speedup = gen_loop_s / gen_fast_s if gen_fast_s else float("inf")
    print(
        f"  vectorized {gen_fast_s:.3f}s vs loop referee {gen_loop_s:.3f}s "
        f"({gen_speedup:.1f}x): {gen_workload!r}"
    )

    print(f"building zipf workload: {num_users} subscribers, {num_topics} topics ...")
    t0 = time.perf_counter()
    workload = zipf_workload(num_topics, num_users, mean_interest=8.0, seed=7)
    print(f"  built in {time.perf_counter() - t0:.2f}s: {workload!r}")

    # Generous per-VM capacity so stage 2 stays out of the way of the
    # stage1/validate comparison but still packs onto multiple VMs.
    capacity = (
        max(2.5 * float(workload.event_rates.max()), float(workload.event_rates.sum()) / 8.0)
        * workload.message_size_bytes
    )
    plan = PricingPlan(
        instance=get_instance("c3.large"),
        period_hours=1.0,
        bandwidth_cost=LinearBandwidthCost(0.12),
        vm_cost=LinearVMCost(10.0),
        capacity_bytes_override=float(capacity),
    )
    problem = MCSSProblem(workload, tau, plan)

    rows = [("workload construction", gen_fast_s, gen_loop_s)]

    selection, fast_sel_s = _timed(lambda: GreedySelectPairs().select(problem))
    loop_selection, loop_sel_s = _timed(lambda: LoopGreedySelectPairs().select(problem))
    assert selection == loop_selection, "vectorized GSP diverged from loop GSP"
    rows.append(("stage1 select (GSP)", fast_sel_s, loop_sel_s))

    # Same protocol (warm-up + best-of-3) on both sides so the gated
    # speedup compares like for like.
    packer = CustomBinPacking(CBPOptions.ladder("e"))
    placement, pack_s = _timed(lambda: packer.pack(problem, selection))
    loop_packer = LoopCustomBinPacking(CBPOptions.ladder("e"))
    loop_placement, loop_pack_s = _timed(lambda: loop_packer.pack(problem, selection))
    mismatch = diff_placements(placement, loop_placement)
    assert mismatch is None, f"vectorized CBP diverged from cbp-loop: {mismatch}"
    rows.append(("stage2 pack (CBP e)", pack_s, loop_pack_s))

    report, fast_val_s = _timed(lambda: validate_placement(problem, placement))
    loop_report, loop_val_s = _timed(lambda: validate_placement_loop(problem, placement))
    assert report.ok == loop_report.ok, "validator verdicts diverged"
    assert report.ok, f"solver produced an invalid placement: {report}"
    rows.append(("validate_placement", fast_val_s, loop_val_s))

    print("checking sharded/mmap equivalence (forced shards, forked workers) ...")
    _sharded_equivalence(problem, selection, placement)
    # Baseline and sharded leg are both full MCSSSolver runs (cost +
    # validation + report assembly included) so the parity band
    # compares like for like even at tiny smoke scales; paired rounds
    # with alternating order (as in _time_ladder) so both sides see the
    # same allocator and cache state.
    ref = lambda: MCSSSolver.paper().solve(problem)  # noqa: E731
    shard = lambda: MCSSSolver.paper().solve_sharded(problem)  # noqa: E731
    sharded_solution = shard()
    mismatch = diff_placements(sharded_solution.placement, placement)
    assert mismatch is None, f"sharded solve placement diverged: {mismatch}"
    solve_ref_s = sharded_s = float("inf")
    for i in range(5):
        first, second = (ref, shard) if i % 2 == 0 else (shard, ref)
        for fn in (first, second):
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            if fn is ref:
                solve_ref_s = min(solve_ref_s, elapsed)
            else:
                sharded_s = min(sharded_s, elapsed)

    print("timing supervised fan-out overhead (supervised_map vs fork_map) ...")
    supervised_overhead = _time_supervised()
    print(
        f"  supervised / raw wall-time ratio on identical sleep pieces: "
        f"{supervised_overhead:.3f}x"
    )

    print("timing the cost-ladder pack sequence (cold vs warm-started) ...")
    ladder_cold_s, ladder_warm_s = _time_ladder(problem, selection)
    ladder_speedup = ladder_cold_s / ladder_warm_s if ladder_warm_s else float("inf")
    print(
        f"  four cold packs {ladder_cold_s:.3f}s vs warm-started chain "
        f"{ladder_warm_s:.3f}s ({ladder_speedup:.2f}x, identical placements)"
    )

    print("timing dynamic epoch step (churn -> incremental reprovision) ...")
    epoch_s, epoch_loop_s, epoch_gated_s = _time_epochs(problem)
    epoch_speedup = epoch_loop_s / epoch_s if epoch_s else float("inf")
    print(
        f"  vectorized {epoch_s:.3f}s vs loop referee {epoch_loop_s:.3f}s "
        f"per epoch ({epoch_speedup:.1f}x); gated default {epoch_gated_s:.3f}s"
    )
    rows.append(("dynamic epoch step", epoch_s, epoch_loop_s))

    print()
    print(f"{'phase':<22} {'vectorized':>12} {'loop':>12} {'speedup':>9}")
    print("-" * 58)
    total_fast = total_loop = 0.0
    for name, fast_s, loop_s in rows:
        print(f"{name:<22} {fast_s:>11.3f}s {loop_s:>11.3f}s {loop_s / fast_s:>8.1f}x")
        if name.startswith(("stage2", "workload", "dynamic")):
            continue  # pack/construction/epoch have their own acceptance bars
        total_fast += fast_s
        total_loop += loop_s
    print("-" * 58)
    combined = total_loop / total_fast if total_fast else float("inf")
    pack_speedup = loop_pack_s / pack_s if pack_s else float("inf")
    print(
        f"{'select + validate':<22} {total_fast:>11.3f}s {total_loop:>11.3f}s "
        f"{combined:>8.1f}x"
    )
    solve_fast = total_fast + pack_s
    print(f"{'full solve (vec)':<22} {solve_fast:>11.3f}s")
    sharded_speedup = solve_ref_s / sharded_s if sharded_s else float("inf")
    print(
        f"{'full solve (sharded)':<22} {sharded_s:>11.3f}s "
        f"({sharded_speedup:.2f}x vs an equal full solve, identical placements)"
    )
    print()
    cost = problem.cost_of(placement)
    print(f"placement: {placement!r}, cost {cost}")

    _append_bench_entry(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "num_users": num_users,
            "num_topics": num_topics,
            "tau": tau,
            "pack_vectorized_s": round(pack_s, 6),
            "pack_loop_s": round(loop_pack_s, 6),
            "pack_speedup": round(pack_speedup, 2),
            "gen_vectorized_s": round(gen_fast_s, 6),
            "gen_loop_s": round(gen_loop_s, 6),
            "gen_speedup": round(gen_speedup, 2),
            "select_vectorized_s": round(fast_sel_s, 6),
            "validate_vectorized_s": round(fast_val_s, 6),
            "full_solve_vectorized_s": round(solve_fast, 6),
            "epoch_vectorized_s": round(epoch_s, 6),
            "epoch_loop_s": round(epoch_loop_s, 6),
            "epoch_speedup": round(epoch_speedup, 2),
            "epoch_gated_s": round(epoch_gated_s, 6),
            "ladder_cold_s": round(ladder_cold_s, 6),
            "ladder_warm_s": round(ladder_warm_s, 6),
            "ladder_speedup": round(ladder_speedup, 3),
            "sharded_solve_s": round(sharded_s, 6),
            "sharded_speedup": round(sharded_speedup, 3),
            "supervised_overhead": round(supervised_overhead, 3),
            "num_vms": placement.num_vms,
            "total_cost_usd": round(cost.total_usd, 4),
        }
    )
    print(f"appended trajectory entry to {BENCH_PATH.name}")

    # MCSS_PROFILE_TARGET=0 / MCSS_PACK_TARGET=1 / MCSS_GEN_TARGET=1 /
    # MCSS_EPOCH_TARGET=1 relax only the speedup bars (CI smoke at tiny
    # scales); the equivalence/validity assertions above always hold
    # the exit code hostage.
    target = float(os.environ.get("MCSS_PROFILE_TARGET", "10"))
    pack_target = float(os.environ.get("MCSS_PACK_TARGET", "5"))
    gen_target = float(os.environ.get("MCSS_GEN_TARGET", "10"))
    epoch_target = float(os.environ.get("MCSS_EPOCH_TARGET", "10"))
    # The ladder bar is a parity band, not a speedup bar: the warm
    # chain is bit-exact by construction (asserted above) and must
    # never cost materially more than cold packing even on workloads
    # whose rungs diverge at the first expensive topics.
    ladder_target = float(os.environ.get("MCSS_LADDER_TARGET", "0.9"))
    # Same story for the sharded band: bit-exactness is asserted above;
    # at the default one-shard configuration the gate guards bounded
    # dispatch overhead, not a speedup claim.
    shard_target = float(os.environ.get("MCSS_SHARD_TARGET", "0.9"))
    # Supervision is gated the other way around: it is pure overhead on
    # the happy path and must stay within a few percent of raw fork_map.
    sup_target = float(os.environ.get("MCSS_SUPERVISED_TARGET", "1.05"))
    ok = (
        combined >= target
        and pack_speedup >= pack_target
        and gen_speedup >= gen_target
        and epoch_speedup >= epoch_target
        and ladder_speedup >= ladder_target
        and sharded_speedup >= shard_target
        and supervised_overhead <= sup_target
    )
    verdict = "PASS" if ok else "BELOW TARGET"
    print(
        f"acceptance (select+validate >= {target:.0f}x: {combined:.1f}x, "
        f"pack >= {pack_target:.1f}x: {pack_speedup:.1f}x, "
        f"construction >= {gen_target:.1f}x: {gen_speedup:.1f}x, "
        f"epoch >= {epoch_target:.1f}x: {epoch_speedup:.1f}x, "
        f"warm ladder >= {ladder_target:.2f}x: {ladder_speedup:.2f}x, "
        f"sharded >= {shard_target:.2f}x: {sharded_speedup:.2f}x, "
        f"supervised <= {sup_target:.2f}x: {supervised_overhead:.2f}x): "
        f"{verdict}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
