#!/usr/bin/env python
"""Check that relative links in the repo documentation resolve.

Scans ``README.md``, ``ROADMAP.md`` and everything under ``docs/`` for
Markdown links and images (``[text](target)`` / ``![alt](target)``)
and fails if a relative target does not exist on disk.  External
links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped -- this is a rot guard for the files we
control, not a web crawler.

Usage::

    python scripts/check_doc_links.py

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link).  The CI ``docs`` job runs this next to the executable examples.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown link/image: [text](target) -- target captured up to the
#: closing parenthesis, optional '<...>' wrapping and title stripped.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Schemes (and pseudo-targets) that are not files in this repo.
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files() -> "list[Path]":
    docs = [REPO / "README.md", REPO / "ROADMAP.md"]
    docs.extend(sorted((REPO / "docs").glob("**/*.md")))
    return [path for path in docs if path.exists()]


def check_file(path: Path) -> "list[str]":
    broken = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            broken.append(
                f"{path.relative_to(REPO)}:{line}: broken link -> {target}"
            )
    return broken


def main() -> int:
    files = iter_doc_files()
    broken = [problem for path in files for problem in check_file(path)]
    for problem in broken:
        print(problem)
    checked = ", ".join(str(p.relative_to(REPO)) for p in files)
    if broken:
        print(f"{len(broken)} broken link(s) across {checked}")
        return 1
    print(f"all links resolve ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
