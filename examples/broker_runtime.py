#!/usr/bin/env python
"""From cost plan to running system: the broker runtime view.

MCSS minimizes the *bill*; this example asks what the cost-optimal plan
feels like at runtime:

1. solve MCSS for a Twitter-like workload;
2. materialize the placement as a broker cluster (subscription tables,
   routing, capacity enforcement);
3. publish through it and read the delivery metrics;
4. get the M/G/1 latency/utilization report -- how hot did cost
   optimization run the VMs, and what delivery delay does that imply;
5. let the autoscaler rebalance with a tighter utilization target and
   compare.

Run:  python examples/broker_runtime.py
"""

from repro import MCSSProblem, MCSSSolver, paper_plan
from repro.broker import BrokerCluster, LatencyModel
from repro.dynamic import AutoscalePolicy, Autoscaler
from repro.experiments import calibrate_fraction, format_table
from repro.workloads import TwitterConfig, TwitterWorkloadGenerator


def main() -> None:
    trace = TwitterWorkloadGenerator(TwitterConfig(num_users=4000)).generate(seed=9)
    workload = trace.workload
    print(trace.describe())

    plan = paper_plan("c3.large").scaled(calibrate_fraction(workload, target_vms=40))
    problem = MCSSProblem(workload, tau=100, plan=plan)
    solution = MCSSSolver.paper().solve(problem)
    print(f"plan: {solution.summary()}")

    cluster = BrokerCluster(problem, solution.placement)

    # Publish a burst on the five highest-rate topics and watch fan-out.
    rates = workload.event_rates
    top_topics = sorted(
        solution.selection.topics, key=lambda t: -float(rates[t])
    )[:5]
    rows = []
    for t in top_topics:
        delivered = cluster.publish(t, count=10)
        rows.append([t, f"{rates[t]:.0f}", len(cluster.hosting_nodes(t)), delivered])
    print()
    print(format_table(
        "Publish burst (10 events per topic)",
        ["topic", "rate/period", "hosting VMs", "notifications"],
        rows,
    ))

    # The billing cap BC is a *sustained volume* limit; the NIC's line
    # rate is higher.  Model 2x burst headroom -- without it, VMs the
    # optimizer packed to exactly BC sit at rho = 1 and the queueing
    # delay diverges (a real insight: pure cost optimization leaves no
    # latency headroom; see the latency_report docstring).
    period_seconds = problem.plan.period_hours * 3600.0
    line_rate = 2.0 * problem.capacity_bytes / period_seconds
    model = LatencyModel(line_rate_bytes_per_sec=line_rate)
    before = cluster.latency_report(period_seconds, model)
    print(f"\nfleet before autoscaling: {cluster.num_nodes} nodes, "
          f"max util {before.max_utilization:.0%}, "
          f"mean broker transit {before.mean_sojourn_seconds * 1e3:.2f} ms")

    scaler = Autoscaler(cluster, AutoscalePolicy(
        scale_up_threshold=0.85, scale_down_threshold=0.2,
        target_utilization=0.7,
    ))
    report = scaler.run_once()
    after = cluster.latency_report(period_seconds, model)
    print(f"autoscaler: {report.moves} pair moves, "
          f"{report.hot_nodes_cooled} hot nodes cooled, "
          f"{report.nodes_drained} cold nodes drained")
    print(f"fleet after autoscaling : {cluster.num_nodes} nodes, "
          f"max util {after.max_utilization:.0%}, "
          f"mean broker transit {after.mean_sojourn_seconds * 1e3:.2f} ms")

    snap = cluster.metrics_snapshot()
    print(f"\nmetrics: {snap.get('events_ingested', 0):.0f} events ingested, "
          f"{snap.get('notifications_sent', 0):.0f} notifications, "
          f"{snap.get('subscribes', 0):.0f} subscribe ops")


if __name__ == "__main__":
    main()
