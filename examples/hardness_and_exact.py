#!/usr/bin/env python
"""The NP-hardness reduction and the exact solver, demonstrated.

Two short stories from Section II of the paper:

1. **Theorem II.2, executed.**  Partition instances are reduced to
   DCSS instances (one topic + dedicated subscriber per integer,
   BC = sum, tau = max, C1(x) = x, C2 = 0, threshold 2) and both sides
   are decided independently -- a subset-sum DP for Partition, the
   MILP for DCSS.  The verdicts always agree.

2. **How sub-optimal is the heuristic?**  On instances small enough
   for the exact MILP, the two-stage heuristic's gap to the true
   optimum is measured directly (Section III-C claims it is
   "insignificant for practical workloads").

Run:  python examples/hardness_and_exact.py
"""

import numpy as np

from repro import MCSSProblem, MCSSSolver
from repro.exact import solve_exact, verify_reduction
from repro.experiments import format_table


def reduction_demo() -> None:
    print("Theorem II.2: Partition <=p DCSS")
    rows = []
    for values in ([3, 1, 1, 2, 2, 1], [2, 3], [4, 5, 6, 7, 8], [7, 7], [1, 2, 5]):
        outcome = verify_reduction(values)
        rows.append(
            [
                str(list(outcome.values)),
                "yes" if outcome.partition_answer else "no",
                "yes" if outcome.dcss_answer else "no",
                "OK" if outcome.agree else "MISMATCH!",
            ]
        )
    print(format_table("", ["multiset", "Partition?", "DCSS <= 2 VMs?", ""], rows))


def heuristic_gap_demo() -> None:
    from repro.core import Workload
    from repro.pricing import LinearBandwidthCost, LinearVMCost, PricingPlan, get_instance

    print("\nHeuristic vs exact optimum on random small instances")
    rng = np.random.default_rng(7)
    rows = []
    for trial in range(8):
        num_topics = int(rng.integers(2, 5))
        num_subs = int(rng.integers(2, 5))
        rates = rng.integers(1, 10, size=num_topics).astype(float)
        interests = [
            sorted(
                rng.choice(
                    num_topics, size=int(rng.integers(1, num_topics + 1)),
                    replace=False,
                ).tolist()
            )
            for _ in range(num_subs)
        ]
        workload = Workload(rates, interests, message_size_bytes=1.0)
        plan = PricingPlan(
            instance=get_instance("c3.large"),
            period_hours=1.0,
            bandwidth_cost=LinearBandwidthCost(usd_per_gb=1e8),
            vm_cost=LinearVMCost(5.0),
            capacity_bytes_override=5.0 * float(rates.max()),
        )
        problem = MCSSProblem(workload, tau=7, plan=plan)
        exact = solve_exact(problem, max_vms=4)
        heuristic = MCSSSolver.paper().solve(problem)
        gap = heuristic.cost.total_usd / exact.cost.total_usd - 1
        rows.append(
            [trial, num_topics, num_subs, exact.cost.total_usd,
             heuristic.cost.total_usd, f"{gap:.1%}"]
        )
    print(
        format_table(
            "", ["trial", "topics", "subs", "exact $", "heuristic $", "gap"], rows
        )
    )


if __name__ == "__main__":
    reduction_demo()
    heuristic_gap_demo()
