#!/usr/bin/env python
"""Dynamic reprovisioning under workload churn (the paper's future work).

Section IV-F suggests re-running the allocator periodically; Section VI
leaves a true online algorithm as future work.  This example runs that
extension: a Twitter-like workload churns for twelve epochs
(subscriptions, unsubscriptions, rate drift) and the incremental
reprovisioner patches the placement each epoch, falling back to a full
re-solve only when it drifts more than 15% above a fresh solution.

The expensive from-scratch reference solve no longer runs every epoch:
a calibrated Algorithm-5 estimate prices each epoch in O(pairs) array
work, and the real solve runs only on the ``fresh_solve_every`` cadence
(the paper's periodic re-run as a safety net) or when the estimate
suggests the fleet may have drifted past the threshold -- watch the
"fresh" column to see which epochs actually paid for one.

Watch the columns: the incremental fleet tracks the fresh-solve cost
closely while touching only a small fraction of the pairs per epoch --
the stability/optimality trade-off an online system lives on.

Run:  python examples/dynamic_reprovisioning.py
"""

from repro import MCSSProblem, MCSSSolver, paper_plan
from repro.dynamic import ChurnConfig, ChurnModel, IncrementalReprovisioner
from repro.experiments import calibrate_fraction, format_table
from repro.workloads import TwitterConfig, TwitterWorkloadGenerator


def main() -> None:
    trace = TwitterWorkloadGenerator(TwitterConfig(num_users=4000)).generate(seed=5)
    workload = trace.workload
    print(trace.describe())

    plan = paper_plan("c3.large").scaled(calibrate_fraction(workload, target_vms=50))
    problem = MCSSProblem(workload, tau=100, plan=plan)

    reprov = IncrementalReprovisioner(
        problem, rebuild_threshold=1.15, fresh_solve_every=4
    )
    churn = ChurnModel(
        workload,
        ChurnConfig(
            unsubscribe_fraction=0.02,
            subscribe_fraction=0.02,
            rate_drift_sigma=0.05,
        ),
        seed=13,
    )

    rows = []
    for _ in range(12):
        epoch = reprov.step(churn.step())
        rows.append(
            [
                epoch.epoch,
                epoch.cost.num_vms,
                epoch.cost.total_usd,
                f"{epoch.drift:.3f}{'' if epoch.fresh_solved else '*'}",
                epoch.pairs_added + epoch.pairs_removed + epoch.pairs_moved,
                "yes" if epoch.fresh_solved else "",
                "yes" if epoch.rebuilt else "",
            ]
        )

    print()
    print(
        format_table(
            "Twelve epochs of churn (drift = incremental / fresh solve; "
            "* = vs the calibrated estimate, no fresh solve paid)",
            ["epoch", "VMs", "total $", "drift", "pairs touched", "fresh", "rebuilt"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
