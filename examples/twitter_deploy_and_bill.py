#!/usr/bin/env python
"""Deploy an optimized Twitter-like workload and collect the bill.

This is the paper's cloud story run to completion:

1. generate a Twitter-like trace (heavy-tailed follower graph, bot
   tail, celebrity cloud -- Appendix D);
2. solve MCSS with the two-stage heuristic;
3. rent the fleet from a simulated IaaS provider;
4. replay the trace through the deployed brokers with a discrete-event
   simulation, metering every byte in and out;
5. compare the provider's itemized invoice with the analytic objective
   the optimizer minimized -- they must agree, otherwise the
   optimization would be meaningless as a bill estimate.

Run:  python examples/twitter_deploy_and_bill.py
"""

from repro import MCSSProblem, MCSSSolver, paper_plan
from repro.cloud import deploy_and_bill
from repro.experiments import calibrate_fraction
from repro.simulation import SimulationConfig
from repro.workloads import TwitterConfig, TwitterWorkloadGenerator


def main() -> None:
    trace = TwitterWorkloadGenerator(TwitterConfig(num_users=6000)).generate(seed=42)
    workload = trace.workload
    print(trace.describe())

    plan = paper_plan("c3.large").scaled(calibrate_fraction(workload, target_vms=80))
    problem = MCSSProblem(workload, tau=100, plan=plan)

    solution = MCSSSolver.paper().solve(problem)
    print(f"\noptimizer: {solution.summary()}")
    print(f"fleet: {solution.placement.num_vms} VMs, "
          f"{solution.placement.total_bytes / 1e9:.2f} GB/period analytic")

    # Deploy, replay 25% of the period (extrapolated for billing), bill.
    deployment = deploy_and_bill(
        problem,
        solution.placement,
        SimulationConfig(horizon_fraction=0.25, seed=1),
    )
    print(f"\nreplay: {deployment.report.summary()}")
    print("\ninvoice:")
    print(deployment.invoice)
    print(f"\nanalytic objective: ${deployment.analytic_total_usd:,.4f}")
    print(f"billing gap       : {deployment.billing_gap:.2%}")

    if not deployment.report.satisfied:
        raise SystemExit("BUG: deployed placement starved a subscriber")


if __name__ == "__main__":
    main()
