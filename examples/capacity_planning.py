#!/usr/bin/env python
"""Capacity planning: which VM type should host your pub/sub engine?

The paper's motivation (Section I): an enterprise moving its pub/sub
engine to the cloud needs to know, *before* signing up, how many VMs
of which type the workload needs and what the bill will be.  This
example sweeps the whole c3 family and three satisfaction thresholds
over a Spotify-like workload and prints the planning matrix.

The interesting effect to look for: bigger instances cost proportionally
more but halve the fleet *and* reduce ingest duplication (fewer VMs
share each topic), so the cheapest choice is workload-dependent.

Run:  python examples/capacity_planning.py
"""

from repro import MCSSProblem, MCSSSolver, paper_plan
from repro.experiments import calibrate_fraction, format_table
from repro.pricing.instances import iter_catalog
from repro.workloads import SpotifyConfig, SpotifyWorkloadGenerator


def main() -> None:
    trace = SpotifyWorkloadGenerator(SpotifyConfig(num_users=6000)).generate(seed=21)
    workload = trace.workload
    print(trace.describe())

    # One shared scale factor (computed against c3.large) keeps the
    # instance types comparable, exactly like Figures 2a vs 2b.
    fraction = calibrate_fraction(workload, target_vms=80)
    solver = MCSSSolver.paper()

    rows = []
    best = None
    for instance in iter_catalog():
        plan = paper_plan(instance.name).scaled(fraction)
        for tau in (10, 100, 1000):
            problem = MCSSProblem(workload, tau, plan)
            cost = solver.solve(problem).cost
            rows.append(
                [instance.name, f"tau={tau}", cost.num_vms,
                 cost.total_gb, cost.total_usd]
            )
            if tau == 100 and (best is None or cost.total_usd < best[1]):
                best = (instance.name, cost.total_usd)

    print()
    print(
        format_table(
            "Capacity planning matrix (Spotify-like, 10-day period)",
            ["instance", "tau", "VMs", "GB", "total $"],
            rows,
        )
    )
    assert best is not None
    print(f"\ncheapest instance at tau=100: {best[0]} (${best[1]:,.4f})")


if __name__ == "__main__":
    main()
