#!/usr/bin/env python
"""Quickstart: solve one MCSS instance end to end.

Generates a Spotify-like pub/sub workload, prices it on Amazon EC2
(c3.large, the paper's Section IV-A configuration), runs the paper's
two-stage heuristic (GreedySelectPairs + CustomBinPacking), and
compares the result against the naive baseline (RandomSelectPairs +
FFBinPacking) and the Algorithm-5 lower bound.

Run:  python examples/quickstart.py
"""

from repro import MCSSProblem, MCSSSolver, lower_bound, paper_plan
from repro.experiments import calibrate_fraction
from repro.workloads import SpotifyConfig, SpotifyWorkloadGenerator


def main() -> None:
    # 1. A workload: topics with event rates, subscribers with
    #    interests.  Generators are deterministic given a seed.
    trace = SpotifyWorkloadGenerator(SpotifyConfig(num_users=6000)).generate(seed=7)
    workload = trace.workload
    print(trace.describe())

    # 2. A pricing plan: c3.large VMs over the 10-day trace period,
    #    $0.12/GB transfer.  The plan is scaled to the synthetic trace
    #    size so the fleet lands at a realistic few dozen VMs (a
    #    documented substitution; see docs/ARCHITECTURE.md).
    plan = paper_plan("c3.large").scaled(calibrate_fraction(workload, target_vms=60))
    print(f"plan: {plan.describe()}")

    # 3. The MCSS instance: satisfy every subscriber up to tau = 100
    #    events per period at minimum total cost.
    problem = MCSSProblem(workload, tau=100, plan=plan)

    # 4. Solve with the paper's full pipeline ...
    solution = MCSSSolver.paper().solve(problem)
    print(f"\npaper solution  : {solution.cost}")
    print(f"  stage 1 {solution.selection_seconds * 1e3:.0f} ms, "
          f"stage 2 {solution.packing_seconds * 1e3:.0f} ms, "
          f"{solution.selection.num_pairs} pairs selected")

    # 5. ... and compare against the naive baseline and the bound.
    baseline = MCSSSolver.naive().solve(problem)
    bound = lower_bound(problem)
    print(f"naive baseline  : {baseline.cost}")
    print(f"lower bound     : {bound}")

    saving = 1 - solution.cost.total_usd / baseline.cost.total_usd
    gap = solution.cost.total_usd / bound.total_usd - 1
    print(f"\nsaving vs naive : {saving:.1%}")
    print(f"gap to bound    : {gap:.1%}")


if __name__ == "__main__":
    main()
