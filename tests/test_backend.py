"""Storage-backend semantics: RAM / mmap / adopt, and the versioned trace file.

The :mod:`repro.core.backend` seam must never change *values* -- only
residency -- so most pins here are about aliasing (what is copied, what
is shared, what lands on disk) and about the format-2 trace file that
feeds the out-of-core pipeline.
"""

from __future__ import annotations

import tracemalloc
import zipfile

import numpy as np
import pytest

from repro.core import MmapBackend, RamBackend, Workload
from repro.core.backend import AdoptBackend, is_mapped
from repro.workloads import (
    load_workload,
    save_workload,
    save_zipf_workload_chunked,
    zipf_workload,
)


def _workloads_equal(a: Workload, b: Workload) -> bool:
    return (
        np.array_equal(a.event_rates, b.event_rates)
        and np.array_equal(a.interest_indptr, b.interest_indptr)
        and np.array_equal(a.interest_topics, b.interest_topics)
        and a.message_size_bytes == b.message_size_bytes
    )


class TestBackends:
    def test_ram_backend_copies_views(self):
        base = np.arange(10, dtype=np.int64)
        view = base[2:8]
        adopted = RamBackend().adopt(view, "interest_topics")
        assert not np.shares_memory(adopted, base)
        assert not adopted.flags.writeable
        np.testing.assert_array_equal(adopted, view)

    def test_ram_backend_keeps_owned_arrays(self):
        arr = np.arange(5, dtype=np.int64)
        assert RamBackend().adopt(arr, "x") is arr
        assert not arr.flags.writeable

    def test_adopt_backend_is_zero_copy(self):
        base = np.arange(10, dtype=np.int64)
        view = base[1:9]
        adopted = AdoptBackend().adopt(view, "x")
        assert adopted is view
        assert not adopted.flags.writeable

    def test_mmap_backend_adopts_as_is(self, tmp_path):
        path = tmp_path / "arr.npy"
        np.save(path, np.arange(8, dtype=np.int64))
        mapped = np.load(path, mmap_mode="r")
        adopted = MmapBackend(tmp_path / "cache").adopt(mapped, "interest_topics")
        assert adopted is mapped
        assert is_mapped(adopted)

    def test_mmap_backend_spills_large_caches(self, tmp_path):
        backend = MmapBackend(tmp_path / "cache")
        big = np.arange(200_000, dtype=np.int64)  # > 1 MB
        spilled = backend.cache("pair_keys", big)
        assert is_mapped(spilled)
        assert (tmp_path / "cache" / "pair_keys.npy").exists()
        np.testing.assert_array_equal(spilled, big)

    def test_mmap_backend_keeps_small_caches_in_ram(self, tmp_path):
        backend = MmapBackend(tmp_path / "cache")
        small = np.arange(16, dtype=np.int64)
        assert backend.cache("tiny", small) is small
        assert not (tmp_path / "cache").exists()

    def test_mmap_backend_without_cache_dir_never_spills(self):
        backend = MmapBackend(None)
        big = np.arange(200_000, dtype=np.int64)
        assert backend.cache("pair_keys", big) is big

    def test_is_mapped_walks_view_chains(self, tmp_path):
        path = tmp_path / "arr.npy"
        np.save(path, np.arange(64, dtype=np.int64))
        mapped = np.load(path, mmap_mode="r")
        # ascontiguousarray strips the memmap subclass but not the map.
        stripped = np.ascontiguousarray(mapped)
        assert is_mapped(mapped)
        assert is_mapped(stripped[4:32])
        assert not is_mapped(np.arange(64, dtype=np.int64))
        assert not is_mapped(np.array(mapped))  # a real copy


class TestMmapWorkload:
    def test_mmap_load_is_backed_by_the_file(self, tmp_path, small_zipf):
        path = save_workload(small_zipf, tmp_path / "trace")
        mapped = load_workload(path, mmap=True)
        assert _workloads_equal(mapped, small_zipf)
        assert is_mapped(mapped.interest_topics)
        assert is_mapped(mapped.interest_indptr)
        assert is_mapped(mapped.event_rates)
        assert isinstance(mapped.backend, MmapBackend)

    def test_members_are_stored_uncompressed(self, tmp_path, small_zipf):
        path = save_workload(small_zipf, tmp_path / "trace")
        with zipfile.ZipFile(path) as zf:
            for info in zf.infolist():
                assert info.compress_type == zipfile.ZIP_STORED, info.filename

    def test_subscriber_range_shares_the_map(self, tmp_path, small_zipf):
        path = save_workload(small_zipf, tmp_path / "trace")
        mapped = load_workload(path, mmap=True)
        shard = mapped.subscriber_range(50, 150)
        assert shard.num_subscribers == 100
        assert np.shares_memory(shard.interest_topics, mapped.interest_topics)
        assert is_mapped(shard.interest_topics)
        for v in range(100):
            np.testing.assert_array_equal(shard.interest(v), mapped.interest(50 + v))

    def test_sorted_interest_topics_zero_copy_when_sorted(self, tmp_path, small_zipf):
        # Generators emit per-subscriber ascending interests, so the
        # sorted view must be the raw CSR array itself -- the fast path
        # that keeps pair_keys (a pair-sized sort) out of mmap solves.
        path = save_workload(small_zipf, tmp_path / "trace")
        mapped = load_workload(path, mmap=True)
        assert mapped.sorted_interest_topics() is mapped.interest_topics
        # And it matches the compute path bit for bit.
        np.testing.assert_array_equal(
            mapped.sorted_interest_topics(), small_zipf.sorted_interest_topics()
        )

    def test_sorted_interest_topics_falls_back_when_unsorted(self):
        w = Workload([1.0, 2.0, 3.0], [[2, 0], [1], [2, 1, 0]])
        got = w.sorted_interest_topics()
        assert got is not w.interest_topics
        np.testing.assert_array_equal(got, [0, 2, 1, 0, 1, 2])

    def test_restrict_subscribers_stays_subset_sized(self, tmp_path):
        # Slicing a few rows out of an mmap-backed workload must not
        # materialize parent-pair-sized (or parent-subscriber-sized)
        # temporaries on the Python heap.
        parent = zipf_workload(100, 50_000, mean_interest=6.0, seed=9)
        path = save_workload(parent, tmp_path / "big")
        mapped = load_workload(path, mmap=True)
        keep = np.arange(1_000, 2_000, dtype=np.int64)

        tracemalloc.start()
        try:
            sub = mapped.restrict_subscribers(keep)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        # Parent flats are ~300k int64 (~2.4 MB); the restriction only
        # touches ~6k pairs, so a generous bound still catches any
        # parent-sized temporary.
        assert peak < 1_000_000, f"peak traced {peak} bytes"
        assert sub.num_subscribers == 1_000
        for i, v in enumerate(range(1_000, 1_010)):
            np.testing.assert_array_equal(sub.interest(i), parent.interest(v))


class TestChunkedGenerator:
    def test_roundtrip_and_validity(self, tmp_path):
        path = save_zipf_workload_chunked(
            tmp_path / "chunked", 40, 500, mean_interest=4.0, seed=3,
            chunk_subscribers=128,
        )
        # The in-RAM load re-validates the CSR contract fully.
        w = load_workload(path)
        assert w.num_subscribers == 500
        assert w.num_topics == 40
        assert w.num_pairs > 500
        assert int(w.interest_sizes().min()) >= 1
        # Per-subscriber ascending + duplicate-free, like zipf_workload.
        for v in range(0, 500, 37):
            topics = w.interest(v)
            assert (np.diff(topics) > 0).all()
        # Same marginal rate table as the in-RAM generator.
        ref = zipf_workload(40, 10, seed=3)
        np.testing.assert_array_equal(w.event_rates, ref.event_rates)

    def test_deterministic_across_calls(self, tmp_path):
        a = load_workload(save_zipf_workload_chunked(
            tmp_path / "a", 30, 300, seed=5, chunk_subscribers=100
        ))
        b = load_workload(save_zipf_workload_chunked(
            tmp_path / "b", 30, 300, seed=5, chunk_subscribers=100
        ))
        assert _workloads_equal(a, b)

    def test_mmap_readback(self, tmp_path):
        path = save_zipf_workload_chunked(
            tmp_path / "c", 30, 300, seed=5, chunk_subscribers=100
        )
        mapped = load_workload(path, mmap=True)
        assert is_mapped(mapped.interest_topics)
        assert _workloads_equal(mapped, load_workload(path))

    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            save_zipf_workload_chunked(tmp_path / "x", 0, 10)
        with pytest.raises(ValueError):
            save_zipf_workload_chunked(tmp_path / "x", 10, 0)
        with pytest.raises(ValueError):
            save_zipf_workload_chunked(tmp_path / "x", 10, 10, chunk_subscribers=0)
