"""Unit tests for repro.core.placement (VirtualMachine, Placement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CapacityError, Placement, VirtualMachine, Workload


class TestVirtualMachine:
    def test_initial_state(self):
        vm = VirtualMachine(100.0)
        assert vm.used_bytes == 0
        assert vm.free_bytes == 100.0
        assert vm.num_pairs == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            VirtualMachine(0)

    def test_add_pairs_accounting(self):
        vm = VirtualMachine(100.0)
        vm.add_pairs(topic=7, topic_bytes=10.0, count=3)
        # 3 outgoing copies + 1 incoming copy = 40 bytes.
        assert vm.outgoing_bytes == 30.0
        assert vm.incoming_bytes == 10.0
        assert vm.used_bytes == 40.0
        assert vm.pair_count(7) == 3
        assert vm.hosts_topic(7)

    def test_second_batch_same_topic_no_extra_ingest(self):
        vm = VirtualMachine(100.0)
        vm.add_pairs(7, 10.0, 2)
        vm.add_pairs(7, 10.0, 1)
        assert vm.incoming_bytes == 10.0
        assert vm.outgoing_bytes == 30.0

    def test_different_topics_ingest_separately(self):
        vm = VirtualMachine(100.0)
        vm.add_pairs(1, 10.0, 1)
        vm.add_pairs(2, 5.0, 1)
        assert vm.incoming_bytes == 15.0
        assert sorted(vm.topics) == [1, 2]

    def test_capacity_enforced(self):
        vm = VirtualMachine(30.0)
        with pytest.raises(CapacityError):
            vm.add_pairs(0, 10.0, 3)  # needs 40

    def test_exact_fill_allowed(self):
        vm = VirtualMachine(40.0)
        vm.add_pairs(0, 10.0, 3)  # exactly 40
        assert vm.free_bytes == pytest.approx(0.0)

    def test_zero_count_rejected(self):
        vm = VirtualMachine(10.0)
        with pytest.raises(ValueError):
            vm.add_pairs(0, 1.0, 0)

    def test_fits_accounts_for_new_topic(self):
        vm = VirtualMachine(25.0)
        assert vm.fits(10.0, 1, new_topic=True)  # 20 <= 25
        assert not vm.fits(10.0, 2, new_topic=True)  # 30 > 25
        vm.add_pairs(0, 10.0, 1)
        assert not vm.fits(10.0, 1, new_topic=True)  # 20 > 5 free
        # Existing topic: only the outgoing copy is charged... still no.
        assert not vm.fits(10.0, 1, new_topic=False)

    def test_max_new_pairs_new_topic(self):
        vm = VirtualMachine(35.0)
        # Ingest eats 10, leaving 25 -> 2 pairs of 10.
        assert vm.max_new_pairs(10.0, already_hosted=False) == 2

    def test_max_new_pairs_hosted_topic(self):
        vm = VirtualMachine(35.0)
        vm.add_pairs(0, 10.0, 1)  # uses 20
        assert vm.max_new_pairs(10.0, already_hosted=True) == 1

    def test_max_new_pairs_zero_when_too_full(self):
        vm = VirtualMachine(15.0)
        assert vm.max_new_pairs(10.0, already_hosted=False) == 0

    def test_addition_cost(self):
        vm = VirtualMachine(100.0)
        assert vm.addition_cost_bytes(10.0, 2, new_topic=True) == 30.0
        assert vm.addition_cost_bytes(10.0, 2, new_topic=False) == 20.0


class TestPlacement:
    def test_new_vm_indexing(self, tiny_workload):
        p = Placement(tiny_workload, capacity_bytes=100.0)
        assert p.new_vm() == 0
        assert p.new_vm() == 1
        assert p.num_vms == 2

    def test_assign_and_members(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        b = p.new_vm()
        p.assign(b, 0, [0, 1])
        assert p.members(b, 0) == [0, 1]
        assert p.vm_topics(b) == [0]
        assert p.num_pairs == 2

    def test_assign_empty_is_noop(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        b = p.new_vm()
        p.assign(b, 0, [])
        assert p.num_pairs == 0

    def test_topic_bytes_uses_message_size(self):
        w = Workload([2.0], [[0]], message_size_bytes=100.0)
        p = Placement(w, 1e6)
        assert p.topic_bytes(0) == 200.0

    def test_totals(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 0, [0, 1])  # out 40, in 20
        p.assign(b, 1, [0, 1, 2])  # out 30, in 10
        assert p.total_outgoing_bytes == 70.0
        assert p.total_incoming_bytes == 30.0
        assert p.total_bytes == 100.0

    def test_split_topic_duplicates_ingest(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 1, [0])
        p.assign(b, 1, [1, 2])
        # Ingest paid on both VMs: the Section II-A replication effect.
        assert p.total_incoming_bytes == 20.0
        assert p.topic_replicas(1) == 2

    def test_topics_by_subscriber_deduplicates(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 1, [0])
        p.assign(b, 1, [0])  # same pair on two VMs (legal per Eq. 3)
        assert p.topics_by_subscriber() == {0: [1]}

    def test_to_selection_collapses(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 0, [0])
        p.assign(b, 0, [0, 1])
        sel = p.to_selection()
        assert sel.num_pairs == 2  # (0,0) deduplicated
        assert sel.subscribers_of(0).tolist() == [0, 1]

    def test_iter_assignments(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        a = p.new_vm()
        p.assign(a, 0, [0])
        p.assign(a, 1, [2])
        triples = sorted(p.iter_assignments())
        assert triples == [(0, 0, [0]), (0, 1, [2])]

    def test_capacity_propagates(self, tiny_workload):
        p = Placement(tiny_workload, 35.0)
        b = p.new_vm()
        with pytest.raises(CapacityError):
            p.assign(b, 0, [0, 1])  # 2*20 out + 20 in = 60 > 35

    def test_invalid_capacity(self, tiny_workload):
        with pytest.raises(ValueError):
            Placement(tiny_workload, 0)


class TestBatchRemoval:
    """remove_range / remove_topic: the assign_range mirrors."""

    def _placement(self, tiny_workload):
        p = Placement(tiny_workload, 200.0)
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 0, [0, 1])
        p.assign(a, 1, [0])
        p.assign(b, 1, [1, 2])
        return p, a, b

    def test_remove_range_partial(self, tiny_workload):
        p, a, _b = self._placement(tiny_workload)
        before = p.vm(a).used_bytes
        p.remove_range(a, 0, np.asarray([1]))
        assert p.members(a, 0) == [0]
        assert p.vm(a).pair_count(0) == 1
        # One outgoing copy of topic 0 (rate 20) freed.
        assert p.vm(a).used_bytes == pytest.approx(before - 20.0)
        assert p.hosting_vms(0) == [a]  # still ingesting

    def test_remove_range_empties_group(self, tiny_workload):
        p, a, b = self._placement(tiny_workload)
        p.remove_range(a, 1, np.asarray([0]))
        assert p.members(a, 1) == []
        assert not p.vm(a).hosts_topic(1)
        assert p.hosting_vms(1) == [b]
        assert p.num_pairs == 4

    def test_remove_topic_returns_members(self, tiny_workload):
        p, _a, b = self._placement(tiny_workload)
        total_before = p.total_bytes
        members = p.remove_topic(b, 1)
        assert sorted(members.tolist()) == [1, 2]
        assert p.vm(b).used_bytes == 0.0
        # Two outgoing + one incoming copy of topic 1 (rate 10) freed.
        assert p.total_bytes == pytest.approx(total_before - 30.0)

    def test_remove_unassigned_raises(self, tiny_workload):
        p, a, _b = self._placement(tiny_workload)
        with pytest.raises(ValueError):
            p.remove_range(a, 0, np.asarray([2]))  # not on this VM
        with pytest.raises(ValueError):
            p.remove_range(a, 1, np.asarray([0, 0]))  # duplicates
        with pytest.raises(ValueError):
            p.remove_topic(a, 5)  # not hosted

    def test_remove_then_reassign_roundtrip(self, tiny_workload):
        p, a, b = self._placement(tiny_workload)
        moved = p.remove_topic(a, 1)
        p.assign_range(b, 1, moved)
        assert sorted(p.members(b, 1)) == [0, 1, 2]
        assert p.num_pairs == 5
        assert p.hosting_vms(1) == [b]


class TestFromPairArrays:
    def test_matches_incremental_construction(self, tiny_workload):
        manual = Placement(tiny_workload, 200.0)
        a, b = manual.new_vm(), manual.new_vm()
        manual.assign(a, 0, [0, 1])
        manual.assign(a, 1, [0])
        manual.assign(b, 1, [1, 2])
        batch = Placement.from_pair_arrays(
            tiny_workload,
            200.0,
            np.asarray([0, 0, 0, 1, 1]),
            np.asarray([0, 0, 1, 1, 1]),
            np.asarray([0, 1, 0, 1, 2]),
        )
        assert batch.num_vms == manual.num_vms
        assert sorted(batch.iter_assignments()) == sorted(manual.iter_assignments())
        assert batch.total_bytes == pytest.approx(manual.total_bytes)

    def test_empty_and_trailing_vms(self, tiny_workload):
        empty = Placement.from_pair_arrays(
            tiny_workload, 100.0,
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64),
        )
        assert empty.num_vms == 0 and empty.num_pairs == 0
        padded = Placement.from_pair_arrays(
            tiny_workload, 100.0,
            np.asarray([0]), np.asarray([1]), np.asarray([2]), num_vms=3,
        )
        assert padded.num_vms == 3
        assert padded.vm(1).num_pairs == 0

    def test_mismatched_arrays_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            Placement.from_pair_arrays(
                tiny_workload, 100.0,
                np.asarray([0]), np.asarray([1, 1]), np.asarray([2]),
            )

    def test_out_of_range_vm_ids_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match="vm_ids"):
            Placement.from_pair_arrays(
                tiny_workload, 100.0,
                np.asarray([0, 2]), np.asarray([0, 1]), np.asarray([0, 1]),
                num_vms=1,
            )


class TestCopy:
    """Placement.copy(): cheap snapshots shared by the warm-start path."""

    def _packed(self, tiny_workload):
        p = Placement(tiny_workload, 200.0)
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 0, [0, 1])
        p.assign(a, 1, [0])
        p.assign(b, 1, [1, 2])
        return p, a, b

    def test_snapshot_is_identical(self, tiny_workload):
        p, _a, _b = self._packed(tiny_workload)
        clone = p.copy()
        assert clone is not p
        assert clone.num_vms == p.num_vms
        assert clone.num_pairs == p.num_pairs
        assert clone.total_bytes == pytest.approx(p.total_bytes)
        # Group iteration order (part of the referee pinning contract)
        # and per-group member lists survive the copy.
        assert list(clone.iter_assignments()) == list(p.iter_assignments())
        np.testing.assert_array_equal(
            clone.used_bytes_array(), p.used_bytes_array()
        )
        for topic in (0, 1):
            assert clone.hosting_vms(topic) == p.hosting_vms(topic)

    def test_mutating_either_side_leaves_the_other(self, tiny_workload):
        p, a, b = self._packed(tiny_workload)
        clone = p.copy()
        clone.assign(b, 0, [2])
        clone.remove_topic(a, 1)
        assert p.members(b, 0) == []  # original unchanged
        assert sorted(p.members(a, 1)) == [0]
        assert sorted(clone.members(b, 0)) == [2]
        p.assign_range(a, 0, np.asarray([2]))
        assert sorted(clone.members(a, 0)) == [0, 1]  # clone unchanged
        clone.new_vm()
        assert p.num_vms == 2

    def test_copy_of_empty_placement(self, tiny_workload):
        p = Placement(tiny_workload, 100.0)
        clone = p.copy()
        assert clone.num_vms == 0 and clone.num_pairs == 0
        clone.new_vm()
        assert p.num_vms == 0

    def test_copy_does_not_inherit_event_log(self, tiny_workload):
        from repro.packing.warmstart import start_recording

        p, a, _b = self._packed(tiny_workload)
        events = start_recording(p)
        clone = p.copy()
        clone.assign(a, 0, [2])
        assert events == []  # the clone never writes the source's log

    def test_vm_copy_is_independent(self):
        vm = VirtualMachine(100.0)
        vm.add_pairs(3, 10.0, 2)
        twin = vm.copy()
        assert twin.used_bytes == vm.used_bytes
        assert twin.pair_count(3) == 2
        twin.add_pairs(3, 10.0, 1)
        assert vm.pair_count(3) == 2
        vm.remove_pairs(3, 10.0, 2)
        assert twin.pair_count(3) == 3
