"""Unit tests for repro.pricing (instances, cost functions, plans)."""

from __future__ import annotations

import pytest

from repro.pricing import (
    EC2_CATALOG,
    FreeBandwidthCost,
    InstanceType,
    LinearBandwidthCost,
    LinearVMCost,
    PricingPlan,
    TieredBandwidthCost,
    get_instance,
    mbps_to_bytes_per_hour,
    paper_plan,
)
from repro.pricing.instances import iter_catalog


class TestInstances:
    def test_paper_vm_types_present(self):
        large = get_instance("c3.large")
        assert large.hourly_price_usd == 0.15
        assert large.bandwidth_mbps == 64.0
        xlarge = get_instance("c3.xlarge")
        assert xlarge.hourly_price_usd == 0.30
        assert xlarge.bandwidth_mbps == 128.0

    def test_unknown_instance_raises_with_known_list(self):
        with pytest.raises(KeyError, match="c3.large"):
            get_instance("m1.small")

    def test_mbps_conversion(self):
        # 64 mbps = 8 MB/s = 28.8 GB/hour.
        assert mbps_to_bytes_per_hour(64) == pytest.approx(2.88e10)

    def test_capacity_over_period(self):
        large = get_instance("c3.large")
        assert large.capacity_bytes(10.0) == pytest.approx(2.88e11)

    def test_price_over_period(self):
        assert get_instance("c3.large").price(240.0) == pytest.approx(36.0)

    def test_catalog_price_scales_with_size(self):
        prices = [it.hourly_price_usd for it in iter_catalog()]
        assert prices == sorted(prices)
        assert len(prices) == len(EC2_CATALOG) == 5

    def test_custom_instance(self):
        it = InstanceType.custom("tiny", 0.01, 1.0)
        assert it.bandwidth_bytes_per_hour == pytest.approx(4.5e8)

    def test_invalid_instance_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("bad", -1.0, 64.0)
        with pytest.raises(ValueError):
            InstanceType("bad", 0.1, 0.0)

    def test_invalid_periods(self):
        it = get_instance("c3.large")
        with pytest.raises(ValueError):
            it.capacity_bytes(0)
        with pytest.raises(ValueError):
            it.price(-1)


class TestCostFunctions:
    def test_linear_vm_cost(self):
        c1 = LinearVMCost(36.0)
        assert c1(0) == 0.0
        assert c1(5) == 180.0

    def test_linear_vm_cost_validation(self):
        with pytest.raises(ValueError):
            LinearVMCost(-1)
        with pytest.raises(ValueError):
            LinearVMCost(1.0)(-2)

    def test_linear_bandwidth_paper_rate(self):
        c2 = LinearBandwidthCost()  # $0.12/GB default
        assert c2(1e9) == pytest.approx(0.12)
        assert c2(0) == 0.0

    def test_linear_bandwidth_validation(self):
        with pytest.raises(ValueError):
            LinearBandwidthCost(-0.1)
        with pytest.raises(ValueError):
            LinearBandwidthCost()(-1)

    def test_free_bandwidth(self):
        assert FreeBandwidthCost()(1e15) == 0.0
        with pytest.raises(ValueError):
            FreeBandwidthCost()(-1)

    def test_tiered_matches_linear_in_first_tier(self):
        tiered = TieredBandwidthCost()
        assert tiered(5e12) == pytest.approx(LinearBandwidthCost(0.12)(5e12))

    def test_tiered_marginal_rate_drops(self):
        tiered = TieredBandwidthCost()
        # 20 TB: 10 TiB-ish at 0.12 then remainder at 0.09.
        got = tiered(20480 * 1e9)
        expected = 10240 * 0.12 + 10240 * 0.09
        assert got == pytest.approx(expected)

    def test_tiered_deep_volume(self):
        tiered = TieredBandwidthCost()
        got = tiered(200000 * 1e9)
        expected = 10240 * 0.12 + 30720 * 0.09 + 61440 * 0.07 + 97600 * 0.05
        assert got == pytest.approx(expected)

    def test_tiered_validation(self):
        with pytest.raises(ValueError):
            TieredBandwidthCost([])
        with pytest.raises(ValueError):
            TieredBandwidthCost([(10.0, 0.1), (5.0, 0.05)])
        with pytest.raises(ValueError):
            TieredBandwidthCost([(10.0, 0.1)])  # last bound not inf
        with pytest.raises(ValueError):
            TieredBandwidthCost([(float("inf"), -0.1)])

    def test_tiered_monotone(self):
        tiered = TieredBandwidthCost()
        values = [tiered(x * 1e12) for x in range(0, 300, 25)]
        assert values == sorted(values)


class TestPricingPlan:
    def test_paper_plan_defaults(self):
        plan = paper_plan()
        assert plan.instance.name == "c3.large"
        assert plan.period_hours == 240.0
        # BC over ten days: 64 mbps * 240 h.
        assert plan.capacity_bytes == pytest.approx(6.912e12)
        assert plan.c1(1) == pytest.approx(36.0)
        assert plan.c2(1e9) == pytest.approx(0.12)

    def test_total_cost(self):
        plan = paper_plan()
        assert plan.total_cost(2, 1e9) == pytest.approx(72.12)

    def test_capacity_override(self):
        plan = PricingPlan(
            instance=get_instance("c3.large"),
            capacity_bytes_override=123.0,
        )
        assert plan.capacity_bytes == 123.0

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            PricingPlan(instance=get_instance("c3.large"), capacity_bytes_override=0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PricingPlan(instance=get_instance("c3.large"), period_hours=0)

    def test_with_instance(self):
        plan = paper_plan().with_instance("c3.xlarge")
        assert plan.instance.name == "c3.xlarge"
        assert plan.capacity_bytes == pytest.approx(2 * 6.912e12)

    def test_scaled_preserves_price_per_capacity(self):
        plan = paper_plan()
        scaled = plan.scaled(0.01)
        assert scaled.capacity_bytes == pytest.approx(plan.capacity_bytes * 0.01)
        assert scaled.c1(1) == pytest.approx(plan.c1(1) * 0.01)
        # Ratio invariant.
        assert scaled.c1(1) / scaled.capacity_bytes == pytest.approx(
            plan.c1(1) / plan.capacity_bytes
        )

    def test_scaled_composes(self):
        plan = paper_plan().scaled(0.1).scaled(0.5)
        assert plan.capacity_bytes == pytest.approx(6.912e12 * 0.05)
        assert plan.c1(2) == pytest.approx(36.0 * 0.05 * 2)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            paper_plan().scaled(0)

    def test_describe_mentions_instance(self):
        assert "c3.large" in paper_plan().describe()
