"""Tests for the broker runtime substrate (nodes, cluster, latency)."""

from __future__ import annotations

import math

import pytest

from repro.broker import (
    BrokerCluster,
    BrokerNode,
    Counter,
    Histogram,
    LatencyModel,
    MetricsRegistry,
    NodeOverloadError,
)
from repro.core import MCSSProblem
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan


class TestMetrics:
    def test_counter_up_only(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_quantiles(self):
        h = Histogram()
        for v in [1, 2, 4, 8, 1000]:
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(203.0)
        assert h.max == 1000
        assert h.quantile(0.5) <= h.quantile(0.99)

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            Histogram(num_buckets=1)
        h = Histogram()
        with pytest.raises(ValueError):
            h.observe(-1)
        with pytest.raises(ValueError):
            h.quantile(2)

    def test_registry_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(10)
        snap = reg.snapshot()
        assert snap["a"] == 3
        assert snap["b"] == 1.5
        assert snap["c.count"] == 1


class TestLatencyModel:
    def test_service_time(self):
        model = LatencyModel(line_rate_bytes_per_sec=1e6, cpu_overhead_seconds=0)
        assert model.service_time(1000) == pytest.approx(1e-3)

    def test_wait_grows_with_load(self):
        model = LatencyModel(line_rate_bytes_per_sec=1e6, cpu_overhead_seconds=0)
        low = model.evaluate(100, 1000)  # rho = 0.1
        high = model.evaluate(900, 1000)  # rho = 0.9
        assert low.utilization == pytest.approx(0.1)
        assert high.mean_wait_seconds > 10 * low.mean_wait_seconds

    def test_md1_halves_mm1_wait(self):
        md1 = LatencyModel(1e6, 0, service_cv2=0.0).evaluate(500, 1000)
        mm1 = LatencyModel(1e6, 0, service_cv2=1.0).evaluate(500, 1000)
        assert md1.mean_wait_seconds == pytest.approx(mm1.mean_wait_seconds / 2)

    def test_saturation_reports_infinity(self):
        model = LatencyModel(1e6, 0)
        sat = model.evaluate(2000, 1000)  # rho = 2
        assert sat.saturated
        assert math.isinf(sat.mean_wait_seconds)

    def test_pk_formula_value(self):
        # M/D/1 at rho=0.5, S=1ms: W = 0.5 * 1ms / (2 * 0.5) = 0.5ms.
        model = LatencyModel(1e6, 0, service_cv2=0.0)
        lat = model.evaluate(500, 1000)
        assert lat.mean_wait_seconds == pytest.approx(5e-4)
        assert lat.p99_wait_seconds == pytest.approx(5e-4 * math.log(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(0)
        model = LatencyModel(1e6)
        with pytest.raises(ValueError):
            model.evaluate(-1, 100)
        with pytest.raises(ValueError):
            model.service_time(0)


class TestBrokerNode:
    def test_subscribe_accounting(self):
        node = BrokerNode(0, capacity_bytes_per_period=100.0, message_bytes=1.0)
        node.subscribe(7, 1, topic_rate=10.0)
        # ingest 10 + delivery 10 = 20 bytes.
        assert node.used_bytes == pytest.approx(20.0)
        node.subscribe(7, 2, topic_rate=10.0)
        assert node.used_bytes == pytest.approx(30.0)

    def test_subscribe_idempotent(self):
        node = BrokerNode(0, 100.0, 1.0)
        node.subscribe(7, 1, 10.0)
        node.subscribe(7, 1, 10.0)
        assert node.num_pairs == 1

    def test_overload_rejected(self):
        node = BrokerNode(0, 25.0, 1.0)
        node.subscribe(1, 1, 10.0)  # 20 used
        with pytest.raises(NodeOverloadError):
            node.subscribe(2, 1, 10.0)  # needs 20 more

    def test_unsubscribe_drops_feed(self):
        node = BrokerNode(0, 100.0, 1.0)
        node.subscribe(7, 1, 10.0)
        node.unsubscribe(7, 1)
        assert not node.hosts_topic(7)
        assert node.used_bytes == 0.0

    def test_unsubscribe_unknown(self):
        node = BrokerNode(0, 100.0, 1.0)
        with pytest.raises(KeyError):
            node.unsubscribe(7, 1)

    def test_rate_update_can_overload(self):
        node = BrokerNode(0, 100.0, 1.0)
        node.subscribe(7, 1, 10.0)
        node.update_topic_rate(7, 80.0)
        assert node.utilization > 1.0  # allowed; caller rebalances

    def test_dispatch_meters(self):
        node = BrokerNode(0, 100.0, 2.0)
        node.subscribe(7, 1, 10.0)
        node.subscribe(7, 2, 10.0)
        sent = node.dispatch(7, count=3)
        assert sent == 6
        snap = node.metrics.snapshot()
        assert snap["events_ingested"] == 3
        assert snap["notifications_sent"] == 6
        assert snap["egress_bytes"] == 12.0

    def test_dispatch_unhosted_topic_noop(self):
        node = BrokerNode(0, 100.0, 1.0)
        assert node.dispatch(9) == 0


class TestBrokerCluster:
    @pytest.fixture
    def solved(self, small_zipf):
        problem = MCSSProblem(small_zipf, 100, make_unit_plan(5e7))
        solution = MCSSSolver.paper().solve(problem)
        return problem, solution

    def test_construction_conserves_pairs(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        assert cluster.num_nodes == solution.placement.num_vms
        assert sum(n.num_pairs for n in cluster.nodes) == solution.placement.num_pairs

    def test_publish_fans_out(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        topic = next(iter(solution.selection.topics))
        expected = solution.selection.pair_count(topic)
        assert cluster.publish(topic, count=1) == expected

    def test_subscribe_prefers_hosting_node(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        topic = next(iter(solution.selection.topics))
        hosts_before = cluster.hosting_nodes(topic)
        node_id = cluster.subscribe(topic, subscriber=10_000)
        # Served from an existing host when one has room.
        if hosts_before:
            assert node_id in hosts_before or cluster.nodes[node_id].hosts_topic(topic)

    def test_unsubscribe_roundtrip(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        topic = next(iter(solution.selection.topics))
        cluster.subscribe(topic, subscriber=10_000)
        node_id = cluster.unsubscribe(topic, subscriber=10_000)
        assert 10_000 not in cluster.nodes[node_id].subscribers_of(topic)
        with pytest.raises(KeyError):
            cluster.unsubscribe(topic, subscriber=10_000)

    def test_placement_roundtrip(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        snapshot = cluster.to_placement()
        assert snapshot.num_pairs == solution.placement.num_pairs
        assert snapshot.total_bytes == pytest.approx(solution.placement.total_bytes)

    def test_latency_report_stable_fleet(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        report = cluster.latency_report(period_seconds=864_000.0)
        # Every VM was packed under BC, so rho < 1 everywhere...
        assert not report.any_saturated
        assert 0 < report.max_utilization <= 1.0
        assert report.mean_sojourn_seconds > 0

    def test_unknown_topic_subscribe(self, solved):
        problem, solution = solved
        cluster = BrokerCluster(problem, solution.placement)
        with pytest.raises(KeyError):
            cluster.subscribe(10**9, 0)
