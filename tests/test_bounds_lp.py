"""Tests for the LP-relaxation lower bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import best_lower_bound, lower_bound, lp_lower_bound
from repro.core import MCSSProblem, Workload
from repro.exact import solve_exact
from repro.pricing import TieredBandwidthCost, PricingPlan, get_instance
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan, random_workload


class TestLPBoundSoundness:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("tau", [3, 12, 40])
    def test_below_heuristic(self, seed, tau):
        rng = np.random.default_rng(seed + 300)
        w = random_workload(rng, max_topics=8, max_subscribers=10)
        capacity = 2.5 * 2.0 * float(w.event_rates.max())
        problem = MCSSProblem(w, tau, make_unit_plan(capacity, vm_price=4.0))
        solution = MCSSSolver.paper().solve(problem)
        lp = lp_lower_bound(problem)
        assert lp.total_usd <= solution.cost.total_usd * (1 + 1e-6)

    def test_below_exact_optimum(self):
        w = Workload([4.0, 7.0, 3.0], [[0, 1], [1, 2], [0, 2]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 6, make_unit_plan(20.0, vm_price=3.0))
        exact = solve_exact(problem, max_vms=3)
        lp = lp_lower_bound(problem)
        assert lp.total_usd <= exact.cost.total_usd * (1 + 1e-6)

    def test_pays_for_ingest_unlike_alg5(self):
        # One subscriber per topic, tau above every rate sum: every
        # pair is forced, so the true volume is out + in = 2x the
        # outgoing.  Algorithm 5 charges only the outgoing; the LP
        # charges both and is strictly tighter here.
        w = Workload([10.0, 10.0], [[0], [1]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 1000, make_unit_plan(100.0, vm_price=0.0,
                                                      usd_per_gb=1e9))
        alg5 = lower_bound(problem)
        lp = lp_lower_bound(problem)
        assert lp.total_usd > alg5.total_usd
        # And it is exact on this instance: volume = 40 events.
        assert lp.total_bytes == pytest.approx(40.0)

    def test_alg5_can_win_at_small_tau(self):
        # tau=1 with only big topics: Algorithm 5's min-rate clause
        # charges a whole topic (10); the LP serves a 1/10 fraction.
        w = Workload([10.0], [[0]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 1, make_unit_plan(100.0, vm_price=0.0,
                                                   usd_per_gb=1e9))
        alg5 = lower_bound(problem)
        lp = lp_lower_bound(problem)
        assert alg5.total_usd > lp.total_usd

    def test_best_bound_takes_max(self):
        w = Workload([10.0], [[0]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 1, make_unit_plan(100.0, vm_price=0.0,
                                                   usd_per_gb=1e9))
        best = best_lower_bound(problem)
        assert best.total_usd == pytest.approx(
            max(lower_bound(problem).total_usd, lp_lower_bound(problem).total_usd)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_best_bound_sound(self, seed):
        rng = np.random.default_rng(seed + 900)
        w = random_workload(rng, max_topics=6, max_subscribers=8)
        capacity = 3.0 * 2.0 * float(w.event_rates.max())
        problem = MCSSProblem(w, 9, make_unit_plan(capacity, vm_price=2.0))
        solution = MCSSSolver.paper().solve(problem)
        assert best_lower_bound(problem).total_usd <= solution.cost.total_usd * (
            1 + 1e-6
        )


class TestLPBoundEdges:
    def test_empty_workload_pairs(self):
        w = Workload([5.0], [[]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 10, make_unit_plan(100.0))
        assert lp_lower_bound(problem).total_usd == 0.0

    def test_nonlinear_c2_rejected(self, tiny_workload):
        plan = PricingPlan(
            instance=get_instance("c3.large"),
            bandwidth_cost=TieredBandwidthCost(),
        )
        problem = MCSSProblem(tiny_workload, 30, plan)
        from repro.bounds.lp import LPBoundError

        with pytest.raises(LPBoundError, match="linear"):
            lp_lower_bound(problem)

    def test_fractional_vm_cost_component(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 30, make_unit_plan(80.0, vm_price=10.0))
        lp = lp_lower_bound(problem)
        # Full load is 100 event-bytes over BC=80 -> Y >= 1.25.
        assert lp.vm_usd == pytest.approx(12.5)
        assert lp.num_vms == 2  # display rounding
