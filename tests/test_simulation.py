"""Tests for the deployment simulator (discrete-event replay)."""

from __future__ import annotations

import pytest

from repro.core import MCSSProblem, PairSelection
from repro.simulation import SimulationConfig, simulate_placement
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan


@pytest.fixture
def solved(small_zipf):
    problem = MCSSProblem(small_zipf, 100, make_unit_plan(5e7))
    solution = MCSSSolver.paper().solve(problem)
    return problem, solution.placement


class TestDeterministicReplay:
    def test_metering_matches_analytic(self, solved):
        problem, placement = solved
        report = simulate_placement(
            problem, placement, SimulationConfig(horizon_fraction=1.0)
        )
        # Deterministic publishers at full horizon: metered bytes must
        # equal the analytic Equation-(2) accounting almost exactly.
        assert report.metering_error < 0.01
        assert report.satisfied

    def test_partial_horizon_scales(self, solved):
        problem, placement = solved
        report = simulate_placement(
            problem, placement, SimulationConfig(horizon_fraction=0.25)
        )
        assert report.analytic_rate_bytes == pytest.approx(
            placement.total_bytes * 0.25
        )
        assert report.metering_error < 0.05
        assert report.satisfied

    def test_per_vm_meters_respect_capacity(self, solved):
        problem, placement = solved
        report = simulate_placement(
            problem, placement, SimulationConfig(horizon_fraction=1.0)
        )
        for meter in report.vm_meters:
            assert meter.total_bytes <= problem.capacity_bytes * 1.02

    def test_event_conservation(self, solved):
        problem, placement = solved
        report = simulate_placement(
            problem, placement, SimulationConfig(horizon_fraction=1.0)
        )
        ingested = sum(m.events_ingested for m in report.vm_meters)
        delivered = sum(m.events_delivered for m in report.vm_meters)
        assert ingested >= report.horizon_events  # replicas ingest too
        assert delivered >= report.horizon_events  # fan-out >= 1 pair


class TestUnsatisfiedDetection:
    def test_starved_subscriber_flagged(self, tiny_problem):
        placement = tiny_problem.empty_placement()
        b = placement.new_vm()
        placement.assign(b, 1, [0, 1, 2])  # v0/v1 need 30, get 10
        report = simulate_placement(
            tiny_problem, placement, SimulationConfig(horizon_fraction=1.0)
        )
        assert not report.satisfied
        assert set(report.unsatisfied_subscribers) == {0, 1}

    def test_duplicate_pair_counts_once(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 10, make_unit_plan(100.0))
        placement = problem.empty_placement()
        a, b = placement.new_vm(), placement.new_vm()
        placement.assign(a, 1, [0])
        placement.assign(b, 1, [0])  # replica must not double delivery
        report = simulate_placement(
            problem, placement, SimulationConfig(horizon_fraction=1.0)
        )
        assert report.delivered_counts[0] == 10


class TestPoisson:
    def test_poisson_close_on_average(self, solved):
        problem, placement = solved
        report = simulate_placement(
            problem,
            placement,
            SimulationConfig(horizon_fraction=0.5, poisson=True, seed=4),
        )
        assert report.metering_error < 0.2
        assert report.satisfied  # tolerance widened for sampling noise

    def test_poisson_deterministic_given_seed(self, solved):
        problem, placement = solved
        cfg = SimulationConfig(horizon_fraction=0.2, poisson=True, seed=9)
        a = simulate_placement(problem, placement, cfg)
        b = simulate_placement(problem, placement, cfg)
        assert a.horizon_events == b.horizon_events
        assert a.total_metered_bytes == b.total_metered_bytes


class TestConfig:
    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            SimulationConfig(horizon_fraction=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(horizon_fraction=1.5)

    def test_summary_readable(self, solved):
        problem, placement = solved
        report = simulate_placement(problem, placement)
        text = report.summary()
        assert "events" in text and "GB" in text
