"""Tests for the MCSS lower bound (Algorithm 5 / Theorem A.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import lower_bound, lower_bound_bytes
from repro.core import MCSSProblem, Workload
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan, random_workload


class TestLowerBoundValues:
    def test_tiny_instance_by_hand(self, tiny_workload):
        # tau=30: v0, v1 need 30; v2 needs min(30, 10)=10 but its only
        # topic has rate 10 -> max(10, 10) = 10.  Total = 70 events.
        problem = MCSSProblem(tiny_workload, 30, make_unit_plan(80.0))
        assert lower_bound_bytes(problem) == pytest.approx(70.0)
        bound = lower_bound(problem)
        assert bound.num_vms == 1  # ceil(70/80)
        assert bound.total_usd == pytest.approx(10.0 + 70 / 1e9 * 0.12)

    def test_min_rate_clause(self):
        # tau=5 but the only topics have rates 20 and 30: serving v
        # costs at least min(20, 30) = 20, not tau=5.
        w = Workload([20.0, 30.0], [[0, 1]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 5, make_unit_plan(100.0))
        assert lower_bound_bytes(problem) == pytest.approx(20.0)

    def test_message_size_scales(self):
        w = Workload([10.0], [[0]], message_size_bytes=200.0)
        problem = MCSSProblem(w, 10, make_unit_plan(1e6))
        assert lower_bound_bytes(problem) == pytest.approx(2000.0)

    def test_empty_interest_contributes_nothing(self):
        # v0 (no interests) adds 0; v1 adds max(tau_v=5, min rate 10)
        # = 10 via the min-rate clause.
        w = Workload([10.0], [[], [0]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 5, make_unit_plan(100.0))
        assert lower_bound_bytes(problem) == pytest.approx(10.0)

    def test_vm_count_rounds_up(self):
        w = Workload([10.0], [[0]] * 5, message_size_bytes=1.0)
        problem = MCSSProblem(w, 10, make_unit_plan(30.0))
        bound = lower_bound(problem)
        assert bound.num_vms == 2  # ceil(50/30)

    def test_forced_ingest_tightens(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 30, make_unit_plan(100.0))
        plain = lower_bound_bytes(problem)
        tight = lower_bound_bytes(problem, include_forced_ingest=True)
        # tau=30 >= every interest sum -> all topics forced -> +30.
        assert tight == pytest.approx(plain + 30.0)

    def test_forced_ingest_noop_when_tau_small(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 5, make_unit_plan(100.0))
        assert lower_bound_bytes(problem, True) == pytest.approx(
            lower_bound_bytes(problem, False)
        )


class TestLowerBoundSoundness:
    """The bound must never exceed the cost of any feasible solution."""

    @pytest.mark.parametrize("tau", [3, 12, 40])
    @pytest.mark.parametrize("seed", range(10))
    def test_below_heuristic_solutions(self, seed, tau):
        rng = np.random.default_rng(seed)
        w = random_workload(rng, max_topics=10, max_subscribers=12)
        capacity = 2.5 * 2.0 * float(w.event_rates.max())
        problem = MCSSProblem(w, tau, make_unit_plan(capacity))
        for solver in (MCSSSolver.paper(), MCSSSolver.naive()):
            solution = solver.solve(problem)
            for tight in (False, True):
                bound = lower_bound(problem, include_forced_ingest=tight)
                assert bound.total_usd <= solution.cost.total_usd * (1 + 1e-9)

    def test_below_exact_optimum(self):
        from repro.exact import solve_exact

        w = Workload([4.0, 7.0, 3.0], [[0, 1], [1, 2], [0, 2]], message_size_bytes=1.0)
        problem = MCSSProblem(w, 6, make_unit_plan(20.0))
        exact = solve_exact(problem, max_vms=3)
        for tight in (False, True):
            bound = lower_bound(problem, include_forced_ingest=tight)
            assert bound.total_usd <= exact.cost.total_usd * (1 + 1e-9)
