"""Tests for KnapsackSelectPairs (exact per-subscriber selection)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MCSSProblem, Workload, all_satisfied
from repro.selection import GreedySelectPairs, KnapsackSelectPairs, min_cover_subset
from tests.conftest import make_unit_plan


def brute_force_min_cover(rates, need):
    """Smallest rate-sum subset covering `need`, by enumeration."""
    best = None
    for r in range(len(rates) + 1):
        for combo in itertools.combinations(range(len(rates)), r):
            total = sum(rates[i] for i in combo)
            if total >= need and (best is None or total < best):
                best = total
    return best


class TestMinCoverSubset:
    def test_zero_need(self):
        assert min_cover_subset([3.0, 2.0], 0.0) == []

    def test_single_item(self):
        assert min_cover_subset([5.0], 3.0) == [0]

    def test_picks_cheaper_combination_than_greedy(self):
        # Greedy (largest-fitting-first) pays 7 + 5 = 12 for need 10;
        # the DP finds 5 + 6 = 11.
        picked = min_cover_subset([7.0, 5.0, 6.0], 10.0)
        assert sorted(picked) == [1, 2]

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="cannot cover"):
            min_cover_subset([1.0, 2.0], 10.0)

    def test_bad_resolution(self):
        with pytest.raises(ValueError):
            min_cover_subset([1.0], 1.0, resolution=0)

    @given(
        rates=st.lists(st.integers(min_value=1, max_value=25), min_size=1, max_size=9),
        need=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, rates, need):
        rates_f = [float(r) for r in rates]
        if sum(rates) < need:
            with pytest.raises(ValueError):
                min_cover_subset(rates_f, float(need))
            return
        picked = min_cover_subset(rates_f, float(need))
        total = sum(rates_f[i] for i in picked)
        assert total >= need
        assert total == pytest.approx(brute_force_min_cover(rates_f, need))

    def test_result_indices_unique(self):
        picked = min_cover_subset([2.0, 2.0, 2.0], 6.0)
        assert sorted(picked) == [0, 1, 2]


class TestKnapsackSelectPairs:
    def test_satisfies_all(self, small_zipf):
        for tau in (5, 50):
            problem = MCSSProblem(small_zipf, tau, make_unit_plan(1e12))
            selection = KnapsackSelectPairs().select(problem)
            assert all_satisfied(small_zipf, selection.topics_by_subscriber(), tau)

    def test_never_worse_than_greedy(self, small_zipf):
        # DP is per-subscriber optimal; greedy is per-subscriber
        # heuristic; the single-VM bandwidth must satisfy DP <= GSP.
        for tau in (5, 50, 500):
            problem = MCSSProblem(small_zipf, tau, make_unit_plan(1e12))
            dp = KnapsackSelectPairs().select(problem)
            greedy = GreedySelectPairs().select(problem)
            assert dp.outgoing_rate(small_zipf) <= greedy.outgoing_rate(
                small_zipf
            ) * (1 + 1e-9)

    def test_beats_greedy_on_crafted_instance(self):
        w = Workload([7.0, 5.0, 6.0], [[0, 1, 2]])
        problem = MCSSProblem(w, 10, make_unit_plan(1e9))
        dp = KnapsackSelectPairs().select(problem)
        greedy = GreedySelectPairs().select(problem)
        assert dp.outgoing_rate(w) == 11.0
        assert greedy.outgoing_rate(w) == 12.0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            KnapsackSelectPairs(resolution=0)
