"""Tests for GreedySelectPairs: unit, equivalence, and properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MCSSProblem, Workload, all_satisfied
from repro.selection import (
    GreedySelectPairs,
    ReferenceGreedySelectPairs,
    benefit_cost_ratio,
)
from tests.conftest import make_unit_plan, random_workload


class TestBenefitCostRatio:
    def test_satisfied_subscriber_zero_benefit(self):
        assert benefit_cost_ratio(5.0, 0.0) == 0.0
        assert benefit_cost_ratio(5.0, -3.0) == 0.0

    def test_non_exceeding_topics_share_ratio(self):
        # Algorithm 1: for ev <= rem the ratio is 1/(2*rem) regardless
        # of the topic's own rate.
        assert benefit_cost_ratio(3.0, 10.0) == pytest.approx(1 / 20)
        assert benefit_cost_ratio(10.0, 10.0) == pytest.approx(1 / 20)

    def test_exceeding_topic_penalized_by_rate(self):
        assert benefit_cost_ratio(20.0, 10.0) == pytest.approx(1 / 40)
        assert benefit_cost_ratio(40.0, 10.0) == pytest.approx(1 / 80)

    def test_exceeding_worse_than_fitting(self):
        assert benefit_cost_ratio(20.0, 10.0) < benefit_cost_ratio(9.0, 10.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            benefit_cost_ratio(0.0, 5.0)


class TestGreedySchedule:
    def _select_for_single(self, rates, tau):
        """Run GSP for one subscriber over the given topic rates."""
        w = Workload(rates, [list(range(len(rates)))], message_size_bytes=1.0)
        plan = make_unit_plan(10 * sum(rates))
        sel = GreedySelectPairs().select(MCSSProblem(w, tau, plan))
        return sorted(t for t, _v in sel)

    def test_prefers_largest_fitting_topic(self):
        # tau=10: rates 8 and 3 both fit; greedy takes 8 first, then
        # needs 2 more and takes 3.
        assert self._select_for_single([8.0, 3.0], 10) == [0, 1]

    def test_stops_once_satisfied(self):
        # tau=8: the rate-8 topic alone suffices.
        assert self._select_for_single([8.0, 3.0], 8) == [0]

    def test_overshoot_picks_smallest_exceeding(self):
        # tau=5, all rates exceed: pick the cheapest one (rate 7).
        assert self._select_for_single([20.0, 7.0, 12.0], 5) == [1]

    def test_mixed_fit_then_overshoot(self):
        # tau=10: largest fitting is 8 (rem 2); then 6 and 3 both
        # exceed rem, so the cheapest exceeding topic (3) closes it.
        assert self._select_for_single([6.0, 3.0, 20.0, 8.0], 10) == [1, 3]

    def test_tau_above_sum_selects_everything(self):
        assert self._select_for_single([5.0, 2.0], 1000) == [0, 1]

    def test_tau_zero_selects_nothing(self):
        assert self._select_for_single([5.0, 2.0], 0) == []

    def test_equal_rate_tie_breaks_to_smaller_id(self):
        assert self._select_for_single([4.0, 4.0], 4) == [0]

    def test_overshoot_tie_breaks_to_smaller_id(self):
        assert self._select_for_single([9.0, 9.0], 5) == [0]


class TestSatisfactionInvariant:
    @pytest.mark.parametrize("tau", [1, 5, 17, 100, 100000])
    def test_selection_satisfies_all(self, small_zipf, tau):
        problem = MCSSProblem(small_zipf, tau, make_unit_plan(1e12))
        selection = GreedySelectPairs().select(problem)
        assert all_satisfied(
            small_zipf, selection.topics_by_subscriber(), tau
        )

    def test_empty_interest_subscriber_ignored(self):
        w = Workload([5.0], [[], [0]])
        problem = MCSSProblem(w, 3, make_unit_plan(1e9))
        selection = GreedySelectPairs().select(problem)
        assert selection.num_pairs == 1


class TestFastMatchesReference:
    """The O(k log k) rewrite must equal literal Algorithm 2 exactly."""

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("tau", [3, 10, 50])
    def test_random_instances(self, seed, tau):
        rng = np.random.default_rng(seed)
        workload = random_workload(rng)
        problem = MCSSProblem(workload, tau, make_unit_plan(1e9))
        fast = GreedySelectPairs().select(problem)
        reference = ReferenceGreedySelectPairs().select(problem)
        assert fast == reference

    @given(
        rates=st.lists(
            st.integers(min_value=1, max_value=30), min_size=1, max_size=10
        ),
        tau=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=200, deadline=None)
    def test_single_subscriber_fuzz(self, rates, tau):
        w = Workload(
            [float(r) for r in rates],
            [list(range(len(rates)))],
            message_size_bytes=1.0,
        )
        problem = MCSSProblem(w, tau, make_unit_plan(4.0 * sum(rates)))
        fast = GreedySelectPairs().select(problem)
        reference = ReferenceGreedySelectPairs().select(problem)
        assert fast == reference


class TestRegistry:
    def test_names(self):
        assert GreedySelectPairs.name == "gsp"
        assert ReferenceGreedySelectPairs.name == "gsp-reference"
