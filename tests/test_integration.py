"""End-to-end integration tests: trace -> solve -> deploy -> bill."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import lower_bound
from repro.cloud import deploy_and_bill
from repro.core import MCSSProblem, validate_placement
from repro.dynamic import ChurnConfig, ChurnModel, IncrementalReprovisioner
from repro.exact import solve_exact
from repro.experiments import ExperimentScale, make_plan, make_trace
from repro.simulation import SimulationConfig
from repro.solver import MCSSSolver
from repro.workloads import load_workload, sample_subscribers, save_workload
from tests.conftest import make_unit_plan


SCALE = ExperimentScale(num_users=1500, seed=17, target_vms=20)


@pytest.fixture(scope="module", params=["spotify", "twitter"])
def trace(request):
    return make_trace(request.param, SCALE)


class TestFullPipeline:
    def test_generate_solve_deploy_bill(self, trace):
        plan = make_plan("c3.large", trace.workload, SCALE)
        problem = MCSSProblem(trace.workload, 100, plan)
        solution = MCSSSolver.paper().solve(problem)

        deployment = deploy_and_bill(
            problem, solution.placement, SimulationConfig(horizon_fraction=1.0)
        )
        assert deployment.report.satisfied
        assert deployment.billing_gap < 0.02
        bound = lower_bound(problem)
        assert bound.total_usd <= deployment.analytic_total_usd * (1 + 1e-9)

    def test_both_instance_types_same_workload(self, trace):
        # Figure 2a vs 2b: the xlarge fleet is roughly half the size.
        large = MCSSProblem(
            trace.workload, 100, make_plan("c3.large", trace.workload, SCALE)
        )
        xlarge = MCSSProblem(
            trace.workload, 100, make_plan("c3.xlarge", trace.workload, SCALE)
        )
        a = MCSSSolver.paper().solve(large)
        b = MCSSSolver.paper().solve(xlarge)
        assert b.cost.num_vms < a.cost.num_vms
        assert b.cost.num_vms >= a.cost.num_vms / 4

    def test_sampled_trace_roundtrip_through_disk(self, trace, tmp_path):
        sampled = sample_subscribers(trace.workload, 0.5, seed=1)
        path = tmp_path / "sampled.npz"
        save_workload(sampled, path)
        loaded = load_workload(path)
        plan = make_plan("c3.large", loaded, SCALE)
        problem = MCSSProblem(loaded, 50, plan)
        solution = MCSSSolver.paper().solve(problem)
        assert solution.validation.ok


class TestHeuristicVsExactSmall:
    def test_two_stage_near_optimal_on_small_instances(self):
        # Section III-C's claim, quantified: across seeds the two-stage
        # heuristic lands within 2x of the true optimum (it is usually
        # far closer; 2x is the hard ceiling we enforce).
        rng = np.random.default_rng(99)
        worst = 1.0
        for _ in range(6):
            from tests.conftest import random_workload

            w = random_workload(rng, max_topics=4, max_subscribers=4, max_rate=9)
            capacity = 2.5 * 2.0 * float(w.event_rates.max())
            problem = MCSSProblem(w, 7, make_unit_plan(capacity, vm_price=5.0))
            exact = solve_exact(problem, max_vms=4)
            heuristic = MCSSSolver.paper().solve(problem)
            ratio = heuristic.cost.total_usd / exact.cost.total_usd
            worst = max(worst, ratio)
        assert worst < 2.0


class TestDynamicScenario:
    def test_week_of_churn(self, trace):
        plan = make_plan("c3.large", trace.workload, SCALE)
        problem = MCSSProblem(trace.workload, 50, plan)
        reprov = IncrementalReprovisioner(problem, rebuild_threshold=1.25)
        model = ChurnModel(
            trace.workload, ChurnConfig(0.02, 0.02, 0.05), seed=3
        )
        costs = []
        for _ in range(3):
            epoch = reprov.step(model.step())
            costs.append(epoch.cost.total_usd)
            audit = validate_placement(reprov.problem, reprov.placement())
            assert audit.ok
            assert epoch.drift <= 1.25 + 1e-6
        assert all(c > 0 for c in costs)
