"""Tests for the two-stage MCSSSolver pipeline."""

from __future__ import annotations

import pytest

from repro.core import MCSSProblem, validate_placement
from repro.packing import CustomBinPacking, FFBinPacking
from repro.selection import GreedySelectPairs, RandomSelectPairs
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan


@pytest.fixture
def problem(small_zipf):
    return MCSSProblem(small_zipf, 100, make_unit_plan(5e7))


class TestPresets:
    def test_paper_preset(self):
        solver = MCSSSolver.paper()
        assert isinstance(solver.selector, GreedySelectPairs)
        assert isinstance(solver.packer, CustomBinPacking)
        opts = solver.packer.options
        assert opts.expensive_topic_first and opts.most_free_vm_first
        assert opts.cost_based_decision

    def test_naive_preset(self):
        solver = MCSSSolver.naive()
        assert isinstance(solver.selector, RandomSelectPairs)
        assert isinstance(solver.packer, FFBinPacking)

    def test_ladder_a_is_gsp_ffbp(self):
        solver = MCSSSolver.ladder("a")
        assert isinstance(solver.selector, GreedySelectPairs)
        assert isinstance(solver.packer, FFBinPacking)

    @pytest.mark.parametrize("rung", ["b", "c", "d", "e"])
    def test_ladder_rungs_use_cbp(self, rung):
        solver = MCSSSolver.ladder(rung)
        assert isinstance(solver.packer, CustomBinPacking)

    def test_from_names(self):
        solver = MCSSSolver.from_names("rsp", "cbp")
        assert isinstance(solver.selector, RandomSelectPairs)
        assert isinstance(solver.packer, CustomBinPacking)

    def test_from_names_unknown(self):
        with pytest.raises(KeyError):
            MCSSSolver.from_names("nope", "cbp")
        with pytest.raises(KeyError):
            MCSSSolver.from_names("gsp", "nope")


class TestSolve:
    def test_solution_fields(self, problem):
        solution = MCSSSolver.paper().solve(problem)
        assert solution.problem is problem
        assert solution.selector_name == "gsp"
        assert solution.packer_name == "cbp"
        assert solution.selection_seconds >= 0
        assert solution.packing_seconds >= 0
        assert solution.total_seconds == pytest.approx(
            solution.selection_seconds + solution.packing_seconds
        )
        assert solution.validation.ok

    def test_cost_matches_placement(self, problem):
        solution = MCSSSolver.paper().solve(problem)
        recomputed = problem.cost_of(solution.placement)
        assert solution.cost.total_usd == pytest.approx(recomputed.total_usd)

    def test_placement_covers_selection(self, problem):
        solution = MCSSSolver.paper().solve(problem)
        assert solution.placement.to_selection() == solution.selection

    def test_validation_enabled_by_default(self, problem):
        # Produced placements are audited; a healthy run passes.
        solution = MCSSSolver.paper().solve(problem)
        assert validate_placement(problem, solution.placement).ok

    def test_paper_beats_naive(self, problem):
        paper = MCSSSolver.paper().solve(problem)
        naive = MCSSSolver.naive().solve(problem)
        assert paper.cost.total_usd <= naive.cost.total_usd

    def test_summary_mentions_names(self, problem):
        text = MCSSSolver.paper().solve(problem).summary()
        assert "gsp" in text and "cbp" in text


class TestSolveWithSelection:
    """Stage-2-only entry point: reuse one Stage-1 selection across packers."""

    def test_matches_full_solve(self, problem):
        solver = MCSSSolver.paper()
        full = solver.solve(problem)
        shared = GreedySelectPairs().select(problem)
        reused = solver.solve_with_selection(problem, shared, selection_seconds=0.5)
        # GSP is deterministic, so packing the shared selection must
        # reproduce the full solve exactly.
        assert reused.selection == full.selection
        assert reused.cost.total_usd == pytest.approx(full.cost.total_usd)
        assert reused.cost.num_vms == full.cost.num_vms
        assert reused.selection_seconds == 0.5
        assert reused.validation.ok

    def test_shared_selection_across_rungs(self, problem):
        shared = GreedySelectPairs().select(problem)
        for rung in ("a", "b", "c", "d", "e"):
            solution = MCSSSolver.ladder(rung).solve_with_selection(problem, shared)
            assert solution.selection is shared
            assert solution.placement.num_pairs == shared.num_pairs
            assert solution.validation.ok

    def test_insufficient_selection_rejected(self, problem):
        from repro.core import PairSelection

        with pytest.raises(ValueError):
            MCSSSolver.paper().solve_with_selection(problem, PairSelection({}))

    def test_warm_start_threading(self, problem):
        # emit_warm_start returns a handle; passing it to another rung
        # must reproduce that rung's cold solve bit for bit.
        shared = GreedySelectPairs().select(problem)
        base = MCSSSolver.ladder("c").solve_with_selection(
            problem, shared, emit_warm_start=True
        )
        assert base.warm_start is not None and base.warm_start.trace is not None
        for rung in ("d", "e"):
            solver = MCSSSolver.ladder(rung)
            cold = solver.solve_with_selection(problem, shared)
            warm = solver.solve_with_selection(
                problem, shared, warm_start=base.warm_start
            )
            assert warm.warm_start is None  # not asked to emit
            assert warm.cost.num_vms == cold.cost.num_vms
            assert warm.cost.total_usd == pytest.approx(cold.cost.total_usd)
            assert sorted(warm.placement.iter_assignments()) == sorted(
                cold.placement.iter_assignments()
            )
            assert warm.validation.ok

    def test_warm_start_ignored_by_ffbp(self, problem):
        # Packers without warm-start support accept the kwargs and
        # pack cold; no handle comes back.
        shared = GreedySelectPairs().select(problem)
        base = MCSSSolver.ladder("c").solve_with_selection(
            problem, shared, emit_warm_start=True
        )
        ffbp = MCSSSolver.ladder("a")
        solution = ffbp.solve_with_selection(
            problem, shared, warm_start=base.warm_start, emit_warm_start=True
        )
        assert solution.warm_start is None
        cold = ffbp.solve_with_selection(problem, shared)
        assert solution.cost.total_usd == pytest.approx(cold.cost.total_usd)
