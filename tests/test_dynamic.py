"""Tests for churn and incremental reprovisioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MCSSProblem, validate_placement
from repro.dynamic import (
    ChurnConfig,
    ChurnModel,
    IncrementalReprovisioner,
    LoopChurnModel,
    LoopIncrementalReprovisioner,
    WorkloadDelta,
)
from repro.workloads import zipf_workload
from tests.conftest import make_unit_plan


@pytest.fixture
def workload():
    return zipf_workload(40, 120, mean_interest=5.0, seed=9)


@pytest.fixture
def problem(workload):
    return MCSSProblem(workload, 50, make_unit_plan(4.5e7))


class TestChurnModel:
    def test_delta_reports_changes(self, workload):
        model = ChurnModel(workload, ChurnConfig(0.05, 0.05, 0.1), seed=1)
        delta = model.step()
        assert delta.subscribed or delta.unsubscribed
        assert delta.rate_changed_topics
        assert delta.workload is model.workload

    def test_subscribers_never_emptied(self, workload):
        model = ChurnModel(
            workload, ChurnConfig(unsubscribe_fraction=0.9, subscribe_fraction=0.0,
                                  rate_drift_sigma=0.0), seed=2
        )
        for _ in range(3):
            delta = model.step()
            w = delta.workload
            assert all(w.interest(v).size >= 1 for v in range(w.num_subscribers))

    def test_rates_stay_positive(self, workload):
        model = ChurnModel(
            workload, ChurnConfig(0.0, 0.0, rate_drift_sigma=1.0), seed=3
        )
        for _ in range(3):
            assert model.step().workload.event_rates.min() >= 1

    def test_no_churn_is_identity(self, workload):
        model = ChurnModel(workload, ChurnConfig(0.0, 0.0, 0.0), seed=4)
        delta = model.step()
        assert not delta.subscribed
        assert not delta.unsubscribed
        assert not delta.rate_changed_topics
        assert delta.workload.num_pairs == workload.num_pairs

    def test_deterministic(self, workload):
        a = ChurnModel(workload, seed=7).step()
        b = ChurnModel(workload, seed=7).step()
        assert a.subscribed == b.subscribed
        assert a.unsubscribed == b.unsubscribed

    def test_touched_subscribers(self, workload):
        model = ChurnModel(workload, ChurnConfig(0.05, 0.05, 0.0), seed=5)
        delta = model.step()
        touched = delta.touched_subscribers
        for _t, v in delta.subscribed:
            assert v in touched

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ChurnConfig(unsubscribe_fraction=1.0)
        with pytest.raises(ValueError):
            ChurnConfig(subscribe_fraction=-0.1)
        with pytest.raises(ValueError):
            ChurnConfig(rate_drift_sigma=-1)


class TestIncrementalReprovisioner:
    def test_initial_state_feasible(self, problem):
        reprov = IncrementalReprovisioner(problem)
        report = validate_placement(reprov.problem, reprov.placement())
        assert report.ok

    def test_epochs_stay_feasible(self, problem):
        reprov = IncrementalReprovisioner(problem)
        model = ChurnModel(problem.workload, ChurnConfig(0.03, 0.03, 0.05), seed=6)
        for _ in range(4):
            delta = model.step()
            epoch = reprov.step(delta)
            current = reprov.problem
            audit = validate_placement(current, reprov.placement())
            assert audit.ok, str(audit)
            assert epoch.cost.total_usd > 0

    def test_drift_bounded_by_rebuild(self, problem):
        reprov = IncrementalReprovisioner(problem, rebuild_threshold=1.10)
        model = ChurnModel(problem.workload, ChurnConfig(0.05, 0.05, 0.1), seed=8)
        for _ in range(5):
            epoch = reprov.step(model.step())
            assert epoch.drift <= 1.10 + 1e-6

    def test_plain_workload_accepted(self, problem):
        reprov = IncrementalReprovisioner(problem)
        model = ChurnModel(problem.workload, seed=10)
        new_workload = model.step().workload
        epoch = reprov.step(new_workload)
        assert validate_placement(reprov.problem, reprov.placement()).ok
        assert epoch.epoch == 1

    def test_incremental_moves_fewer_pairs_than_rebuild(self, problem):
        # The point of incrementality: per-epoch movement is a small
        # fraction of the workload.
        reprov = IncrementalReprovisioner(problem, rebuild_threshold=10.0)
        model = ChurnModel(problem.workload, ChurnConfig(0.02, 0.02, 0.0), seed=11)
        delta = model.step()
        epoch = reprov.step(delta)
        assert not epoch.rebuilt
        touched = epoch.pairs_added + epoch.pairs_removed + epoch.pairs_moved
        assert touched < problem.workload.num_pairs * 0.2

    def test_invalid_threshold(self, problem):
        with pytest.raises(ValueError):
            IncrementalReprovisioner(problem, rebuild_threshold=0.9)

    def test_invalid_cadence(self, problem):
        with pytest.raises(ValueError):
            IncrementalReprovisioner(problem, fresh_solve_every=0)

    def test_selection_matches_placement(self, problem):
        reprov = IncrementalReprovisioner(problem)
        model = ChurnModel(problem.workload, seed=12)
        reprov.step(model.step())
        assert reprov.selection() == reprov.placement().to_selection()


class TestWorkloadDelta:
    def test_array_and_tuple_views_agree(self, workload):
        delta = ChurnModel(workload, ChurnConfig(0.1, 0.1, 0.1), seed=21).step()
        assert delta.subscribed == tuple(
            zip(delta.subscribed_topics.tolist(), delta.subscribed_subscribers.tolist())
        )
        assert delta.unsubscribed == tuple(
            zip(
                delta.unsubscribed_topics.tolist(),
                delta.unsubscribed_subscribers.tolist(),
            )
        )
        assert set(delta.rate_changed_topics) == set(delta.changed_topics.tolist())
        touched = delta.touched_array()
        assert np.array_equal(touched, np.unique(touched))
        assert delta.touched_subscribers == set(touched.tolist())

    def test_from_pairs_roundtrip(self, workload):
        delta = WorkloadDelta.from_pairs(
            workload, [(1, 2), (0, 3)], [(2, 4)], [0, 5]
        )
        assert delta.subscribed == ((1, 2), (0, 3))
        assert delta.unsubscribed == ((2, 4),)
        assert delta.rate_changed_topics == (0, 5)
        assert delta.touched_subscribers == {2, 3, 4}

    def test_caller_arrays_not_frozen(self, workload):
        # The delta freezes its own views; caller-owned buffers must
        # stay writable (no setflags side effects through asarray).
        topics = np.array([1], dtype=np.int64)
        subs = np.array([2], dtype=np.int64)
        empty = np.array([], dtype=np.int64)
        delta = WorkloadDelta(workload, topics, subs, empty.copy(), empty.copy(), empty.copy())
        assert not delta.subscribed_topics.flags.writeable
        topics[0] = 7  # must not raise
        assert delta.subscribed == ((1, 2),)

    def test_mismatched_arrays_rejected(self, workload):
        with pytest.raises(ValueError):
            WorkloadDelta(
                workload,
                np.array([1]), np.array([1, 2]),
                np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
            )


class TestFreshSolveGating:
    """The per-epoch fresh solve is cadence/estimate gated by default."""

    def test_fresh_solve_skipped_in_steady_state(self, problem):
        reprov = IncrementalReprovisioner(problem, fresh_solve_every=8)
        model = ChurnModel(
            problem.workload, ChurnConfig(0.02, 0.02, 0.02), seed=31
        )
        reports = [reprov.step(model.step()) for _ in range(6)]
        skipped = [r for r in reports if not r.fresh_solved]
        assert skipped, "estimate gate never skipped a fresh solve"
        for r in skipped:
            assert r.fresh_cost is None
            assert r.fresh_estimate_usd > 0
            assert not r.rebuilt
        # Drift stays within the threshold whether measured or estimated.
        for r in reports:
            assert r.drift <= 1.15 + 1e-9

    def test_cadence_forces_fresh_solve(self, problem):
        reprov = IncrementalReprovisioner(problem, fresh_solve_every=2)
        model = ChurnModel(
            problem.workload, ChurnConfig(0.01, 0.01, 0.0), seed=32
        )
        reports = [reprov.step(model.step()) for _ in range(4)]
        # Every second epoch must carry a real fresh solve.
        assert reports[1].fresh_solved and reports[3].fresh_solved
        assert reports[1].fresh_cost is not None

    def test_cadence_one_solves_every_epoch(self, problem):
        reprov = IncrementalReprovisioner(problem, fresh_solve_every=1)
        model = ChurnModel(problem.workload, seed=33)
        for _ in range(3):
            report = reprov.step(model.step())
            assert report.fresh_solved and report.fresh_cost is not None


class TestLoopReferees:
    """The churn-loop / reprovision-loop referees stay executable specs."""

    def test_loop_churn_smoke(self, workload):
        model = LoopChurnModel(workload, ChurnConfig(0.05, 0.05, 0.1), seed=41)
        delta = model.step()
        assert delta.subscribed or delta.unsubscribed
        assert delta.workload is model.workload

    def test_loop_reprovisioner_smoke(self, problem):
        reprov = LoopIncrementalReprovisioner(problem)
        model = ChurnModel(problem.workload, seed=42)
        report = reprov.step(model.step())
        assert report.fresh_solved and report.fresh_cost is not None
        assert validate_placement(reprov.problem, reprov.placement()).ok
        assert report.drift <= 1.15 + 1e-6
