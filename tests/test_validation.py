"""Unit tests for repro.core.validation (the independent referee)."""

from __future__ import annotations

import pytest

from repro.core import MCSSProblem, validate_placement
from tests.conftest import make_unit_plan


def _full_placement(problem):
    """All pairs on one VM (feasible for the tiny fixture's numbers)."""
    p = problem.empty_placement()
    b = p.new_vm()
    p.assign(b, 0, [0, 1])
    p.assign(b, 1, [0, 1, 2])
    return p


class TestValidatePlacement:
    def test_feasible_full_placement(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 30, make_unit_plan(100.0))
        report = validate_placement(problem, _full_placement(problem))
        assert report.ok
        assert report.capacity_ok and report.satisfaction_ok and report.accounting_ok
        report.raise_if_invalid()  # must not raise

    def test_unsatisfied_detected(self, tiny_problem):
        p = tiny_problem.empty_placement()
        b = p.new_vm()
        p.assign(b, 1, [0, 1, 2])  # rate 10 < tau_v=30 for v0, v1
        report = validate_placement(tiny_problem, p)
        assert not report.ok
        assert report.unsatisfied_subscribers == [0, 1]
        assert report.capacity_ok
        with pytest.raises(ValueError, match="unsatisfied"):
            report.raise_if_invalid()

    def test_empty_placement_with_subscribers_unsatisfied(self, tiny_problem):
        report = validate_placement(tiny_problem, tiny_problem.empty_placement())
        assert not report.satisfaction_ok
        assert len(report.unsatisfied_subscribers) == 3

    def test_tau_zero_trivially_satisfied(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 0, make_unit_plan(100.0))
        report = validate_placement(problem, problem.empty_placement())
        assert report.ok

    def test_overload_detected_via_direct_mutation(self, tiny_workload):
        # Build against a large capacity, then validate against a
        # smaller-capacity problem: the validator must catch it even
        # though the placement object itself never raised.
        big = MCSSProblem(tiny_workload, 30, make_unit_plan(100.0))
        placement = _full_placement(big)
        small = MCSSProblem(tiny_workload, 30, make_unit_plan(80.0))
        report = validate_placement(small, placement)
        assert not report.capacity_ok
        assert report.overloaded_vms == [0]

    def test_duplicate_subscriber_listed_flagged(self, tiny_problem):
        p = tiny_problem.empty_placement()
        b = p.new_vm()
        p.assign(b, 0, [0])
        p.assign(b, 0, [0])  # same pair twice on the same VM
        report = validate_placement(tiny_problem, p)
        assert not report.accounting_ok

    def test_pair_on_two_vms_is_legal(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 30, make_unit_plan(100.0))
        p = problem.empty_placement()
        a, b = p.new_vm(), p.new_vm()
        p.assign(a, 0, [0, 1])
        p.assign(a, 1, [0, 1, 2])
        p.assign(b, 1, [0])  # replica of (1, v0) -- allowed by Eq. (3)
        report = validate_placement(problem, p)
        assert report.ok

    def test_report_str(self, tiny_problem):
        report = validate_placement(tiny_problem, tiny_problem.empty_placement())
        assert "FAILED" in str(report)
