"""Randomized equivalence: vectorized hot paths vs their loop referees.

The PR that vectorized Stage-1 GSP, the satisfaction reductions, and
``validate_placement`` is gated on *exact* equivalence with the
original per-subscriber loop implementations, which remain in the tree
as executable specifications:

* ``GreedySelectPairs`` (vectorized)  ==  ``ReferenceGreedySelectPairs``
  (literal Algorithm 2)  ==  ``LoopGreedySelectPairs`` -- pair for
  pair, including the grouped-by-topic insertion order that downstream
  packers iterate;
* ``satisfied_mask`` / ``delivered_rates`` / ``satisfaction_slack``
  (np.bincount reductions)  ==  the scalar ``delivered_rate`` referee;
* ``validate_placement`` (vectorized)  ==  ``validate_placement_loop``
  -- identical verdict fields on feasible *and* broken placements;
* ``CustomBinPacking`` (CSR/whole-array Stage 2)  ==
  ``LoopCustomBinPacking`` (the retained ``cbp-loop`` referee) --
  *identical placements* (per-VM topic->subscriber assignment lists,
  assignment-group order, VM count, bytes and cost) on every ladder
  rung b/c/d/e, across randomized pricing plans so the cost-based
  decision (Algorithm 7) exercises both verdicts;
* ``FFBinPacking`` (CSR pair enumeration + batch assigns)  ==
  ``LoopFFBinPacking`` (the ``ffbp-loop`` referee);
* ``build_social_graph`` (whole-array CSR construction,
  multinomial-and-shuffle draws)  ~=  ``build_social_graph_loop`` (the
  retained per-user referee) -- *distributional* equivalence (KS-style
  checks on followings/followers/rates; the draw methods are
  distribution-identical by exchangeability but their per-seed streams
  differ) plus shared structural invariants, and
  ``generate_social_workload`` == ``generate_social_workload_loop``
  *bit-exactly* on any shared graph (the compaction is deterministic);
* ``ChurnModel`` (CSR epoch surgery)  ==  ``LoopChurnModel`` (the
  retained ``churn-loop`` referee) -- bit-identical deltas and next
  workloads on shared seeds, epoch after epoch (both resolve the same
  rng draws against the same canonical pair enumeration);
* ``IncrementalReprovisioner`` (array state, batched GSP reselect,
  argmax placement; run with ``fresh_solve_every=1`` to match the
  referee's every-epoch fresh solve)  ==
  ``LoopIncrementalReprovisioner`` (the retained ``reprovision-loop``
  referee) -- *identical epoch placements*, costs, EpochReport move
  counts and rebuild decisions on shared-seed churn streams;
* ``MicroEpochService`` (the serving layer: churn fragments queued,
  sealed per micro-epoch, stepped through the merge-maintained group
  index; run with ``fresh_solve_every=1``)  ==
  ``LoopIncrementalReprovisioner`` stepping the same churn whole --
  identical placements and costs across *randomized* fragment splits
  of every epoch's operation stream.

All generated rates are integer-valued, so every partial sum is
exactly representable and the equivalence is bit-exact (the documented
contract; see the module docstrings).  Edge cases covered: empty
interests, tau = 0, single-topic subscribers, equal-rate ties,
tau above every interest sum, and all-rates-exceed-tau overshoot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MCSSProblem,
    PairSelection,
    Workload,
    delivered_rate,
    delivered_rates,
    satisfaction_slack,
    satisfied_mask,
    selection_satisfied_mask,
    subscriber_thresholds,
    validate_placement,
    validate_placement_loop,
)
from repro.packing import (
    CBPOptions,
    CustomBinPacking,
    FFBinPacking,
    LoopCustomBinPacking,
    LoopFFBinPacking,
    cheaper_to_distribute,
    cheaper_to_distribute_loop,
    diff_placements,
)
from repro.dynamic import (
    ChurnConfig,
    ChurnModel,
    IncrementalReprovisioner,
    LoopChurnModel,
    LoopIncrementalReprovisioner,
)
from repro.selection import (
    GreedySelectPairs,
    LoopGreedySelectPairs,
    ReferenceGreedySelectPairs,
)
from repro.workloads import (
    build_social_graph,
    build_social_graph_loop,
    generate_social_workload,
    generate_social_workload_loop,
)
from tests.conftest import make_unit_plan

NUM_RANDOM_WORKLOADS = 24


def edgy_workload(rng: np.random.Generator) -> Workload:
    """A small random workload deliberately rich in edge cases.

    Mixes empty interests, single-topic subscribers, equal-rate runs
    (small integer rates collide often), and the full interest range.
    """
    num_topics = int(rng.integers(1, 12))
    num_subscribers = int(rng.integers(1, 14))
    # Small integer rates make equal-rate ties common.
    rates = rng.integers(1, 8, size=num_topics).astype(float)
    interests = []
    for _ in range(num_subscribers):
        style = rng.random()
        if style < 0.15:
            interests.append([])  # empty: tau_v == 0
        elif style < 0.35:
            interests.append([int(rng.integers(num_topics))])  # single topic
        else:
            k = int(rng.integers(1, num_topics + 1))
            interests.append(
                sorted(rng.choice(num_topics, size=k, replace=False).tolist())
            )
    return Workload(rates, interests, message_size_bytes=1.0)


def taus_for(workload: Workload, rng: np.random.Generator):
    """Edge-case taus: zero, tiny, typical, just-below-max, above-max."""
    total = float(workload.event_rates.sum())
    return [0.0, 1.0, float(rng.integers(1, 10)), max(total - 1.0, 1.0), total + 10.0]


class TestGSPEquivalence:
    """Vectorized GSP == loop GSP == literal Algorithm 2."""

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_random_workloads(self, seed):
        rng = np.random.default_rng(1000 + seed)
        workload = edgy_workload(rng)
        for tau in taus_for(workload, rng):
            problem = MCSSProblem(workload, tau, make_unit_plan(1e12))
            fast = GreedySelectPairs().select(problem)
            loop = LoopGreedySelectPairs().select(problem)
            reference = ReferenceGreedySelectPairs().select(problem)
            assert fast == loop, f"tau={tau}"
            assert fast == reference, f"tau={tau}"
            # Stronger than set equality: the by-topic insertion order
            # and per-topic subscriber order drive downstream packers,
            # so they must match the loop exactly too.
            assert list(fast.topics) == list(loop.topics), f"tau={tau}"
            for t in fast.topics:
                assert (
                    fast.subscribers_of(t).tolist()
                    == loop.subscribers_of(t).tolist()
                ), f"tau={tau} topic={t}"

    def test_all_rates_exceed_tau_overshoot(self):
        # Every topic overshoots: each subscriber must get exactly its
        # smallest-rate topic (smallest id on ties).
        w = Workload([20.0, 7.0, 7.0, 12.0], [[0, 1, 2, 3], [0, 3], [1, 2]])
        problem = MCSSProblem(w, 5.0, make_unit_plan(1e9))
        fast = GreedySelectPairs().select(problem)
        loop = LoopGreedySelectPairs().select(problem)
        assert fast == loop
        assert sorted(fast) == [(1, 0), (1, 2), (3, 1)]

    def test_equal_rate_tie_chain(self):
        # All equal rates: descending prefix is id-ascending.
        w = Workload([4.0] * 5, [[0, 1, 2, 3, 4]])
        problem = MCSSProblem(w, 10.0, make_unit_plan(1e9))
        fast = GreedySelectPairs().select(problem)
        assert fast == ReferenceGreedySelectPairs().select(problem)
        # 4+4 = 8 < 10, next 4 overshoots but nothing fits: smallest
        # skipped is topic 2.
        assert sorted(t for t, _ in fast) == [0, 1, 2]

    def test_empty_and_tau_zero(self):
        w = Workload([5.0, 3.0], [[], [0, 1], []])
        assert GreedySelectPairs().select(
            MCSSProblem(w, 0.0, make_unit_plan(1e9))
        ).num_pairs == 0
        sel = GreedySelectPairs().select(MCSSProblem(w, 100.0, make_unit_plan(1e9)))
        assert sel == LoopGreedySelectPairs().select(
            MCSSProblem(w, 100.0, make_unit_plan(1e9))
        )
        assert sel.num_pairs == 2  # only subscriber 1, both topics


class TestSatisfactionEquivalence:
    """np.bincount reductions == the scalar delivered_rate referee."""

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_random_deliveries(self, seed):
        rng = np.random.default_rng(2000 + seed)
        workload = edgy_workload(rng)
        num_topics = workload.num_topics
        # Random delivery mapping: some subscribers missing, some
        # receiving out-of-interest topics, some duplicates.
        mapping = {}
        for v in range(workload.num_subscribers):
            if rng.random() < 0.2:
                continue
            k = int(rng.integers(0, num_topics + 2))
            topics = rng.integers(0, num_topics, size=k).tolist()
            mapping[v] = topics + topics[: int(rng.integers(0, 2))]  # dup tail

        got = delivered_rates(workload, mapping)
        expected = np.zeros(workload.num_subscribers)
        for v, topics in mapping.items():
            expected[v] = delivered_rate(workload, v, topics)
        np.testing.assert_array_equal(got, expected)

        for tau in taus_for(workload, rng):
            mask = satisfied_mask(workload, mapping, tau)
            thresholds = subscriber_thresholds(workload, tau)
            loop_mask = expected >= thresholds * (1.0 - 1e-9)
            np.testing.assert_array_equal(mask, loop_mask)
            slack = satisfaction_slack(workload, mapping, tau)
            np.testing.assert_allclose(slack, expected - thresholds)

    @pytest.mark.parametrize("seed", range(8))
    def test_selection_mask_matches_mapping_mask(self, seed):
        rng = np.random.default_rng(3000 + seed)
        workload = edgy_workload(rng)
        problem = MCSSProblem(workload, 6.0, make_unit_plan(1e12))
        selection = GreedySelectPairs().select(problem)
        fast = selection_satisfied_mask(workload, selection, 6.0)
        slow = satisfied_mask(workload, selection.topics_by_subscriber(), 6.0)
        np.testing.assert_array_equal(fast, slow)
        assert fast.all()  # GSP selections are sufficient by construction

    def test_pair_arrays_roundtrip(self):
        sel = PairSelection({3: [1, 2], 0: [2]})
        topics, subs = sel.pair_arrays()
        assert sorted(zip(topics.tolist(), subs.tolist())) == [(0, 2), (3, 1), (3, 2)]

    def test_trusted_arrays_constructor(self):
        by_topic = {2: np.asarray([0, 3], dtype=np.int64)}
        sel = PairSelection(by_topic, trusted=True)
        assert sel.num_pairs == 2
        assert (2, 3) in sel
        assert sel == PairSelection({2: [0, 3]})


def assert_identical_placements(fast, loop, problem):
    """Placement identity: the pinning contract of the packing referees.

    Stronger than equal cost: the per-(vm, topic) subscriber lists, the
    assignment-group insertion order, the VM count and the byte/cost
    totals must all match exactly.  The structural half is the shared
    :func:`repro.packing.diff_placements` (also enforced by
    ``scripts/profile_solver.py``).
    """
    assert diff_placements(fast, loop) is None, diff_placements(fast, loop)
    fast_cost = problem.cost_of(fast)
    loop_cost = problem.cost_of(loop)
    assert fast_cost.num_vms == loop_cost.num_vms
    assert fast_cost.total_usd == pytest.approx(loop_cost.total_usd, rel=1e-12)


def packing_problem(workload, rng):
    """A problem whose capacity forces spilling and whose randomized
    pricing makes Algorithm 7 rule both ways across seeds."""
    max_pair = 2.0 * float(workload.event_rates.max())
    capacity = max(max_pair, float(rng.integers(2, 40)))
    vm_price = float(rng.choice([0.0, 0.5, 10.0, 200.0]))
    usd_per_gb = float(rng.choice([0.0, 0.12, 1e3, 1e9]))
    tau = float(rng.integers(1, 14))
    return MCSSProblem(
        workload, tau, make_unit_plan(capacity, vm_price=vm_price, usd_per_gb=usd_per_gb)
    )


@pytest.fixture(params=["scalar-kernel", "array-kernel"])
def fleet_kernel(request, monkeypatch):
    """Run the packing equivalence both ways across the size crossover.

    The vectorized CBP dispatches per-VM scans to a scalar kernel below
    ``_SMALL_FLEET`` VMs and to whole-array passes above it; the edgy
    workloads here build small fleets, so the threshold is forced to 0
    to exercise the array kernels on the same instances.
    """
    from repro.packing import custom

    if request.param == "array-kernel":
        monkeypatch.setattr(custom, "_SMALL_FLEET", 0)
    return request.param


class TestCBPEquivalence:
    """Vectorized CBP == the retained cbp-loop referee, placement for
    placement, on every rung of the optimization ladder."""

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_random_workloads_all_rungs(self, seed, fleet_kernel):
        rng = np.random.default_rng(6000 + seed)
        workload = edgy_workload(rng)
        problem = packing_problem(workload, rng)
        selection = GreedySelectPairs().select(problem)
        for rung in ("b", "c", "d", "e"):
            opts = CBPOptions.ladder(rung)
            fast = CustomBinPacking(opts).pack(problem, selection)
            loop = LoopCustomBinPacking(opts).pack(problem, selection)
            assert_identical_placements(fast, loop, problem)
            assert validate_placement(problem, fast).ok, f"rung {rung}"

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_cheaper_to_distribute_same_verdict(self, seed, fleet_kernel):
        # Algorithm 7 head-to-head on partially packed fleets, across
        # counts around and beyond what the fleet can absorb.
        rng = np.random.default_rng(7000 + seed)
        workload = edgy_workload(rng)
        problem = packing_problem(workload, rng)
        selection = GreedySelectPairs().select(problem)
        placement = CustomBinPacking(CBPOptions.ladder("d")).pack(problem, selection)
        if placement.num_vms == 0:
            return
        rates = workload.event_rates
        msg = workload.message_size_bytes
        for t in range(workload.num_topics):
            topic_bytes = float(rates[t]) * msg
            if 2.0 * topic_bytes > problem.capacity_bytes:
                continue
            for count in (1, 3, int(rng.integers(1, 50))):
                fast = cheaper_to_distribute(
                    placement, problem.plan, t, topic_bytes, count
                )
                loop = cheaper_to_distribute_loop(
                    placement, problem.plan, t, topic_bytes, count
                )
                assert fast == loop, f"topic {t} count {count}"

    def test_full_selection_and_empty(self, tiny_problem):
        full = PairSelection.full(tiny_problem.workload)
        fast = CustomBinPacking().pack(tiny_problem, full)
        loop = LoopCustomBinPacking().pack(tiny_problem, full)
        assert_identical_placements(fast, loop, tiny_problem)
        empty = CustomBinPacking().pack(tiny_problem, PairSelection({}))
        assert empty.num_vms == 0

    def test_big_topic_fresh_vm_batch(self):
        # One topic spanning several fresh VMs: the batched np.split
        # deployment must chunk exactly like the referee's while-loop.
        w = Workload([10.0], [[0]] * 23, message_size_bytes=1.0)
        problem = MCSSProblem(w, 10, make_unit_plan(50.0))
        full = PairSelection.full(w)
        fast = CustomBinPacking().pack(problem, full)
        loop = LoopCustomBinPacking().pack(problem, full)
        assert_identical_placements(fast, loop, problem)
        assert fast.num_vms == 6  # 4 pairs per VM (40 out + 10 in), 23 pairs


class TestWarmStartEquivalence:
    """Warm-started CBP packs == cold packs, bit for bit.

    ``pack_from`` replays a base trace only where provably
    option-independent and re-runs every decision the target rung's
    options could change, so the result must equal a cold ``pack`` --
    and, transitively, the ``cbp-loop`` referee -- whatever rung the
    seed came from.  The ``fleet_kernel`` fixture runs every case on
    both the scalar (default ``_SMALL_FLEET`` -- the small-fleet
    branch these edgy workloads exercise natively) and the forced
    whole-array kernels.
    """

    @pytest.mark.parametrize("seed", (3, 11))
    def test_chained_ladder_bit_exact(self, seed, fleet_kernel):
        # The ladder's configuration: (c) traced, later rungs seeded
        # from the handle the previous warm pack emitted.
        rng = np.random.default_rng(20_000 + seed)
        workload = edgy_workload(rng)
        problem = packing_problem(workload, rng)
        selection = GreedySelectPairs().select(problem)
        handle = None
        for rung in ("b", "c", "d", "e"):
            opts = CBPOptions.ladder(rung)
            packer = CustomBinPacking(opts)
            cold = packer.pack(problem, selection)
            warm, handle = packer.pack_from(problem, selection, handle)
            assert_identical_placements(warm, cold, problem)
            loop = LoopCustomBinPacking(opts).pack(problem, selection)
            assert_identical_placements(warm, loop, problem)
            assert validate_placement(problem, warm).ok, f"rung {rung}"

    @pytest.mark.parametrize("seed", (3, 11))
    def test_seeded_from_rung_b_bit_exact(self, seed, fleet_kernel):
        # Seeding from rung (b) must stay bit-exact even though its
        # selection-order packing shares no prefix with (c)-(e).
        rng = np.random.default_rng(21_000 + seed)
        workload = edgy_workload(rng)
        problem = packing_problem(workload, rng)
        selection = GreedySelectPairs().select(problem)
        _, base = CustomBinPacking(CBPOptions.ladder("b")).pack_traced(
            problem, selection
        )
        for rung in ("c", "d", "e"):
            packer = CustomBinPacking(CBPOptions.ladder(rung))
            cold = packer.pack(problem, selection)
            for emit in (True, False):
                warm, _ = packer.pack_from(
                    problem, selection, base, emit_trace=emit
                )
                assert_identical_placements(warm, cold, problem)

    def test_small_fleet_scalar_kernel_warm_start(self):
        # Default _SMALL_FLEET threshold, a fleet of a handful of VMs:
        # the scalar per-VM kernels must warm-start bit-exactly too.
        rng = np.random.default_rng(4242)
        workload = edgy_workload(rng)
        problem = packing_problem(workload, rng)
        selection = GreedySelectPairs().select(problem)
        _, base = CustomBinPacking(CBPOptions.ladder("c")).pack_traced(
            problem, selection
        )
        for rung in ("d", "e"):
            packer = CustomBinPacking(CBPOptions.ladder(rung))
            warm, _ = packer.pack_from(problem, selection, base)
            assert_identical_placements(
                warm, packer.pack(problem, selection), problem
            )

    def test_same_options_snapshots_base(self, tiny_problem):
        # Identical options replay everything: the full-sync fast path
        # returns a Placement.copy() of the base, still bit-exact.
        selection = GreedySelectPairs().select(tiny_problem)
        packer = CustomBinPacking(CBPOptions.ladder("e"))
        traced, handle = packer.pack_traced(tiny_problem, selection)
        warm, chained = packer.pack_from(tiny_problem, selection, handle)
        assert warm is not traced
        assert_identical_placements(warm, traced, tiny_problem)
        assert chained is not None and chained.trace is not None

    def test_traced_pack_matches_cold_pack(self, tiny_problem):
        selection = GreedySelectPairs().select(tiny_problem)
        for rung in ("b", "e"):
            packer = CustomBinPacking(CBPOptions.ladder(rung))
            traced, handle = packer.pack_traced(tiny_problem, selection)
            assert handle.trace is not None
            assert_identical_placements(
                traced, packer.pack(tiny_problem, selection), tiny_problem
            )

    def test_none_seed_falls_back(self, tiny_problem):
        selection = GreedySelectPairs().select(tiny_problem)
        packer = CustomBinPacking(CBPOptions.ladder("d"))
        warm, handle = packer.pack_from(tiny_problem, selection, None)
        assert handle is not None  # fell back to a traced cold pack
        assert_identical_placements(
            warm, packer.pack(tiny_problem, selection), tiny_problem
        )

    def test_foreign_selection_rejected(self, tiny_problem):
        selection = GreedySelectPairs().select(tiny_problem)
        _, base = CustomBinPacking().pack_traced(tiny_problem, selection)
        other = PairSelection({0: [0, 1]})
        with pytest.raises(ValueError, match="different selection"):
            CustomBinPacking().pack_from(tiny_problem, other, base)

    def test_foreign_problem_rejected(self, tiny_problem, tiny_workload):
        selection = GreedySelectPairs().select(tiny_problem)
        _, base = CustomBinPacking().pack_traced(tiny_problem, selection)
        other = MCSSProblem(tiny_workload, 30.0, make_unit_plan(75.0))
        with pytest.raises(ValueError, match="different problem"):
            CustomBinPacking().pack_from(other, selection, base)


class TestFFBPEquivalence:
    """Array-enumerated FFBP == the retained ffbp-loop referee."""

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_random_workloads(self, seed):
        rng = np.random.default_rng(8000 + seed)
        workload = edgy_workload(rng)
        problem = packing_problem(workload, rng)
        selection = GreedySelectPairs().select(problem)
        fast = FFBinPacking().pack(problem, selection)
        loop = LoopFFBinPacking().pack(problem, selection)
        assert_identical_placements(fast, loop, problem)

    def test_full_selection(self, tiny_problem):
        full = PairSelection.full(tiny_problem.workload)
        fast = FFBinPacking().pack(tiny_problem, full)
        loop = LoopFFBinPacking().pack(tiny_problem, full)
        assert_identical_placements(fast, loop, tiny_problem)


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (sup of |CDF_a - CDF_b|)."""
    a, b = np.sort(np.asarray(a)), np.sort(np.asarray(b))
    grid = np.concatenate([a, b])
    grid.sort(kind="stable")
    cdf_a = np.searchsorted(a, grid, side="right") / max(a.size, 1)
    cdf_b = np.searchsorted(b, grid, side="right") / max(b.size, 1)
    return float(np.abs(cdf_a - cdf_b).max()) if grid.size else 0.0


def social_inputs(rng: np.random.Generator, num_users: int):
    """Heavy-tailed construction inputs that stress dedup + top-up."""
    counts = np.minimum(
        rng.geometric(0.08, size=num_users), num_users - 1
    ).astype(np.int64)
    counts[rng.random(num_users) < 0.05] = 0  # some users follow nobody
    weights = 1.0 + rng.pareto(0.9, size=num_users)  # heavy: many dup draws

    def rate_model(followers, r):
        out = r.integers(0, 4, size=followers.size)
        return out

    return counts, weights, rate_model


class TestSocialConstructionEquivalence:
    """Whole-array social-graph construction vs the per-user referee.

    The vectorized builder's weighted draw (one multinomial + shuffle)
    is distribution-identical to the referee's per-slot ``rng.choice``
    by exchangeability, but the per-seed streams differ -- so the
    pinning here is KS-style distribution checks plus the structural
    invariants both constructions guarantee, and *bit-exact* identity
    for the (deterministic) compaction stage.
    """

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_structural_invariants(self, seed):
        rng = np.random.default_rng(9000 + seed)
        n = int(rng.integers(2, 400))
        counts, weights, rate_model = social_inputs(rng, n)
        graph = build_social_graph(
            n, np.random.default_rng(seed), counts, weights, rate_model
        )
        out_degrees = graph.following_counts()
        # CSR satellite fix: out-degrees come straight from the indptr.
        assert np.array_equal(out_degrees, np.diff(graph.following_indptr))
        assert int(graph.following_indptr[0]) == 0
        # Never exceeds the declared out-degree (clipped to n - 1).
        assert (out_degrees <= np.clip(counts, 0, n - 1)).all()
        owners = np.repeat(np.arange(n, dtype=np.int64), out_degrees)
        targets = graph.following_targets
        assert (targets != owners).all()  # no self-follows
        # Sorted and duplicate-free within each user: packed keys are
        # globally strictly increasing.
        keys = owners * n + targets
        assert (np.diff(keys) > 0).all()
        assert np.array_equal(
            graph.follower_counts, np.bincount(targets, minlength=n)
        )
        # The lazy tuple view is zero-copy over the flat array.
        for u in (0, n // 2, n - 1):
            view = graph.followings[u]
            assert view.base is graph.following_targets or view.size == 0
            assert np.array_equal(
                view,
                targets[graph.following_indptr[u] : graph.following_indptr[u + 1]],
            )

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_compaction_identity_on_shared_graph(self, seed):
        # generate_social_workload is deterministic: on the *same*
        # graph the vectorized remap and the loop referee must agree
        # bit for bit (rates, offsets, flat topics).
        rng = np.random.default_rng(9500 + seed)
        n = int(rng.integers(2, 400))
        counts, weights, rate_model = social_inputs(rng, n)
        graph = build_social_graph(
            n, np.random.default_rng(seed), counts, weights, rate_model
        )
        fast = generate_social_workload(graph)
        loop = generate_social_workload_loop(graph)
        assert np.array_equal(fast.event_rates, loop.event_rates)
        assert np.array_equal(fast.interest_indptr, loop.interest_indptr)
        assert np.array_equal(fast.interest_topics, loop.interest_topics)
        assert fast.num_pairs == loop.num_pairs

    def test_determinism_same_seed(self):
        rng = np.random.default_rng(42)
        n = 300
        counts, weights, rate_model = social_inputs(rng, n)
        a = build_social_graph(n, np.random.default_rng(5), counts, weights, rate_model)
        b = build_social_graph(n, np.random.default_rng(5), counts, weights, rate_model)
        assert np.array_equal(a.following_targets, b.following_targets)
        assert np.array_equal(a.following_indptr, b.following_indptr)
        assert np.array_equal(a.event_counts, b.event_counts)

    def test_distributions_match_loop_referee(self):
        # Shared inputs, separate edge streams: the achieved
        # followings, follower counts and event counts must agree in
        # distribution with the per-user referee.  At n = 3000 the
        # same-distribution KS statistic is well below the thresholds.
        rng = np.random.default_rng(77)
        n = 3000
        counts, weights, rate_model = social_inputs(rng, n)
        fast = build_social_graph(
            n, np.random.default_rng(1), counts, weights, rate_model
        )
        loop = build_social_graph_loop(
            n, np.random.default_rng(1), counts, weights, rate_model
        )
        assert ks_statistic(fast.following_counts(), loop.following_counts()) < 0.02
        assert ks_statistic(fast.follower_counts, loop.follower_counts) < 0.05
        assert ks_statistic(fast.event_counts, loop.event_counts) < 0.05
        # Popularity attachment preserved: both builders give the
        # heavy-weight users the same share of all follows.
        top = np.argsort(weights)[-30:]
        fast_share = fast.follower_counts[top].sum() / fast.num_edges
        loop_share = loop.follower_counts[top].sum() / loop.num_edges
        assert abs(fast_share - loop_share) < 0.05

    def test_degenerate_graphs(self):
        # Zero declared followings: an empty CSR graph and an empty
        # workload, identically on both compaction paths.
        g = build_social_graph(
            3,
            np.random.default_rng(0),
            np.zeros(3, dtype=np.int64),
            np.ones(3),
            lambda f, r: np.ones(3, dtype=np.int64),
        )
        assert g.num_edges == 0 and len(g.followings) == 3
        for gen in (generate_social_workload, generate_social_workload_loop):
            w = gen(g)
            assert w.num_topics == 0 and w.num_subscribers == 0
        # All users inactive: every pair is dropped by compaction.
        g2 = build_social_graph(
            5,
            np.random.default_rng(1),
            np.full(5, 2, dtype=np.int64),
            np.ones(5),
            lambda f, r: np.zeros(5, dtype=np.int64),
        )
        for gen in (generate_social_workload, generate_social_workload_loop):
            w = gen(g2)
            assert w.num_topics == 0 and w.num_pairs == 0

    def test_loop_referee_rejects_bad_inputs_identically(self):
        rng = np.random.default_rng(0)
        for builder in (build_social_graph, build_social_graph_loop):
            with pytest.raises(ValueError, match="two users"):
                builder(1, rng, np.ones(1), np.ones(1), lambda f, r: f)
            with pytest.raises(ValueError, match="length"):
                builder(3, rng, np.ones(2), np.ones(3), lambda f, r: f)
            with pytest.raises(ValueError, match="rate model"):
                builder(
                    5,
                    rng,
                    np.ones(5, dtype=int),
                    np.ones(5),
                    lambda f, r: np.full(5, -1),
                )


class TestChurnEquivalence:
    """Vectorized CSR churn == the churn-loop referee, bit for bit.

    Both models resolve the same rng draw sequence against the same
    canonical pair enumeration (subscriber-major, topics ascending), so
    on a shared seed the deltas and the evolved workloads must be
    identical -- not just distributionally equivalent.
    """

    @staticmethod
    def _assert_same_delta(da, db):
        assert np.array_equal(da.subscribed_topics, db.subscribed_topics)
        assert np.array_equal(da.subscribed_subscribers, db.subscribed_subscribers)
        assert np.array_equal(da.unsubscribed_topics, db.unsubscribed_topics)
        assert np.array_equal(
            da.unsubscribed_subscribers, db.unsubscribed_subscribers
        )
        assert np.array_equal(da.changed_topics, db.changed_topics)
        assert da.subscribed == db.subscribed  # tuple views agree too
        assert da.touched_subscribers == db.touched_subscribers
        wa, wb = da.workload, db.workload
        assert np.array_equal(wa.event_rates, wb.event_rates)
        assert np.array_equal(wa.interest_indptr, wb.interest_indptr)
        assert np.array_equal(wa.interest_topics, wb.interest_topics)

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_shared_seed_streams(self, seed):
        rng = np.random.default_rng(10_000 + seed)
        workload = edgy_workload(rng)
        config = ChurnConfig(
            unsubscribe_fraction=float(rng.choice([0.0, 0.1, 0.4])),
            subscribe_fraction=float(rng.choice([0.0, 0.1, 0.4])),
            rate_drift_sigma=float(rng.choice([0.0, 0.1, 0.4])),
        )
        fast = ChurnModel(workload, config, seed=seed)
        loop = LoopChurnModel(workload, config, seed=seed)
        for _ in range(4):
            self._assert_same_delta(fast.step(), loop.step())

    def test_no_churn_is_identity_on_both(self, tiny_workload):
        for model_cls in (ChurnModel, LoopChurnModel):
            delta = model_cls(tiny_workload, ChurnConfig(0.0, 0.0, 0.0)).step()
            assert not delta.subscribed and not delta.unsubscribed
            assert not delta.rate_changed_topics
            assert delta.workload.num_pairs == tiny_workload.num_pairs

    def test_last_topic_never_dropped(self):
        w = Workload([3.0, 5.0], [[0], [1], [0, 1]], message_size_bytes=1.0)
        for model_cls in (ChurnModel, LoopChurnModel):
            model = model_cls(w, ChurnConfig(0.9, 0.0, 0.0), seed=1)
            for _ in range(3):
                evolved = model.step().workload
                assert int(evolved.interest_sizes().min()) >= 1


def churn_problem(workload, rng):
    """A dynamic-friendly problem: multiple VMs, drift headroom."""
    max_pair = 2.0 * float(workload.event_rates.max())
    capacity = max(8.0 * max_pair, float(rng.integers(20, 80)))
    tau = float(rng.integers(1, 14))
    return MCSSProblem(workload, tau, make_unit_plan(capacity))


class TestReprovisionEquivalence:
    """Array-state reprovisioner == the reprovision-loop referee.

    With ``fresh_solve_every=1`` the vectorized reprovisioner runs the
    referee's every-epoch fresh solve and rebuild rule; on shared-seed
    churn streams the two must then produce identical epoch placements
    (per-VM assignments and order, via ``diff_placements``), identical
    costs, and identical EpochReport move counts -- the pinning
    contract of the tentpole.  Rates are integer-valued throughout, so
    every byte total is exactly representable and the comparisons are
    exact.
    """

    @staticmethod
    def _assert_same_epoch(vec_report, loop_report, vec, loop, problem_like):
        assert diff_placements(vec.placement(), loop.placement()) is None
        for field in (
            "epoch",
            "pairs_added",
            "pairs_removed",
            "pairs_moved",
            "vms_opened",
            "vms_closed",
            "rebuilt",
        ):
            assert getattr(vec_report, field) == getattr(loop_report, field), field
        assert vec_report.cost.num_vms == loop_report.cost.num_vms
        assert vec_report.cost.total_usd == pytest.approx(
            loop_report.cost.total_usd, rel=1e-12
        )
        assert vec_report.fresh_cost.total_usd == pytest.approx(
            loop_report.fresh_cost.total_usd, rel=1e-12
        )
        assert vec.selection() == loop.selection()

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_shared_churn_streams(self, seed):
        rng = np.random.default_rng(12_000 + seed)
        workload = edgy_workload(rng)
        problem = churn_problem(workload, rng)
        threshold = float(rng.choice([1.0, 1.05, 1.2]))
        config = ChurnConfig(
            unsubscribe_fraction=float(rng.choice([0.05, 0.3])),
            subscribe_fraction=float(rng.choice([0.05, 0.3])),
            rate_drift_sigma=float(rng.choice([0.0, 0.15])),
        )
        model = ChurnModel(workload, config, seed=seed)
        vec = IncrementalReprovisioner(
            problem, rebuild_threshold=threshold, fresh_solve_every=1
        )
        loop = LoopIncrementalReprovisioner(problem, rebuild_threshold=threshold)
        for _ in range(4):
            delta = model.step()
            self._assert_same_epoch(
                vec.step(delta), loop.step(delta), vec, loop, problem
            )
            audit = validate_placement(vec.problem, vec.placement())
            assert audit.ok, str(audit)

    @pytest.mark.parametrize("seed", range(8))
    def test_bare_workload_steps(self, seed):
        # A bare Workload (no delta) re-checks every subscriber.
        rng = np.random.default_rng(13_000 + seed)
        workload = edgy_workload(rng)
        problem = churn_problem(workload, rng)
        model = ChurnModel(workload, ChurnConfig(0.2, 0.2, 0.1), seed=seed)
        vec = IncrementalReprovisioner(problem, fresh_solve_every=1)
        loop = LoopIncrementalReprovisioner(problem)
        for _ in range(3):
            evolved = model.step().workload
            self._assert_same_epoch(
                vec.step(evolved), loop.step(evolved), vec, loop, problem
            )

    def test_initial_state_matches_referee(self, tiny_problem):
        vec = IncrementalReprovisioner(tiny_problem)
        loop = LoopIncrementalReprovisioner(tiny_problem)
        assert diff_placements(vec.placement(), loop.placement()) is None
        assert vec.selection() == loop.selection()


class TestBackendEquivalence:
    """The same solve on RAM-resident and mmap-backed storage, bit for bit.

    Backends change residency, never values (the contract of
    :mod:`repro.core.backend`): the ``backed_small_zipf`` fixture runs
    each case once per backend, and every result is compared against a
    freshly built in-RAM reference workload.
    """

    @staticmethod
    def _reference_problem(workload):
        capacity = 4.0 * float(workload.event_rates.max()) * workload.message_size_bytes
        return MCSSProblem(workload, 100.0, make_unit_plan(capacity))

    def test_select_pack_validate_identical(self, backed_small_zipf, small_zipf):
        problem = self._reference_problem(backed_small_zipf)
        ref_problem = self._reference_problem(small_zipf)
        selection = GreedySelectPairs().select(problem)
        reference = GreedySelectPairs().select(ref_problem)
        assert selection == reference
        assert list(selection.topics) == list(reference.topics)
        placement = CustomBinPacking(CBPOptions.ladder("e")).pack(problem, selection)
        ref_placement = CustomBinPacking(CBPOptions.ladder("e")).pack(
            ref_problem, reference
        )
        assert_identical_placements(placement, ref_placement, ref_problem)
        report = validate_placement(problem, placement)
        loop_report = validate_placement_loop(problem, placement)
        assert report.ok and loop_report.ok

    def test_satisfaction_reductions_identical(self, backed_small_zipf, small_zipf):
        got = delivered_rates(
            backed_small_zipf, {0: [0, 1], 5: [2], 7: list(range(10))}
        )
        want = delivered_rates(small_zipf, {0: [0, 1], 5: [2], 7: list(range(10))})
        np.testing.assert_array_equal(got, want)


class TestShardedMmapPin:
    """The acceptance pin: out-of-core == in-RAM at 100k subscribers.

    One 100k-subscriber zipf instance solved twice -- the plain
    single-process in-RAM path, and the sharded path on an mmap-backed
    reload of the same workload with forked workers -- must agree on
    the selection (group order included), the per-VM placements, and
    the costs, exactly.
    """

    def test_sharded_mmap_solve_bit_exact(self, tmp_path):
        from repro.selection import ShardedGreedySelectPairs
        from repro.solver import MCSSSolver, sharded_validate
        from repro.workloads import load_workload, save_workload, zipf_workload

        workload = zipf_workload(2000, 100_000, mean_interest=8.0, seed=7)
        capacity = (
            max(
                2.5 * float(workload.event_rates.max()),
                float(workload.event_rates.sum()) / 8.0,
            )
            * workload.message_size_bytes
        )
        problem = MCSSProblem(workload, 100.0, make_unit_plan(float(capacity)))
        plain = MCSSSolver.paper().solve(problem)

        mapped = load_workload(save_workload(workload, tmp_path / "pin"), mmap=True)
        mmap_problem = MCSSProblem(mapped, 100.0, make_unit_plan(float(capacity)))
        sharded = MCSSSolver.paper().solve_sharded(
            mmap_problem, shard_size=25_000, workers=2
        )

        # Selection identity down to group order and within-group order.
        pt, pi, ps = plain.selection.csr_arrays()
        st, si, ss = sharded.selection.csr_arrays()
        np.testing.assert_array_equal(st, pt)
        np.testing.assert_array_equal(si, pi)
        np.testing.assert_array_equal(ss, ps)
        # Placement and cost identity.
        assert diff_placements(sharded.placement, plain.placement) is None
        assert sharded.cost.num_vms == plain.cost.num_vms
        assert sharded.cost.total_usd == plain.cost.total_usd
        # And the topic-sharded validator agrees with the plain one.
        report = sharded_validate(mmap_problem, sharded.placement, shards=3, workers=2)
        assert report.ok == plain.validation.ok is True
        # The sharded Stage 1 run again directly also matches (selector
        # entry point, not just the solver wrapper).
        direct = ShardedGreedySelectPairs(shard_size=25_000, workers=2).select(
            mmap_problem
        )
        assert direct == plain.selection


class TestValidatorEquivalence:
    """Vectorized validate_placement == the loop referee, verdict for verdict."""

    @staticmethod
    def _assert_same_verdict(problem, placement):
        fast = validate_placement(problem, placement)
        slow = validate_placement_loop(problem, placement)
        assert fast.ok == slow.ok
        assert fast.capacity_ok == slow.capacity_ok
        assert fast.satisfaction_ok == slow.satisfaction_ok
        assert fast.accounting_ok == slow.accounting_ok
        assert fast.overloaded_vms == slow.overloaded_vms
        assert fast.unsatisfied_subscribers == slow.unsatisfied_subscribers
        assert fast.messages == slow.messages

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_random_solved_placements(self, seed):
        rng = np.random.default_rng(4000 + seed)
        workload = edgy_workload(rng)
        max_rate = float(workload.event_rates.max())
        tau = float(rng.integers(1, 12))
        # Capacity: tight enough to need several VMs, always feasible.
        capacity = max(2.0 * max_rate, float(rng.integers(2, 40)))
        problem = MCSSProblem(workload, tau, make_unit_plan(capacity))
        selection = GreedySelectPairs().select(problem)
        placement = FFBinPacking().pack(problem, selection)
        self._assert_same_verdict(problem, placement)

    @pytest.mark.parametrize("seed", range(8))
    def test_broken_placements_same_verdict(self, seed):
        rng = np.random.default_rng(5000 + seed)
        workload = edgy_workload(rng)
        max_rate = float(workload.event_rates.max())
        big = MCSSProblem(workload, 8.0, make_unit_plan(1e9))
        placement = FFBinPacking().pack(big, GreedySelectPairs().select(big))
        # Validate against a much tighter problem: overloads and (with a
        # higher tau) unsatisfied subscribers must be reported the same.
        tight = MCSSProblem(workload, 50.0, make_unit_plan(2.0 * max_rate))
        self._assert_same_verdict(tight, placement)

    def test_empty_placement_and_tau_zero(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 0, make_unit_plan(100.0))
        self._assert_same_verdict(problem, problem.empty_placement())
        problem30 = MCSSProblem(tiny_workload, 30, make_unit_plan(100.0))
        self._assert_same_verdict(problem30, problem30.empty_placement())

    def test_duplicate_assignment_same_verdict(self, tiny_problem):
        p = tiny_problem.empty_placement()
        b = p.new_vm()
        p.assign(b, 0, [0])
        p.assign(b, 0, [0])
        self._assert_same_verdict(tiny_problem, p)


class TestCheckpointResumeEquivalence:
    """A killed-and-resumed churn run == the uninterrupted run, bit for bit.

    The checkpoint carries the reprovisioner's complete pair state,
    cadence counters, and the churn model's bit-generator position
    (:mod:`repro.resilience.checkpoint`), so resuming draws exactly
    what an undisturbed run would have drawn -- the pin is per-epoch
    report fields, costs, placements, and final selection identity.
    """

    CONFIG = ChurnConfig(
        unsubscribe_fraction=0.2, subscribe_fraction=0.2, rate_drift_sigma=0.1
    )

    @staticmethod
    def _assert_same_report(got, want):
        for field in (
            "epoch",
            "pairs_added",
            "pairs_removed",
            "pairs_moved",
            "vms_opened",
            "vms_closed",
            "rebuilt",
        ):
            assert getattr(got, field) == getattr(want, field), field
        assert got.cost.num_vms == want.cost.num_vms
        assert got.cost.total_usd == want.cost.total_usd

    @pytest.mark.parametrize("seed", range(8))
    def test_snapshot_roundtrip_mid_run(self, seed, tmp_path):
        from repro.resilience import load_checkpoint, save_checkpoint

        rng = np.random.default_rng(14_000 + seed)
        workload = edgy_workload(rng)
        problem = churn_problem(workload, rng)
        cadence = int(rng.choice([1, 3]))  # exercise the fresh-solve counter

        ref_model = ChurnModel(workload, self.CONFIG, seed=seed)
        ref = IncrementalReprovisioner(problem, fresh_solve_every=cadence)
        ref_reports = [ref.step(ref_model.step()) for _ in range(6)]

        model = ChurnModel(workload, self.CONFIG, seed=seed)
        reprov = IncrementalReprovisioner(problem, fresh_solve_every=cadence)
        reports = [reprov.step(model.step()) for _ in range(3)]
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, reprov, model)
        del reprov, model  # the "kill": nothing survives but the file
        reprov, model = load_checkpoint(path, problem.plan)
        assert reprov.epoch == 3
        reports += [reprov.step(model.step()) for _ in range(3)]

        for got, want in zip(reports, ref_reports):
            self._assert_same_report(got, want)
        assert diff_placements(reprov.placement(), ref.placement()) is None
        assert reprov.selection() == ref.selection()

    @pytest.mark.parametrize("seed", range(4))
    def test_runner_resume_matches_uninterrupted(self, seed, tmp_path):
        from repro.experiments import run_epoch_experiment

        rng = np.random.default_rng(15_000 + seed)
        workload = edgy_workload(rng)
        problem = churn_problem(workload, rng)
        path = str(tmp_path / "run.npz")

        ref = run_epoch_experiment(
            workload, problem.plan, problem.tau, 6, seed=seed
        )

        first = run_epoch_experiment(
            workload, problem.plan, problem.tau, 4, seed=seed,
            checkpoint_path=path, checkpoint_every=2,
        )
        assert first.checkpoints_written == 2
        resumed = run_epoch_experiment(
            workload, problem.plan, problem.tau, 6, seed=seed,
            checkpoint_path=path, resume=True,
        )
        assert resumed.resumed_from_epoch == 4
        assert len(resumed.reports) == 2

        reports = first.reports + resumed.reports
        assert len(reports) == len(ref.reports) == 6
        for got, want in zip(reports, ref.reports):
            self._assert_same_report(got, want)
        assert diff_placements(
            resumed.reprovisioner.placement(), ref.reprovisioner.placement()
        ) is None


class TestServingEquivalence:
    """The serving path == the reprovision-loop referee, split however.

    Each epoch's churn is chopped into fragments at *random* positions
    of its operation stream, offered to the ``MicroEpochService``'s
    ingestion queue, and sealed into one micro-epoch; with
    ``fresh_solve_every=1`` the serving trajectory (placements, costs,
    report fields, selections) must be bit-identical to the referee
    stepping the same churn epochs whole -- fragment boundaries are
    wire format, not semantics.
    """

    @pytest.mark.parametrize("seed", range(NUM_RANDOM_WORKLOADS))
    def test_random_fragment_splits_match_referee(self, seed):
        from repro.serving import MicroEpochService, ServingConfig

        rng = np.random.default_rng(16_000 + seed)
        workload = edgy_workload(rng)
        problem = churn_problem(workload, rng)
        threshold = float(rng.choice([1.0, 1.05, 1.2]))
        config = ChurnConfig(
            unsubscribe_fraction=float(rng.choice([0.05, 0.3])),
            subscribe_fraction=float(rng.choice([0.05, 0.3])),
            rate_drift_sigma=float(rng.choice([0.0, 0.15])),
        )
        model = ChurnModel(workload, config, seed=seed)
        service = MicroEpochService(
            problem,
            ServingConfig(rebuild_threshold=threshold, fresh_solve_every=1),
        )
        loop = LoopIncrementalReprovisioner(problem, rebuild_threshold=threshold)

        for _ in range(4):
            delta = model.step()
            num_ops = int(
                delta.subscribed_topics.size + delta.unsubscribed_topics.size
            )
            cuts = rng.integers(
                0, num_ops + 1, size=int(rng.integers(0, 5))
            ).tolist()
            service.ingest_delta(delta, cuts)
            micro = service.run_micro_epoch(delta.workload, delta.changed_topics)
            loop_report = loop.step(delta)
            TestReprovisionEquivalence._assert_same_epoch(
                micro.report,
                loop_report,
                service.reprovisioner,
                loop,
                problem,
            )
            assert micro.ops >= num_ops  # + changed topics
            assert service.queue_depth == 0  # sealed epochs drain fully
