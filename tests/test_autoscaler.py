"""Tests for the utilization-driven autoscaler."""

from __future__ import annotations

import pytest

from repro.broker import BrokerCluster
from repro.core import MCSSProblem, Workload
from repro.dynamic import AutoscalePolicy, Autoscaler
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan


def _cluster_with_manual_placement(capacity, assignments, rates, tau=10):
    """Build a cluster from explicit (vm, topic, subscribers) triples."""
    num_topics = len(rates)
    num_subs = 1 + max(v for _b, _t, subs in assignments for v in subs)
    interests = [[] for _ in range(num_subs)]
    for _b, t, subs in assignments:
        for v in subs:
            if t not in interests[v]:
                interests[v].append(t)
    workload = Workload(rates, [sorted(i) for i in interests], message_size_bytes=1.0)
    problem = MCSSProblem(workload, tau, make_unit_plan(capacity))
    placement = problem.empty_placement()
    vm_ids = {}
    for b, t, subs in assignments:
        if b not in vm_ids:
            vm_ids[b] = placement.new_vm()
        placement.assign(vm_ids[b], t, subs)
    return problem, BrokerCluster(problem, placement)


class TestPolicy:
    def test_valid_band(self):
        AutoscalePolicy(0.9, 0.3, 0.75)

    def test_invalid_bands(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_up_threshold=0.3, scale_down_threshold=0.9)
        with pytest.raises(ValueError):
            AutoscalePolicy(0.9, 0.3, target_utilization=0.95)


class TestAutoscaler:
    def test_idle_fleet_untouched(self, small_zipf):
        problem = MCSSProblem(small_zipf, 100, make_unit_plan(5e7))
        solution = MCSSSolver.paper().solve(problem)
        cluster = BrokerCluster(problem, solution.placement)
        # Thresholds far outside the fleet's utilization band: no-op.
        scaler = Autoscaler(cluster, AutoscalePolicy(0.999, 0.0001, 0.5))
        report = scaler.run_once()
        assert report.moves == 0
        assert report.nodes_drained == 0

    def test_hot_node_cooled(self):
        # VM0 packed to ~96% (two topics), VM1 nearly empty.
        problem, cluster = _cluster_with_manual_placement(
            capacity=100.0,
            assignments=[
                (0, 0, [0, 1, 2]),  # rate 12: 36 out + 12 in = 48
                (0, 1, [3, 4, 5]),  # rate 12: 48 -> total 96
                (1, 2, [6]),        # rate 1: 2 bytes
            ],
            rates=[12.0, 12.0, 1.0],
        )
        hot = cluster.nodes[0]
        assert hot.utilization > 0.9
        scaler = Autoscaler(cluster, AutoscalePolicy(0.9, 0.05, 0.6))
        report = scaler.run_once()
        assert report.hot_nodes_cooled == 1
        assert report.moves >= 3
        assert cluster.nodes[0].utilization <= 0.9
        # Pairs conserved.
        assert sum(n.num_pairs for n in cluster.nodes) == 7

    def test_cold_node_drained(self):
        problem, cluster = _cluster_with_manual_placement(
            capacity=100.0,
            assignments=[
                (0, 0, [0, 1]),  # rate 20: 60 bytes -> util 0.6
                (1, 1, [2]),     # rate 2: 4 bytes  -> util 0.04 (cold)
            ],
            rates=[20.0, 2.0],
        )
        scaler = Autoscaler(cluster, AutoscalePolicy(0.95, 0.3, 0.8))
        report = scaler.run_once()
        assert report.nodes_drained == 1
        assert cluster.nodes[1].num_pairs == 0
        # The drained pair moved to node 0, not back to node 1.
        assert 2 in cluster.nodes[0].subscribers_of(1)

    def test_drain_skipped_without_headroom(self):
        # The only other node has no room at target utilization.
        problem, cluster = _cluster_with_manual_placement(
            capacity=100.0,
            assignments=[
                (0, 0, [0, 1, 2]),  # rate 20: 80 bytes -> util 0.8
                (1, 1, [3]),        # rate 10: 20 bytes -> util 0.2
            ],
            rates=[20.0, 10.0],
        )
        scaler = Autoscaler(cluster, AutoscalePolicy(0.95, 0.3, 0.8))
        report = scaler.run_once()
        assert report.nodes_drained == 0
        assert cluster.nodes[1].num_pairs == 1

    def test_actions_recorded(self):
        problem, cluster = _cluster_with_manual_placement(
            capacity=100.0,
            assignments=[(0, 0, [0, 1]), (1, 1, [2])],
            rates=[20.0, 2.0],
        )
        report = Autoscaler(cluster, AutoscalePolicy(0.95, 0.3, 0.8)).run_once()
        assert all(isinstance(a, str) for a in report.actions)

    def test_converges_to_stable_fleet(self, small_zipf):
        problem = MCSSProblem(small_zipf, 200, make_unit_plan(3e7))
        solution = MCSSSolver.paper().solve(problem)
        cluster = BrokerCluster(problem, solution.placement)
        scaler = Autoscaler(cluster, AutoscalePolicy(0.95, 0.1, 0.8))
        before = sum(n.num_pairs for n in cluster.nodes)
        for _ in range(3):
            report = scaler.run_once()
        # Third pass should be (near-)quiescent and pairs conserved.
        assert sum(n.num_pairs for n in cluster.nodes) == before
        assert report.moves <= before * 0.1
