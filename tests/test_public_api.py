"""Public API surface tests.

A downstream user imports from documented locations; these tests pin
the surface so refactors cannot silently break it.  Every name listed
in each package's ``__all__`` must resolve, and the promised behaviour
of the top-level conveniences must hold.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.pricing",
    "repro.selection",
    "repro.packing",
    "repro.bounds",
    "repro.exact",
    "repro.solver",
    "repro.workloads",
    "repro.analysis",
    "repro.simulation",
    "repro.cloud",
    "repro.dynamic",
    "repro.broker",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_convenience_names():
    import repro

    for name in (
        "MCSSProblem",
        "MCSSSolver",
        "Workload",
        "paper_plan",
        "lower_bound",
        "lp_lower_bound",
        "best_lower_bound",
        "validate_placement",
    ):
        assert name in repro.__all__

    assert repro.__version__


def test_registries_cover_paper_algorithms():
    from repro.packing import available_packers
    from repro.selection import available_selectors

    assert {"gsp", "gsp-reference", "rsp", "knapsack"} <= set(available_selectors())
    assert {"ffbp", "cbp", "bfbp", "ffdbp"} <= set(available_packers())


def test_docstrings_on_public_modules():
    for package in PACKAGES:
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"


def test_paper_presets_are_what_readme_promises():
    from repro import MCSSSolver
    from repro.packing import CBPOptions

    paper = MCSSSolver.paper()
    assert paper.selector.name == "gsp"
    assert paper.packer.name == "cbp"
    assert paper.packer.options == CBPOptions.ladder("e")

    naive = MCSSSolver.naive()
    assert naive.selector.name == "rsp"
    assert naive.packer.name == "ffbp"
