"""Tests for the social-graph builder and Spotify/Twitter generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ccdf
from repro.workloads import (
    SpotifyConfig,
    SpotifyWorkloadGenerator,
    TwitterConfig,
    TwitterWorkloadGenerator,
    build_social_graph,
    build_social_graph_loop,
    generate_social_workload,
)
from tests.test_vectorized_equivalence import ks_statistic


@pytest.fixture(scope="module")
def twitter_trace():
    return TwitterWorkloadGenerator(TwitterConfig(num_users=6000)).generate(seed=11)


@pytest.fixture(scope="module")
def spotify_trace():
    return SpotifyWorkloadGenerator(SpotifyConfig(num_users=6000)).generate(seed=11)


class TestBuildSocialGraph:
    def _graph(self, n=500, seed=0):
        rng = np.random.default_rng(seed)
        counts = rng.integers(1, 10, size=n)
        weights = rng.random(n) + 0.01
        return build_social_graph(
            n, rng, counts, weights, lambda f, r: np.ones(n, dtype=np.int64)
        )

    def test_no_self_follow(self):
        graph = self._graph()
        for u, follows in enumerate(graph.followings):
            assert u not in follows.tolist()

    def test_no_duplicate_followings(self):
        graph = self._graph()
        for follows in graph.followings:
            assert np.unique(follows).size == follows.size

    def test_follower_counts_consistent(self):
        graph = self._graph()
        recount = np.zeros(graph.num_users, dtype=np.int64)
        for follows in graph.followings:
            recount[follows] += 1
        assert np.array_equal(recount, graph.follower_counts)

    def test_popular_users_get_more_followers(self):
        rng = np.random.default_rng(3)
        n = 2000
        weights = np.ones(n)
        weights[:20] = 500.0  # twenty hubs
        counts = np.full(n, 5)
        graph = build_social_graph(
            n, rng, counts, weights, lambda f, r: np.ones(n, dtype=np.int64)
        )
        hubs = graph.follower_counts[:20].mean()
        rest = graph.follower_counts[20:].mean()
        assert hubs > 10 * rest

    def test_csr_views_consistent(self):
        graph = self._graph()
        # Out-degrees come straight from the CSR indptr (no per-user
        # size scan) and agree with the tuple view.
        counts = graph.following_counts()
        assert np.array_equal(counts, np.diff(graph.following_indptr))
        assert counts.sum() == graph.num_edges == graph.following_targets.size
        sizes = np.asarray([f.size for f in graph.followings])
        assert np.array_equal(counts, sizes)

    def test_followings_sorted_per_user(self):
        graph = self._graph()
        for follows in graph.followings:
            assert np.array_equal(follows, np.sort(follows))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="two users"):
            build_social_graph(1, rng, np.ones(1), np.ones(1), lambda f, r: f)
        with pytest.raises(ValueError, match="length"):
            build_social_graph(3, rng, np.ones(2), np.ones(3), lambda f, r: f)

    def test_bad_rate_model_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="rate model"):
            build_social_graph(
                5,
                rng,
                np.ones(5, dtype=int),
                np.ones(5),
                lambda f, r: np.full(5, -1),
            )


class TestCompaction:
    def test_inactive_users_are_not_topics(self):
        rng = np.random.default_rng(1)
        n = 300

        def rates(followers, r):
            out = np.ones(n, dtype=np.int64)
            out[::2] = 0  # half the users never publish
            return out

        graph = build_social_graph(
            n, rng, np.full(n, 4), np.ones(n), rates
        )
        workload = generate_social_workload(graph)
        active = int(((graph.event_counts >= 1) & (graph.follower_counts >= 1)).sum())
        assert workload.num_topics == active

    def test_all_topics_have_audience_and_rate(self, twitter_trace):
        w = twitter_trace.workload
        assert w.event_rates.min() >= 1
        assert all(
            w.subscribers_of(t).size >= 1 for t in range(w.num_topics)
        )

    def test_subscribers_have_interests(self, twitter_trace):
        w = twitter_trace.workload
        assert all(
            w.interest(v).size >= 1 for v in range(w.num_subscribers)
        )


class TestTwitterShape:
    """The Appendix-D distributional signatures (Figs. 8-10)."""

    def test_deterministic(self):
        a = TwitterWorkloadGenerator(TwitterConfig(num_users=800)).generate(seed=4)
        b = TwitterWorkloadGenerator(TwitterConfig(num_users=800)).generate(seed=4)
        assert np.array_equal(a.workload.event_rates, b.workload.event_rates)
        assert a.workload.num_pairs == b.workload.num_pairs

    def test_seeds_differ(self):
        a = TwitterWorkloadGenerator(TwitterConfig(num_users=800)).generate(seed=4)
        b = TwitterWorkloadGenerator(TwitterConfig(num_users=800)).generate(seed=5)
        assert a.workload.num_pairs != b.workload.num_pairs

    def test_following_spike_at_20(self, twitter_trace):
        followings = twitter_trace.graph.following_counts()
        at_20 = (followings == 20).mean()
        near_20 = ((followings >= 15) & (followings <= 25) & (followings != 20)).mean() / 10
        assert at_20 > 3 * near_20  # a visible glitch, as in Fig. 8

    def test_follower_tail_heavy(self, twitter_trace):
        followers = twitter_trace.graph.follower_counts
        slope = ccdf(followers[followers >= 1]).tail_exponent(x_min=5)
        assert slope < -0.5  # heavy-tailed, roughly straight in log-log

    def test_rate_tail_has_bots(self, twitter_trace):
        rates = twitter_trace.workload.event_rates
        assert (rates >= 1000).sum() > 0  # the bot tail of Fig. 9
        # Roughly half of active users tweet little (Fig. 9's body).
        assert (rates < 10).mean() > 0.25

    def test_rate_grows_with_followers(self, twitter_trace):
        from repro.analysis import mean_rate_by_followers

        binned = mean_rate_by_followers(twitter_trace.graph)
        # Compare the low-follower and mid-follower regimes; use the
        # minimum over the low bins so a lone low-follower bot cannot
        # dominate one bin's mean on unlucky seeds.
        low = min(binned.means[:3])
        mid = binned.means[len(binned.means) // 2]
        assert mid > low

    def test_mean_interest_near_paper(self, twitter_trace):
        stats = twitter_trace.workload.stats()
        # The paper's Twitter sample has ~23 pairs/subscriber; our
        # default calibration lands in the broad vicinity.
        assert 8 <= stats.mean_interest_size <= 40


class TestGeneratorDistributionPreservation:
    """GENERATOR_VERSION 3 pinning: the vectorized CSR construction
    must reproduce the loop referee's distributions.

    Both generators are run on a *shared* seed so the pre-drawn
    per-user inputs (declared followings, popularity weights) are
    identical and only the edge-draw streams differ; the KS statistics
    then measure nothing but the sampling method.  Thresholds sit well
    above the same-distribution noise floor at n = 4000 (~0.03) and
    well below what a genuine distribution change produces.
    """

    NUM_USERS = 4000

    def _pair(self, gen_cls, cfg, seed):
        vec = gen_cls(cfg).generate(seed=seed)
        loop_gen = gen_cls(cfg)
        loop_gen._graph_builder = build_social_graph_loop
        loop = loop_gen.generate(seed=seed)
        return vec, loop

    @pytest.mark.parametrize("seed", [7, 29])
    def test_twitter_distributions(self, seed):
        vec, loop = self._pair(
            TwitterWorkloadGenerator, TwitterConfig(num_users=self.NUM_USERS), seed
        )
        g_vec, g_loop = vec.graph, loop.graph
        assert ks_statistic(g_vec.following_counts(), g_loop.following_counts()) < 0.01
        assert ks_statistic(g_vec.follower_counts, g_loop.follower_counts) < 0.05
        assert ks_statistic(g_vec.event_counts, g_loop.event_counts) < 0.06
        assert ks_statistic(vec.workload.event_rates, loop.workload.event_rates) < 0.08
        assert (
            ks_statistic(vec.workload.interest_sizes(), loop.workload.interest_sizes())
            < 0.08
        )
        # Same trace scale (pair counts within a few percent).
        assert (
            abs(vec.workload.num_pairs - loop.workload.num_pairs)
            < 0.1 * loop.workload.num_pairs
        )

    @pytest.mark.parametrize("seed", [7, 29])
    def test_spotify_distributions(self, seed):
        vec, loop = self._pair(
            SpotifyWorkloadGenerator, SpotifyConfig(num_users=self.NUM_USERS), seed
        )
        g_vec, g_loop = vec.graph, loop.graph
        assert ks_statistic(g_vec.following_counts(), g_loop.following_counts()) < 0.01
        assert ks_statistic(g_vec.follower_counts, g_loop.follower_counts) < 0.05
        assert ks_statistic(g_vec.event_counts, g_loop.event_counts) < 0.06
        assert ks_statistic(vec.workload.event_rates, loop.workload.event_rates) < 0.10
        assert (
            abs(vec.workload.num_pairs - loop.workload.num_pairs)
            < 0.15 * loop.workload.num_pairs
        )

    def test_twitter_glitches_survive_vectorization(self):
        # The 20-followings signup spike must be as visible through the
        # loop referee as through the vectorized builder.
        vec, loop = self._pair(
            TwitterWorkloadGenerator, TwitterConfig(num_users=self.NUM_USERS), 11
        )
        for trace in (vec, loop):
            followings = trace.graph.following_counts()
            at_20 = (followings == 20).mean()
            near = (
                (followings >= 15) & (followings <= 25) & (followings != 20)
            ).mean() / 10
            assert at_20 > 3 * near


class TestSpotifyShape:
    def test_deterministic(self):
        a = SpotifyWorkloadGenerator(SpotifyConfig(num_users=800)).generate(seed=4)
        b = SpotifyWorkloadGenerator(SpotifyConfig(num_users=800)).generate(seed=4)
        assert np.array_equal(a.workload.event_rates, b.workload.event_rates)

    def test_small_interests(self, spotify_trace):
        stats = spotify_trace.workload.stats()
        # ~2.4 in the paper; allow slack but keep it clearly below
        # Twitter's tens.
        assert 1.0 <= stats.mean_interest_size <= 6.0

    def test_rates_homogeneous_vs_twitter(self, spotify_trace, twitter_trace):
        sp = spotify_trace.workload.event_rates
        tw = twitter_trace.workload.event_rates
        sp_cv = sp.std() / sp.mean()
        tw_cv = tw.std() / tw.mean()
        assert sp_cv < tw_cv  # the homogeneity that caps Spotify savings

    def test_inactive_users_dropped(self, spotify_trace):
        graph = spotify_trace.graph
        assert (graph.event_counts == 0).sum() > 0  # some inactive existed
        assert spotify_trace.workload.event_rates.min() >= 1

    def test_describe_mentions_name(self, spotify_trace):
        assert "spotify" in spotify_trace.describe()
