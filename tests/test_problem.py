"""Unit tests for repro.core.problem (MCSSProblem, SolutionCost)."""

from __future__ import annotations

import pytest

from repro.core import MCSSProblem, PairSelection, Workload
from tests.conftest import make_unit_plan


class TestProblem:
    def test_capacity_from_plan(self, tiny_workload):
        problem = MCSSProblem(tiny_workload, 30, make_unit_plan(80.0))
        assert problem.capacity_bytes == 80.0

    def test_negative_tau_rejected(self, tiny_workload, unit_plan):
        with pytest.raises(ValueError):
            MCSSProblem(tiny_workload, -1, unit_plan)

    def test_infeasible_largest_pair_rejected(self, tiny_workload):
        # Most expensive pair needs 2*20 = 40 bytes.
        with pytest.raises(ValueError, match="infeasible"):
            MCSSProblem(tiny_workload, 30, make_unit_plan(39.0))
        MCSSProblem(tiny_workload, 30, make_unit_plan(40.0))  # boundary ok

    def test_thresholds_vector(self, tiny_problem):
        assert tiny_problem.thresholds().tolist() == [30.0, 30.0, 10.0]

    def test_empty_placement_bound_to_problem(self, tiny_problem):
        p = tiny_problem.empty_placement()
        assert p.capacity_bytes == tiny_problem.capacity_bytes
        assert p.workload is tiny_problem.workload

    def test_selection_is_sufficient(self, tiny_problem):
        assert tiny_problem.selection_is_sufficient(
            PairSelection.full(tiny_problem.workload)
        )
        assert not tiny_problem.selection_is_sufficient(PairSelection({1: [0]}))


class TestSolutionCost:
    def test_cost_of_placement(self, tiny_problem):
        placement = tiny_problem.empty_placement()
        b = placement.new_vm()
        placement.assign(b, 1, [0, 1, 2])  # 30 out + 10 in = 40 B
        cost = tiny_problem.cost_of(placement)
        assert cost.num_vms == 1
        assert cost.total_bytes == 40.0
        assert cost.vm_usd == 10.0  # unit plan: $10/VM
        assert cost.bandwidth_usd == pytest.approx(40.0 / 1e9 * 0.12)
        assert cost.total_usd == pytest.approx(cost.vm_usd + cost.bandwidth_usd)

    def test_total_gb(self, tiny_problem):
        cost = tiny_problem.cost_components(0, 2.5e9)
        assert cost.total_gb == pytest.approx(2.5)

    def test_cost_components_zero(self, tiny_problem):
        cost = tiny_problem.cost_components(0, 0.0)
        assert cost.total_usd == 0.0
