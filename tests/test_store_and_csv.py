"""Tests for the experiment result store and CSV workload interchange."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    compare_ladders,
    load_ladder,
    make_plan,
    make_trace,
    run_cost_ladder,
    save_ladder,
)
from repro.experiments.ladder import LadderCell, LadderResult
from repro.workloads import (
    load_workload_csv,
    save_workload_csv,
    zipf_workload,
)

# Seed chosen so the paper's savings-vs-tau shape (checked by
# compare_ladders) holds with a wide margin at this tiny scale under
# GENERATOR_VERSION 3 streams.
SCALE = ExperimentScale(num_users=900, seed=4, target_vms=15)


@pytest.fixture(scope="module")
def ladder():
    trace = make_trace("twitter", SCALE)
    plan = make_plan("c3.large", trace.workload, SCALE)
    return run_cost_ladder(trace.workload, plan, (10, 100), trace_name="twitter")


class TestLadderStore:
    def test_roundtrip(self, tmp_path, ladder):
        path = tmp_path / "fig3a.json"
        save_ladder(ladder, path)
        loaded = load_ladder(path)
        assert loaded.trace_name == ladder.trace_name
        assert loaded.instance_name == ladder.instance_name
        assert list(loaded.taus) == list(ladder.taus)
        for variant, per_tau in ladder.cells.items():
            for tau, cell in per_tau.items():
                got = loaded.cell(variant, tau)
                assert got.cost_usd == pytest.approx(cell.cost_usd)
                assert got.num_vms == cell.num_vms
                assert got.bandwidth_gb == pytest.approx(cell.bandwidth_gb)

    def test_bad_version_rejected(self, tmp_path, ladder):
        path = tmp_path / "r.json"
        save_ladder(ladder, path)
        import json

        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_ladder(path)


class TestRegression:
    def test_identical_runs_pass(self, ladder):
        report = compare_ladders(ladder, ladder)
        assert report.ok, report.problems

    def test_cost_drift_detected(self, tmp_path, ladder):
        save_ladder(ladder, tmp_path / "r.json")
        drifted = load_ladder(tmp_path / "r.json")
        for tau in drifted.taus:
            old = drifted.cells["rsp+ffbp"][tau]
            drifted.cells["rsp+ffbp"][tau] = LadderCell(
                cost_usd=old.cost_usd * 2.0,
                num_vms=old.num_vms,
                bandwidth_gb=old.bandwidth_gb,
            )
        report = compare_ladders(ladder, drifted)
        assert not report.drift_ok
        assert any("moved" in p for p in report.problems)

    def test_broken_shape_detected(self, tmp_path, ladder):
        save_ladder(ladder, tmp_path / "r.json")
        broken = load_ladder(tmp_path / "r.json")
        for tau in broken.taus:
            naive = broken.cells["rsp+ffbp"][tau]
            # Make the "full solution" worse than naive.
            broken.cells["(e) +cost-decision"][tau] = LadderCell(
                cost_usd=naive.cost_usd * 3.0,
                num_vms=naive.num_vms,
                bandwidth_gb=naive.bandwidth_gb,
            )
        report = compare_ladders(ladder, broken)
        assert not report.shape_ok
        assert any("no saving" in p for p in report.problems)

    def test_axis_mismatch_detected(self, ladder):
        other = LadderResult(
            trace_name=ladder.trace_name,
            instance_name=ladder.instance_name,
            taus=[10.0],
        )
        other.cells = {
            variant: {10.0: per_tau[10.0]} for variant, per_tau in ladder.cells.items()
        }
        report = compare_ladders(ladder, other)
        assert not report.drift_ok


class TestCSVInterchange:
    def test_roundtrip(self, tmp_path):
        w = zipf_workload(12, 30, seed=4)
        pairs = tmp_path / "pairs.csv"
        rates = tmp_path / "rates.csv"
        save_workload_csv(w, pairs, rates)
        loaded = load_workload_csv(pairs, rates, message_size_bytes=w.message_size_bytes)
        assert loaded.num_subscribers == w.num_subscribers
        assert loaded.num_pairs == w.num_pairs
        # Topics without subscribers survive via the rate table.
        assert loaded.num_topics == w.num_topics
        assert loaded.event_rates.sum() == pytest.approx(w.event_rates.sum())

    def test_solves_after_roundtrip(self, tmp_path):
        from repro.core import MCSSProblem
        from repro.solver import MCSSSolver
        from tests.conftest import make_unit_plan

        w = zipf_workload(12, 30, seed=4)
        save_workload_csv(w, tmp_path / "p.csv", tmp_path / "r.csv")
        loaded = load_workload_csv(tmp_path / "p.csv", tmp_path / "r.csv")
        problem = MCSSProblem(loaded, 50, make_unit_plan(5e7))
        assert MCSSSolver.paper().solve(problem).validation.ok

    def test_unknown_topic_in_pairs_rejected(self, tmp_path):
        (tmp_path / "rates.csv").write_text("topic,rate\n1,5.0\n")
        (tmp_path / "pairs.csv").write_text("topic,subscriber\n9,0\n")
        with pytest.raises(Exception):
            load_workload_csv(tmp_path / "pairs.csv", tmp_path / "rates.csv")
