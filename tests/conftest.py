"""Shared fixtures for the test suite.

Conventions:

* "tiny" objects are hand-written and human-checkable;
* "small" objects are generated but fast (< 100 ms to build);
* plans use ``unit_plan`` (capacity/cost chosen for readable numbers)
  unless a test is specifically about EC2 pricing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MCSSProblem, Workload
from repro.pricing import (
    FreeBandwidthCost,
    LinearBandwidthCost,
    LinearVMCost,
    PricingPlan,
    get_instance,
)
from repro.workloads import uniform_workload, zipf_workload


def make_unit_plan(
    capacity_events: float,
    vm_price: float = 10.0,
    usd_per_gb: float = 0.12,
) -> PricingPlan:
    """A plan with explicit capacity in *event* units (msg size 1 B)."""
    return PricingPlan(
        instance=get_instance("c3.large"),
        period_hours=1.0,
        bandwidth_cost=LinearBandwidthCost(usd_per_gb),
        vm_cost=LinearVMCost(vm_price),
        capacity_bytes_override=capacity_events,
    )


@pytest.fixture
def unit_plan() -> PricingPlan:
    """Capacity 100 event-bytes, $10/VM, $0.12/GB."""
    return make_unit_plan(100.0)


@pytest.fixture
def tiny_workload() -> Workload:
    """The paper's Figure-1 example: 2 topics, 3 subscribers, 5 pairs.

    ``ev_t1 = 20``, ``ev_t2 = 10`` (events/min), 1 KB messages reduced
    to 1 B so numbers stay readable; pairs (t1,v1) (t2,v1) (t2,v2)
    (t1,v2) (t2,v3).
    """
    return Workload(
        event_rates=[20.0, 10.0],
        interests=[[0, 1], [0, 1], [1]],
        message_size_bytes=1.0,
    )


@pytest.fixture
def tiny_problem(tiny_workload: Workload) -> MCSSProblem:
    """Figure-1 workload with tau=30 and capacity 80 event-bytes."""
    return MCSSProblem(tiny_workload, tau=30.0, plan=make_unit_plan(80.0))


@pytest.fixture
def small_zipf() -> Workload:
    """A 60-topic / 200-subscriber Zipf workload (seeded)."""
    return zipf_workload(60, 200, mean_interest=6.0, seed=3)


@pytest.fixture
def small_uniform() -> Workload:
    """A 40-topic / 150-subscriber uniform workload (seeded)."""
    return uniform_workload(40, 150, mean_interest=5.0, seed=5)


@pytest.fixture(params=["ram", "mmap"])
def backed_small_zipf(request, tmp_path) -> Workload:
    """The ``small_zipf`` workload on both storage backends.

    ``ram`` is the workload as built; ``mmap`` round-trips it through a
    format-2 trace file and reopens it memory-mapped
    (:class:`repro.core.MmapBackend`), so every test using this fixture
    pins backend-independence of its path.
    """
    workload = zipf_workload(60, 200, mean_interest=6.0, seed=3)
    if request.param == "mmap":
        from repro.workloads import load_workload, save_workload

        workload = load_workload(
            save_workload(workload, tmp_path / "backed"), mmap=True
        )
    return workload


def random_workload(
    rng: np.random.Generator,
    max_topics: int = 8,
    max_subscribers: int = 8,
    max_rate: int = 20,
) -> Workload:
    """A small random workload for fuzz tests (every topic subscribed)."""
    num_topics = int(rng.integers(1, max_topics + 1))
    num_subscribers = int(rng.integers(1, max_subscribers + 1))
    rates = rng.integers(1, max_rate + 1, size=num_topics).astype(float)
    interests = []
    for _ in range(num_subscribers):
        k = int(rng.integers(1, num_topics + 1))
        interests.append(sorted(rng.choice(num_topics, size=k, replace=False).tolist()))
    return Workload(rates, interests, message_size_bytes=1.0)
