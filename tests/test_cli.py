"""Tests for the mcss command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.trace == "spotify"
        assert args.tau == 100.0
        assert args.selector == "gsp"
        assert args.packer == "cbp"

    def test_unknown_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--trace", "myspace"])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig2a", "--users", "500"])
        assert args.figure_id == "fig2a"
        assert args.users == 500


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "summary" in out

    def test_solve_small(self, capsys):
        code = main(
            ["solve", "--trace", "spotify", "--tau", "10", "--users", "800",
             "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saving vs naive" in out
        assert "lower bound" in out

    def test_solve_with_explicit_algorithms(self, capsys):
        code = main(
            ["solve", "--trace", "twitter", "--tau", "10", "--users", "600",
             "--selector", "rsp", "--packer", "ffbp"]
        )
        assert code == 0
        assert "rsp+ffbp" in capsys.readouterr().out

    def test_figure_trace_analysis(self, capsys):
        code = main(["figure", "fig9", "--users", "800", "--seed", "2"])
        assert code == 0
        assert "fig9" in capsys.readouterr().out

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            main(["figure", "fig99"])

    def test_analyze_tables(self, capsys):
        code = main(["analyze", "--trace", "twitter", "--users", "700", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "fig12" in out

    def test_analyze_plot_mode(self, capsys):
        code = main(
            ["analyze", "--trace", "twitter", "--users", "700", "--seed", "1",
             "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Plot mode renders axes rather than tables.
        assert "+---" in out or "+" in out
        assert "#followers" in out
