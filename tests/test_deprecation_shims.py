"""The retired ``PairSelection`` constructor names: shims, not paths.

Pins three facts about the deprecation shims left behind by the
array-construction API consolidation:

* each shim emits its ``DeprecationWarning`` exactly once per process
  (warn-once), with the replacement spelled out in the message;
* the shims are pure forwards -- the selections they return are
  bit-identical to the canonical ``from_csr`` / trusted-constructor
  spellings;
* nothing else in tier-1 goes through a shim: the process-wide
  warn-once registry is still empty when this module checks it, so a
  future caller regressing onto a shim trips a test, not just a
  warning filter.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.core.pairs as pairs_mod
from repro.core import PairSelection


@pytest.fixture()
def fresh_warn_registry(monkeypatch):
    """Isolate the process-wide warn-once set for one test."""
    monkeypatch.setattr(pairs_mod, "_WARNED_SHIMS", set())


def _by_topic():
    return {
        3: np.array([7, 1, 4], dtype=np.int64),
        0: np.array([2], dtype=np.int64),
        9: np.array([5, 0], dtype=np.int64),
    }


def _assert_same_selection(got: PairSelection, want: PairSelection) -> None:
    assert got == want
    got_t, got_v = got.pair_arrays()
    want_t, want_v = want.pair_arrays()
    np.testing.assert_array_equal(got_t, want_t)
    np.testing.assert_array_equal(got_v, want_v)


class TestWarnOnce:
    def test_from_trusted_arrays_warns_exactly_once(self, fresh_warn_registry):
        with pytest.warns(DeprecationWarning, match="trusted=True") as record:
            first = PairSelection.from_trusted_arrays(_by_topic())
        assert len(record) == 1
        with warnings.catch_warnings(record=True) as silent:
            warnings.simplefilter("always")
            second = PairSelection.from_trusted_arrays(_by_topic())
        assert silent == []
        _assert_same_selection(first, second)

    def test_from_pair_arrays_warns_exactly_once(self, fresh_warn_registry):
        topics = np.array([5, 2, 5, 0], dtype=np.int64)
        subs = np.array([1, 3, 0, 2], dtype=np.int64)
        with pytest.warns(DeprecationWarning, match="from_csr") as record:
            first = PairSelection.from_pair_arrays(topics, subs)
        assert len(record) == 1
        with warnings.catch_warnings(record=True) as silent:
            warnings.simplefilter("always")
            second = PairSelection.from_pair_arrays(topics, subs)
        assert silent == []
        _assert_same_selection(first, second)

    def test_shims_warn_independently(self, fresh_warn_registry):
        with pytest.warns(DeprecationWarning):
            PairSelection.from_trusted_arrays(_by_topic())
        # The other shim's first use still warns.
        with pytest.warns(DeprecationWarning):
            PairSelection.from_pair_arrays(
                np.array([1], dtype=np.int64), np.array([2], dtype=np.int64)
            )


class TestShimsForwardExactly:
    def test_from_trusted_arrays_matches_trusted_constructor(
        self, fresh_warn_registry
    ):
        with pytest.warns(DeprecationWarning):
            shimmed = PairSelection.from_trusted_arrays(_by_topic())
        _assert_same_selection(shimmed, PairSelection(_by_topic(), trusted=True))

    def test_from_pair_arrays_matches_from_csr(self, fresh_warn_registry):
        rng = np.random.default_rng(5)
        topics = rng.integers(0, 40, size=200)
        # Unique (t, v) pairs, shuffled: the from_csr contract.
        keys = np.unique(topics * 1000 + rng.integers(0, 1000, size=200))
        rng.shuffle(keys)
        topics, subs = keys // 1000, keys % 1000
        with pytest.warns(DeprecationWarning):
            shimmed = PairSelection.from_pair_arrays(topics, subs)
        _assert_same_selection(
            shimmed, PairSelection.from_csr(topics, None, subs, trusted=True)
        )


def test_no_tier1_path_fires_a_shim():
    """The real process-wide registry must be untouched by the suite.

    Every shim test above swaps in a scratch registry, so any name in
    the real one was put there by production code imported and run by
    tier-1 -- exactly the regression this guards against.
    """
    assert pairs_mod._WARNED_SHIMS == set()
