"""Unit tests for repro.core.pairs (PairSelection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PairSelection, Workload


class TestConstruction:
    def test_from_mapping(self):
        sel = PairSelection({0: [1, 2], 3: [0]})
        assert sel.num_pairs == 3
        assert sel.num_topics == 2
        assert sorted(sel.topics) == [0, 3]

    def test_empty_groups_dropped(self):
        sel = PairSelection({0: [], 1: [2]})
        assert sel.num_topics == 1
        assert (1, 2) in sel

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PairSelection({0: [1, 1]})

    def test_from_pairs(self):
        sel = PairSelection.from_pairs([(0, 1), (0, 2), (5, 1)])
        assert sel.pair_count(0) == 2
        assert sel.pair_count(5) == 1

    def test_from_subscriber_topics(self):
        sel = PairSelection.from_subscriber_topics({1: [0, 5], 2: [0]})
        assert sel.subscribers_of(0).tolist() == [1, 2]
        assert sel.subscribers_of(5).tolist() == [1]

    def test_full(self, tiny_workload):
        sel = PairSelection.full(tiny_workload)
        assert sel.num_pairs == tiny_workload.num_pairs
        assert set(sel) == set(tiny_workload.iter_pairs())


class TestViews:
    def test_contains(self):
        sel = PairSelection({0: [1]})
        assert (0, 1) in sel
        assert (0, 2) not in sel
        assert (1, 1) not in sel

    def test_len_and_iter(self):
        sel = PairSelection({0: [1, 2], 1: [3]})
        assert len(sel) == 3
        assert set(sel) == {(0, 1), (0, 2), (1, 3)}

    def test_missing_topic_empty_array(self):
        sel = PairSelection({0: [1]})
        assert sel.subscribers_of(9).size == 0
        assert sel.pair_count(9) == 0

    def test_equality_ignores_order(self):
        a = PairSelection({0: [2, 1]})
        b = PairSelection({0: [1, 2]})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert PairSelection({0: [1]}) != PairSelection({0: [2]})
        assert PairSelection({0: [1]}) != PairSelection({1: [1]})

    def test_topics_by_subscriber_roundtrip(self):
        sel = PairSelection({0: [1, 2], 1: [1]})
        inverted = sel.topics_by_subscriber()
        assert inverted == {1: [0, 1], 2: [0]}
        assert PairSelection.from_subscriber_topics(inverted) == sel


class TestBandwidth:
    def test_outgoing_rate(self, tiny_workload):
        sel = PairSelection({0: [0, 1], 1: [2]})
        assert sel.outgoing_rate(tiny_workload) == 2 * 20 + 10

    def test_incoming_rate_counts_topics_once(self, tiny_workload):
        sel = PairSelection({0: [0, 1], 1: [2]})
        assert sel.incoming_rate(tiny_workload) == 30

    def test_single_vm_totals(self, tiny_workload):
        sel = PairSelection.full(tiny_workload)
        # outgoing 2*20 + 3*10 = 70, incoming 30 -> 100 events, 1 B each
        assert sel.single_vm_rate(tiny_workload) == 100
        assert sel.single_vm_bytes(tiny_workload) == 100

    def test_message_size_scales_bytes(self, tiny_workload):
        sel = PairSelection.full(tiny_workload)
        w2 = tiny_workload.with_message_size(200.0)
        assert sel.single_vm_bytes(w2) == 100 * 200
