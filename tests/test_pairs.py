"""Unit tests for repro.core.pairs (PairSelection)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import PairSelection, Workload
from repro.core import pairs as pairs_module


class TestFromCsr:
    """The one array-construction entry point (both arms + validation)."""

    def test_csr_triple(self):
        sel = PairSelection.from_csr(
            np.array([3, 0], dtype=np.int64),
            np.array([0, 2, 3], dtype=np.int64),
            np.array([1, 4, 2], dtype=np.int64),
        )
        assert sel.num_pairs == 3
        assert list(sel.topics) == [3, 0]  # insertion order preserved
        assert sel.subscribers_of(3).tolist() == [1, 4]
        assert sel.subscribers_of(0).tolist() == [2]

    def test_trusted_adopts_without_copy(self):
        topics = np.array([1], dtype=np.int64)
        indptr = np.array([0, 2], dtype=np.int64)
        subs = np.array([5, 6], dtype=np.int64)
        sel = PairSelection.from_csr(topics, indptr, subs, trusted=True)
        t, i, s = sel.csr_arrays()
        assert t is topics and i is indptr and s is subs
        assert not s.flags.writeable  # frozen in place

    def test_flat_pair_arm_groups_by_topic(self):
        # indptr=None: parallel per-pair arrays, grouped by ascending
        # topic id, input order preserved within each group.
        sel = PairSelection.from_csr(
            np.array([4, 1, 4, 1], dtype=np.int64),
            None,
            np.array([7, 0, 2, 9], dtype=np.int64),
        )
        assert list(sel.topics) == [1, 4]
        assert sel.subscribers_of(1).tolist() == [0, 9]
        assert sel.subscribers_of(4).tolist() == [7, 2]

    def test_flat_pair_arm_empty(self):
        sel = PairSelection.from_csr(
            np.empty(0, dtype=np.int64), None, np.empty(0, dtype=np.int64)
        )
        assert sel.num_pairs == 0

    def test_flat_pair_arm_length_mismatch(self):
        with pytest.raises(ValueError, match="parallel"):
            PairSelection.from_csr(
                np.array([1, 2], dtype=np.int64), None, np.array([0], dtype=np.int64)
            )

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            PairSelection.from_csr(
                np.array([0], dtype=np.int64),
                np.array([1, 2], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )
        with pytest.raises(ValueError, match="strictly increasing"):
            PairSelection.from_csr(
                np.array([0, 1], dtype=np.int64),
                np.array([0, 1, 1], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )

    def test_validation_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="indptr\\[-1\\]"):
            PairSelection.from_csr(
                np.array([0], dtype=np.int64),
                np.array([0, 2], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )

    def test_validation_rejects_duplicate_topics(self):
        with pytest.raises(ValueError, match="distinct"):
            PairSelection.from_csr(
                np.array([1, 1], dtype=np.int64),
                np.array([0, 1, 2], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
            )

    def test_validation_rejects_duplicate_subscribers(self):
        with pytest.raises(ValueError, match="duplicate"):
            PairSelection.from_csr(
                np.array([4], dtype=np.int64),
                np.array([0, 2], dtype=np.int64),
                np.array([3, 3], dtype=np.int64),
            )


class TestDeprecatedShims:
    """The retired constructors forward, and warn exactly once."""

    @pytest.fixture(autouse=True)
    def _reset_warn_once(self):
        saved = set(pairs_module._WARNED_SHIMS)
        pairs_module._WARNED_SHIMS.clear()
        yield
        pairs_module._WARNED_SHIMS.clear()
        pairs_module._WARNED_SHIMS.update(saved)

    def test_from_trusted_arrays_forwards_and_warns_once(self):
        by_topic = {2: np.asarray([0, 3], dtype=np.int64)}
        with pytest.deprecated_call(match="trusted=True"):
            sel = PairSelection.from_trusted_arrays(by_topic)
        assert sel == PairSelection({2: [0, 3]})
        with warnings.catch_warnings(record=True) as record:  # second call is silent
            warnings.simplefilter("always")
            PairSelection.from_trusted_arrays(by_topic)
        assert not [w for w in record if w.category is DeprecationWarning]

    def test_from_pair_arrays_forwards_and_warns_once(self):
        t = np.array([1, 0], dtype=np.int64)
        v = np.array([2, 3], dtype=np.int64)
        with pytest.deprecated_call(match="from_csr"):
            sel = PairSelection.from_pair_arrays(t, v)
        assert sel == PairSelection.from_csr(t, None, v)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            PairSelection.from_pair_arrays(t, v)
        assert not [w for w in record if w.category is DeprecationWarning]


class TestConstruction:
    def test_from_mapping(self):
        sel = PairSelection({0: [1, 2], 3: [0]})
        assert sel.num_pairs == 3
        assert sel.num_topics == 2
        assert sorted(sel.topics) == [0, 3]

    def test_empty_groups_dropped(self):
        sel = PairSelection({0: [], 1: [2]})
        assert sel.num_topics == 1
        assert (1, 2) in sel

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PairSelection({0: [1, 1]})

    def test_from_pairs(self):
        sel = PairSelection.from_pairs([(0, 1), (0, 2), (5, 1)])
        assert sel.pair_count(0) == 2
        assert sel.pair_count(5) == 1

    def test_from_subscriber_topics(self):
        sel = PairSelection.from_subscriber_topics({1: [0, 5], 2: [0]})
        assert sel.subscribers_of(0).tolist() == [1, 2]
        assert sel.subscribers_of(5).tolist() == [1]

    def test_full(self, tiny_workload):
        sel = PairSelection.full(tiny_workload)
        assert sel.num_pairs == tiny_workload.num_pairs
        assert set(sel) == set(tiny_workload.iter_pairs())


class TestViews:
    def test_contains(self):
        sel = PairSelection({0: [1]})
        assert (0, 1) in sel
        assert (0, 2) not in sel
        assert (1, 1) not in sel

    def test_len_and_iter(self):
        sel = PairSelection({0: [1, 2], 1: [3]})
        assert len(sel) == 3
        assert set(sel) == {(0, 1), (0, 2), (1, 3)}

    def test_missing_topic_empty_array(self):
        sel = PairSelection({0: [1]})
        assert sel.subscribers_of(9).size == 0
        assert sel.pair_count(9) == 0

    def test_equality_ignores_order(self):
        a = PairSelection({0: [2, 1]})
        b = PairSelection({0: [1, 2]})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert PairSelection({0: [1]}) != PairSelection({0: [2]})
        assert PairSelection({0: [1]}) != PairSelection({1: [1]})

    def test_topics_by_subscriber_roundtrip(self):
        sel = PairSelection({0: [1, 2], 1: [1]})
        inverted = sel.topics_by_subscriber()
        assert inverted == {1: [0, 1], 2: [0]}
        assert PairSelection.from_subscriber_topics(inverted) == sel


class TestBandwidth:
    def test_outgoing_rate(self, tiny_workload):
        sel = PairSelection({0: [0, 1], 1: [2]})
        assert sel.outgoing_rate(tiny_workload) == 2 * 20 + 10

    def test_incoming_rate_counts_topics_once(self, tiny_workload):
        sel = PairSelection({0: [0, 1], 1: [2]})
        assert sel.incoming_rate(tiny_workload) == 30

    def test_single_vm_totals(self, tiny_workload):
        sel = PairSelection.full(tiny_workload)
        # outgoing 2*20 + 3*10 = 70, incoming 30 -> 100 events, 1 B each
        assert sel.single_vm_rate(tiny_workload) == 100
        assert sel.single_vm_bytes(tiny_workload) == 100

    def test_message_size_scales_bytes(self, tiny_workload):
        sel = PairSelection.full(tiny_workload)
        w2 = tiny_workload.with_message_size(200.0)
        assert sel.single_vm_bytes(w2) == 100 * 200
