"""Tests for RandomSelectPairs (the naive Stage-1 baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MCSSProblem, Workload, all_satisfied
from repro.selection import GreedySelectPairs, RandomSelectPairs, get_selector
from tests.conftest import make_unit_plan


class TestRandomSelectPairs:
    @pytest.mark.parametrize("tau", [1, 10, 500])
    def test_satisfies_all(self, small_zipf, tau):
        problem = MCSSProblem(small_zipf, tau, make_unit_plan(1e12))
        selection = RandomSelectPairs().select(problem)
        assert all_satisfied(small_zipf, selection.topics_by_subscriber(), tau)

    def test_interest_order_without_seed(self):
        # Stored order: topic 0 (rate 2) then topic 1 (rate 50); tau=2
        # is met by the first pair alone.
        w = Workload([2.0, 50.0], [[0, 1]])
        selection = RandomSelectPairs().select(MCSSProblem(w, 2, make_unit_plan(1e9)))
        assert set(selection) == {(0, 0)}

    def test_stops_at_threshold(self):
        w = Workload([5.0, 5.0, 5.0], [[0, 1, 2]])
        selection = RandomSelectPairs().select(MCSSProblem(w, 9, make_unit_plan(1e9)))
        assert selection.num_pairs == 2

    def test_seeded_runs_reproducible(self, small_zipf):
        problem = MCSSProblem(small_zipf, 20, make_unit_plan(1e12))
        a = RandomSelectPairs(seed=11).select(problem)
        b = RandomSelectPairs(seed=11).select(problem)
        assert a == b

    def test_different_seeds_can_differ(self, small_zipf):
        problem = MCSSProblem(small_zipf, 20, make_unit_plan(1e12))
        a = RandomSelectPairs(seed=1).select(problem)
        b = RandomSelectPairs(seed=2).select(problem)
        assert a != b  # overwhelmingly likely for 200 subscribers

    def test_never_cheaper_than_greedy(self, small_zipf):
        # RSP is the baseline GSP must dominate on bandwidth.
        for tau in (5, 50, 500):
            problem = MCSSProblem(small_zipf, tau, make_unit_plan(1e12))
            greedy = GreedySelectPairs().select(problem)
            naive = RandomSelectPairs(seed=0).select(problem)
            assert greedy.single_vm_bytes(small_zipf) <= naive.single_vm_bytes(
                small_zipf
            ) * (1 + 1e-9)

    def test_registry(self):
        assert isinstance(get_selector("rsp"), RandomSelectPairs)
        assert isinstance(get_selector("rsp", seed=3), RandomSelectPairs)
