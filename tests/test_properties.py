"""Cross-module property-based tests (hypothesis).

These pin the whole-system invariants the paper's correctness rests on,
over fuzzed workloads:

1. every solver pipeline produces a feasible placement (capacity +
   satisfaction);
2. the lower bound never exceeds any feasible solution's cost;
3. Stage-1 selections satisfy every subscriber on a single infinite VM;
4. packing never invents or loses pairs;
5. the deployment simulator's metering agrees with the analytic
   objective on whatever the solvers produce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import lower_bound
from repro.core import MCSSProblem, Workload, all_satisfied, validate_placement
from repro.simulation import SimulationConfig, simulate_placement
from repro.solver import MCSSSolver
from tests.conftest import make_unit_plan


@st.composite
def workloads(draw):
    """Small random workloads with every subscriber non-trivial."""
    num_topics = draw(st.integers(min_value=1, max_value=7))
    rates = draw(
        st.lists(
            st.integers(min_value=1, max_value=25),
            min_size=num_topics,
            max_size=num_topics,
        )
    )
    num_subscribers = draw(st.integers(min_value=1, max_value=8))
    interests = []
    for _ in range(num_subscribers):
        size = draw(st.integers(min_value=1, max_value=num_topics))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_topics - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        interests.append(sorted(members))
    return Workload([float(r) for r in rates], interests, message_size_bytes=1.0)


def make_problem(workload, tau, slack):
    capacity = 2.0 * float(workload.event_rates.max()) * (1.0 + slack)
    return MCSSProblem(workload, tau, make_unit_plan(capacity, vm_price=4.0))


@given(
    workload=workloads(),
    tau=st.integers(min_value=0, max_value=40),
    slack=st.floats(min_value=0.1, max_value=4.0),
)
@settings(max_examples=120, deadline=None)
def test_pipelines_always_feasible(workload, tau, slack):
    problem = make_problem(workload, tau, slack)
    for solver in (
        MCSSSolver.paper(),
        MCSSSolver.naive(),
        MCSSSolver.ladder("a"),
        MCSSSolver.ladder("b"),
        MCSSSolver.ladder("d"),
    ):
        solution = solver.solve(problem)  # solve() validates internally
        assert solution.validation.ok
        # Packing preserves the selection exactly.
        assert solution.placement.to_selection() == solution.selection


@given(
    workload=workloads(),
    tau=st.integers(min_value=0, max_value=40),
    slack=st.floats(min_value=0.1, max_value=4.0),
)
@settings(max_examples=120, deadline=None)
def test_lower_bound_sound(workload, tau, slack):
    problem = make_problem(workload, tau, slack)
    solution = MCSSSolver.paper().solve(problem)
    for tight in (False, True):
        bound = lower_bound(problem, include_forced_ingest=tight)
        assert bound.total_usd <= solution.cost.total_usd * (1 + 1e-9)


@given(workload=workloads(), tau=st.integers(min_value=0, max_value=60))
@settings(max_examples=120, deadline=None)
def test_selection_satisfies_subscribers(workload, tau):
    problem = MCSSProblem(workload, tau, make_unit_plan(1e9))
    for solver in (MCSSSolver.paper(), MCSSSolver.naive()):
        selection = solver.selector.select(problem)
        assert all_satisfied(workload, selection.topics_by_subscriber(), tau)


@given(
    workload=workloads(),
    tau=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_simulation_agrees_with_objective(workload, tau):
    problem = make_problem(workload, tau, 2.0)
    solution = MCSSSolver.paper().solve(problem)
    if solution.placement.num_pairs == 0:
        return
    report = simulate_placement(
        problem, solution.placement, SimulationConfig(horizon_fraction=1.0)
    )
    assert report.satisfied
    # Integer event counts + full horizon: metering is near-exact.
    assert report.metering_error < 0.02
