"""Slow large-scale smoke: the vectorized paths at one million subscribers.

Deselected by default (``-m "not slow"`` is in ``addopts``); run with::

    PYTHONPATH=src python -m pytest -m slow -q tests/test_scale_smoke.py

Guards the two regressions the small randomized suites cannot see:

* silent int32 truncation in the whole-array select/pack/validate
  paths (index arithmetic over multi-million-pair arrays);
* memory blow-ups from accidentally materializing per-subscriber or
  per-pair Python objects (the peak-RSS bound fails fast if any hot
  path falls back to lists).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core import MCSSProblem, validate_placement
from repro.core.backend import is_mapped
from repro.packing import CBPOptions, CustomBinPacking
from repro.selection import GreedySelectPairs
from repro.solver import MCSSSolver
from repro.workloads import (
    TwitterConfig,
    TwitterWorkloadGenerator,
    load_workload,
    save_zipf_workload_chunked,
    zipf_workload,
)
from tests.conftest import make_unit_plan

NUM_SUBSCRIBERS = 1_000_000
NUM_TOPICS = 20_000

# The flat pair arrays are ~5M int64 entries (~40 MB each); a few
# dozen whole-array temporaries fit comfortably below this bound,
# while a per-subscriber fallback (Python ints/lists: >= 28 B per
# element times several structures) blows straight through it.
PEAK_BYTES_BOUND = 3 * 1024**3


@pytest.mark.slow
def test_million_subscriber_select_pack_validate():
    workload = zipf_workload(NUM_TOPICS, NUM_SUBSCRIBERS, mean_interest=5.0, seed=11)
    assert workload.num_subscribers == NUM_SUBSCRIBERS
    assert workload.num_pairs > NUM_SUBSCRIBERS  # multi-million pairs

    capacity = (
        max(
            2.5 * float(workload.event_rates.max()),
            float(workload.event_rates.sum()) / 16.0,
        )
        * workload.message_size_bytes
    )
    problem = MCSSProblem(workload, 100.0, make_unit_plan(float(capacity)))

    tracemalloc.start()
    try:
        selection = GreedySelectPairs().select(problem)
        placement = CustomBinPacking(CBPOptions.ladder("e")).pack(problem, selection)
        report = validate_placement(problem, placement)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert report.ok, f"invalid placement at scale: {report}"
    assert peak < PEAK_BYTES_BOUND, f"peak traced memory {peak / 1e9:.2f} GB"

    # No int32 truncation anywhere in the CSR plumbing: the flat arrays
    # stay int64 end to end and the offsets actually cover every pair.
    topics, indptr, subs = selection.csr_arrays()
    assert topics.dtype == np.int64
    assert indptr.dtype == np.int64
    assert subs.dtype == np.int64
    assert int(indptr[-1]) == selection.num_pairs == subs.size
    assert int(subs.max()) < NUM_SUBSCRIBERS
    assert int(topics.max()) < NUM_TOPICS

    # Every selected pair is placed exactly once by CBP.
    assert placement.num_pairs == selection.num_pairs
    vm_ids, _, sizes, all_subs = placement.assignment_arrays()
    assert all_subs.dtype == np.int64
    assert int(sizes.sum()) == selection.num_pairs
    assert placement.num_vms > 1
    assert vm_ids.size and int(vm_ids.max()) == placement.num_vms - 1


@pytest.mark.slow
def test_million_user_twitter_draw():
    """A 1M-user Twitter trace (tens of millions of follow edges).

    Exercises the vectorized CSR social-graph construction at the
    scale the paper's headline experiments run at (8M active users /
    683.5M pairs, here one order of magnitude down): the whole draw --
    weighted attachment, global dedup, deficit top-up, compaction --
    must stay whole-array.  A per-user fallback anywhere would blow
    the traced-memory bound (Python objects cost >= 28 B per element)
    and the wall-clock budget of the weekly slow job.
    """
    cfg = TwitterConfig(num_users=1_000_000)

    tracemalloc.start()
    try:
        trace = TwitterWorkloadGenerator(cfg).generate(seed=3)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert peak < PEAK_BYTES_BOUND, f"peak traced memory {peak / 1e9:.2f} GB"

    graph, workload = trace.graph, trace.workload
    assert graph.num_users == cfg.num_users
    assert graph.num_edges > 10_000_000  # tens of millions of edges
    assert workload.num_pairs > 10_000_000

    # The CSR plumbing stays int64 end to end and the offsets cover
    # every edge/pair exactly.
    assert graph.following_indptr.dtype == np.int64
    assert graph.following_targets.dtype == np.int64
    assert int(graph.following_indptr[-1]) == graph.following_targets.size
    assert int(graph.following_targets.max()) < cfg.num_users
    assert workload.interest_indptr.dtype == np.int64
    assert workload.interest_topics.dtype == np.int64
    assert int(workload.interest_indptr[-1]) == workload.num_pairs
    assert int(workload.interest_topics.max()) < workload.num_topics

    # Compaction invariants at scale: active topics only, every
    # subscriber kept a non-empty interest.
    assert workload.event_rates.min() >= 1
    assert int(workload.interest_sizes().min()) >= 1


@pytest.mark.slow
def test_ten_million_pair_ladder_rung():
    """A ~10M-pair ladder rung with one Stage-1 selection shared by rungs.

    The experiment ladder no longer re-selects per packing variant:
    selection depends only on (workload, tau), so one vectorized GSP
    pass feeds every CBP rung through ``solve_with_selection``.  This
    smoke runs that reuse path one order of magnitude above the
    1M-subscriber test (9.4M workload pairs / 6.3M selected pairs) and
    bounds the traced memory the same way -- a per-pair Python fallback
    in selection, packing, validation or the selection-reuse plumbing
    would blow straight through the bound.
    """
    workload = zipf_workload(40_000, 2_000_000, mean_interest=5.0, seed=13)
    assert workload.num_pairs > 9_000_000  # ~10M pairs

    capacity = (
        max(
            2.5 * float(workload.event_rates.max()),
            float(workload.event_rates.sum()) / 64.0,
        )
        * workload.message_size_bytes
    )
    problem = MCSSProblem(workload, 100.0, make_unit_plan(float(capacity)))

    tracemalloc.start()
    try:
        selection = GreedySelectPairs().select(problem)
        # Two CBP rungs share the one selection (validation included in
        # solve_with_selection; an invalid placement raises).
        rung_e = MCSSSolver.ladder("e").solve_with_selection(problem, selection)
        rung_b = MCSSSolver.ladder("b").solve_with_selection(problem, selection)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert peak < PEAK_BYTES_BOUND, f"peak traced memory {peak / 1e9:.2f} GB"

    assert selection.num_pairs > 5_000_000
    topics, indptr, subs = selection.csr_arrays()
    assert topics.dtype == indptr.dtype == subs.dtype == np.int64
    assert int(indptr[-1]) == selection.num_pairs == subs.size

    # Both rungs place every selected pair exactly once and validate.
    for solution in (rung_e, rung_b):
        assert solution.validation.ok
        assert solution.placement.num_pairs == selection.num_pairs
        assert solution.placement.num_vms > 1
        assert solution.selection is selection  # genuinely shared
    # The full cost decision only redistributes; both rungs price the
    # same selection, so their totals stay within a few percent.
    assert rung_e.cost.total_usd == pytest.approx(
        rung_b.cost.total_usd, rel=0.10
    )


@pytest.mark.slow
def test_out_of_core_hundred_million_pairs(tmp_path):
    """The headline out-of-core rung: 10M subscribers / >= 100M pairs.

    The trace never exists in RAM as a whole: it is generated chunk by
    chunk straight to disk, re-opened memory-mapped, and solved with
    the sharded pipeline.  The flat CSR arrays alone are ~2 GB, so the
    traced-memory bound below is only reachable because every stage --
    chunked generation, mmap load, subscriber-sharded Stage 1,
    topic-sharded validation -- works on shard-sized slices.  mmap
    pages are the kernel's, not the Python heap's, which is exactly
    what tracemalloc certifies here.
    """
    tracemalloc.start()
    try:
        path = save_zipf_workload_chunked(
            tmp_path / "trace",
            200_000,
            10_000_000,
            mean_interest=12.0,
            seed=7,
        )
        workload = load_workload(path, mmap=True)
        assert is_mapped(workload.interest_topics)
        assert workload.num_subscribers == 10_000_000
        assert workload.num_pairs >= 100_000_000

        capacity = (
            max(
                2.5 * float(workload.event_rates.max()),
                float(workload.event_rates.sum()) / 8.0,
            )
            * workload.message_size_bytes
        )
        problem = MCSSProblem(workload, 100.0, make_unit_plan(float(capacity)))
        solution = MCSSSolver.paper().solve_sharded(problem)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert peak < PEAK_BYTES_BOUND, f"peak traced memory {peak / 1e9:.2f} GB"
    assert solution.validation.ok
    assert solution.selector_name == "gsp-sharded"
    assert solution.selection.num_pairs > 10_000_000
    assert solution.placement.num_pairs == solution.selection.num_pairs
    assert solution.placement.num_vms > 1

    topics, indptr, subs = solution.selection.csr_arrays()
    assert topics.dtype == indptr.dtype == subs.dtype == np.int64
    assert int(indptr[-1]) == solution.selection.num_pairs == subs.size
