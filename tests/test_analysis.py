"""Tests for repro.analysis (CCDF and Appendix-D statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ccdf,
    event_rate_ccdf,
    follower_ccdf,
    following_ccdf,
    mean_rate_by_followers,
    mean_sc_by_followings,
    subscription_cardinality,
    subscription_cardinality_ccdf,
)
from repro.core import Workload
from repro.workloads import TwitterConfig, TwitterWorkloadGenerator


@pytest.fixture(scope="module")
def trace():
    return TwitterWorkloadGenerator(TwitterConfig(num_users=4000)).generate(seed=2)


class TestCCDF:
    def test_simple_values(self):
        # Samples 1,1,2,3: P(X>1)=0.5, P(X>2)=0.25, P(X>3)=0.
        c = ccdf(np.array([1, 1, 2, 3]))
        assert c.values.tolist() == [1, 2, 3]
        assert c.probabilities.tolist() == [0.5, 0.25, 0.0]

    def test_at_interpolates_stepwise(self):
        c = ccdf(np.array([1, 1, 2, 3]))
        assert c.at(0.5) == 1.0  # below the smallest value
        assert c.at(1) == 0.5
        assert c.at(1.5) == 0.5
        assert c.at(2) == 0.25
        assert c.at(10) == 0.0

    def test_single_value(self):
        c = ccdf(np.array([7]))
        assert c.probabilities.tolist() == [0.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf(np.array([]))

    def test_monotone_decreasing(self, trace):
        c = follower_ccdf(trace.graph)
        assert all(np.diff(c.probabilities) <= 1e-12)

    def test_tail_exponent_requires_points(self):
        c = ccdf(np.array([1, 1, 1]))
        with pytest.raises(ValueError):
            c.tail_exponent(x_min=100)


class TestTraceStatistics:
    def test_follower_and_following_ccdfs(self, trace):
        fers = follower_ccdf(trace.graph)
        fing = following_ccdf(trace.graph)
        assert fers.probabilities[0] <= 1.0
        assert fing.values.min() >= 0

    def test_event_rate_ccdf_active_only(self, trace):
        c = event_rate_ccdf(trace.graph)
        assert c.values.min() >= 1

    def test_subscription_cardinality_definition(self):
        w = Workload([10.0, 30.0], [[0], [0, 1]])
        sc = subscription_cardinality(w)
        assert sc[0] == pytest.approx(25.0)  # 10/40
        assert sc[1] == pytest.approx(100.0)

    def test_sc_ccdf(self, trace):
        c = subscription_cardinality_ccdf(trace.workload)
        assert c.values.max() <= 100.0
        assert (np.diff(c.probabilities) <= 1e-12).all()

    def test_mean_rate_by_followers_bins(self, trace):
        binned = mean_rate_by_followers(trace.graph)
        assert binned.bin_centers.size == binned.means.size
        assert binned.counts.sum() <= trace.graph.num_users
        assert (binned.bin_centers[:-1] < binned.bin_centers[1:]).all()

    def test_mean_sc_by_followings_aligns(self, trace):
        binned = mean_sc_by_followings(trace.graph, trace.workload)
        assert binned.means.min() >= 0
        # SC grows with followings: last occupied bin above the first.
        assert binned.means[-1] > binned.means[0]

    def test_mean_sc_mismatched_trace_rejected(self, trace):
        other = Workload([1.0], [[0]])
        with pytest.raises(ValueError, match="mismatch"):
            mean_sc_by_followings(trace.graph, other)

    def test_sc_needs_events(self):
        w = Workload([1.0], [[]])
        sc = subscription_cardinality(w)
        assert sc[0] == 0.0
